#include "nucleus/parallel/parallel_fnd.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "nucleus/dsf/concurrent_dsf.h"
#include "nucleus/parallel/parallel_peel.h"
#include "nucleus/parallel/thread_pool.h"
#include "nucleus/util/timer.h"

namespace nucleus {

template <typename Space>
FndResult FastNucleusDecompositionParallel(const Space& space,
                                           const ParallelConfig& config) {
  FndResult result;
  ThreadPool pool(config);
  const std::int64_t grain = config.ResolvedGrain();

  Timer timer;
  result.peel = PeelParallel(space, pool, grain);
  result.peel_seconds = timer.Seconds();
  timer.Restart();

  const std::int64_t n = space.NumCliques();
  const std::vector<Lambda>& lambda = result.peel.lambda;

  // Concurrent sub-nucleus detection. Each superclique is visited once per
  // member; only the minimum-id member (the owner) processes it, so every
  // K_s contributes exactly once regardless of scheduling. ADJ pairs are
  // recorded as K_r-level (member, anchor) pairs per CHUNK — chunk
  // boundaries are pure functions of the grain, so the buffers concatenate
  // into the same ascending-owner order for every thread count.
  ConcurrentDisjointSet dsf(n);
  const std::int64_t num_chunks = n > 0 ? (n + grain - 1) / grain : 0;
  std::vector<std::vector<std::pair<CliqueId, CliqueId>>> chunk_adj(
      num_chunks);
  pool.ParallelFor(n, grain, [&](int, std::int64_t begin, std::int64_t end) {
    std::vector<std::pair<CliqueId, CliqueId>>& adj = chunk_adj[begin / grain];
    for (CliqueId u = static_cast<CliqueId>(begin); u < end; ++u) {
      space.ForEachSuperclique(u, [&](const CliqueId* members, int count) {
        CliqueId owner = members[0];
        Lambda min_lambda = lambda[members[0]];
        for (int i = 1; i < count; ++i) {
          owner = std::min(owner, members[i]);
          min_lambda = std::min(min_lambda, lambda[members[i]]);
        }
        if (owner != u) return;
        // The anchor is the minimum-id member at the superclique's minimum
        // lambda: all such members form one strongly connected sub-nucleus
        // piece (Alg. 8 line 15), and higher-lambda members connect to it
        // (Alg. 8 line 17).
        CliqueId anchor = kInvalidId;
        for (int i = 0; i < count; ++i) {
          const CliqueId m = members[i];
          if (lambda[m] == min_lambda && (anchor == kInvalidId || m < anchor)) {
            anchor = m;
          }
        }
        for (int i = 0; i < count; ++i) {
          const CliqueId m = members[i];
          if (lambda[m] == min_lambda) {
            if (m != anchor) dsf.Union(anchor, m);
          } else {
            adj.emplace_back(m, anchor);
          }
        }
      });
    }
  });

  // Canonical node numbering: one skeleton node per component, in
  // ascending minimum-member order (the min-id disjoint-set's roots).
  HierarchySkeleton& skeleton = result.build.skeleton;
  std::vector<std::int32_t>& comp = result.build.comp;
  comp.assign(n, kInvalidId);
  for (CliqueId u = 0; u < n; ++u) {
    if (dsf.Find(u) == u) comp[u] = skeleton.AddNode(lambda[u]);
  }
  pool.ParallelFor(n, grain, [&](int, std::int64_t begin, std::int64_t end) {
    for (CliqueId u = static_cast<CliqueId>(begin); u < end; ++u) {
      if (comp[u] == kInvalidId) comp[u] = comp[dsf.Find(u)];
    }
  });

  // Deterministic merge of the per-chunk ADJ buffers, resolved to skeleton
  // node ids.
  std::int64_t total_adj = 0;
  for (const auto& chunk : chunk_adj) {
    total_adj += static_cast<std::int64_t>(chunk.size());
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> adj;
  adj.reserve(total_adj);
  for (const auto& chunk : chunk_adj) {
    for (const auto& [member, anchor] : chunk) {
      adj.emplace_back(comp[member], comp[anchor]);
    }
  }
  result.num_adj = total_adj;

  internal::FinishSkeleton(adj, result.peel.max_lambda, &result.build);
  result.build_seconds = timer.Seconds();
  return result;
}

template FndResult FastNucleusDecompositionParallel<VertexSpace>(
    const VertexSpace&, const ParallelConfig&);
template FndResult FastNucleusDecompositionParallel<EdgeSpace>(
    const EdgeSpace&, const ParallelConfig&);
template FndResult FastNucleusDecompositionParallel<TriangleSpace>(
    const TriangleSpace&, const ParallelConfig&);
template FndResult FastNucleusDecompositionParallel<GenericSpace>(
    const GenericSpace&, const ParallelConfig&);

}  // namespace nucleus
