// ParallelConfig: the one place thread counts and grain sizes are chosen
// and validated. Every parallel entry point (PeelParallel,
// FastNucleusDecompositionParallel, Decompose with threading, the CLI's
// --threads flag) carries one of these instead of a raw int, so the
// "num_threads <= 0" / "more threads than work" special cases are resolved
// exactly once — the runtime below (ThreadPool) only ever sees a resolved
// count >= 1 and a grain >= 1.
#ifndef NUCLEUS_PARALLEL_PARALLEL_CONFIG_H_
#define NUCLEUS_PARALLEL_PARALLEL_CONFIG_H_

#include <cstdint>

namespace nucleus {

struct ParallelConfig {
  /// Number of threads (execution lanes, caller included). 1 = serial;
  /// 0 or negative = use all hardware threads.
  int num_threads = 1;

  /// Work items per scheduling chunk of a ParallelFor. Chunk boundaries
  /// depend only on the grain — never on the thread count — which is what
  /// makes per-chunk output buffers mergeable into a thread-count-
  /// independent order. 0 or negative = kDefaultGrain.
  std::int64_t grain_size = 0;

  static constexpr std::int64_t kDefaultGrain = 1024;

  /// The validated thread count: num_threads if >= 1, otherwise the
  /// hardware concurrency (at least 1).
  int ResolvedThreads() const;

  /// The validated grain: grain_size if >= 1, otherwise kDefaultGrain.
  std::int64_t ResolvedGrain() const {
    return grain_size >= 1 ? grain_size : kDefaultGrain;
  }

  /// All hardware threads, default grain.
  static ParallelConfig Auto() {
    ParallelConfig config;
    config.num_threads = 0;
    return config;
  }

  /// Exactly `num_threads` lanes (<= 0 = hardware concurrency).
  static ParallelConfig WithThreads(int num_threads) {
    ParallelConfig config;
    config.num_threads = num_threads;
    return config;
  }
};

}  // namespace nucleus

#endif  // NUCLEUS_PARALLEL_PARALLEL_CONFIG_H_
