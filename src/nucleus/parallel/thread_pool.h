// A persistent, work-stealing-free thread pool. Workers are spawned once
// and parked on a condition variable between jobs, so issuing a ParallelFor
// costs one notify instead of num_threads thread spawns — the wave peel
// issues two ParallelFors per wave and used to pay the spawn cost for every
// one of them.
//
// Scheduling is dynamic over fixed chunks: [0, total) is cut into
// ceil(total / grain) chunks at multiples of `grain`, and the caller plus
// the workers grab chunks from a shared atomic counter. Chunk BOUNDARIES
// therefore depend only on (total, grain), never on the thread count or on
// timing — callers that key per-chunk output buffers on `begin / grain`
// obtain results mergeable into a schedule-independent order (see
// FastNucleusDecompositionParallel).
//
// The caller participates as lane 0; a pool of num_threads == 1 spawns no
// worker at all and runs every chunk inline, so the serial configuration
// has no synchronization cost and trivially identical behavior.
#ifndef NUCLEUS_PARALLEL_THREAD_POOL_H_
#define NUCLEUS_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "nucleus/parallel/parallel_config.h"
#include "nucleus/util/mutex.h"

namespace nucleus {

class ThreadPool {
 public:
  /// f(lane, begin, end): one scheduling chunk. `lane` is in
  /// [0, num_threads()) and identifies the executing lane (for per-lane
  /// scratch buffers); `begin / grain` identifies the chunk (for
  /// deterministic per-chunk output buffers).
  using ChunkFn = std::function<void(int, std::int64_t, std::int64_t)>;

  /// Spawns num_threads - 1 workers (the caller is lane 0). num_threads
  /// must be >= 1 — resolve raw user input through ParallelConfig first.
  explicit ThreadPool(int num_threads);
  explicit ThreadPool(const ParallelConfig& config)
      : ThreadPool(config.ResolvedThreads()) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins the workers. Must not race with an in-flight ParallelFor.
  ~ThreadPool();

  /// Total lanes including the caller.
  int num_threads() const { return num_threads_; }

  /// Runs f over [0, total) in chunks of `grain` (>= 1; the last chunk may
  /// be short) and blocks until every chunk has finished. Chunks run
  /// exactly once each, in unspecified order on unspecified lanes. Must
  /// not be called reentrantly from inside a chunk.
  void ParallelFor(std::int64_t total, std::int64_t grain, const ChunkFn& f);

 private:
  void WorkerLoop(int lane);
  /// Drains chunks of the current job. The geometry travels as value
  /// parameters: each lane copies it out of the guarded job fields while
  /// holding mutex_ (the thread-safety analysis rejected the previous
  /// shape, where RunChunks read job_total_/job_grain_/job_num_chunks_
  /// directly, lock-free, relying on the epoch handshake for publication).
  void RunChunks(int lane, const ChunkFn& f, std::int64_t total,
                 std::int64_t grain, std::int64_t num_chunks);

  const int num_threads_;
  std::vector<std::thread> workers_;

  Mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for a new epoch
  std::condition_variable done_cv_;  // caller waits for worker arrivals
  // Bumped per ParallelFor.
  std::uint64_t epoch_ GUARDED_BY(mutex_) = 0;
  // Destructor signal.
  bool stop_ GUARDED_BY(mutex_) = false;
  // Arrivals for the current epoch.
  int workers_finished_ GUARDED_BY(mutex_) = 0;

  // Current job; written by the caller under mutex_ before the epoch
  // bump, copied out by workers after observing the bump under the same
  // mutex.
  const ChunkFn* job_fn_ GUARDED_BY(mutex_) = nullptr;
  std::int64_t job_total_ GUARDED_BY(mutex_) = 0;
  std::int64_t job_grain_ GUARDED_BY(mutex_) = 0;
  std::int64_t job_num_chunks_ GUARDED_BY(mutex_) = 0;
  std::atomic<std::int64_t> next_chunk_{0};
};

}  // namespace nucleus

#endif  // NUCLEUS_PARALLEL_THREAD_POOL_H_
