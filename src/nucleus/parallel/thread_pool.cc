#include "nucleus/parallel/thread_pool.h"

#include <algorithm>

#include "nucleus/util/common.h"

namespace nucleus {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  NUCLEUS_CHECK(num_threads >= 1);
  workers_.reserve(num_threads - 1);
  for (int lane = 1; lane < num_threads; ++lane) {
    workers_.emplace_back([this, lane] { WorkerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunks(int lane, const ChunkFn& f) {
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= job_num_chunks_) return;
    const std::int64_t begin = c * job_grain_;
    f(lane, begin, std::min(job_total_, begin + job_grain_));
  }
}

void ThreadPool::ParallelFor(std::int64_t total, std::int64_t grain,
                             const ChunkFn& f) {
  if (total <= 0) return;
  NUCLEUS_CHECK(grain >= 1);
  const std::int64_t num_chunks = (total + grain - 1) / grain;
  if (workers_.empty() || num_chunks == 1) {
    // Serial pool or a single chunk: run inline with identical chunk
    // boundaries and no synchronization.
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const std::int64_t begin = c * grain;
      f(0, begin, std::min(total, begin + grain));
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &f;
    job_total_ = total;
    job_grain_ = grain;
    job_num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    workers_finished_ = 0;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunChunks(0, f);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] {
    return workers_finished_ == static_cast<int>(workers_.size());
  });
}

void ThreadPool::WorkerLoop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const ChunkFn* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = job_fn_;
    }
    RunChunks(lane, *fn);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++workers_finished_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace nucleus
