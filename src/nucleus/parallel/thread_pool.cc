#include "nucleus/parallel/thread_pool.h"

#include <algorithm>

#include "nucleus/util/common.h"

namespace nucleus {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  NUCLEUS_CHECK(num_threads >= 1);
  workers_.reserve(num_threads - 1);
  for (int lane = 1; lane < num_threads; ++lane) {
    workers_.emplace_back([this, lane] { WorkerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunks(int lane, const ChunkFn& f, std::int64_t total,
                           std::int64_t grain, std::int64_t num_chunks) {
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks) return;
    const std::int64_t begin = c * grain;
    f(lane, begin, std::min(total, begin + grain));
  }
}

void ThreadPool::ParallelFor(std::int64_t total, std::int64_t grain,
                             const ChunkFn& f) {
  if (total <= 0) return;
  NUCLEUS_CHECK(grain >= 1);
  const std::int64_t num_chunks = (total + grain - 1) / grain;
  if (workers_.empty() || num_chunks == 1) {
    // Serial pool or a single chunk: run inline with identical chunk
    // boundaries and no synchronization.
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const std::int64_t begin = c * grain;
      f(0, begin, std::min(total, begin + grain));
    }
    return;
  }
  {
    MutexLock lock(mutex_);
    job_fn_ = &f;
    job_total_ = total;
    job_grain_ = grain;
    job_num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    workers_finished_ = 0;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunChunks(0, f, total, grain, num_chunks);
  MutexLock lock(mutex_);
  while (workers_finished_ != static_cast<int>(workers_.size())) {
    done_cv_.wait(lock.native());
  }
}

void ThreadPool::WorkerLoop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const ChunkFn* fn = nullptr;
    std::int64_t total = 0;
    std::int64_t grain = 0;
    std::int64_t num_chunks = 0;
    {
      MutexLock lock(mutex_);
      while (!stop_ && epoch_ == seen) work_cv_.wait(lock.native());
      if (stop_) return;
      seen = epoch_;
      fn = job_fn_;
      total = job_total_;
      grain = job_grain_;
      num_chunks = job_num_chunks_;
    }
    RunChunks(lane, *fn, total, grain, num_chunks);
    {
      MutexLock lock(mutex_);
      ++workers_finished_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace nucleus
