// Parallel traversal-avoiding hierarchy construction: the FND pipeline
// (paper Alg. 8/9) with every heavy phase on the shared ThreadPool —
// completing the paper's future-work sentence for the hierarchy half.
//
// The serial FND interleaves sub-nucleus detection with the strictly
// sequential bucket peel. The parallel pipeline decouples them:
//
//   1. Wave-parallel peel (parallel_peel.h) — lambda, bit-identical to
//      Alg. 1.
//   2. Concurrent sub-nucleus detection: one parallel sweep over all
//      supercliques. Each K_s is handled by exactly one owner (its
//      minimum-id member); members at the superclique's minimum lambda m
//      are united in a lock-free min-id disjoint-set (they are strongly
//      K_s-connected at level m), and every member above m emits one
//      deferred (member, anchor) connection — exactly the pairs Alg. 8
//      lines 13-17 discover during the peel, so |ADJ| matches the serial
//      count.
//   3. Deterministic reduction: components become skeleton nodes in
//      ascending minimum-member order; per-chunk ADJ buffers concatenate in
//      chunk order. Chunk boundaries depend only on the grain, and the
//      min-id disjoint-set's final representatives are schedule-
//      independent, so steps 3-4 see identical input for EVERY thread
//      count — the whole pipeline is bit-identical across thread counts
//      (and to its own single-threaded run).
//   4. Alg. 9 (internal::BuildHierarchy) assembles the skeleton from the
//      binned ADJ pairs, unchanged.
//
// Relative to the serial FND the skeleton is already fully merged: nodes
// are the maximal sub-nuclei T_{r,s} (DF-Traversal's count) rather than
// the finer T*_{r,s}, and node ids follow the canonical order above rather
// than pop order. The contracted NucleusHierarchy is identical.
#ifndef NUCLEUS_PARALLEL_PARALLEL_FND_H_
#define NUCLEUS_PARALLEL_PARALLEL_FND_H_

#include "nucleus/core/fast_nucleus.h"
#include "nucleus/core/generic_space.h"
#include "nucleus/core/spaces.h"
#include "nucleus/core/types.h"
#include "nucleus/parallel/parallel_config.h"

namespace nucleus {

/// Parallel Alg. 8 + 9: peeling, sub-nucleus detection and hierarchy
/// build, end to end. Output is identical for every config (thread count
/// and grain); lambda is bit-identical to the serial Peel/FND, and the
/// hierarchy is canonically equal to FastNucleusDecomposition's.
template <typename Space>
FndResult FastNucleusDecompositionParallel(const Space& space,
                                           const ParallelConfig& config = {});

extern template FndResult FastNucleusDecompositionParallel<VertexSpace>(
    const VertexSpace&, const ParallelConfig&);
extern template FndResult FastNucleusDecompositionParallel<EdgeSpace>(
    const EdgeSpace&, const ParallelConfig&);
extern template FndResult FastNucleusDecompositionParallel<TriangleSpace>(
    const TriangleSpace&, const ParallelConfig&);
extern template FndResult FastNucleusDecompositionParallel<GenericSpace>(
    const GenericSpace&, const ParallelConfig&);

}  // namespace nucleus

#endif  // NUCLEUS_PARALLEL_PARALLEL_FND_H_
