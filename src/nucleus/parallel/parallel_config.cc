#include "nucleus/parallel/parallel_config.h"

#include <algorithm>
#include <thread>

namespace nucleus {

int ParallelConfig::ResolvedThreads() const {
  if (num_threads >= 1) return num_threads;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

}  // namespace nucleus
