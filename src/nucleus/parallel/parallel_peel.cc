#include "nucleus/parallel/parallel_peel.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "nucleus/core/peeling.h"

namespace nucleus {
namespace {

/// Per-lane scratch for wave processing: next-wave members and future
/// bucket registrations, merged at barrier time.
struct LaneBuffers {
  std::vector<CliqueId> next_wave;
  std::vector<std::pair<std::int32_t, CliqueId>> requeue;  // (support, id)
};

}  // namespace

template <typename Space>
PeelResult PeelParallel(const Space& space, ThreadPool& pool,
                        std::int64_t grain) {
  const std::int64_t n = space.NumCliques();
  PeelResult result;
  result.lambda.assign(n, 0);
  if (n == 0) return result;
  const int num_lanes = pool.num_threads();

  // Atomic supports, seeded by the (parallel) support computation.
  const std::vector<std::int32_t> initial =
      ComputeSupportsParallel(space, pool, grain);
  std::vector<std::atomic<std::int32_t>> supports(n);
  std::int32_t max_support = 0;
  for (std::int64_t u = 0; u < n; ++u) {
    supports[u].store(initial[u], std::memory_order_relaxed);
    max_support = std::max(max_support, initial[u]);
  }

  // round[u] == 0: unprocessed; otherwise the wave round that processed u.
  std::vector<std::int32_t> round(n, 0);

  // Lazy buckets: every K_r is registered at its initial support; each
  // successful decrement re-registers at the new value. Entries are
  // validated (round == 0 and support == level) when drained.
  std::vector<std::vector<CliqueId>> buckets(
      static_cast<std::size_t>(max_support) + 1);
  for (std::int64_t u = 0; u < n; ++u) {
    buckets[initial[u]].push_back(static_cast<CliqueId>(u));
  }

  std::vector<LaneBuffers> buffers(num_lanes);
  std::vector<CliqueId> wave;
  std::int64_t processed = 0;
  std::int32_t round_counter = 0;

  for (std::int32_t level = 0; level <= max_support && processed < n;
       ++level) {
    // Seed the level's first wave from the bucket.
    wave.clear();
    for (CliqueId u : buckets[level]) {
      if (round[u] == 0 &&
          supports[u].load(std::memory_order_relaxed) == level) {
        wave.push_back(u);
      }
    }
    std::sort(wave.begin(), wave.end());
    wave.erase(std::unique(wave.begin(), wave.end()), wave.end());

    while (!wave.empty()) {
      ++round_counter;
      const std::int32_t cur = round_counter;

      // Barrier 1: mark the whole wave processed at this level.
      pool.ParallelFor(static_cast<std::int64_t>(wave.size()), grain,
                       [&](int, std::int64_t begin, std::int64_t end) {
                         for (std::int64_t i = begin; i < end; ++i) {
                           round[wave[i]] = cur;
                           result.lambda[wave[i]] = level;
                         }
                       });
      processed += static_cast<std::int64_t>(wave.size());

      // Barrier 2: charge supercliques. Exactly one wave member — the
      // minimum-id one inside each K_s — performs the decrements, and only
      // against members never processed (round 0). Supercliques containing
      // a member processed in an earlier round are dead (Alg. 1 line 8).
      pool.ParallelFor(
          static_cast<std::int64_t>(wave.size()), grain,
          [&](int lane, std::int64_t begin, std::int64_t end) {
            LaneBuffers& buf = buffers[lane];
            for (std::int64_t i = begin; i < end; ++i) {
              const CliqueId u = wave[i];
              space.ForEachSuperclique(u, [&](const CliqueId* members,
                                              int count) {
                CliqueId owner = u;
                for (int j = 0; j < count; ++j) {
                  const CliqueId m = members[j];
                  const std::int32_t r = round[m];
                  if (r != 0 && r != cur) return;  // dead superclique
                  if (r == cur && m < owner) owner = m;
                }
                if (owner != u) return;  // another wave member charges it
                for (int j = 0; j < count; ++j) {
                  const CliqueId m = members[j];
                  if (round[m] != 0) continue;
                  // CAS decrement, never below the level.
                  std::int32_t s =
                      supports[m].load(std::memory_order_relaxed);
                  while (s > level &&
                         !supports[m].compare_exchange_weak(
                             s, s - 1, std::memory_order_relaxed)) {
                  }
                  if (s > level) {  // we performed the decrement from s
                    const std::int32_t now = s - 1;
                    if (now == level) {
                      buf.next_wave.push_back(m);
                    } else {
                      buf.requeue.emplace_back(now, m);
                    }
                  }
                }
              });
            }
          });

      // Merge lane buffers (serial; sizes are small per wave). The sort +
      // unique below makes the wave independent of which lane ran which
      // chunk; bucket entries are validated on drain, so their order is
      // immaterial too.
      wave.clear();
      for (LaneBuffers& buf : buffers) {
        wave.insert(wave.end(), buf.next_wave.begin(), buf.next_wave.end());
        buf.next_wave.clear();
        for (const auto& [s, id] : buf.requeue) buckets[s].push_back(id);
        buf.requeue.clear();
      }
      std::sort(wave.begin(), wave.end());
      wave.erase(std::unique(wave.begin(), wave.end()), wave.end());
    }
  }
  NUCLEUS_CHECK(processed == n);
  for (std::int64_t u = 0; u < n; ++u) {
    result.max_lambda = std::max(result.max_lambda, result.lambda[u]);
  }
  return result;
}

template <typename Space>
PeelResult PeelParallel(const Space& space, const ParallelConfig& config) {
  ThreadPool pool(config);
  return PeelParallel(space, pool, config.ResolvedGrain());
}

#define NUCLEUS_PARALLEL_PEEL_DEFINE(Space)                          \
  template std::vector<std::int32_t> ComputeSupportsParallel<Space>( \
      const Space&, ThreadPool&, std::int64_t);                      \
  template std::vector<std::int32_t> ComputeSupportsParallel<Space>( \
      const Space&, int);                                            \
  template PeelResult PeelParallel<Space>(const Space&, ThreadPool&, \
                                          std::int64_t);             \
  template PeelResult PeelParallel<Space>(const Space&,              \
                                          const ParallelConfig&)

NUCLEUS_PARALLEL_PEEL_DEFINE(VertexSpace);
NUCLEUS_PARALLEL_PEEL_DEFINE(EdgeSpace);
NUCLEUS_PARALLEL_PEEL_DEFINE(TriangleSpace);
NUCLEUS_PARALLEL_PEEL_DEFINE(GenericSpace);

#undef NUCLEUS_PARALLEL_PEEL_DEFINE

}  // namespace nucleus
