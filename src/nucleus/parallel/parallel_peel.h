// Level-synchronous parallel peeling (ParK-style) for any (r, s) space —
// the concrete half of the paper's closing future-work sentence: "adapting
// the existing parallel peeling algorithms for the hierarchy computation
// can be helpful."
//
// Instead of popping one minimum K_r at a time (Alg. 1's bucket queue), the
// algorithm advances a support level and processes whole WAVES: all
// unprocessed K_r's whose current support equals the level. Waves are
// partitioned across threads. Two properties make the result exactly equal
// to the serial peel:
//
//  * Supports are decremented with a compare-and-swap that refuses to drop
//    a value below the current level, so every K_r is processed at exactly
//    its lambda.
//  * Alg. 1's "skip a superclique containing a processed K_r" rule has a
//    same-wave hazard (two wave members in one K_s must not both charge the
//    third member). The wave is therefore processed in two barriers: first
//    every wave member is marked with the wave's round number, then each
//    superclique is charged by exactly one deterministic owner — the
//    minimum-id wave member it contains — and only against members not yet
//    processed in any round.
//
// Combined with the serial hierarchy constructions (DFT over the parallel
// lambda, or BuildVertexHierarchy for (1,2)), this parallelizes the
// dominant phase of every decomposition while keeping output identical.
#ifndef NUCLEUS_PARALLEL_PARALLEL_PEEL_H_
#define NUCLEUS_PARALLEL_PARALLEL_PEEL_H_

#include <atomic>
#include <thread>
#include <vector>

#include "nucleus/core/generic_space.h"
#include "nucleus/core/spaces.h"
#include "nucleus/core/types.h"

namespace nucleus {

namespace internal {

/// Runs f(t, begin, end) on `num_threads` threads over [0, total) in
/// contiguous chunks; joins before returning. f must only write to
/// disjoint state per chunk or use atomics.
template <typename F>
void ParallelFor(std::int64_t total, int num_threads, F&& f) {
  if (total <= 0) return;
  const std::int64_t chunk = (total + num_threads - 1) / num_threads;
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    const std::int64_t begin = t * chunk;
    const std::int64_t end = std::min(total, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&f, t, begin, end] { f(t, begin, end); });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace internal

/// Parallel Set-lambda. Produces a PeelResult bit-identical to Peel()
/// regardless of num_threads (0 = hardware concurrency).
template <typename Space>
PeelResult PeelParallel(const Space& space, int num_threads = 0);

extern template PeelResult PeelParallel<VertexSpace>(const VertexSpace&, int);
extern template PeelResult PeelParallel<EdgeSpace>(const EdgeSpace&, int);
extern template PeelResult PeelParallel<TriangleSpace>(const TriangleSpace&,
                                                       int);
extern template PeelResult PeelParallel<GenericSpace>(const GenericSpace&,
                                                      int);

}  // namespace nucleus

#endif  // NUCLEUS_PARALLEL_PARALLEL_PEEL_H_
