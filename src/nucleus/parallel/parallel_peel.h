// Level-synchronous parallel peeling (ParK-style) for any (r, s) space —
// the concrete half of the paper's closing future-work sentence: "adapting
// the existing parallel peeling algorithms for the hierarchy computation
// can be helpful."
//
// Instead of popping one minimum K_r at a time (Alg. 1's bucket queue), the
// algorithm advances a support level and processes whole WAVES: all
// unprocessed K_r's whose current support equals the level. Waves are
// partitioned across a persistent ThreadPool (one pool per peel; the
// workers are parked between waves instead of respawned). Two properties
// make the result exactly equal to the serial peel:
//
//  * Supports are decremented with a compare-and-swap that refuses to drop
//    a value below the current level, so every K_r is processed at exactly
//    its lambda.
//  * Alg. 1's "skip a superclique containing a processed K_r" rule has a
//    same-wave hazard (two wave members in one K_s must not both charge the
//    third member). The wave is therefore processed in two barriers: first
//    every wave member is marked with the wave's round number, then each
//    superclique is charged by exactly one deterministic owner — the
//    minimum-id wave member it contains — and only against members not yet
//    processed in any round.
//
// Combined with a hierarchy construction — the serial DFT, or the parallel
// FND in parallel_fnd.h — this parallelizes the dominant phase of every
// decomposition while keeping output identical.
#ifndef NUCLEUS_PARALLEL_PARALLEL_PEEL_H_
#define NUCLEUS_PARALLEL_PARALLEL_PEEL_H_

#include <cstdint>
#include <vector>

#include "nucleus/core/generic_space.h"
#include "nucleus/core/spaces.h"
#include "nucleus/core/types.h"
#include "nucleus/parallel/parallel_config.h"
#include "nucleus/parallel/thread_pool.h"

namespace nucleus {

/// Initial K_s-degrees over a caller-provided pool: the embarrassingly
/// parallel prefix of the peeling phase. Output is bit-identical to
/// ComputeSupports for any pool size; each chunk writes only its own slice.
template <typename Space>
std::vector<std::int32_t> ComputeSupportsParallel(const Space& space,
                                                  ThreadPool& pool,
                                                  std::int64_t grain) {
  std::vector<std::int32_t> supports(space.NumCliques(), 0);
  pool.ParallelFor(space.NumCliques(), grain,
                   [&](int, std::int64_t begin, std::int64_t end) {
                     for (CliqueId u = static_cast<CliqueId>(begin); u < end;
                          ++u) {
                       std::int32_t count = 0;
                       space.ForEachSuperclique(
                           u, [&count](const CliqueId*, int) { ++count; });
                       supports[u] = count;
                     }
                   });
  return supports;
}

/// Convenience overload with a scoped pool. num_threads <= 0 = hardware
/// concurrency (resolved by ParallelConfig).
template <typename Space>
std::vector<std::int32_t> ComputeSupportsParallel(const Space& space,
                                                  int num_threads = 0) {
  const ParallelConfig config = ParallelConfig::WithThreads(num_threads);
  ThreadPool pool(config);
  return ComputeSupportsParallel(space, pool, config.ResolvedGrain());
}

/// Parallel Set-lambda over a caller-provided pool (reused across all waves
/// and the support computation). Produces a PeelResult bit-identical to
/// Peel() for any pool size and grain.
template <typename Space>
PeelResult PeelParallel(const Space& space, ThreadPool& pool,
                        std::int64_t grain);

/// Parallel Set-lambda with a pool scoped to the call.
template <typename Space>
PeelResult PeelParallel(const Space& space, const ParallelConfig& config);

/// Back-compat convenience: thread count only (0 = hardware concurrency).
template <typename Space>
PeelResult PeelParallel(const Space& space, int num_threads = 0) {
  return PeelParallel(space, ParallelConfig::WithThreads(num_threads));
}

#define NUCLEUS_PARALLEL_PEEL_DECLARE(Space)                                \
  extern template std::vector<std::int32_t> ComputeSupportsParallel<Space>( \
      const Space&, ThreadPool&, std::int64_t);                             \
  extern template std::vector<std::int32_t> ComputeSupportsParallel<Space>( \
      const Space&, int);                                                   \
  extern template PeelResult PeelParallel<Space>(const Space&, ThreadPool&, \
                                                 std::int64_t);             \
  extern template PeelResult PeelParallel<Space>(const Space&,              \
                                                 const ParallelConfig&)

NUCLEUS_PARALLEL_PEEL_DECLARE(VertexSpace);
NUCLEUS_PARALLEL_PEEL_DECLARE(EdgeSpace);
NUCLEUS_PARALLEL_PEEL_DECLARE(TriangleSpace);
NUCLEUS_PARALLEL_PEEL_DECLARE(GenericSpace);

#undef NUCLEUS_PARALLEL_PEEL_DECLARE

}  // namespace nucleus

#endif  // NUCLEUS_PARALLEL_PARALLEL_PEEL_H_
