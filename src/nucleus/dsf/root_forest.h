// The hierarchy-skeleton of the paper (Section 4.2) backed by the modified
// disjoint-set forest of Alg. 7.
//
// Each node is a sub-(r,s) nucleus (T_{r,s}) with four fields:
//   lambda  — the shared peeling number of its member K_r's;
//   rank    — union-by-rank height bound;
//   parent  — the hierarchy link (child has larger lambda, or equal lambda
//             when the link was produced by a Union-r merge);
//   root    — the union-find accelerator: Find-r follows and compresses
//             root pointers only, leaving parent (the reported hierarchy)
//             untouched.
//
// Both DF-Traversal (Alg. 5/6) and FastNucleusDecomposition (Alg. 8/9)
// build one of these; NucleusHierarchy contracts it into the final tree.
#ifndef NUCLEUS_DSF_ROOT_FOREST_H_
#define NUCLEUS_DSF_ROOT_FOREST_H_

#include <cstdint>
#include <vector>

#include "nucleus/util/common.h"

namespace nucleus {

class HierarchySkeleton {
 public:
  /// Adds a sub-nucleus node with the given lambda; returns its id.
  std::int32_t AddNode(Lambda lambda);

  std::int64_t NumNodes() const {
    return static_cast<std::int64_t>(lambda_.size());
  }

  Lambda LambdaOf(std::int32_t id) const { return lambda_[id]; }
  std::int32_t Parent(std::int32_t id) const { return parent_[id]; }
  bool HasParent(std::int32_t id) const { return parent_[id] != kInvalidId; }

  /// Find-r: the greatest ancestor reachable through root pointers, with
  /// path compression on the root pointers (parent untouched).
  std::int32_t FindRoot(std::int32_t x);

  /// Union-r: Link-r(Find-r(x), Find-r(y)). No-op if already joined.
  /// Returns the winning root.
  std::int32_t UnionR(std::int32_t x, std::int32_t y);

  /// hrc(s).parent <- hrc(s).root <- p (Alg. 6 line 21 / Alg. 9 line 10).
  /// `child` must be a root (its own FindRoot); p becomes both its hierarchy
  /// parent and union-find root.
  void AttachChild(std::int32_t child, std::int32_t p);

  /// Sets parent only (used to tie parentless nodes to the artificial
  /// all-graph root at the end of a decomposition).
  void SetParent(std::int32_t child, std::int32_t p) {
    NUCLEUS_CHECK(parent_[child] == kInvalidId);
    parent_[child] = p;
  }

  /// Disables/enables path compression in FindRoot. Compression is on by
  /// default; the off switch exists for the ablation benchmark measuring
  /// the paper's Alg. 7 against naive root-chain climbing.
  void set_path_compression(bool enabled) { path_compression_ = enabled; }

 private:
  void LinkR(std::int32_t x, std::int32_t y);

  std::vector<Lambda> lambda_;
  std::vector<std::int32_t> rank_;
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> root_;
  std::vector<std::int32_t> scratch_;  // Find-r compression buffer
  bool path_compression_ = true;
};

}  // namespace nucleus

#endif  // NUCLEUS_DSF_ROOT_FOREST_H_
