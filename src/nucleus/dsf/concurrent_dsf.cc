#include "nucleus/dsf/concurrent_dsf.h"

#include <utility>

#include "nucleus/util/common.h"

namespace nucleus {

ConcurrentDisjointSet::ConcurrentDisjointSet(std::int64_t n) : parent_(n) {
  for (std::int64_t i = 0; i < n; ++i) {
    parent_[i].store(static_cast<std::int32_t>(i), std::memory_order_relaxed);
  }
}

std::int32_t ConcurrentDisjointSet::Find(std::int32_t x) {
  for (;;) {
    std::int32_t p = parent_[x].load(std::memory_order_acquire);
    if (p == x) return x;
    const std::int32_t gp = parent_[p].load(std::memory_order_acquire);
    if (gp == p) return p;
    // Path halving: point x at its grandparent. Losing the CAS only means
    // another thread already shortened this link.
    parent_[x].compare_exchange_weak(p, gp, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
    x = gp;
  }
}

bool ConcurrentDisjointSet::Union(std::int32_t x, std::int32_t y) {
  for (;;) {
    std::int32_t rx = Find(x);
    std::int32_t ry = Find(y);
    if (rx == ry) return false;
    if (rx > ry) std::swap(rx, ry);
    // Hang the larger root under the smaller. The CAS only succeeds while
    // ry is still a root; a lost race means some thread changed ry's set,
    // so re-resolve both roots and retry.
    std::int32_t expected = ry;
    if (parent_[ry].compare_exchange_strong(expected, rx,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      return true;
    }
    x = rx;
    y = ry;
  }
}

}  // namespace nucleus
