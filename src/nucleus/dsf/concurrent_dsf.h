// Lock-free concurrent disjoint-set forest for the parallel sub-nucleus
// detection (the concurrent counterpart of Alg. 4's DisjointSet).
//
// Parents are atomics; Union links by MINIMUM id — the CAS hangs the
// larger root under the smaller — and Find applies path halving with CAS.
// Min-id linking trades the union-by-rank height bound for a property the
// deterministic parallel pipeline needs: once all Unions have completed,
// the representative of every set is its minimum element, regardless of
// how the unions interleaved across threads. The resulting partition AND
// its representatives are therefore schedule-independent, which is what
// lets FastNucleusDecompositionParallel number skeleton nodes identically
// for every thread count.
//
// Trees stay shallow in practice because Find halves paths and the
// workload unions each element O(superclique degree) times.
#ifndef NUCLEUS_DSF_CONCURRENT_DSF_H_
#define NUCLEUS_DSF_CONCURRENT_DSF_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace nucleus {

class ConcurrentDisjointSet {
 public:
  /// n singleton sets, ids 0..n-1.
  explicit ConcurrentDisjointSet(std::int64_t n);

  std::int64_t NumElements() const {
    return static_cast<std::int64_t>(parent_.size());
  }

  /// Representative of x's set. Safe to call concurrently with Union/Find.
  /// After all concurrent Unions have been joined (e.g. past a ThreadPool
  /// barrier), returns the minimum element of x's set.
  std::int32_t Find(std::int32_t x);

  /// Merges the sets of x and y; the smaller root wins. Returns true iff
  /// this call performed the link (the sets were distinct and this thread
  /// won the race to join them).
  bool Union(std::int32_t x, std::int32_t y);

  /// Quiescent-state only (no concurrent Union).
  bool SameSet(std::int32_t x, std::int32_t y) { return Find(x) == Find(y); }

 private:
  std::vector<std::atomic<std::int32_t>> parent_;
};

}  // namespace nucleus

#endif  // NUCLEUS_DSF_CONCURRENT_DSF_H_
