#include "nucleus/dsf/root_forest.h"

namespace nucleus {

std::int32_t HierarchySkeleton::AddNode(Lambda lambda) {
  const std::int64_t id = NumNodes();
  NUCLEUS_CHECK_MSG(id <= 2147483647, "more than 2^31-1 sub-nuclei");
  lambda_.push_back(lambda);
  rank_.push_back(0);
  parent_.push_back(kInvalidId);
  root_.push_back(kInvalidId);
  return static_cast<std::int32_t>(id);
}

std::int32_t HierarchySkeleton::FindRoot(std::int32_t x) {
  NUCLEUS_CHECK(x >= 0 && x < NumNodes());
  if (!path_compression_) {
    while (root_[x] != kInvalidId) x = root_[x];
    return x;
  }
  scratch_.clear();
  while (root_[x] != kInvalidId) {
    scratch_.push_back(x);
    x = root_[x];
  }
  for (std::int32_t v : scratch_) root_[v] = x;
  return x;
}

void HierarchySkeleton::LinkR(std::int32_t x, std::int32_t y) {
  if (x == y) return;
  if (rank_[x] > rank_[y]) {
    parent_[y] = x;
    root_[y] = x;
  } else {
    parent_[x] = y;
    root_[x] = y;
    if (rank_[x] == rank_[y]) ++rank_[y];
  }
}

std::int32_t HierarchySkeleton::UnionR(std::int32_t x, std::int32_t y) {
  const std::int32_t rx = FindRoot(x);
  const std::int32_t ry = FindRoot(y);
  LinkR(rx, ry);
  return FindRoot(rx);
}

void HierarchySkeleton::AttachChild(std::int32_t child, std::int32_t p) {
  NUCLEUS_CHECK(child != p);
  NUCLEUS_CHECK_MSG(root_[child] == kInvalidId, "child is not a root");
  parent_[child] = p;
  root_[child] = p;
}

}  // namespace nucleus
