// Standard disjoint-set forest with union-by-rank and two-pass path
// compression — the paper's Alg. 4. Used by the TCP index's Kruskal runs,
// the test-suite reference implementations, and generators.
#ifndef NUCLEUS_DSF_DISJOINT_SET_H_
#define NUCLEUS_DSF_DISJOINT_SET_H_

#include <cstdint>
#include <vector>

#include "nucleus/util/common.h"

namespace nucleus {

class DisjointSet {
 public:
  /// n singleton sets, ids 0..n-1.
  explicit DisjointSet(std::int64_t n);

  /// Representative of x's set (with path compression).
  std::int32_t Find(std::int32_t x);

  /// Merges the sets of x and y. Returns true iff they were distinct.
  bool Union(std::int32_t x, std::int32_t y);

  bool SameSet(std::int32_t x, std::int32_t y) { return Find(x) == Find(y); }

  std::int64_t NumSets() const { return num_sets_; }

  /// Size of x's set.
  std::int64_t SizeOf(std::int32_t x) { return size_[Find(x)]; }

  std::int64_t NumElements() const {
    return static_cast<std::int64_t>(parent_.size());
  }

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> rank_;
  std::vector<std::int64_t> size_;
  std::int64_t num_sets_;
  std::vector<std::int32_t> scratch_;  // reused by Find's compression pass
};

}  // namespace nucleus

#endif  // NUCLEUS_DSF_DISJOINT_SET_H_
