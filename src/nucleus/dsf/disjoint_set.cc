#include "nucleus/dsf/disjoint_set.h"

namespace nucleus {

DisjointSet::DisjointSet(std::int64_t n) : num_sets_(n) {
  NUCLEUS_CHECK(n >= 0 && n <= 2147483647);
  parent_.resize(n);
  rank_.assign(n, 0);
  size_.assign(n, 1);
  for (std::int64_t i = 0; i < n; ++i)
    parent_[i] = static_cast<std::int32_t>(i);
}

std::int32_t DisjointSet::Find(std::int32_t x) {
  NUCLEUS_CHECK(x >= 0 && x < static_cast<std::int32_t>(parent_.size()));
  scratch_.clear();
  while (parent_[x] != x) {
    scratch_.push_back(x);
    x = parent_[x];
  }
  for (std::int32_t v : scratch_) parent_[v] = x;
  return x;
}

bool DisjointSet::Union(std::int32_t x, std::int32_t y) {
  std::int32_t rx = Find(x);
  std::int32_t ry = Find(y);
  if (rx == ry) return false;
  if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  size_[rx] += size_[ry];
  if (rank_[rx] == rank_[ry]) ++rank_[rx];
  --num_sets_;
  return true;
}

}  // namespace nucleus
