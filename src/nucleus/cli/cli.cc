#include "nucleus/cli/cli.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "nucleus/core/decomposition.h"
#include "nucleus/core/hierarchy_index.h"
#include "nucleus/core/views.h"
#include "nucleus/em/adjacency_file.h"
#include "nucleus/em/semi_external_core.h"
#include "nucleus/em/semi_external_truss.h"
#include "nucleus/graph/binary_io.h"
#include "nucleus/graph/edge_list_io.h"
#include "nucleus/graph/generators.h"
#include "nucleus/graph/graph_stats.h"
#include "nucleus/io/hierarchy_export.h"
#include "nucleus/obs/exposition.h"
#include "nucleus/obs/metrics.h"
#include "nucleus/obs/trace.h"
#include "nucleus/serve/live_update.h"
#include "nucleus/serve/net/tcp_server.h"
#include "nucleus/serve/query_engine.h"
#include "nucleus/serve/request_loop.h"
#include "nucleus/serve/router/router.h"
#include "nucleus/serve/snapshot_registry.h"
#include "nucleus/store/delta.h"
#include "nucleus/store/manifest.h"
#include "nucleus/store/snapshot.h"
#include "nucleus/store/snapshot_source.h"
#include "nucleus/store/snapshot_v2.h"
#include "nucleus/util/mutex.h"
#include "nucleus/util/parse_util.h"

namespace nucleus {
namespace {

struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> flags;
};

bool ParseArgs(const std::vector<std::string>& args, ParsedArgs* parsed,
               std::ostream& err) {
  if (args.empty()) {
    err << "error: missing command (decompose | stats | generate)\n";
    return false;
  }
  parsed->command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag.rfind("--", 0) != 0) {
      err << "error: expected --flag, got '" << flag << "'\n";
      return false;
    }
    if (i + 1 >= args.size()) {
      err << "error: flag '" << flag << "' requires a value\n";
      return false;
    }
    parsed->flags[flag.substr(2)] = args[++i];
  }
  return true;
}

/// Every command declares its flag vocabulary; anything else is an error,
/// so a typo ('--outjson') fails loudly instead of being ignored.
bool CheckFlags(const ParsedArgs& parsed,
                std::initializer_list<const char*> allowed,
                std::ostream& err) {
  for (const auto& [name, value] : parsed.flags) {
    bool known = false;
    for (const char* candidate : allowed) {
      if (name == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      err << "error: unknown flag '--" << name << "' for command '"
          << parsed.command << "'\n";
      return false;
    }
  }
  return true;
}

std::string FlagOr(const ParsedArgs& parsed, const std::string& name,
                   const std::string& fallback) {
  const auto it = parsed.flags.find(name);
  return it == parsed.flags.end() ? fallback : it->second;
}

bool HasFlag(const ParsedArgs& parsed, const std::string& name) {
  return parsed.flags.find(name) != parsed.flags.end();
}

/// Strict integer flag: the whole value must be one number in [min, max];
/// trailing garbage ('--u 3x') is rejected, matching --threads handling.
bool ParseIntFlag(const ParsedArgs& parsed, const std::string& name,
                  std::int64_t fallback, std::int64_t min, std::int64_t max,
                  std::int64_t* out, std::ostream& err) {
  const auto it = parsed.flags.find(name);
  if (it == parsed.flags.end()) {
    *out = fallback;
    return true;
  }
  std::int64_t parsed_value = 0;
  if (!StrictParseInt64(it->second, &parsed_value) || parsed_value < min ||
      parsed_value > max) {
    err << "error: --" << name << " expects an integer in [" << min << ", "
        << max << "], got '" << it->second << "'\n";
    return false;
  }
  *out = parsed_value;
  return true;
}

/// Strict double flag, same trailing-garbage policy.
bool ParseDoubleFlag(const ParsedArgs& parsed, const std::string& name,
                     double fallback, double* out, std::ostream& err) {
  const auto it = parsed.flags.find(name);
  if (it == parsed.flags.end()) {
    *out = fallback;
    return true;
  }
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed_value = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    err << "error: --" << name << " expects a number, got '" << value
        << "'\n";
    return false;
  }
  *out = parsed_value;
  return true;
}

/// --threads N: 1 = serial (default), 0 = all hardware threads.
bool ParseThreads(const ParsedArgs& parsed, ParallelConfig* parallel,
                  std::ostream& err) {
  std::int64_t threads = 1;
  if (!ParseIntFlag(parsed, "threads", 1, -4096, 4096, &threads, err)) {
    return false;
  }
  parallel->num_threads = static_cast<int>(threads);
  return true;
}

/// Splits a comma-separated flag value ("d1.nucdelta,d2.nucdelta") into
/// its non-empty components.
std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > start) parts.push_back(value.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

/// The shared snapshot/deltas/graph trio rules (store/manifest.h), spelled
/// in CLI flag vocabulary: manifests and the attach verb say
/// `snapshot=`/`deltas=`/`graph=`; here the same rules report as
/// `--snapshot`/`--deltas`/`--input`.
constexpr TenantTrioVocabulary kCliTrioVocabulary{
    "--snapshot (the chain base)", "--deltas", "--input"};

/// --memory-mode heap|mmap: how a plain snapshot is brought to the query
/// surface (heap materialization vs. zero-copy mapping of a v2 file).
bool ParseMemoryMode(const ParsedArgs& parsed, SnapshotMemoryMode* mode,
                     std::ostream& err) {
  const std::string value = FlagOr(parsed, "memory-mode", "heap");
  if (value == "heap") {
    *mode = SnapshotMemoryMode::kHeap;
  } else if (value == "mmap") {
    *mode = SnapshotMemoryMode::kMmap;
  } else {
    err << "error: --memory-mode expects heap or mmap, got '" << value
        << "'\n";
    return false;
  }
  return true;
}

/// Loads --snapshot, resolving --deltas (a comma-separated chain of
/// .nucdelta records) against `graph` when present. Shared by query,
/// serve and update. `link` (optional) receives the chain endpoint for a
/// continuing LiveUpdater; it is set only when deltas were resolved.
StatusOr<SnapshotData> LoadSnapshotOrChain(const std::string& snapshot_path,
                                           const std::string& deltas,
                                           const Graph* graph,
                                           std::optional<ChainLink>* link) {
  if (deltas.empty()) return LoadSnapshot(snapshot_path);
  NUCLEUS_CHECK(graph != nullptr);  // callers enforce --deltas => --input
  std::vector<std::string> paths{snapshot_path};
  for (std::string& path : SplitCommaList(deltas)) {
    paths.push_back(std::move(path));
  }
  ChainLink resolved;
  StatusOr<SnapshotData> snapshot = ResolveChain(paths, *graph, &resolved);
  if (snapshot.ok() && link != nullptr) *link = resolved;
  return snapshot;
}

bool ParseFamily(const std::string& name, Family* family, std::ostream& err) {
  if (name == "core") {
    *family = Family::kCore12;
  } else if (name == "truss") {
    *family = Family::kTruss23;
  } else if (name == "34") {
    *family = Family::kNucleus34;
  } else {
    err << "error: unknown family '" << name << "' (core | truss | 34)\n";
    return false;
  }
  return true;
}

bool ParseAlgorithm(const std::string& name, Algorithm* algorithm,
                    std::ostream& err) {
  if (name == "fnd") {
    *algorithm = Algorithm::kFnd;
  } else if (name == "dft") {
    *algorithm = Algorithm::kDft;
  } else if (name == "lcps") {
    *algorithm = Algorithm::kLcps;
  } else if (name == "naive") {
    *algorithm = Algorithm::kNaive;
  } else {
    err << "error: unknown algorithm '" << name
        << "' (fnd | dft | lcps | naive)\n";
    return false;
  }
  return true;
}

int CmdDecompose(const ParsedArgs& parsed, std::ostream& out,
                 std::ostream& err) {
  if (!CheckFlags(parsed,
                  {"input", "family", "algorithm", "threads", "out-json",
                   "out-dot", "lambda", "out-snapshot", "snapshot-index",
                   "snapshot-format"},
                  err)) {
    return 2;
  }
  const std::string input = FlagOr(parsed, "input", "");
  if (input.empty()) {
    err << "error: decompose requires --input\n";
    return 2;
  }
  const std::string snapshot_format = FlagOr(parsed, "snapshot-format", "v1");
  if (snapshot_format != "v1" && snapshot_format != "v2") {
    err << "error: --snapshot-format expects v1 or v2, got '"
        << snapshot_format << "'\n";
    return 2;
  }
  const StatusOr<Graph> graph = ReadEdgeList(input);
  if (!graph.ok()) {
    err << "error: " << graph.status().ToString() << "\n";
    return 1;
  }
  DecomposeOptions options;
  std::int64_t snapshot_index = 1;
  if (!ParseFamily(FlagOr(parsed, "family", "core"), &options.family, err) ||
      !ParseAlgorithm(FlagOr(parsed, "algorithm", "fnd"), &options.algorithm,
                      err) ||
      !ParseThreads(parsed, &options.parallel, err) ||
      !ParseIntFlag(parsed, "snapshot-index", 1, 0, 1, &snapshot_index,
                    err)) {
    return 2;
  }
  if (options.algorithm == Algorithm::kLcps &&
      options.family != Family::kCore12) {
    err << "error: lcps supports --family core only\n";
    return 2;
  }
  if (options.algorithm == Algorithm::kNaive) {
    err << "error: naive computes nuclei but no hierarchy; use fnd, dft or "
           "lcps\n";
    return 2;
  }
  // Non-const: the snapshot block at the end moves the hierarchy out.
  DecompositionResult result = Decompose(*graph, options);

  out << "graph: " << graph->NumVertices() << " vertices, "
      << graph->NumEdges() << " edges\n";
  out << "family: " << FamilyName(options.family)
      << ", algorithm: " << AlgorithmName(options.algorithm)
      << ", threads: " << options.parallel.ResolvedThreads() << "\n";
  out << "K_r count: " << result.num_cliques
      << ", max lambda: " << result.peel.max_lambda
      << ", nuclei: " << result.hierarchy.NumNuclei()
      << ", sub-nuclei: " << result.num_subnuclei << "\n";
  out << "time: " << result.timings.total_seconds << "s (index "
      << result.timings.index_seconds << ", peel "
      << result.timings.peel_seconds << ", post "
      << result.timings.traverse_seconds << ")\n";

  const HierarchyProfile profile = ProfileHierarchy(result.hierarchy);
  out << "hierarchy: depth " << profile.max_depth << ", leaves "
      << profile.num_leaves << ", avg branching " << profile.avg_branching
      << "\n";
  for (std::int32_t id : TopNucleusNodes(result.hierarchy, 5)) {
    const NucleusReport report =
        ReportNucleus(*graph, options.family, result.hierarchy, id);
    out << "  top nucleus k=" << report.k << ": " << report.num_members
        << " K_r's over " << report.num_vertices
        << " vertices, density " << report.density << "\n";
  }

  const std::string json_path = FlagOr(parsed, "out-json", "");
  if (!json_path.empty()) {
    const Status status =
        WriteStringToFile(HierarchyToJson(result.hierarchy), json_path);
    if (!status.ok()) {
      err << "error: " << status.ToString() << "\n";
      return 1;
    }
    out << "wrote " << json_path << "\n";
  }
  const std::string dot_path = FlagOr(parsed, "out-dot", "");
  if (!dot_path.empty()) {
    const Status status =
        WriteStringToFile(HierarchyToDot(result.hierarchy), dot_path);
    if (!status.ok()) {
      err << "error: " << status.ToString() << "\n";
      return 1;
    }
    out << "wrote " << dot_path << "\n";
  }
  const std::string lambda_path = FlagOr(parsed, "lambda", "");
  if (!lambda_path.empty()) {
    std::ostringstream buffer;
    for (std::size_t i = 0; i < result.peel.lambda.size(); ++i) {
      buffer << i << ' ' << result.peel.lambda[i] << '\n';
    }
    const Status status = WriteStringToFile(buffer.str(), lambda_path);
    if (!status.ok()) {
      err << "error: " << status.ToString() << "\n";
      return 1;
    }
    out << "wrote " << lambda_path << "\n";
  }
  const std::string snapshot_path = FlagOr(parsed, "out-snapshot", "");
  if (!snapshot_path.empty()) {
    // Last use of `result`: move the lambdas and hierarchy into the
    // snapshot instead of deep-copying a potentially huge tree.
    const SnapshotData snapshot =
        MakeSnapshot(*graph, options, std::move(result), snapshot_index != 0);
    // v2 always embeds the index tables (the lazy mmap reader depends on
    // them), so --snapshot-index only shapes v1 output.
    const Status status = snapshot_format == "v2"
                              ? SaveSnapshotV2(snapshot, snapshot_path)
                              : SaveSnapshot(snapshot, snapshot_path);
    if (!status.ok()) {
      err << "error: " << status.ToString() << "\n";
      return 1;
    }
    out << "wrote " << snapshot_path << " ("
        << snapshot.hierarchy.NumNodes() << " nodes, "
        << snapshot.meta.num_cliques << " cliques"
        << (snapshot_format == "v2"
                ? ", v2 layout with index tables"
                : (snapshot_index != 0 ? ", with index tables" : ""))
        << ")\n";
  }
  return 0;
}

int CmdStats(const ParsedArgs& parsed, std::ostream& out, std::ostream& err) {
  if (!CheckFlags(parsed, {"input"}, err)) return 2;
  const std::string input = FlagOr(parsed, "input", "");
  if (input.empty()) {
    err << "error: stats requires --input\n";
    return 2;
  }
  const StatusOr<Graph> graph = ReadEdgeList(input);
  if (!graph.ok()) {
    err << "error: " << graph.status().ToString() << "\n";
    return 1;
  }
  const Graph& g = *graph;
  const DegreeStats degrees = ComputeDegreeStats(g);
  std::int32_t components = 0;
  ConnectedComponents(g, &components);
  out << "vertices: " << g.NumVertices() << "\n"
      << "edges: " << g.NumEdges() << "\n"
      << "components: " << components << "\n"
      << "degree min/mean/max: " << degrees.min << " / " << degrees.mean
      << " / " << degrees.max << "\n"
      << "triangles: " << CountTriangles(g) << "\n"
      << "global clustering: " << GlobalClusteringCoefficient(g) << "\n"
      << "degeneracy: " << Degeneracy(g) << "\n";
  return 0;
}

int CmdGenerate(const ParsedArgs& parsed, std::ostream& out,
                std::ostream& err) {
  if (!CheckFlags(parsed, {"type", "out", "n", "param", "seed"}, err)) {
    return 2;
  }
  const std::string type = FlagOr(parsed, "type", "");
  const std::string out_path = FlagOr(parsed, "out", "");
  if (type.empty() || out_path.empty()) {
    err << "error: generate requires --type and --out\n";
    return 2;
  }
  std::int64_t n = 1000;
  std::int64_t seed = 42;
  double param = 0.0;
  if (!ParseIntFlag(parsed, "n", 1000, 1, 2147483647, &n, err) ||
      !ParseIntFlag(parsed, "seed", 42, 0, 9223372036854775807LL, &seed,
                    err) ||
      !ParseDoubleFlag(parsed, "param", 0.0, &param, err)) {
    return 2;
  }

  Graph g;
  if (type == "er") {
    g = ErdosRenyiGnp(static_cast<VertexId>(n), param > 0 ? param : 0.01,
                      static_cast<std::uint64_t>(seed));
  } else if (type == "ba") {
    g = BarabasiAlbert(static_cast<VertexId>(n),
                       param > 0 ? static_cast<VertexId>(param) : 3,
                       static_cast<std::uint64_t>(seed));
  } else if (type == "rmat") {
    int scale = 1;
    while ((std::int64_t{1} << scale) < n) ++scale;
    g = RMat(scale, param > 0 ? static_cast<std::int64_t>(param) : 8 * n,
             0.57, 0.19, 0.19, static_cast<std::uint64_t>(seed));
  } else if (type == "ws") {
    g = WattsStrogatz(static_cast<VertexId>(n), 4, param > 0 ? param : 0.1,
                      static_cast<std::uint64_t>(seed));
  } else if (type == "planted") {
    const VertexId communities = param > 0 ? static_cast<VertexId>(param) : 8;
    g = PlantedPartition(
        communities,
        std::max<VertexId>(static_cast<VertexId>(n) / communities, 2), 0.4,
        0.01, static_cast<std::uint64_t>(seed));
  } else if (type == "caveman") {
    const VertexId caves = param > 0 ? static_cast<VertexId>(param) : 10;
    g = Caveman(caves,
                std::max<VertexId>(static_cast<VertexId>(n) / caves, 3),
                2 * caves, static_cast<std::uint64_t>(seed));
  } else {
    err << "error: unknown type '" << type
        << "' (er | ba | rmat | ws | planted | caveman)\n";
    return 2;
  }
  const Status status = WriteEdgeList(g, out_path);
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    return 1;
  }
  out << "wrote " << out_path << ": " << g.NumVertices() << " vertices, "
      << g.NumEdges() << " edges\n";
  return 0;
}

int CmdConvert(const ParsedArgs& parsed, std::ostream& out,
               std::ostream& err) {
  if (!CheckFlags(parsed, {"input", "out"}, err)) return 2;
  const std::string input = FlagOr(parsed, "input", "");
  const std::string out_path = FlagOr(parsed, "out", "");
  if (input.empty() || out_path.empty()) {
    err << "error: convert requires --input and --out\n";
    return 2;
  }
  // Direction from the output extension: .nucgraph = binary CSR,
  // anything else = text edge list.
  const bool to_binary = out_path.size() >= 9 &&
                         out_path.compare(out_path.size() - 9, 9,
                                          ".nucgraph") == 0;
  StatusOr<Graph> graph = Status::Internal("unset");
  if (input.size() >= 9 &&
      input.compare(input.size() - 9, 9, ".nucgraph") == 0) {
    graph = ReadBinaryGraph(input);
  } else {
    graph = ReadEdgeList(input);
  }
  if (!graph.ok()) {
    err << "error: " << graph.status().ToString() << "\n";
    return 1;
  }
  const Status status = to_binary ? WriteBinaryGraph(*graph, out_path)
                                  : WriteEdgeList(*graph, out_path);
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    return 1;
  }
  out << "wrote " << out_path << ": " << graph->NumVertices()
      << " vertices, " << graph->NumEdges() << " edges\n";
  return 0;
}

int CmdSemiExternal(const ParsedArgs& parsed, std::ostream& out,
                    std::ostream& err) {
  if (!CheckFlags(parsed, {"input", "family", "temp"}, err)) return 2;
  const std::string input = FlagOr(parsed, "input", "");
  if (input.empty()) {
    err << "error: semi-external requires --input (a .nucgraph file; "
           "see convert)\n";
    return 2;
  }
  const std::string family = FlagOr(parsed, "family", "core");
  if (family != "core" && family != "truss") {
    err << "error: semi-external supports --family core or truss\n";
    return 2;
  }
  auto file = AdjacencyFile::Open(input);
  if (!file.ok()) {
    err << "error: " << file.status().ToString() << "\n";
    return 1;
  }
  const std::string temp_dir = FlagOr(parsed, "temp", "/tmp");
  out << "graph: " << file->NumVertices() << " vertices, "
      << file->NumEdges() << " edges (on disk)\n";
  if (family == "core") {
    auto result = SemiExternalCoreDecomposition(*file, temp_dir);
    if (!result.ok()) {
      err << "error: " << result.status().ToString() << "\n";
      return 1;
    }
    out << "lambda passes: " << result->lambda_passes
        << ", max lambda: " << result->peel.max_lambda
        << ", sub-cores: " << result->build.num_subnuclei
        << ", adj pairs: " << result->num_adj << "\n";
    out << "io: " << result->io.scans << " scans, "
        << result->io.bytes_read / (1 << 20) << " MB read\n";
  } else {
    auto result = SemiExternalTrussDecomposition(*file, temp_dir);
    if (!result.ok()) {
      err << "error: " << result.status().ToString() << "\n";
      return 1;
    }
    out << "waves: " << result->waves
        << ", max lambda: " << result->peel.max_lambda
        << ", sub-nuclei: " << result->build.num_subnuclei
        << ", adj pairs: " << result->num_adj << "\n";
    out << "io: " << result->io.scans << " scans, "
        << result->io.bytes_read / (1 << 20) << " MB read\n";
  }
  return 0;
}

/// Acquires a query-ready engine from a .nucsnap file (--snapshot, the
/// fast path; --memory-mode picks heap materialization or a zero-copy
/// mapping), from a snapshot chain (--snapshot + --deltas + --input,
/// resolved through store/delta.h), or by decomposing --input from
/// scratch. Returns nullptr after reporting to `err`.
std::unique_ptr<QueryEngine> AcquireEngine(const ParsedArgs& parsed,
                                           std::ostream& err,
                                           int* exit_code) {
  const std::string snapshot_path = FlagOr(parsed, "snapshot", "");
  const std::string input = FlagOr(parsed, "input", "");
  const std::string deltas = FlagOr(parsed, "deltas", "");
  SnapshotMemoryMode memory_mode = SnapshotMemoryMode::kHeap;
  if (!ParseMemoryMode(parsed, &memory_mode, err)) {
    *exit_code = 2;
    return nullptr;
  }
  if (memory_mode == SnapshotMemoryMode::kMmap &&
      (!deltas.empty() || !input.empty())) {
    err << "error: --memory-mode mmap applies to a plain --snapshot only "
           "(chain resolution and decomposition materialize heap state)\n";
    *exit_code = 2;
    return nullptr;
  }
  if (!deltas.empty()) {
    // Chain resolution patches the base lambdas and rebuilds the (1,2)
    // hierarchy of the final state, which needs the current graph — the
    // same trio rules every serving surface enforces, in CLI spelling.
    if (Status s = CheckTenantTrio(parsed.command, snapshot_path,
                                   SplitCommaList(deltas), input,
                                   kCliTrioVocabulary);
        !s.ok()) {
      err << "error: " << s.message() << "\n";
      *exit_code = 2;
      return nullptr;
    }
    if (HasFlag(parsed, "family") || HasFlag(parsed, "threads") ||
        HasFlag(parsed, "algorithm")) {
      err << "error: --family / --algorithm / --threads do not apply to a "
             "chain (the base snapshot fixes them)\n";
      *exit_code = 2;
      return nullptr;
    }
    const StatusOr<Graph> graph = ReadEdgeList(input);
    if (!graph.ok()) {
      err << "error: " << graph.status().ToString() << "\n";
      *exit_code = 1;
      return nullptr;
    }
    StatusOr<SnapshotData> snapshot =
        LoadSnapshotOrChain(snapshot_path, deltas, &*graph, nullptr);
    if (!snapshot.ok()) {
      err << "error: " << snapshot.status().ToString() << "\n";
      *exit_code = 1;
      return nullptr;
    }
    return QueryEngine::FromSnapshotData(std::move(*snapshot));
  }
  if (snapshot_path.empty() == input.empty()) {
    err << "error: provide exactly one of --snapshot or --input (or "
           "--snapshot with --deltas and --input for a chain)\n";
    *exit_code = 2;
    return nullptr;
  }
  if (!snapshot_path.empty()) {
    // The snapshot already fixes the family and needs no decomposition, so
    // decompose-only flags are errors here, not silently ignored ones.
    if (HasFlag(parsed, "family") || HasFlag(parsed, "threads") ||
        HasFlag(parsed, "algorithm")) {
      err << "error: --family / --algorithm / --threads only apply with "
             "--input (the snapshot already fixes them)\n";
      *exit_code = 2;
      return nullptr;
    }
    StatusOr<std::shared_ptr<const SnapshotSource>> source =
        OpenSnapshotSource(snapshot_path, memory_mode);
    if (!source.ok()) {
      err << "error: " << source.status().ToString() << "\n";
      *exit_code = 1;
      return nullptr;
    }
    return QueryEngine::FromSource(std::move(*source));
  }
  const StatusOr<Graph> graph = ReadEdgeList(input);
  if (!graph.ok()) {
    err << "error: " << graph.status().ToString() << "\n";
    *exit_code = 1;
    return nullptr;
  }
  DecomposeOptions options;
  options.algorithm = Algorithm::kFnd;
  if (!ParseFamily(FlagOr(parsed, "family", "core"), &options.family, err) ||
      !ParseAlgorithm(FlagOr(parsed, "algorithm", "fnd"), &options.algorithm,
                      err) ||
      !ParseThreads(parsed, &options.parallel, err)) {
    *exit_code = 2;
    return nullptr;
  }
  if (options.algorithm == Algorithm::kNaive) {
    err << "error: naive computes no hierarchy; use fnd, dft or lcps\n";
    *exit_code = 2;
    return nullptr;
  }
  if (options.algorithm == Algorithm::kLcps &&
      options.family != Family::kCore12) {
    err << "error: lcps supports --family core only\n";
    *exit_code = 2;
    return nullptr;
  }
  DecompositionResult result = Decompose(*graph, options);
  return QueryEngine::FromSnapshotData(
      MakeSnapshot(*graph, options, std::move(result), /*with_index=*/false));
}

int CmdQuery(const ParsedArgs& parsed, std::ostream& out, std::ostream& err) {
  if (!CheckFlags(parsed,
                  {"input", "snapshot", "deltas", "family", "algorithm",
                   "threads", "u", "v", "k", "top", "out-json",
                   "memory-mode"},
                  err)) {
    return 2;
  }
  std::int64_t u = -1;
  std::int64_t v = -1;
  std::int64_t k = 0;
  std::int64_t top = 0;
  if (!ParseIntFlag(parsed, "u", -1, 0, 2147483647, &u, err) ||
      !ParseIntFlag(parsed, "v", -1, 0, 2147483647, &v, err) ||
      !ParseIntFlag(parsed, "k", 0, 1, 2147483647, &k, err) ||
      !ParseIntFlag(parsed, "top", 0, 1, 2147483647, &top, err)) {
    return 2;
  }
  if (!HasFlag(parsed, "u") && !HasFlag(parsed, "top")) {
    err << "error: query requires --u (with optional --v / --k) and/or "
           "--top\n";
    return 2;
  }
  if ((HasFlag(parsed, "v") || HasFlag(parsed, "k")) &&
      !HasFlag(parsed, "u")) {
    err << "error: --v / --k require --u\n";
    return 2;
  }
  if (HasFlag(parsed, "v") && HasFlag(parsed, "k")) {
    err << "error: --v and --k are mutually exclusive (common nucleus vs "
           "k-nucleus lookup)\n";
    return 2;
  }

  int exit_code = 0;
  const std::unique_ptr<QueryEngine> engine =
      AcquireEngine(parsed, err, &exit_code);
  if (engine == nullptr) return exit_code;
  const bool core_family = engine->meta().family == Family::kCore12;
  const char* member_word = core_family ? "vertices" : "K_r's";

  std::vector<QueryEngine::Query> queries;
  if (HasFlag(parsed, "u")) {
    queries.push_back({QueryEngine::QueryKind::kLambda, u, 0});
    if (HasFlag(parsed, "v")) {
      queries.push_back({QueryEngine::QueryKind::kLambda, v, 0});
      queries.push_back({QueryEngine::QueryKind::kCommon, u, v});
    } else if (HasFlag(parsed, "k")) {
      queries.push_back({QueryEngine::QueryKind::kNucleus, u, k});
    }
  }
  if (HasFlag(parsed, "top")) {
    queries.push_back({QueryEngine::QueryKind::kTop, top, 0});
  }

  std::vector<QueryEngine::Response> responses;
  responses.reserve(queries.size());
  for (const auto& query : queries) responses.push_back(engine->Run(query));

  // Validate everything before printing anything: a failing later query
  // must not leave a half-emitted report on stdout.
  for (const auto& response : responses) {
    if (!response.status.ok()) {
      err << "error: " << response.status.ToString() << "\n";
      return 2;
    }
  }

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& query = queries[i];
    const auto& response = responses[i];
    switch (query.kind) {
      case QueryEngine::QueryKind::kLambda:
        out << "lambda(" << query.a << ") = " << response.lambda;
        // The historical two-lambda prefix of the common-nucleus report.
        out << (i + 1 < queries.size() &&
                        queries[i + 1].kind == QueryEngine::QueryKind::kLambda
                    ? ", "
                    : "\n");
        break;
      case QueryEngine::QueryKind::kCommon:
        if (!response.found) {
          out << "no common nucleus (different components or lambda 0)\n";
        } else {
          out << "smallest common nucleus: k=" << response.nucleus.k
              << " with " << response.nucleus.size << " " << member_word
              << "\n";
        }
        break;
      case QueryEngine::QueryKind::kNucleus:
        if (!response.found) {
          out << "no " << query.b << "-nucleus contains " << query.a
              << " (lambda too small)\n";
        } else {
          out << query.b << "-nucleus of " << query.a << ": node "
              << response.nucleus.node << ", k=" << response.nucleus.k
              << ", " << response.nucleus.size << " " << member_word << "\n";
        }
        break;
      case QueryEngine::QueryKind::kTop:
        out << "top " << response.top.size() << " densest nuclei:\n";
        for (const auto& ref : response.top) {
          out << "  node " << ref.node << ": k=" << ref.k << ", " << ref.size
              << " " << member_word << "\n";
        }
        break;
      default:
        break;
    }
  }

  const std::string json_path = FlagOr(parsed, "out-json", "");
  if (!json_path.empty()) {
    std::ostringstream buffer;
    buffer << "[\n";
    for (std::size_t i = 0; i < queries.size(); ++i) {
      buffer << "  " << ResponseToJson(queries[i], responses[i])
             << (i + 1 < queries.size() ? "," : "") << "\n";
    }
    buffer << "]\n";
    const Status status = WriteStringToFile(buffer.str(), json_path);
    if (!status.ok()) {
      err << "error: " << status.ToString() << "\n";
      return 1;
    }
    out << "wrote " << json_path << "\n";
  }
  return 0;
}

/// Applies one edit batch to a loaded snapshot (or chain) and persists the
/// patched result — the durable half of live maintenance. Requires the
/// current graph: the incremental maintainer needs the adjacency, and the
/// fingerprint pairing proves the snapshot describes exactly this graph.
int CmdUpdate(const ParsedArgs& parsed, std::ostream& out,
              std::ostream& err) {
  if (!CheckFlags(parsed,
                  {"snapshot", "deltas", "input", "edits", "out-snapshot",
                   "snapshot-index", "out-delta"},
                  err)) {
    return 2;
  }
  const std::string snapshot_path = FlagOr(parsed, "snapshot", "");
  const std::string input = FlagOr(parsed, "input", "");
  const std::string edits_path = FlagOr(parsed, "edits", "");
  if (snapshot_path.empty() || input.empty() || edits_path.empty()) {
    err << "error: update requires --snapshot, --input (the graph the "
           "snapshot was built from) and --edits\n";
    return 2;
  }
  std::int64_t snapshot_index = 1;
  if (!ParseIntFlag(parsed, "snapshot-index", 1, 0, 1, &snapshot_index,
                    err)) {
    return 2;
  }

  const StatusOr<Graph> graph = ReadEdgeList(input);
  if (!graph.ok()) {
    err << "error: " << graph.status().ToString() << "\n";
    return 1;
  }

  std::optional<ChainLink> link;
  StatusOr<SnapshotData> snapshot = LoadSnapshotOrChain(
      snapshot_path, FlagOr(parsed, "deltas", ""), &*graph, &link);
  if (!snapshot.ok()) {
    err << "error: " << snapshot.status().ToString() << "\n";
    return 1;
  }

  StatusOr<std::unique_ptr<LiveUpdater>> updater =
      LiveUpdater::Create(*graph, *snapshot, link);
  if (!updater.ok()) {
    err << "error: " << updater.status().ToString() << "\n";
    return 1;
  }
  StatusOr<std::vector<EdgeEdit>> edits = ReadEditList(edits_path);
  if (!edits.ok()) {
    err << "error: " << edits.status().ToString() << "\n";
    return 1;
  }

  StatusOr<LiveUpdater::Result> result = Status::Internal("unset");
  {
    MutexLock apply_lock((*updater)->apply_mutex());
    result = (*updater)->Apply(*edits);
  }
  if (!result.ok()) {
    err << "error: " << result.status().ToString() << "\n";
    return 1;
  }
  const CoreDeltaReport& report = result->report;
  out << "graph: " << (*updater)->NumVertices() << " vertices, "
      << (*updater)->NumEdges() << " edges (after edits)\n";
  out << "applied " << report.applied << " edit(s), skipped "
      << report.skipped << ", touched " << report.touched.size()
      << " vertex lambda(s), max lambda " << report.max_lambda
      << ", subcore visits " << report.subcore_visited << "\n";

  const std::string delta_path = FlagOr(parsed, "out-delta", "");
  if (!delta_path.empty()) {
    if (Status s = SaveDelta(result->delta, delta_path); !s.ok()) {
      err << "error: " << s.ToString() << "\n";
      return 1;
    }
    out << "wrote " << delta_path << " (delta: " << result->delta.edits.size()
        << " edit(s), " << result->delta.patched_ids.size()
        << " patched lambda(s))\n";
  }
  const std::string out_snapshot = FlagOr(parsed, "out-snapshot", "");
  if (!out_snapshot.empty()) {
    // An all-skipped batch changes nothing: the loaded (or chain-resolved)
    // state IS the post-state, so persist that instead of re-deriving it.
    SnapshotData& patched =
        result->changed ? result->snapshot : *snapshot;
    if (snapshot_index != 0) {
      if (!patched.has_index) {
        patched.has_index = true;
        patched.index_tables = HierarchyIndex(patched.hierarchy).Tables();
      }
    } else {
      patched.has_index = false;
      patched.index_tables = HierarchyIndexTables{};
    }
    if (Status s = SaveSnapshot(patched, out_snapshot); !s.ok()) {
      err << "error: " << s.ToString() << "\n";
      return 1;
    }
    out << "wrote " << out_snapshot << " ("
        << patched.hierarchy.NumNodes() << " nodes, "
        << patched.meta.num_cliques << " cliques"
        << (snapshot_index != 0 ? ", with index tables" : "") << ")\n";
  }
  return 0;
}

/// SIGINT/SIGTERM → graceful drain of the active TCP server.
/// RequestDrain is async-signal-safe (an atomic flag plus a self-pipe
/// write), so the handler may call it directly.
std::atomic<TcpServer*> g_drain_target{nullptr};

extern "C" void HandleDrainSignal(int /*signum*/) {
  TcpServer* server = g_drain_target.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestDrain();
}

/// Runs the TCP serving tier over an already-resolved session surface:
/// binds, announces the bound endpoint on stdout (so a pipeline can parse
/// the ephemeral port), then blocks until the server drains — via a
/// client's `shutdown` verb or SIGINT/SIGTERM.
int RunTcpServe(const ServeSessionResolver& resolver,
                SnapshotRegistry* registry, const TcpServerOptions& options,
                int metrics_port, std::ostream& out, std::ostream& err) {
  TcpServer server(resolver, registry, options);
  if (Status s = server.Start(); !s.ok()) {
    err << "error: " << s.ToString() << "\n";
    return 1;
  }
  // Optional Prometheus scrape endpoint next to the protocol port. The
  // render refreshes the registry-level gauges (resident/mapped bytes,
  // cache hit ratios) on every scrape, so a scraper never reads stale
  // gauges even if no `metrics` verb ever runs.
  std::unique_ptr<obs::MetricsExpositionServer> exposition;
  if (metrics_port >= 0) {
    obs::MetricsExpositionServer::Options mopt;
    mopt.host = options.host;
    mopt.port = metrics_port;
    exposition = std::make_unique<obs::MetricsExpositionServer>(
        [registry] {
          obs::MetricsRegistry& m = obs::MetricsRegistry::Global();
          if (registry != nullptr) PublishRegistryMetrics(*registry, m);
          return m.ToPrometheusText();
        },
        mopt);
    if (Status s = exposition->Start(); !s.ok()) {
      err << "error: " << s.ToString() << "\n";
      server.Stop();
      return 1;
    }
  }
  g_drain_target.store(&server, std::memory_order_release);
  std::signal(SIGINT, HandleDrainSignal);
  std::signal(SIGTERM, HandleDrainSignal);
  out << "listening on " << options.host << ":" << server.port() << "\n";
  if (exposition != nullptr) {
    out << "metrics on " << options.host << ":" << exposition->port()
        << "\n";
  }
  out.flush();
  server.Wait();
  if (exposition != nullptr) exposition->Stop();
  g_drain_target.store(nullptr, std::memory_order_release);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  const TcpServerStats stats = server.Stats();
  err << "drained: " << stats.connections_accepted << " connection(s), "
      << stats.lines_admitted << " line(s) served, " << stats.lines_rejected
      << " rejected (" << stats.oversized_lines << " oversized), "
      << stats.connections_rejected << " connection(s) over limit\n";
  return 0;
}

/// `nucleus_cli connect`: the loopback client of the TCP tier. Sends
/// protocol lines from --queries (or stdin) to a serve --listen process
/// and writes the response stream to --out (or stdout). With
/// `--port stdin` the port is parsed from the server's own
/// "listening on <host>:<port>" stdout line piped into this process —
/// which lets a shell (or serve_smoke.cmake) wire server and client
/// together without racing on a fixed port.
int CmdConnect(const ParsedArgs& parsed, std::ostream& out,
               std::ostream& err) {
  if (!CheckFlags(parsed,
                  {"host", "port", "queries", "out", "announce-timeout-ms"},
                  err)) {
    return 2;
  }
  std::string host = FlagOr(parsed, "host", "127.0.0.1");
  const std::string port_value = FlagOr(parsed, "port", "");
  if (port_value.empty()) {
    err << "error: connect requires --port <port | stdin>\n";
    return 2;
  }
  const std::string queries_path = FlagOr(parsed, "queries", "");

  std::int64_t port = 0;
  if (port_value == "stdin") {
    if (queries_path.empty()) {
      err << "error: --port stdin consumes stdin for the announcement, so "
             "the request lines must come from --queries\n";
      return 2;
    }
    std::int64_t timeout_ms = 0;
    if (!ParseIntFlag(parsed, "announce-timeout-ms", 10000, 1, 3600000,
                      &timeout_ms, err)) {
      return 2;
    }
    // The server announces `listening on <host>:<port>`; scan stdin for
    // it under a deadline. The scan reads fd 0 raw (poll + read) rather
    // than std::getline: a server that died before announcing while
    // something else still holds the pipe's write end (a forked child, a
    // stopped process) produces neither a line nor EOF, and a blocking
    // getline would hang this client forever.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    std::string pending;
    bool found = false;
    bool saw_eof = false;
    while (!found && !saw_eof) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      struct pollfd pfd;
      pfd.fd = STDIN_FILENO;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count() +
          1);
      const int r = ::poll(&pfd, 1, wait_ms);
      if (r < 0) {
        if (errno == EINTR) continue;
        saw_eof = true;
        break;
      }
      if (r == 0) break;  // deadline
      char chunk[4096];
      const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        saw_eof = true;
        break;
      }
      pending.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = pending.find('\n', start);
           nl != std::string::npos; nl = pending.find('\n', start)) {
        const std::string line = pending.substr(start, nl - start);
        start = nl + 1;
        const std::string prefix = "listening on ";
        if (line.rfind(prefix, 0) != 0) continue;
        const std::size_t colon = line.rfind(':');
        if (colon == std::string::npos || colon < prefix.size()) continue;
        if (!StrictParseInt64(line.substr(colon + 1), &port) || port <= 0 ||
            port > 65535) {
          continue;
        }
        if (!HasFlag(parsed, "host")) {
          host = line.substr(prefix.size(), colon - prefix.size());
        }
        found = true;
        break;
      }
      pending.erase(0, start);
    }
    if (!found) {
      if (saw_eof) {
        err << "error: stdin closed before a 'listening on <host>:<port>' "
               "line arrived — the server exited (or was killed) before "
               "announcing its port\n";
      } else {
        err << "error: no 'listening on <host>:<port>' line arrived on "
               "stdin within " << timeout_ms
            << " ms — the server likely died (or hung) before announcing; "
               "see --announce-timeout-ms\n";
      }
      return 1;
    }
  } else if (!StrictParseInt64(port_value, &port) || port <= 0 ||
             port > 65535) {
    err << "error: --port expects a port number or 'stdin', got '"
        << port_value << "'\n";
    return 2;
  } else if (HasFlag(parsed, "announce-timeout-ms")) {
    err << "error: --announce-timeout-ms only applies with --port stdin "
           "(it bounds the wait for the server's announcement line)\n";
    return 2;
  }

  std::ifstream query_file;
  if (!queries_path.empty()) {
    query_file.open(queries_path);
    if (!query_file) {
      err << "error: cannot open " << queries_path << "\n";
      return 1;
    }
  }
  std::istream& queries = queries_path.empty() ? std::cin : query_file;
  const std::string out_path = FlagOr(parsed, "out", "");
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      err << "error: cannot open " << out_path << " for writing\n";
      return 1;
    }
  }
  std::ostream& responses = out_path.empty() ? out : out_file;

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    err << "error: invalid host '" << host << "' (numeric IPv4 expected)\n";
    return 2;
  }
  int fd = -1;
  // A fixed --port may race the server's bind; retry briefly. (With
  // --port stdin the announcement already happened, so the first attempt
  // lands.)
  for (int attempt = 0; attempt < 50; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    if (errno != ECONNREFUSED) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (fd < 0) {
    err << "error: cannot connect to " << host << ":" << port << ": "
        << std::strerror(errno) << "\n";
    return 1;
  }

  // Writer thread streams requests; the main thread copies responses.
  // Decoupling the two sides means a request file larger than the socket
  // buffers cannot deadlock the client against its own unread responses.
  std::thread writer([fd, &queries] {
    std::string line;
    while (std::getline(queries, line)) {
      line.push_back('\n');
      const char* p = line.data();
      std::size_t left = line.size();
      while (left > 0) {
        const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return;  // server went away; reader reports what it got
        p += n;
        left -= static_cast<std::size_t>(n);
      }
    }
    ::shutdown(fd, SHUT_WR);  // end of requests; server drains and closes
  });

  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, or reset after a drain — both end the copy
    responses.write(chunk, n);
  }
  responses.flush();
  writer.join();
  ::close(fd);
  return 0;
}

int CmdServe(const ParsedArgs& parsed, std::ostream& out, std::ostream& err) {
  if (!CheckFlags(parsed,
                  {"snapshot", "deltas", "input", "queries", "out", "threads",
                   "batch", "registry", "budget-mb", "listen", "max-conns",
                   "high-water", "memory-mode", "trace-log", "trace-sample",
                   "slow-ms", "metrics-port"},
                  err)) {
    return 2;
  }
  const std::string registry_path = FlagOr(parsed, "registry", "");
  const std::string snapshot_path = FlagOr(parsed, "snapshot", "");
  if (registry_path.empty() == snapshot_path.empty()) {
    err << "error: serve requires exactly one of --snapshot (single "
           "tenant) or --registry (multi-tenant manifest)\n";
    return 2;
  }
  const std::string input = FlagOr(parsed, "input", "");
  const std::string deltas = FlagOr(parsed, "deltas", "");
  if (!registry_path.empty() &&
      (!input.empty() || !deltas.empty())) {
    err << "error: --input / --deltas do not apply with --registry (the "
           "manifest names each tenant's graph and deltas)\n";
    return 2;
  }
  if (registry_path.empty() && HasFlag(parsed, "budget-mb")) {
    err << "error: --budget-mb only applies with --registry (a single "
           "snapshot is always resident)\n";
    return 2;
  }
  SnapshotMemoryMode memory_mode = SnapshotMemoryMode::kHeap;
  if (!ParseMemoryMode(parsed, &memory_mode, err)) return 2;
  if (memory_mode == SnapshotMemoryMode::kMmap &&
      (!input.empty() || !deltas.empty())) {
    err << "error: --memory-mode mmap serves read-only snapshots only "
           "(chain resolution and live updates materialize heap state)\n";
    return 2;
  }
  if (registry_path.empty()) {
    // The same snapshot/deltas/graph rules the manifest and the attach
    // verb enforce, spelled in CLI flags.
    if (Status s = CheckTenantTrio(parsed.command, snapshot_path,
                                   SplitCommaList(deltas), input,
                                   kCliTrioVocabulary);
        !s.ok()) {
      err << "error: " << s.message() << "\n";
      return 2;
    }
  }
  ServeOptions options;
  std::int64_t batch = 256;
  std::int64_t budget_mb = 0;
  std::int64_t listen_port = -1;
  std::int64_t max_conns = 64;
  std::int64_t high_water = 1024;
  std::int64_t trace_sample = 1;
  std::int64_t slow_ms = -1;
  std::int64_t metrics_port = -1;
  if (!ParseThreads(parsed, &options.parallel, err) ||
      !ParseIntFlag(parsed, "batch", 256, 1, 1 << 20, &batch, err) ||
      !ParseIntFlag(parsed, "budget-mb", 0, 0, 1 << 20, &budget_mb, err) ||
      !ParseIntFlag(parsed, "listen", -1, 0, 65535, &listen_port, err) ||
      !ParseIntFlag(parsed, "max-conns", 64, 1, 1 << 16, &max_conns, err) ||
      !ParseIntFlag(parsed, "high-water", 1024, 1, 1 << 24, &high_water,
                    err) ||
      !ParseIntFlag(parsed, "trace-sample", 1, 1, 1 << 30, &trace_sample,
                    err) ||
      !ParseIntFlag(parsed, "slow-ms", -1, 0, 1 << 30, &slow_ms, err) ||
      !ParseIntFlag(parsed, "metrics-port", -1, 0, 65535, &metrics_port,
                    err)) {
    return 2;
  }
  options.batch_size = batch;
  const std::string trace_path = FlagOr(parsed, "trace-log", "");
  if (trace_path.empty() &&
      (HasFlag(parsed, "trace-sample") || HasFlag(parsed, "slow-ms"))) {
    err << "error: --trace-sample/--slow-ms only apply with --trace-log\n";
    return 2;
  }
  if (!trace_path.empty()) {
    obs::TraceLog::Options trace_options;
    trace_options.path = trace_path;
    trace_options.sample_every = trace_sample;
    trace_options.slow_ms = slow_ms;
    StatusOr<std::shared_ptr<obs::TraceLog>> trace_log =
        obs::TraceLog::Open(trace_options);
    if (!trace_log.ok()) {
      err << "error: " << trace_log.status().ToString() << "\n";
      return 1;
    }
    options.trace_log = std::move(*trace_log);
    err << "tracing to " << trace_path << " (sample 1/" << trace_sample;
    if (slow_ms >= 0) err << ", slow >= " << slow_ms << " ms";
    err << ")\n";
  }
  const bool listen = HasFlag(parsed, "listen");
  if (!listen && HasFlag(parsed, "metrics-port")) {
    err << "error: --metrics-port only applies with --listen (stdio "
           "sessions expose the registry via the `metrics` verb)\n";
    return 2;
  }
  if (listen && (HasFlag(parsed, "queries") || HasFlag(parsed, "out"))) {
    err << "error: --listen serves over TCP; --queries/--out apply to "
           "stdio sessions (use `nucleus_cli connect` as the client)\n";
    return 2;
  }
  if (!listen && (HasFlag(parsed, "max-conns") || HasFlag(parsed, "high-water"))) {
    err << "error: --max-conns/--high-water only apply with --listen\n";
    return 2;
  }
  TcpServerOptions tcp_options;
  tcp_options.port = static_cast<int>(listen_port < 0 ? 0 : listen_port);
  tcp_options.max_connections = static_cast<int>(max_conns);
  tcp_options.queue_high_water = high_water;

  // Opened only AFTER the snapshot/manifest loads: opening --out
  // truncates it, and a failed startup must not destroy the previous
  // run's transcript.
  const std::string queries_path = FlagOr(parsed, "queries", "");
  const std::string out_path = FlagOr(parsed, "out", "");
  std::ifstream query_file;
  std::ofstream out_file;
  const auto open_streams = [&]() -> bool {
    if (!queries_path.empty()) {
      query_file.open(queries_path);
      if (!query_file) {
        err << "error: cannot open " << queries_path << "\n";
        return false;
      }
    }
    if (!out_path.empty()) {
      out_file.open(out_path);
      if (!out_file) {
        err << "error: cannot open " << out_path << " for writing\n";
        return false;
      }
    }
    return true;
  };
  const auto in_stream = [&]() -> std::istream& {
    return queries_path.empty() ? std::cin : query_file;
  };
  const auto out_stream = [&]() -> std::ostream& {
    return out_path.empty() ? out : out_file;
  };

  if (!registry_path.empty()) {
    // Multi-tenant mode: attach every manifest tenant eagerly, so a
    // broken tenant fails the process at startup with its name attached
    // (runtime faults — eviction re-loads, protocol attaches — stay
    // per-tenant errors inside the session).
    StatusOr<RegistryManifest> manifest = LoadManifest(registry_path);
    if (!manifest.ok()) {
      err << "error: " << manifest.status().ToString() << "\n";
      return 1;
    }
    RegistryOptions registry_options;
    registry_options.memory_budget_bytes = budget_mb * (1 << 20);
    // Read-only tenants honor the mode (mmap maps v2 files zero-copy);
    // live tenants always load heap — the registry sorts that out.
    registry_options.memory_mode = memory_mode;
    SnapshotRegistry registry(registry_options);
    if (Status s = registry.AttachManifest(*manifest); !s.ok()) {
      err << "error: " << s.ToString() << "\n";
      return 1;
    }
    if (!open_streams()) return 1;
    err << "serving " << manifest->tenants.size() << " tenant(s) from "
        << registry_path << ", threads "
        << options.parallel.ResolvedThreads();
    if (budget_mb > 0) {
      err << ", eviction budget " << budget_mb << " MB";
    }
    err << "\n";
    if (listen) {
      tcp_options.serve = options;
      return RunTcpServe(MakeRegistryResolver(registry), &registry,
                         tcp_options, static_cast<int>(metrics_port), out,
                         err);
    }
    const ServeStats stats =
        ServeRegistryRequests(registry, in_stream(), out_stream(), options);
    err << "served " << stats.requests << " requests (" << stats.errors
        << " errors, " << stats.updates << " updates, " << stats.admin
        << " admin) in " << stats.batches << " batches\n";
    return 0;
  }

  // With --input the session is live: the graph is loaded next to the
  // snapshot (fingerprint-checked) and the `update` protocol verb is
  // enabled; without it the session is read-only.
  std::optional<Graph> graph;
  if (!input.empty()) {
    StatusOr<Graph> loaded = ReadEdgeList(input);
    if (!loaded.ok()) {
      err << "error: " << loaded.status().ToString() << "\n";
      return 1;
    }
    graph = std::move(*loaded);
  }

  std::unique_ptr<LiveUpdater> updater;
  std::unique_ptr<QueryEngine> engine;
  if (!graph.has_value() && deltas.empty()) {
    // Read-only session: the source honors --memory-mode (mmap serves a
    // v2 file zero-copy; a v1 file falls back to heap).
    StatusOr<std::shared_ptr<const SnapshotSource>> source =
        OpenSnapshotSource(snapshot_path, memory_mode);
    if (!source.ok()) {
      err << "error: " << source.status().ToString() << "\n";
      return 1;
    }
    engine = QueryEngine::FromSource(std::move(*source));
  } else {
    std::optional<ChainLink> link;
    StatusOr<SnapshotData> snapshot = LoadSnapshotOrChain(
        snapshot_path, deltas, graph.has_value() ? &*graph : nullptr, &link);
    if (!snapshot.ok()) {
      err << "error: " << snapshot.status().ToString() << "\n";
      return 1;
    }
    if (graph.has_value()) {
      StatusOr<std::unique_ptr<LiveUpdater>> created =
          LiveUpdater::Create(*graph, *snapshot, link);
      if (!created.ok()) {
        err << "error: " << created.status().ToString() << "\n";
        return 1;
      }
      updater = std::move(*created);
    }
    engine = QueryEngine::FromSnapshotData(std::move(*snapshot));
  }
  if (!open_streams()) return 1;
  err << "serving " << FamilyName(engine->meta().family) << " snapshot: "
      << engine->meta().num_cliques << " cliques, "
      << engine->NumNuclei() << " nuclei, max lambda "
      << engine->meta().max_lambda << ", threads "
      << options.parallel.ResolvedThreads()
      << (updater != nullptr ? ", updates enabled" : "")
      << (engine->MappedBytes() > 0 ? ", mmap" : "") << "\n";

  if (listen) {
    tcp_options.serve = options;
    return RunTcpServe(MakeEngineResolver(*engine, updater.get()), nullptr,
                       tcp_options, static_cast<int>(metrics_port), out,
                       err);
  }
  const ServeStats stats = ServeRequests(*engine, updater.get(), in_stream(),
                                         out_stream(), options);
  err << "served " << stats.requests << " requests (" << stats.errors
      << " errors, " << stats.updates << " updates) in " << stats.batches
      << " batches\n";
  return 0;
}

/// `nucleus_cli route`: the cross-process sharding tier. Listens with
/// the same TCP front as `serve --listen`, but instead of resolving
/// queries locally it pins each `<tenant>:` prefix to a backend
/// `serve --listen` process (jump-consistent hash over the --backend
/// list, in order) and relays that backend's responses verbatim — so a
/// tenant's response slice matches a dedicated single-backend session
/// byte for byte. Adds the router-only `migrate <tenant> <host:port>`
/// verb on top of the shared protocol.
int CmdRoute(const ParsedArgs& parsed, std::ostream& out,
             std::ostream& err) {
  if (!CheckFlags(parsed,
                  {"listen", "backend", "max-conns", "high-water", "pool",
                   "inflight", "health-ms", "metrics-port"},
                  err)) {
    return 2;
  }
  const std::string backend_list = FlagOr(parsed, "backend", "");
  if (backend_list.empty()) {
    err << "error: route requires --backend <host:port>[,<host:port>...] "
           "(serve --listen endpoints; LIST ORDER IS TENANT PLACEMENT — "
           "every router given the same list routes identically)\n";
    return 2;
  }
  if (!HasFlag(parsed, "listen")) {
    err << "error: route requires --listen P (0 picks an ephemeral port, "
           "announced as 'listening on <host>:<port>' on stdout)\n";
    return 2;
  }
  std::int64_t listen_port = 0;
  std::int64_t max_conns = 64;
  std::int64_t high_water = 1024;
  std::int64_t pool = 2;
  std::int64_t inflight = 1024;
  std::int64_t health_ms = 250;
  std::int64_t metrics_port = -1;
  if (!ParseIntFlag(parsed, "listen", 0, 0, 65535, &listen_port, err) ||
      !ParseIntFlag(parsed, "max-conns", 64, 1, 1 << 16, &max_conns, err) ||
      !ParseIntFlag(parsed, "high-water", 1024, 1, 1 << 24, &high_water,
                    err) ||
      !ParseIntFlag(parsed, "pool", 2, 1, 64, &pool, err) ||
      !ParseIntFlag(parsed, "inflight", 1024, 1, 1 << 24, &inflight, err) ||
      !ParseIntFlag(parsed, "health-ms", 250, 0, 3600000, &health_ms,
                    err) ||
      !ParseIntFlag(parsed, "metrics-port", -1, 0, 65535, &metrics_port,
                    err)) {
    return 2;
  }
  TenantRouterOptions router_options;
  router_options.backends = SplitCommaList(backend_list);
  router_options.pool_size = static_cast<int>(pool);
  router_options.max_inflight = inflight;
  router_options.health_interval_ms = static_cast<int>(health_ms);
  TenantRouter router(std::move(router_options));
  if (Status s = router.Start(); !s.ok()) {
    err << "error: " << s.ToString() << "\n";
    return 1;
  }
  TcpServerOptions tcp_options;
  tcp_options.port = static_cast<int>(listen_port);
  tcp_options.max_connections = static_cast<int>(max_conns);
  tcp_options.queue_high_water = high_water;
  TcpServer server(router.HandlerFactory(), tcp_options);
  // Installed before Start: once the listener is up, a `stats` verb may
  // read the hook from any worker.
  router.set_server_stats_json([&server] { return server.StatsJson(); });
  if (Status s = server.Start(); !s.ok()) {
    err << "error: " << s.ToString() << "\n";
    router.Stop();
    return 1;
  }
  std::unique_ptr<obs::MetricsExpositionServer> exposition;
  if (metrics_port >= 0) {
    obs::MetricsExpositionServer::Options mopt;
    mopt.host = tcp_options.host;
    mopt.port = static_cast<int>(metrics_port);
    exposition = std::make_unique<obs::MetricsExpositionServer>(
        [] { return obs::MetricsRegistry::Global().ToPrometheusText(); },
        mopt);
    if (Status s = exposition->Start(); !s.ok()) {
      err << "error: " << s.ToString() << "\n";
      server.Stop();
      router.Stop();
      return 1;
    }
  }
  g_drain_target.store(&server, std::memory_order_release);
  std::signal(SIGINT, HandleDrainSignal);
  std::signal(SIGTERM, HandleDrainSignal);
  int up = 0;
  for (int i = 0; i < router.num_backends(); ++i) {
    if (router.backend_up(i)) ++up;
  }
  err << "routing to " << router.num_backends() << " backend(s) (" << up
      << " up), pool " << pool << ", in-flight cap " << inflight << "\n";
  out << "listening on " << tcp_options.host << ":" << server.port()
      << "\n";
  if (exposition != nullptr) {
    out << "metrics on " << tcp_options.host << ":" << exposition->port()
        << "\n";
  }
  out.flush();
  server.Wait();
  if (exposition != nullptr) exposition->Stop();
  g_drain_target.store(nullptr, std::memory_order_release);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  // Front first, then the backend connections: Stop() must not run while
  // handlers still forward.
  router.Stop();
  const TcpServerStats stats = server.Stats();
  err << "drained: " << stats.connections_accepted << " connection(s), "
      << stats.lines_admitted << " line(s) routed, " << stats.lines_rejected
      << " rejected\n";
  return 0;
}

/// Rewrites a snapshot (either version) in the v2 mmap-friendly layout.
/// Lossless and idempotent: a v2 input round-trips, a v1 input gains the
/// embedded index tables, member store and density ranking.
int CmdSnapshotUpgrade(const ParsedArgs& parsed, std::ostream& out,
                       std::ostream& err) {
  if (!CheckFlags(parsed, {"snapshot", "out"}, err)) return 2;
  const std::string in_path = FlagOr(parsed, "snapshot", "");
  const std::string out_path = FlagOr(parsed, "out", "");
  if (in_path.empty() || out_path.empty()) {
    err << "error: snapshot-upgrade requires --snapshot (the v1 or v2 "
           "input) and --out (the v2 result)\n";
    return 2;
  }
  const StatusOr<std::uint32_t> version = ReadSnapshotVersion(in_path);
  if (!version.ok()) {
    err << "error: " << version.status().ToString() << "\n";
    return 1;
  }
  if (Status s = UpgradeSnapshot(in_path, out_path); !s.ok()) {
    err << "error: " << s.ToString() << "\n";
    return 1;
  }
  out << "upgraded " << in_path << " (v" << *version << ") -> " << out_path
      << " (v2)\n";
  return 0;
}

void PrintUsage(std::ostream& err) {
  err << "usage: nucleus_cli <decompose | stats | generate | convert | "
         "semi-external | query | serve | route | connect | update | "
         "snapshot-upgrade> [--flag value]...\n"
      << "  decompose     --input F [--family core|truss|34] "
         "[--algorithm fnd|dft|lcps] [--threads N] [--out-json F] "
         "[--out-dot F] [--lambda F]\n"
      << "                [--out-snapshot F.nucsnap [--snapshot-index 0|1] "
         "[--snapshot-format v1|v2]]\n"
      << "                (--snapshot-format v2 writes the mmap-friendly "
         "sectioned layout; v2 always embeds index tables)\n"
      << "  stats         --input F\n"
      << "  generate      --type er|ba|rmat|ws|planted|caveman --out F "
         "[--n N] [--param P] [--seed S]\n"
      << "  convert       --input F --out G   (.nucgraph <-> edge list)\n"
      << "  semi-external --input F.nucgraph [--family core|truss] "
         "[--temp DIR]\n"
      << "  query         (--snapshot F.nucsnap [--deltas D1,D2 --input F] "
         "| --input F [--family ...] [--algorithm ...]) "
         "[--memory-mode heap|mmap] "
         "--u A [--v B | --k K] [--top N] [--out-json F]\n"
      << "  serve         (--snapshot F.nucsnap [--deltas D1,D2] [--input F] "
         "| --registry M [--budget-mb N]) [--memory-mode heap|mmap] "
         "[--queries F] [--out F] [--threads N] [--batch N]\n"
      << "                (--memory-mode mmap serves a v2 snapshot "
         "zero-copy from a file mapping — read-only surfaces only; live "
         "tenants and chains stay heap)\n"
      << "                (--input pairs the graph and enables the "
         "'update u v +|-' protocol verb; (1,2) snapshots only)\n"
      << "                (--registry serves many tenants from a manifest: "
         "'tenant <name> snapshot=<path> [deltas=..] [graph=..]' per line; "
         "protocol lines become '<tenant>:<verb> ...' plus "
         "attach/detach/tenants; --budget-mb bounds resident engines via "
         "LRU eviction)\n"
      << "                (--listen P serves the same protocol over "
         "loopback TCP instead of stdio — 0 picks an ephemeral port, "
         "announced as 'listening on <host>:<port>' on stdout; "
         "[--max-conns N] caps connections, [--high-water N] bounds each "
         "connection's admission queue; SIGINT/SIGTERM or the `shutdown` "
         "verb drain gracefully)\n"
      << "                (observability: [--trace-log F] writes sampled "
         "JSON-lines request traces, [--trace-sample N] records 1 in N, "
         "[--slow-ms T] always records requests at or over T ms; "
         "[--metrics-port P] with --listen serves Prometheus text on "
         "'metrics on <host>:<port>'; the `metrics [text]` verb works in "
         "every session)\n"
      << "  route         --listen P --backend H1:P1[,H2:P2...] [--pool N] "
         "[--inflight N] [--health-ms T] [--max-conns N] [--high-water N] "
         "[--metrics-port P]\n"
      << "                (cross-process sharding tier: pins each "
         "'<tenant>:<verb>' line to a backend serve --listen process — "
         "jump-consistent hash over the --backend list, IN ORDER — and "
         "relays responses verbatim; admin verbs fan out and merge; "
         "'migrate <tenant> <host:port> [spec args]' moves a tenant "
         "between backends via detach-persist + attach; --health-ms pings "
         "backends with `stats`, down backends fail fast with structured "
         "errors until re-admitted)\n"
      << "  connect       --port <P|stdin> [--host H] [--queries F] "
         "[--out F] [--announce-timeout-ms T]\n"
      << "                (TCP client for serve --listen; --port stdin "
         "parses the port from a piped-in 'listening on' announcement)\n"
      << "  update        --snapshot F.nucsnap [--deltas D1,D2] --input F "
         "--edits E [--out-snapshot G.nucsnap [--snapshot-index 0|1]] "
         "[--out-delta D.nucdelta]\n"
      << "                (edit lines: '+ u v' inserts, '- u v' removes; "
         "see store/README.md for the chain format)\n"
      << "  snapshot-upgrade --snapshot F.nucsnap --out G.nucsnap\n"
      << "                (rewrites a v1 or v2 snapshot in the v2 layout; "
         "lossless — the result answers byte-identically)\n"
      << "query/serve ids are K_r ids of the decomposition's family: "
         "vertex ids (core), edge ids (truss), triangle ids (34)\n";
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  ParsedArgs parsed;
  if (!ParseArgs(args, &parsed, err)) {
    PrintUsage(err);
    return 2;
  }
  if (parsed.command == "decompose") return CmdDecompose(parsed, out, err);
  if (parsed.command == "stats") return CmdStats(parsed, out, err);
  if (parsed.command == "generate") return CmdGenerate(parsed, out, err);
  if (parsed.command == "convert") return CmdConvert(parsed, out, err);
  if (parsed.command == "semi-external") {
    return CmdSemiExternal(parsed, out, err);
  }
  if (parsed.command == "query") return CmdQuery(parsed, out, err);
  if (parsed.command == "serve") return CmdServe(parsed, out, err);
  if (parsed.command == "route") return CmdRoute(parsed, out, err);
  if (parsed.command == "connect") return CmdConnect(parsed, out, err);
  if (parsed.command == "update") return CmdUpdate(parsed, out, err);
  if (parsed.command == "snapshot-upgrade") {
    return CmdSnapshotUpgrade(parsed, out, err);
  }
  err << "error: unknown command '" << parsed.command << "'\n";
  PrintUsage(err);
  return 2;
}

}  // namespace nucleus
