#include "nucleus/cli/cli.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "nucleus/core/decomposition.h"
#include "nucleus/core/hierarchy_index.h"
#include "nucleus/core/views.h"
#include "nucleus/em/adjacency_file.h"
#include "nucleus/em/semi_external_core.h"
#include "nucleus/em/semi_external_truss.h"
#include "nucleus/graph/binary_io.h"
#include "nucleus/graph/edge_list_io.h"
#include "nucleus/graph/generators.h"
#include "nucleus/graph/graph_stats.h"
#include "nucleus/io/hierarchy_export.h"

namespace nucleus {
namespace {

struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> flags;
};

bool ParseArgs(const std::vector<std::string>& args, ParsedArgs* parsed,
               std::ostream& err) {
  if (args.empty()) {
    err << "error: missing command (decompose | stats | generate)\n";
    return false;
  }
  parsed->command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag.rfind("--", 0) != 0) {
      err << "error: expected --flag, got '" << flag << "'\n";
      return false;
    }
    if (i + 1 >= args.size()) {
      err << "error: flag '" << flag << "' requires a value\n";
      return false;
    }
    parsed->flags[flag.substr(2)] = args[++i];
  }
  return true;
}

std::string FlagOr(const ParsedArgs& parsed, const std::string& name,
                   const std::string& fallback) {
  const auto it = parsed.flags.find(name);
  return it == parsed.flags.end() ? fallback : it->second;
}

/// --threads N: 1 = serial (default), 0 = all hardware threads. Rejects
/// non-numeric or out-of-range input; ParallelConfig handles clamping of
/// the rest.
bool ParseThreads(const ParsedArgs& parsed, ParallelConfig* parallel,
                  std::ostream& err) {
  const std::string value = FlagOr(parsed, "threads", "1");
  char* end = nullptr;
  errno = 0;
  const long threads = std::strtol(value.c_str(), &end, 10);
  constexpr long kMaxThreads = 4096;
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      threads > kMaxThreads || threads < -kMaxThreads) {
    err << "error: --threads expects an integer in [-" << kMaxThreads << ", "
        << kMaxThreads << "], got '" << value << "'\n";
    return false;
  }
  parallel->num_threads = static_cast<int>(threads);
  return true;
}

bool ParseFamily(const std::string& name, Family* family, std::ostream& err) {
  if (name == "core") {
    *family = Family::kCore12;
  } else if (name == "truss") {
    *family = Family::kTruss23;
  } else if (name == "34") {
    *family = Family::kNucleus34;
  } else {
    err << "error: unknown family '" << name << "' (core | truss | 34)\n";
    return false;
  }
  return true;
}

bool ParseAlgorithm(const std::string& name, Algorithm* algorithm,
                    std::ostream& err) {
  if (name == "fnd") {
    *algorithm = Algorithm::kFnd;
  } else if (name == "dft") {
    *algorithm = Algorithm::kDft;
  } else if (name == "lcps") {
    *algorithm = Algorithm::kLcps;
  } else if (name == "naive") {
    *algorithm = Algorithm::kNaive;
  } else {
    err << "error: unknown algorithm '" << name
        << "' (fnd | dft | lcps | naive)\n";
    return false;
  }
  return true;
}

int CmdDecompose(const ParsedArgs& parsed, std::ostream& out,
                 std::ostream& err) {
  const std::string input = FlagOr(parsed, "input", "");
  if (input.empty()) {
    err << "error: decompose requires --input\n";
    return 2;
  }
  const StatusOr<Graph> graph = ReadEdgeList(input);
  if (!graph.ok()) {
    err << "error: " << graph.status().ToString() << "\n";
    return 1;
  }
  DecomposeOptions options;
  if (!ParseFamily(FlagOr(parsed, "family", "core"), &options.family, err) ||
      !ParseAlgorithm(FlagOr(parsed, "algorithm", "fnd"), &options.algorithm,
                      err) ||
      !ParseThreads(parsed, &options.parallel, err)) {
    return 2;
  }
  if (options.algorithm == Algorithm::kLcps &&
      options.family != Family::kCore12) {
    err << "error: lcps supports --family core only\n";
    return 2;
  }
  if (options.algorithm == Algorithm::kNaive) {
    err << "error: naive computes nuclei but no hierarchy; use fnd, dft or "
           "lcps\n";
    return 2;
  }
  const DecompositionResult result = Decompose(*graph, options);

  out << "graph: " << graph->NumVertices() << " vertices, "
      << graph->NumEdges() << " edges\n";
  out << "family: " << FamilyName(options.family)
      << ", algorithm: " << AlgorithmName(options.algorithm)
      << ", threads: " << options.parallel.ResolvedThreads() << "\n";
  out << "K_r count: " << result.num_cliques
      << ", max lambda: " << result.peel.max_lambda
      << ", nuclei: " << result.hierarchy.NumNuclei()
      << ", sub-nuclei: " << result.num_subnuclei << "\n";
  out << "time: " << result.timings.total_seconds << "s (index "
      << result.timings.index_seconds << ", peel "
      << result.timings.peel_seconds << ", post "
      << result.timings.traverse_seconds << ")\n";

  const HierarchyProfile profile = ProfileHierarchy(result.hierarchy);
  out << "hierarchy: depth " << profile.max_depth << ", leaves "
      << profile.num_leaves << ", avg branching " << profile.avg_branching
      << "\n";
  for (std::int32_t id : TopNucleusNodes(result.hierarchy, 5)) {
    const NucleusReport report =
        ReportNucleus(*graph, options.family, result.hierarchy, id);
    out << "  top nucleus k=" << report.k << ": " << report.num_members
        << " K_r's over " << report.num_vertices
        << " vertices, density " << report.density << "\n";
  }

  const std::string json_path = FlagOr(parsed, "out-json", "");
  if (!json_path.empty()) {
    const Status status =
        WriteStringToFile(HierarchyToJson(result.hierarchy), json_path);
    if (!status.ok()) {
      err << "error: " << status.ToString() << "\n";
      return 1;
    }
    out << "wrote " << json_path << "\n";
  }
  const std::string dot_path = FlagOr(parsed, "out-dot", "");
  if (!dot_path.empty()) {
    const Status status =
        WriteStringToFile(HierarchyToDot(result.hierarchy), dot_path);
    if (!status.ok()) {
      err << "error: " << status.ToString() << "\n";
      return 1;
    }
    out << "wrote " << dot_path << "\n";
  }
  const std::string lambda_path = FlagOr(parsed, "lambda", "");
  if (!lambda_path.empty()) {
    std::ostringstream buffer;
    for (std::size_t i = 0; i < result.peel.lambda.size(); ++i) {
      buffer << i << ' ' << result.peel.lambda[i] << '\n';
    }
    const Status status = WriteStringToFile(buffer.str(), lambda_path);
    if (!status.ok()) {
      err << "error: " << status.ToString() << "\n";
      return 1;
    }
    out << "wrote " << lambda_path << "\n";
  }
  return 0;
}

int CmdStats(const ParsedArgs& parsed, std::ostream& out, std::ostream& err) {
  const std::string input = FlagOr(parsed, "input", "");
  if (input.empty()) {
    err << "error: stats requires --input\n";
    return 2;
  }
  const StatusOr<Graph> graph = ReadEdgeList(input);
  if (!graph.ok()) {
    err << "error: " << graph.status().ToString() << "\n";
    return 1;
  }
  const Graph& g = *graph;
  const DegreeStats degrees = ComputeDegreeStats(g);
  std::int32_t components = 0;
  ConnectedComponents(g, &components);
  out << "vertices: " << g.NumVertices() << "\n"
      << "edges: " << g.NumEdges() << "\n"
      << "components: " << components << "\n"
      << "degree min/mean/max: " << degrees.min << " / " << degrees.mean
      << " / " << degrees.max << "\n"
      << "triangles: " << CountTriangles(g) << "\n"
      << "global clustering: " << GlobalClusteringCoefficient(g) << "\n"
      << "degeneracy: " << Degeneracy(g) << "\n";
  return 0;
}

int CmdGenerate(const ParsedArgs& parsed, std::ostream& out,
                std::ostream& err) {
  const std::string type = FlagOr(parsed, "type", "");
  const std::string out_path = FlagOr(parsed, "out", "");
  if (type.empty() || out_path.empty()) {
    err << "error: generate requires --type and --out\n";
    return 2;
  }
  const VertexId n =
      static_cast<VertexId>(std::atoll(FlagOr(parsed, "n", "1000").c_str()));
  const double param = std::atof(FlagOr(parsed, "param", "0").c_str());
  const std::uint64_t seed =
      static_cast<std::uint64_t>(std::atoll(FlagOr(parsed, "seed", "42").c_str()));

  Graph g;
  if (type == "er") {
    g = ErdosRenyiGnp(n, param > 0 ? param : 0.01, seed);
  } else if (type == "ba") {
    g = BarabasiAlbert(n, param > 0 ? static_cast<VertexId>(param) : 3, seed);
  } else if (type == "rmat") {
    int scale = 1;
    while ((VertexId{1} << scale) < n) ++scale;
    g = RMat(scale, param > 0 ? static_cast<std::int64_t>(param) : 8LL * n,
             0.57, 0.19, 0.19, seed);
  } else if (type == "ws") {
    g = WattsStrogatz(n, 4, param > 0 ? param : 0.1, seed);
  } else if (type == "planted") {
    const VertexId communities = param > 0 ? static_cast<VertexId>(param) : 8;
    g = PlantedPartition(communities, std::max<VertexId>(n / communities, 2),
                         0.4, 0.01, seed);
  } else if (type == "caveman") {
    const VertexId caves = param > 0 ? static_cast<VertexId>(param) : 10;
    g = Caveman(caves, std::max<VertexId>(n / caves, 3), 2 * caves, seed);
  } else {
    err << "error: unknown type '" << type
        << "' (er | ba | rmat | ws | planted | caveman)\n";
    return 2;
  }
  const Status status = WriteEdgeList(g, out_path);
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    return 1;
  }
  out << "wrote " << out_path << ": " << g.NumVertices() << " vertices, "
      << g.NumEdges() << " edges\n";
  return 0;
}

int CmdConvert(const ParsedArgs& parsed, std::ostream& out,
               std::ostream& err) {
  const std::string input = FlagOr(parsed, "input", "");
  const std::string out_path = FlagOr(parsed, "out", "");
  if (input.empty() || out_path.empty()) {
    err << "error: convert requires --input and --out\n";
    return 2;
  }
  // Direction from the output extension: .nucgraph = binary CSR,
  // anything else = text edge list.
  const bool to_binary = out_path.size() >= 9 &&
                         out_path.compare(out_path.size() - 9, 9,
                                          ".nucgraph") == 0;
  StatusOr<Graph> graph = Status::Internal("unset");
  if (input.size() >= 9 &&
      input.compare(input.size() - 9, 9, ".nucgraph") == 0) {
    graph = ReadBinaryGraph(input);
  } else {
    graph = ReadEdgeList(input);
  }
  if (!graph.ok()) {
    err << "error: " << graph.status().ToString() << "\n";
    return 1;
  }
  const Status status = to_binary ? WriteBinaryGraph(*graph, out_path)
                                  : WriteEdgeList(*graph, out_path);
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    return 1;
  }
  out << "wrote " << out_path << ": " << graph->NumVertices()
      << " vertices, " << graph->NumEdges() << " edges\n";
  return 0;
}

int CmdSemiExternal(const ParsedArgs& parsed, std::ostream& out,
                    std::ostream& err) {
  const std::string input = FlagOr(parsed, "input", "");
  if (input.empty()) {
    err << "error: semi-external requires --input (a .nucgraph file; "
           "see convert)\n";
    return 2;
  }
  const std::string family = FlagOr(parsed, "family", "core");
  if (family != "core" && family != "truss") {
    err << "error: semi-external supports --family core or truss\n";
    return 2;
  }
  auto file = AdjacencyFile::Open(input);
  if (!file.ok()) {
    err << "error: " << file.status().ToString() << "\n";
    return 1;
  }
  const std::string temp_dir = FlagOr(parsed, "temp", "/tmp");
  out << "graph: " << file->NumVertices() << " vertices, "
      << file->NumEdges() << " edges (on disk)\n";
  if (family == "core") {
    auto result = SemiExternalCoreDecomposition(*file, temp_dir);
    if (!result.ok()) {
      err << "error: " << result.status().ToString() << "\n";
      return 1;
    }
    out << "lambda passes: " << result->lambda_passes
        << ", max lambda: " << result->peel.max_lambda
        << ", sub-cores: " << result->build.num_subnuclei
        << ", adj pairs: " << result->num_adj << "\n";
    out << "io: " << result->io.scans << " scans, "
        << result->io.bytes_read / (1 << 20) << " MB read\n";
  } else {
    auto result = SemiExternalTrussDecomposition(*file, temp_dir);
    if (!result.ok()) {
      err << "error: " << result.status().ToString() << "\n";
      return 1;
    }
    out << "waves: " << result->waves
        << ", max lambda: " << result->peel.max_lambda
        << ", sub-nuclei: " << result->build.num_subnuclei
        << ", adj pairs: " << result->num_adj << "\n";
    out << "io: " << result->io.scans << " scans, "
        << result->io.bytes_read / (1 << 20) << " MB read\n";
  }
  return 0;
}

int CmdQuery(const ParsedArgs& parsed, std::ostream& out, std::ostream& err) {
  const std::string input = FlagOr(parsed, "input", "");
  const std::string u_flag = FlagOr(parsed, "u", "");
  const std::string v_flag = FlagOr(parsed, "v", "");
  if (input.empty() || u_flag.empty() || v_flag.empty()) {
    err << "error: query requires --input, --u and --v\n";
    return 2;
  }
  const StatusOr<Graph> graph = ReadEdgeList(input);
  if (!graph.ok()) {
    err << "error: " << graph.status().ToString() << "\n";
    return 1;
  }
  const VertexId u = static_cast<VertexId>(std::atoll(u_flag.c_str()));
  const VertexId v = static_cast<VertexId>(std::atoll(v_flag.c_str()));
  if (u < 0 || v < 0 || u >= graph->NumVertices() ||
      v >= graph->NumVertices()) {
    err << "error: vertex out of range\n";
    return 2;
  }
  DecomposeOptions options;
  options.family = Family::kCore12;
  options.algorithm = Algorithm::kFnd;
  const DecompositionResult result = Decompose(*graph, options);
  const HierarchyIndex index(result.hierarchy);

  out << "lambda(" << u << ") = " << result.peel.lambda[u] << ", lambda("
      << v << ") = " << result.peel.lambda[v] << "\n";
  const std::int32_t node = index.SmallestCommonNucleus(u, v);
  if (node == kInvalidId) {
    out << "no common nucleus (different components or lambda 0)\n";
  } else {
    const auto members = result.hierarchy.MembersOfSubtree(node);
    out << "smallest common nucleus: k=" << result.hierarchy.node(node).lambda
        << " with " << members.size() << " vertices\n";
  }
  return 0;
}

void PrintUsage(std::ostream& err) {
  err << "usage: nucleus_cli <decompose | stats | generate | convert | "
         "semi-external | query> [--flag value]...\n"
      << "  decompose     --input F [--family core|truss|34] "
         "[--algorithm fnd|dft|lcps] [--threads N] [--out-json F] "
         "[--out-dot F] [--lambda F]\n"
      << "  stats         --input F\n"
      << "  generate      --type er|ba|rmat|ws|planted|caveman --out F "
         "[--n N] [--param P] [--seed S]\n"
      << "  convert       --input F --out G   (.nucgraph <-> edge list)\n"
      << "  semi-external --input F.nucgraph [--family core|truss] "
         "[--temp DIR]\n"
      << "  query         --input F --u A --v B   (common k-core of A, B)\n";
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  ParsedArgs parsed;
  if (!ParseArgs(args, &parsed, err)) {
    PrintUsage(err);
    return 2;
  }
  if (parsed.command == "decompose") return CmdDecompose(parsed, out, err);
  if (parsed.command == "stats") return CmdStats(parsed, out, err);
  if (parsed.command == "generate") return CmdGenerate(parsed, out, err);
  if (parsed.command == "convert") return CmdConvert(parsed, out, err);
  if (parsed.command == "semi-external") {
    return CmdSemiExternal(parsed, out, err);
  }
  if (parsed.command == "query") return CmdQuery(parsed, out, err);
  err << "error: unknown command '" << parsed.command << "'\n";
  PrintUsage(err);
  return 2;
}

}  // namespace nucleus
