// Command-line front end, exposed as a library function so the test suite
// can drive it without spawning processes. The `nucleus_cli` binary in
// tools/ forwards argv here.
//
// Subcommands:
//   decompose --input <edges.txt> [--family core|truss|34]
//             [--algorithm fnd|dft|lcps|naive] [--threads N]
//             [--out-json F] [--out-dot F]
//             [--lambda F]         write per-K_r lambda values to F
//             --threads: 1 = serial (default), 0 = all hardware threads,
//             N > 1 = wave-parallel peel + parallel FND hierarchy
//   stats     --input <edges.txt>  structural statistics
//   generate  --type <name> --out <edges.txt> [--n N] [--param P] [--seed S]
//             types: er, ba, rmat, ws, planted, caveman
//   convert   --input F --out G     edge list <-> binary CSR (.nucgraph)
//   semi-external --input <g.nucgraph> [--family core|truss] [--temp DIR]
//             disk-resident decomposition with IO ledger
//   query     --input <edges.txt> --u A --v B
//             smallest common k-core of two vertices (HierarchyIndex)
#ifndef NUCLEUS_CLI_CLI_H_
#define NUCLEUS_CLI_CLI_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace nucleus {

/// Runs the CLI with `args` (excluding the program name); writes normal
/// output to `out` and diagnostics to `err`. Returns a process exit code.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace nucleus

#endif  // NUCLEUS_CLI_CLI_H_
