// Process-wide metrics registry for the serving tier: named counters,
// gauges, and log-bucketed latency histograms, all lock-free on the hot
// path (atomic per-bucket counts) and mergeable across threads. Bucket
// boundaries are deterministic (powers of two in microseconds) so
// snapshots are stable in tests. Labels are limited to {tenant, verb}
// and every family bounds its distinct label sets, keeping cardinality
// O(tenants x verbs) no matter what a client sends.
//
// Metrics are a side channel: nothing here ever writes to a serve
// session's response stream, so the byte-identical transcript guarantee
// is untouched at any thread count.
#ifndef NUCLEUS_OBS_METRICS_H_
#define NUCLEUS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "nucleus/util/mutex.h"

namespace nucleus {
namespace obs {

/// Process-wide kill switch consulted by every metric mutation. Flipping
/// it off turns Increment/Set/Observe into a single relaxed load, which
/// is what bench/network_serving uses to measure instrumentation
/// overhead without rebuilding.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonic counter.
class Counter {
 public:
  void Increment(std::int64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time value. Double-valued so byte gauges and ratios share one
/// type; doubles hold integers exactly up to 2^53, far past any byte
/// count this process tracks.
class Gauge {
 public:
  void Set(double v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (!MetricsEnabled()) return;
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Log-bucketed latency histogram over microseconds. Bucket i counts
/// observations with value <= 2^i us (the last bucket is +Inf), so the
/// boundaries never depend on configuration or observation order and a
/// snapshot taken in a test is reproducible. Observe is wait-free: one
/// bit-scan plus two relaxed fetch_adds (the total count is derived from
/// the bucket counts at snapshot time, not tracked separately).
class Histogram {
 public:
  // 2^26 us ~= 67 s: anything slower lands in the +Inf bucket.
  static constexpr int kFiniteBuckets = 27;
  static constexpr int kBuckets = kFiniteBuckets + 1;

  struct Snapshot {
    std::int64_t count = 0;
    std::int64_t sum_us = 0;
    std::array<std::int64_t, kBuckets> buckets{};

    /// Upper bucket bound holding quantile q in [0, 1]; 0 when empty.
    std::int64_t ApproxQuantileUs(double q) const;
  };

  /// Upper bound of bucket i in microseconds; the last bucket reports
  /// INT64_MAX (rendered as +Inf in the exposition).
  static std::int64_t BucketBoundUs(int i);
  static int BucketFor(std::int64_t us);

  void Observe(std::int64_t us);
  Snapshot Snap() const;

 private:
  std::atomic<std::int64_t> sum_us_{0};
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

/// Registry of named metric families. A family is one metric name plus
/// its per-label-set children; labels are restricted to {tenant, verb}
/// (either may be empty). Lookups return stable pointers that stay valid
/// for the registry's lifetime, so callers cache them and the hot path
/// never takes the registry mutex. Each family caps distinct label sets
/// at kMaxLabelSets; later label sets collapse into one overflow child
/// labeled {tenant="_other", verb="_other"} so a hostile tenant stream
/// cannot grow the registry without bound.
class MetricsRegistry {
 public:
  static constexpr int kMaxLabelSets = 256;

  /// The process-wide registry. Tests that want isolation construct
  /// their own instance and pass it through ServeOptions.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& tenant = "",
                      const std::string& verb = "");
  Gauge* GetGauge(const std::string& name, const std::string& tenant = "",
                  const std::string& verb = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& tenant = "",
                          const std::string& verb = "");

  /// One deterministic JSON tree (families and label sets in sorted
  /// order): {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Returned without the outer braces so callers can splice it into a
  /// response object ("query": "metrics", ...).
  std::string ToJsonBody() const;

  /// Prometheus text exposition format (version 0.0.4): # TYPE lines,
  /// cumulative le-labeled histogram buckets, _sum and _count series.
  std::string ToPrometheusText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct LabelKey {
    std::string tenant;
    std::string verb;
    bool operator<(const LabelKey& o) const {
      if (tenant != o.tenant) return tenant < o.tenant;
      return verb < o.verb;
    }
  };

  struct Metric {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::map<LabelKey, Metric> children;
  };

  Metric* Resolve(const std::string& name, Kind kind,
                  const std::string& tenant, const std::string& verb);

  mutable Mutex mutex_;
  std::map<std::string, Family> families_ GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace nucleus

#endif  // NUCLEUS_OBS_METRICS_H_
