// Per-request tracing for the serving tier: a TraceSpan records the
// four-phase timing breakdown of one request line (parse -> queue-wait
// -> execute -> flush) and a TraceLog writes sampled spans as JSON
// lines, with a threshold-based slow-query override that always logs a
// span past --slow-ms regardless of sampling.
//
// Traces are a side channel: they go to their own file, never to the
// response stream, so transcripts stay byte-identical with tracing on.
#ifndef NUCLEUS_OBS_TRACE_H_
#define NUCLEUS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "nucleus/util/mutex.h"
#include "nucleus/util/status.h"

namespace nucleus {
namespace obs {

/// Timing breakdown of one request line, all in microseconds. exec_us
/// and flush_us are batch-level measurements attributed to every line
/// in the batch (queries execute as batches; see serve/README.md).
struct TraceSpan {
  std::int64_t line = 0;       // 1-based input line number
  std::string tenant;          // "" for unrouted sessions
  std::string verb;            // request verb, or an error class
  bool error = false;          // true when the line produced an error object
  std::int64_t parse_us = 0;   // line parse + routing
  std::int64_t queue_us = 0;   // parsed -> batch execution started
  std::int64_t exec_us = 0;    // batch execution (admin/update: the verb body)
  std::int64_t flush_us = 0;   // response emission to the output stream

  std::int64_t TotalUs() const {
    return parse_us + queue_us + exec_us + flush_us;
  }
};

/// Append-only JSON-lines trace sink, shared across connection workers
/// via shared_ptr. Thread-safe; one mutex around the write, sampling
/// decided by one atomic counter so "every Nth span" holds process-wide
/// rather than per-thread.
class TraceLog {
 public:
  struct Options {
    std::string path;
    std::int64_t sample_every = 1;  // record every Nth span (1 = all)
    std::int64_t slow_ms = -1;      // always record spans >= this (-1 = off)
  };

  static StatusOr<std::shared_ptr<TraceLog>> Open(const Options& options);

  /// Applies the sampling + slow-query rules and writes one JSON line
  /// when the span qualifies. Never throws, never blocks the response
  /// stream; a failed write disables the sink for the rest of the run.
  void Record(const TraceSpan& span);

  std::int64_t spans_seen() const {
    return seen_.load(std::memory_order_relaxed);
  }
  std::int64_t spans_written() const {
    return written_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

 private:
  explicit TraceLog(Options options) : options_(std::move(options)) {}

  Options options_;
  Mutex mutex_;
  std::ofstream out_ GUARDED_BY(mutex_);
  std::atomic<std::int64_t> seen_{0};
  std::atomic<std::int64_t> written_{0};
  bool failed_ GUARDED_BY(mutex_) = false;
};

}  // namespace obs
}  // namespace nucleus

#endif  // NUCLEUS_OBS_TRACE_H_
