#include "nucleus/obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <sstream>
#include <vector>

namespace nucleus {
namespace obs {
namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Renders a gauge value: integral values print without a decimal point
/// so byte gauges stay stable to diff, everything else gets %.6g.
std::string FormatNumber(double v) {
  const double floor_v = static_cast<double>(static_cast<std::int64_t>(v));
  if (v == floor_v && v > -9.0e15 && v < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::int64_t Histogram::BucketBoundUs(int i) {
  if (i >= kFiniteBuckets) return std::numeric_limits<std::int64_t>::max();
  return std::int64_t{1} << i;
}

int Histogram::BucketFor(std::int64_t us) {
  if (us <= 1) return 0;
  // Smallest i with us <= 2^i: bit width of (us - 1).
  int bits = 0;
  std::uint64_t v = static_cast<std::uint64_t>(us - 1);
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return bits < kFiniteBuckets ? bits : kFiniteBuckets;
}

void Histogram::Observe(std::int64_t us) {
  if (!MetricsEnabled()) return;
  if (us < 0) us = 0;
  buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.sum_us = sum_us_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  return snap;
}

std::int64_t Histogram::Snapshot::ApproxQuantileUs(double q) const {
  if (count <= 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  std::int64_t rank = static_cast<std::int64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return BucketBoundUs(i);
  }
  return BucketBoundUs(kBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Metric* MetricsRegistry::Resolve(const std::string& name,
                                                  Kind kind,
                                                  const std::string& tenant,
                                                  const std::string& verb) {
  MutexLock lock(mutex_);
  Family& family = families_[name];
  if (family.children.empty()) family.kind = kind;
  LabelKey key{tenant, verb};
  auto it = family.children.find(key);
  if (it == family.children.end()) {
    if (static_cast<int>(family.children.size()) >= kMaxLabelSets) {
      // Cardinality cap: collapse every further label set into one
      // overflow child so a hostile tenant stream cannot grow us.
      key = LabelKey{"_other", "_other"};
      it = family.children.find(key);
      if (it != family.children.end()) return &it->second;
    }
    it = family.children.emplace(key, Metric{}).first;
    switch (family.kind) {
      case Kind::kCounter:
        it->second.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        it->second.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        it->second.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& tenant,
                                     const std::string& verb) {
  Metric* m = Resolve(name, Kind::kCounter, tenant, verb);
  return m->counter ? m->counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& tenant,
                                 const std::string& verb) {
  Metric* m = Resolve(name, Kind::kGauge, tenant, verb);
  return m->gauge ? m->gauge.get() : nullptr;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& tenant,
                                         const std::string& verb) {
  Metric* m = Resolve(name, Kind::kHistogram, tenant, verb);
  return m->histogram ? m->histogram.get() : nullptr;
}

namespace {

/// JSON object key for one label set: "" for unlabeled, else
/// "tenant=alpha,verb=lambda" with empty halves omitted. Tenant names
/// are charset-validated upstream, verbs are compile-time literals, so
/// no JSON escaping is needed here.
std::string LabelJsonKey(const std::string& tenant, const std::string& verb) {
  std::string key;
  if (!tenant.empty()) key += "tenant=" + tenant;
  if (!verb.empty()) {
    if (!key.empty()) key += ",";
    key += "verb=" + verb;
  }
  return key;
}

/// Prometheus label block: {tenant="alpha",verb="lambda"} or "".
std::string LabelPromBlock(const std::string& tenant, const std::string& verb,
                           const std::string& extra = "") {
  std::string block;
  auto append = [&block](const std::string& k, const std::string& v) {
    if (v.empty()) return;
    if (!block.empty()) block += ",";
    block += k + "=\"" + v + "\"";
  };
  append("tenant", tenant);
  append("verb", verb);
  if (!extra.empty()) {
    if (!block.empty()) block += ",";
    block += extra;
  }
  return block.empty() ? "" : "{" + block + "}";
}

void AppendHistogramJson(std::ostringstream& out,
                         const Histogram::Snapshot& snap) {
  out << "{\"count\": " << snap.count << ", \"sum_us\": " << snap.sum_us
      << ", \"p50_us\": " << snap.ApproxQuantileUs(0.50)
      << ", \"p90_us\": " << snap.ApproxQuantileUs(0.90)
      << ", \"p99_us\": " << snap.ApproxQuantileUs(0.99) << ", \"buckets\": [";
  bool first = true;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (snap.buckets[i] == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << "[";
    if (i >= Histogram::kFiniteBuckets) {
      out << "-1";  // +Inf bucket: JSON has no Infinity literal.
    } else {
      out << Histogram::BucketBoundUs(i);
    }
    out << ", " << snap.buckets[i] << "]";
  }
  out << "]}";
}

}  // namespace

std::string MetricsRegistry::ToJsonBody() const {
  MutexLock lock(mutex_);
  std::ostringstream counters, gauges, histograms;
  bool first_counter = true, first_gauge = true, first_histogram = true;
  for (const auto& [name, family] : families_) {
    std::ostringstream* out = nullptr;
    bool* first = nullptr;
    switch (family.kind) {
      case Kind::kCounter:
        out = &counters;
        first = &first_counter;
        break;
      case Kind::kGauge:
        out = &gauges;
        first = &first_gauge;
        break;
      case Kind::kHistogram:
        out = &histograms;
        first = &first_histogram;
        break;
    }
    if (!*first) *out << ", ";
    *first = false;
    *out << "\"" << name << "\": {";
    bool first_child = true;
    for (const auto& [key, metric] : family.children) {
      if (!first_child) *out << ", ";
      first_child = false;
      *out << "\"" << LabelJsonKey(key.tenant, key.verb) << "\": ";
      switch (family.kind) {
        case Kind::kCounter:
          *out << metric.counter->Value();
          break;
        case Kind::kGauge:
          *out << FormatNumber(metric.gauge->Value());
          break;
        case Kind::kHistogram:
          AppendHistogramJson(*out, metric.histogram->Snap());
          break;
      }
    }
    *out << "}";
  }
  std::ostringstream body;
  body << "\"counters\": {" << counters.str() << "}, \"gauges\": {"
       << gauges.str() << "}, \"histograms\": {" << histograms.str() << "}";
  return body.str();
}

std::string MetricsRegistry::ToPrometheusText() const {
  MutexLock lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    switch (family.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        for (const auto& [key, metric] : family.children) {
          out << name << LabelPromBlock(key.tenant, key.verb) << " "
              << metric.counter->Value() << "\n";
        }
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        for (const auto& [key, metric] : family.children) {
          out << name << LabelPromBlock(key.tenant, key.verb) << " "
              << FormatNumber(metric.gauge->Value()) << "\n";
        }
        break;
      case Kind::kHistogram: {
        out << "# TYPE " << name << " histogram\n";
        for (const auto& [key, metric] : family.children) {
          const Histogram::Snapshot snap = metric.histogram->Snap();
          std::int64_t cumulative = 0;
          for (int i = 0; i < Histogram::kBuckets; ++i) {
            cumulative += snap.buckets[i];
            // Emit only occupied bounds plus the mandatory +Inf bucket
            // to keep scrapes compact; cumulative counts stay exact.
            if (snap.buckets[i] == 0 && i < Histogram::kFiniteBuckets) {
              continue;
            }
            std::string le = i >= Histogram::kFiniteBuckets
                                 ? "+Inf"
                                 : FormatNumber(static_cast<double>(
                                       Histogram::BucketBoundUs(i)));
            out << name << "_bucket"
                << LabelPromBlock(key.tenant, key.verb, "le=\"" + le + "\"")
                << " " << cumulative << "\n";
          }
          out << name << "_sum" << LabelPromBlock(key.tenant, key.verb) << " "
              << snap.sum_us << "\n";
          out << name << "_count" << LabelPromBlock(key.tenant, key.verb)
              << " " << snap.count << "\n";
        }
        break;
      }
    }
  }
  return out.str();
}

}  // namespace obs
}  // namespace nucleus
