// Minimal plain-text metrics exposition listener: answers every HTTP-ish
// request on its port with the Prometheus text rendering of the metrics
// registry, so standard scrapers can point at `serve --metrics-port N`.
//
// One accept loop on its own thread hands each connection to a small
// fixed pool of scrape workers through a bounded queue, so a silent
// client (which costs its worker the full recv timeout) or a slow
// render never delays accepts or other scrapers; connections past the
// queue bound are shed immediately. accept() failures (EMFILE under fd
// exhaustion) are counted and backed off instead of spinning.
#ifndef NUCLEUS_OBS_EXPOSITION_H_
#define NUCLEUS_OBS_EXPOSITION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "nucleus/util/mutex.h"
#include "nucleus/util/status.h"

namespace nucleus {
namespace obs {

class MetricsExpositionServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  // 0 = ephemeral; bound port via port() after Start
    /// Scrape-serving threads. Each stalled client pins one worker for
    /// at most the 200 ms recv timeout, so N workers bound a scrape's
    /// worst-case queueing delay even with N-1 stallers.
    int workers = 4;
    /// Accepted-but-unserved connections held at once; connections past
    /// this are closed immediately (scrapers retry on their next cycle).
    int max_queued = 32;
  };

  /// render returns the exposition body for one scrape (typically a
  /// gauge refresh followed by MetricsRegistry::ToPrometheusText). It is
  /// called concurrently from the worker threads and must be
  /// thread-safe (the registry renderers are).
  MetricsExpositionServer(std::function<std::string()> render,
                          Options options);
  ~MetricsExpositionServer();

  MetricsExpositionServer(const MetricsExpositionServer&) = delete;
  MetricsExpositionServer& operator=(const MetricsExpositionServer&) = delete;

  Status Start();
  void Stop();
  int port() const { return port_; }

  /// accept() failures observed (EMFILE and friends).
  std::int64_t accept_errors() const {
    return accept_errors_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void WorkerLoop();
  void ServeScrape(int fd);

  std::function<std::string()> render_;
  Options options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe to interrupt poll() on Stop
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> accept_errors_{0};
  std::thread thread_;
  std::vector<std::thread> workers_;

  Mutex mutex_;
  std::condition_variable queue_cv_;
  /// Accepted fds awaiting a worker; bounded by options_.max_queued.
  std::deque<int> pending_ GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace nucleus

#endif  // NUCLEUS_OBS_EXPOSITION_H_
