// Minimal plain-text metrics exposition listener: answers every HTTP-ish
// request on its port with the Prometheus text rendering of the metrics
// registry, so standard scrapers can point at `serve --metrics-port N`.
// One accept loop on its own thread; scrapes are rare and small, so
// connections are handled inline and closed immediately.
#ifndef NUCLEUS_OBS_EXPOSITION_H_
#define NUCLEUS_OBS_EXPOSITION_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "nucleus/util/status.h"

namespace nucleus {
namespace obs {

class MetricsExpositionServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  // 0 = ephemeral; bound port via port() after Start
  };

  /// render returns the exposition body for one scrape (typically a
  /// gauge refresh followed by MetricsRegistry::ToPrometheusText).
  MetricsExpositionServer(std::function<std::string()> render,
                          Options options);
  ~MetricsExpositionServer();

  MetricsExpositionServer(const MetricsExpositionServer&) = delete;
  MetricsExpositionServer& operator=(const MetricsExpositionServer&) = delete;

  Status Start();
  void Stop();
  int port() const { return port_; }

 private:
  void Loop();

  std::function<std::string()> render_;
  Options options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe to interrupt poll() on Stop
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace nucleus

#endif  // NUCLEUS_OBS_EXPOSITION_H_
