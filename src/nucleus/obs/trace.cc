#include "nucleus/obs/trace.h"

#include "nucleus/io/hierarchy_export.h"

namespace nucleus {
namespace obs {

StatusOr<std::shared_ptr<TraceLog>> TraceLog::Open(const Options& options) {
  if (options.sample_every < 1) {
    return Status::InvalidArgument("trace sample rate must be >= 1");
  }
  std::shared_ptr<TraceLog> log(new TraceLog(options));
  log->out_.open(options.path, std::ios::out | std::ios::trunc);
  if (!log->out_.is_open()) {
    return Status::Internal("cannot open trace log: " + options.path);
  }
  return log;
}

void TraceLog::Record(const TraceSpan& span) {
  const std::int64_t seq = seen_.fetch_add(1, std::memory_order_relaxed);
  const bool sampled = seq % options_.sample_every == 0;
  const bool slow =
      options_.slow_ms >= 0 && span.TotalUs() >= options_.slow_ms * 1000;
  if (!sampled && !slow) return;

  MutexLock lock(mutex_);
  if (failed_) return;
  out_ << "{\"line\": " << span.line << ", \"tenant\": \""
       << JsonEscape(span.tenant) << "\", \"verb\": \""
       << JsonEscape(span.verb) << "\", \"error\": "
       << (span.error ? "true" : "false") << ", \"parse_us\": "
       << span.parse_us << ", \"queue_us\": " << span.queue_us
       << ", \"exec_us\": " << span.exec_us << ", \"flush_us\": "
       << span.flush_us << ", \"total_us\": " << span.TotalUs();
  if (slow) out_ << ", \"slow\": true";
  out_ << "}\n";
  out_.flush();
  if (!out_.good()) {
    failed_ = true;
    return;
  }
  written_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace nucleus
