#include "nucleus/obs/exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nucleus {
namespace obs {
namespace {

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // scraper went away; nothing to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

MetricsExpositionServer::MetricsExpositionServer(
    std::function<std::string()> render, Options options)
    : render_(std::move(render)), options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queued < 1) options_.max_queued = 1;
}

MetricsExpositionServer::~MetricsExpositionServer() { Stop(); }

Status MetricsExpositionServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("metrics socket: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("metrics host must be an IPv4 address: " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("metrics bind/listen on " + options_.host + ":" +
                           std::to_string(options_.port) + ": " + detail);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("metrics wake pipe: ") +
                           std::strerror(errno));
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void MetricsExpositionServer::Stop() {
  if (!thread_.joinable()) return;
  {
    // Store under the queue lock so a worker checking the predicate
    // between its test and its wait cannot miss the notify.
    MutexLock lock(mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  const char byte = 'x';
  (void)!::write(wake_fds_[1], &byte, 1);
  queue_cv_.notify_all();
  thread_.join();
  // Workers drain what was already accepted (each connection is bounded
  // by the recv timeout), then exit on the empty queue.
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  stopping_.store(false, std::memory_order_release);
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
}

void MetricsExpositionServer::Loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE and friends: count it and back off briefly (via
      // the wake-pipe poll, so Stop still interrupts) instead of
      // re-polling the still-readable listener in a hot loop.
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      pollfd wake = {wake_fds_[0], POLLIN, 0};
      (void)::poll(&wake, 1, 10);
      continue;
    }
    bool shed = false;
    {
      MutexLock lock(mutex_);
      if (static_cast<int>(pending_.size()) >= options_.max_queued) {
        shed = true;  // scrapers retry on their next cycle
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void MetricsExpositionServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(mutex_);
      while (pending_.empty() &&
             !stopping_.load(std::memory_order_acquire)) {
        queue_cv_.wait(lock.native());
      }
      if (pending_.empty()) return;  // stopping and nothing left to serve
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeScrape(fd);
  }
}

void MetricsExpositionServer::ServeScrape(int fd) {
  // Read and discard whatever request line the scraper sent; the
  // response is the same for every path. A short timeout bounds how
  // long a silent client can pin this worker.
  timeval tv{0, 200 * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  char buf[1024];
  (void)!::recv(fd, buf, sizeof buf, 0);
  const std::string body = render_();
  std::string response =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\n"
      "Connection: close\r\n\r\n" +
      body;
  SendAll(fd, response);
  ::shutdown(fd, SHUT_WR);
  ::close(fd);
}

}  // namespace obs
}  // namespace nucleus
