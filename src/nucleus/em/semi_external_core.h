// Semi-external k-core decomposition WITH hierarchy construction.
//
// The paper's Section 3.1 observes that the external-memory k-core papers
// (Cheng et al. ICDE'11, Khaouid et al. PVLDB'15, Wen et al. ICDE'16)
// compute only the lambda values: "the additional traversal operation in
// external memory is not taken into consideration, which is at least as
// expensive as finding lambda values. Finding the (connected) k-cores and
// constructing the hierarchy among them efficiently in the external memory
// computation model is not a trivial problem."
//
// This module closes that gap with the paper's own machinery:
//
//  1. SemiExternalCoreLambda — lambda values in the semi-external model
//     (O(|V|) memory, edges on disk) by Gauss-Seidel h-index iteration
//     [Khaouid et al.'s in-memory-array variant of Montresor et al.]: start
//     from core(v) = deg(v) and repeatedly lower core(v) to the h-index of
//     its neighbors' values; each round is one sequential edge scan and the
//     fixpoint is exactly lambda_2.
//
//  2. SemiExternalCoreDecomposition — lambda plus the FULL hierarchy in
//     O(|V| + max_lambda) memory and O(1) additional edge scans. This is
//     the paper's FND insight transplanted to the EM model: once lambda is
//     known, a single edge scan suffices to (a) union equal-lambda
//     endpoints in an in-memory disjoint-set forest over vertices — whose
//     components are exactly the maximal sub-cores T_{1,2} (Def. 5) — and
//     (b) spill each lambda-crossing edge to disk as an ADJ pair. An
//     external counting sort groups the spilled pairs by the smaller
//     endpoint's lambda, and BuildHierarchy (Alg. 9) consumes the bins in
//     decreasing order through the root-forest (Alg. 7), never touching the
//     graph again. No BFS traversal — which in external memory would be
//     prohibitively random — ever happens.
#ifndef NUCLEUS_EM_SEMI_EXTERNAL_CORE_H_
#define NUCLEUS_EM_SEMI_EXTERNAL_CORE_H_

#include <string>
#include <vector>

#include "nucleus/core/types.h"
#include "nucleus/em/adjacency_file.h"
#include "nucleus/util/status.h"

namespace nucleus {

/// Result of a semi-external decomposition. `build` has the same shape the
/// in-memory DFT/FND algorithms produce, so NucleusHierarchy::FromSkeleton
/// and all downstream queries work unchanged.
struct SemiExternalResult {
  PeelResult peel;
  SkeletonBuild build;
  /// Sequential h-index rounds until the lambda fixpoint.
  int lambda_passes = 0;
  /// Spilled lambda-crossing edges, the EM analogue of |c_down(T*)|.
  std::int64_t num_adj = 0;
  /// Aggregate IO over the graph file and both spill files.
  EmIoStats io;
};

/// Computes lambda_2 of every vertex in the semi-external model. Each
/// iteration is one sequential scan; `passes`, if non-null, receives the
/// number of scans until convergence.
StatusOr<PeelResult> SemiExternalCoreLambda(AdjacencyFile& graph,
                                            int* passes = nullptr);

/// Full semi-external k-core decomposition: lambda values, maximal
/// sub-cores, and the complete nucleus hierarchy-skeleton. `temp_dir` hosts
/// the two ADJ spill files (removed on success).
StatusOr<SemiExternalResult> SemiExternalCoreDecomposition(
    AdjacencyFile& graph, const std::string& temp_dir);

}  // namespace nucleus

#endif  // NUCLEUS_EM_SEMI_EXTERNAL_CORE_H_
