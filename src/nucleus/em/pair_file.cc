#include "nucleus/em/pair_file.h"

#include <algorithm>

namespace nucleus {

StatusOr<PairFile> PairFile::Create(const std::string& path,
                                    std::size_t buffer_pairs) {
  PairFile pf;
  pf.path_ = path;
  pf.file_.reset(std::fopen(path.c_str(), "w+b"));
  if (pf.file_ == nullptr) {
    return Status::Internal("cannot create " + path);
  }
  pf.buffer_pairs_ = std::max<std::size_t>(buffer_pairs, 1);
  pf.write_buffer_.reserve(2 * pf.buffer_pairs_);
  return pf;
}

Status PairFile::Append(std::int32_t a, std::int32_t b) {
  write_buffer_.push_back(a);
  write_buffer_.push_back(b);
  ++num_pairs_;
  if (write_buffer_.size() >= 2 * buffer_pairs_) return Flush();
  return Status::Ok();
}

Status PairFile::Flush() {
  if (write_buffer_.empty()) return Status::Ok();
  // Appends always happen at the end; scans may have moved the cursor.
  if (std::fseek(file_.get(), 0, SEEK_END) != 0) {
    return Status::Internal("seek failed in " + path_);
  }
  if (std::fwrite(write_buffer_.data(), sizeof(std::int32_t),
                  write_buffer_.size(),
                  file_.get()) != write_buffer_.size()) {
    return Status::Internal("short write to " + path_);
  }
  stats_.bytes_written +=
      static_cast<std::int64_t>(write_buffer_.size() * sizeof(std::int32_t));
  write_buffer_.clear();
  return Status::Ok();
}

Status PairFile::Scan(
    const std::function<void(std::int32_t, std::int32_t)>& f) {
  return ScanRange(0, num_pairs_, f);
}

Status PairFile::ScanRange(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int32_t, std::int32_t)>& f) {
  NUCLEUS_CHECK(begin >= 0 && begin <= end && end <= num_pairs_);
  NUCLEUS_CHECK_MSG(write_buffer_.empty(), "Flush() before scanning");
  if (begin == end) return Status::Ok();
  if (std::fseek(file_.get(),
                 static_cast<long>(begin * 2 * sizeof(std::int32_t)),
                 SEEK_SET) != 0) {
    return Status::Internal("seek failed in " + path_);
  }
  ++stats_.scans;
  constexpr std::size_t kBlockPairs = 1 << 15;
  std::vector<std::int32_t> block(2 * kBlockPairs);
  std::int64_t remaining = end - begin;
  while (remaining > 0) {
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::int64_t>(remaining, kBlockPairs));
    if (std::fread(block.data(), sizeof(std::int32_t), 2 * take,
                   file_.get()) != 2 * take) {
      return Status::OutOfRange("truncated pair file " + path_);
    }
    stats_.bytes_read +=
        static_cast<std::int64_t>(2 * take * sizeof(std::int32_t));
    for (std::size_t i = 0; i < take; ++i) {
      f(block[2 * i], block[2 * i + 1]);
    }
    remaining -= static_cast<std::int64_t>(take);
  }
  return Status::Ok();
}

StatusOr<PairFile> PairFile::SortByBin(
    const std::function<std::int32_t(std::int32_t, std::int32_t)>& key,
    std::int32_t num_bins, const std::string& out_path,
    std::vector<std::int64_t>* bin_begin) {
  NUCLEUS_CHECK(num_bins >= 1);
  if (Status s = Flush(); !s.ok()) return s;

  // Pass 1: count pairs per bin.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_bins), 0);
  Status count_status = Status::Ok();
  if (Status s = Scan([&](std::int32_t a, std::int32_t b) {
        const std::int32_t k = key(a, b);
        if (k < 0 || k >= num_bins) {
          count_status = Status::OutOfRange("pair key out of bin range");
          return;
        }
        ++counts[static_cast<std::size_t>(k)];
      });
      !s.ok()) {
    return s;
  }
  if (!count_status.ok()) return count_status;

  bin_begin->assign(static_cast<std::size_t>(num_bins) + 1, 0);
  for (std::int32_t k = 0; k < num_bins; ++k) {
    (*bin_begin)[k + 1] = (*bin_begin)[k] + counts[k];
  }

  // Pass 2: scatter into the output file through small per-bin buffers so
  // writes stay mostly sequential within each bin (O(num_bins) memory).
  auto out = PairFile::Create(out_path);
  if (!out.ok()) return out.status();
  std::FILE* out_file = out->file_.get();

  constexpr std::size_t kBinBufferPairs = 256;
  std::vector<std::vector<std::int32_t>> bin_buffers(
      static_cast<std::size_t>(num_bins));
  std::vector<std::int64_t> fill(bin_begin->begin(), bin_begin->end() - 1);

  Status scatter_status = Status::Ok();
  auto flush_bin = [&](std::int32_t k) {
    std::vector<std::int32_t>& buf = bin_buffers[k];
    if (buf.empty()) return;
    const std::int64_t pos = fill[k] * 2 * sizeof(std::int32_t);
    if (std::fseek(out_file, static_cast<long>(pos), SEEK_SET) != 0 ||
        std::fwrite(buf.data(), sizeof(std::int32_t), buf.size(), out_file) !=
            buf.size()) {
      scatter_status = Status::Internal("scatter write failed to " + out_path);
      return;
    }
    out->stats_.bytes_written +=
        static_cast<std::int64_t>(buf.size() * sizeof(std::int32_t));
    fill[k] += static_cast<std::int64_t>(buf.size() / 2);
    buf.clear();
  };

  if (Status s = Scan([&](std::int32_t a, std::int32_t b) {
        if (!scatter_status.ok()) return;
        const std::int32_t k = key(a, b);
        std::vector<std::int32_t>& buf = bin_buffers[k];
        buf.push_back(a);
        buf.push_back(b);
        if (buf.size() >= 2 * kBinBufferPairs) flush_bin(k);
      });
      !s.ok()) {
    return s;
  }
  if (!scatter_status.ok()) return scatter_status;
  for (std::int32_t k = 0; k < num_bins; ++k) {
    flush_bin(k);
    if (!scatter_status.ok()) return scatter_status;
  }
  out->num_pairs_ = num_pairs_;
  if (std::fflush(out_file) != 0) {
    return Status::Internal("flush failed for " + out_path);
  }
  return out;
}

}  // namespace nucleus
