#include "nucleus/em/semi_external_core.h"

#include <algorithm>
#include <cstdio>

#include "nucleus/dsf/disjoint_set.h"
#include "nucleus/em/pair_file.h"
#include "nucleus/util/scratch.h"

namespace nucleus {
namespace {

/// h-index of the multiset {min(values[u], cap) : u in neighbors}: the
/// largest h such that at least h entries are >= h. `counts` is caller
/// scratch of size >= cap + 1, zeroed on entry and re-zeroed before return.
Lambda HIndex(std::span<const VertexId> neighbors,
              const std::vector<Lambda>& values, Lambda cap,
              std::vector<std::int32_t>* counts) {
  for (VertexId u : neighbors) {
    ++(*counts)[std::min(values[u], cap)];
  }
  Lambda h = 0;
  std::int64_t at_least = 0;
  for (Lambda j = cap; j >= 1; --j) {
    at_least += (*counts)[j];
    if (at_least >= j) {
      h = j;
      break;
    }
  }
  // Re-zero only the touched slots.
  for (VertexId u : neighbors) {
    (*counts)[std::min(values[u], cap)] = 0;
  }
  return h;
}

}  // namespace

StatusOr<PeelResult> SemiExternalCoreLambda(AdjacencyFile& graph,
                                            int* passes) {
  const VertexId n = graph.NumVertices();
  PeelResult result;
  result.lambda.resize(n);
  Lambda max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    result.lambda[v] = static_cast<Lambda>(graph.Degree(v));
    max_degree = std::max(max_degree, result.lambda[v]);
  }

  // Gauss-Seidel h-index iteration: values only decrease and stay >= the
  // true core number, so in-place updates within a pass are safe and speed
  // convergence. Terminates because the total value sum strictly decreases
  // every changing pass.
  std::vector<std::int32_t> counts(static_cast<std::size_t>(max_degree) + 1,
                                   0);
  int rounds = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++rounds;
    Status scan = graph.ScanVertices(
        [&](VertexId v, std::span<const VertexId> neighbors) {
          const Lambda h =
              HIndex(neighbors, result.lambda, result.lambda[v], &counts);
          if (h < result.lambda[v]) {
            result.lambda[v] = h;
            changed = true;
          }
        });
    if (!scan.ok()) return scan;
  }
  if (passes != nullptr) *passes = rounds;
  result.max_lambda = 0;
  for (VertexId v = 0; v < n; ++v) {
    result.max_lambda = std::max(result.max_lambda, result.lambda[v]);
  }
  return result;
}

StatusOr<SemiExternalResult> SemiExternalCoreDecomposition(
    AdjacencyFile& graph, const std::string& temp_dir) {
  SemiExternalResult result;

  auto lambda_or = SemiExternalCoreLambda(graph, &result.lambda_passes);
  if (!lambda_or.ok()) return lambda_or.status();
  result.peel = std::move(*lambda_or);
  const std::vector<Lambda>& lambda = result.peel.lambda;
  const VertexId n = graph.NumVertices();

  // One edge scan: equal-lambda endpoints are unioned (components become
  // the maximal sub-cores T_{1,2}); lambda-crossing edges spill to disk as
  // (higher-lambda vertex, lower-lambda vertex) ADJ pairs.
  const std::string spill_path = UniqueScratchPath(temp_dir, "em_adj", ".pairs");
  const std::string sorted_path =
      UniqueScratchPath(temp_dir, "em_adj_sorted", ".pairs");
  // Declared before the PairFiles so the scratch files are closed before
  // they are removed, on success and on every early-error return.
  ScratchFileRemover spill_cleanup(spill_path);
  ScratchFileRemover sorted_cleanup(sorted_path);
  auto spill_or = PairFile::Create(spill_path);
  if (!spill_or.ok()) return spill_or.status();
  PairFile spill = std::move(*spill_or);

  DisjointSet vertex_sets(n);
  Status append_status = Status::Ok();
  Status scan = graph.ScanEdges([&](VertexId u, VertexId v) {
    if (!append_status.ok()) return;
    if (lambda[u] == lambda[v]) {
      vertex_sets.Union(u, v);
    } else if (lambda[u] > lambda[v]) {
      append_status = spill.Append(u, v);
    } else {
      append_status = spill.Append(v, u);
    }
  });
  if (!scan.ok()) return scan;
  if (!append_status.ok()) return append_status;
  if (Status s = spill.Flush(); !s.ok()) return s;
  result.num_adj = spill.NumPairs();

  // Skeleton nodes: one per sub-core (disjoint-set component). comp maps
  // every vertex to its node, so the skeleton build is total.
  SkeletonBuild& build = result.build;
  build.comp.assign(n, kInvalidId);
  std::vector<std::int32_t> node_of_root(n, kInvalidId);
  for (VertexId v = 0; v < n; ++v) {
    const std::int32_t r = vertex_sets.Find(v);
    if (node_of_root[r] == kInvalidId) {
      node_of_root[r] = build.skeleton.AddNode(lambda[v]);
    }
    build.comp[v] = node_of_root[r];
  }

  // External BuildHierarchy (Alg. 9): counting-sort the spilled pairs by
  // the lower endpoint's lambda, then consume bins in decreasing order.
  const std::int32_t num_bins = result.peel.max_lambda + 1;
  std::vector<std::int64_t> bin_begin;
  auto sorted_or = spill.SortByBin(
      [&lambda](std::int32_t /*hi*/, std::int32_t lo) { return lambda[lo]; },
      num_bins, sorted_path, &bin_begin);
  if (!sorted_or.ok()) return sorted_or.status();
  PairFile sorted = std::move(*sorted_or);

  HierarchySkeleton& skeleton = build.skeleton;
  std::vector<std::pair<std::int32_t, std::int32_t>> merge;
  for (Lambda k = result.peel.max_lambda; k >= 0; --k) {
    merge.clear();
    Status bin_scan = sorted.ScanRange(
        bin_begin[k], bin_begin[k + 1], [&](std::int32_t hi, std::int32_t lo) {
          const std::int32_t s = skeleton.FindRoot(build.comp[hi]);
          const std::int32_t t = skeleton.FindRoot(build.comp[lo]);
          if (s == t) return;
          if (skeleton.LambdaOf(s) > skeleton.LambdaOf(t)) {
            skeleton.AttachChild(s, t);
          } else {
            merge.emplace_back(s, t);  // equal lambda: same nucleus
          }
        });
    if (!bin_scan.ok()) return bin_scan;
    for (const auto& [s, t] : merge) skeleton.UnionR(s, t);
  }

  build.num_subnuclei = skeleton.NumNodes();
  build.root_id = skeleton.AddNode(kRootLambda);
  for (std::int32_t s = 0; s < build.root_id; ++s) {
    if (!skeleton.HasParent(s)) skeleton.SetParent(s, build.root_id);
  }

  result.io.Add(graph.stats());
  result.io.Add(spill.stats());
  result.io.Add(sorted.stats());
  return result;
}

}  // namespace nucleus
