// Disk-resident adjacency scanner: the edge substrate of the semi-external
// algorithms (paper Section 3.1 discusses the external-memory k-core works
// of Cheng et al., Khaouid et al. and Wen et al., and points out that they
// compute only the lambda values — the traversal that finds connected
// k-cores and the hierarchy "is at least as expensive as finding lambda
// values" in that model; src/nucleus/em exists to close that gap).
//
// Semi-external model: O(|V|) state in memory (the CSR offsets live here),
// edges stay on disk in the binary CSR format (graph/binary_io.h) and are
// only touched through block-buffered sequential scans. Every scan's IO is
// accounted in EmIoStats so benches can report passes and bytes like the EM
// literature does.
#ifndef NUCLEUS_EM_ADJACENCY_FILE_H_
#define NUCLEUS_EM_ADJACENCY_FILE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nucleus/util/common.h"
#include "nucleus/util/status.h"

namespace nucleus {

/// IO accounting for the external-memory algorithms.
struct EmIoStats {
  std::int64_t scans = 0;          // full sequential passes over edge data
  std::int64_t bytes_read = 0;     // from any em file
  std::int64_t bytes_written = 0;  // to any em file (spills)

  void Add(const EmIoStats& other) {
    scans += other.scans;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
  }
};

class AdjacencyFile {
 public:
  /// Opens a binary CSR graph file (graph/binary_io.h format), loading the
  /// header and the offsets array (the O(|V|) in-memory part) and leaving
  /// the adjacency array on disk. `block_bytes` sizes the scan buffer.
  static StatusOr<AdjacencyFile> Open(const std::string& path,
                                      std::size_t block_bytes = 1 << 20);

  AdjacencyFile(AdjacencyFile&&) = default;
  AdjacencyFile& operator=(AdjacencyFile&&) = default;

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size()) - 1;
  }
  std::int64_t NumEdges() const { return adj_size_ / 2; }
  std::int64_t Degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// One sequential pass over the adjacency array. Calls
  /// f(v, neighbors-of-v) for every vertex in increasing id order
  /// (isolated vertices included, with an empty span). Counts as one scan.
  Status ScanVertices(
      const std::function<void(VertexId, std::span<const VertexId>)>& f);

  /// One sequential pass reporting each undirected edge once as (u, v) with
  /// u < v. Built on ScanVertices; counts as one scan.
  Status ScanEdges(const std::function<void(VertexId, VertexId)>& f);

  const EmIoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EmIoStats(); }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  AdjacencyFile() = default;

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  std::vector<std::int64_t> offsets_;  // in-memory: |V| + 1 entries
  std::int64_t adj_size_ = 0;
  std::int64_t payload_begin_ = 0;  // file offset of the adjacency array
  std::size_t block_ints_ = 0;
  std::vector<VertexId> buffer_;   // scan block
  std::vector<VertexId> scratch_;  // assembles lists that straddle blocks
  EmIoStats stats_;
};

}  // namespace nucleus

#endif  // NUCLEUS_EM_ADJACENCY_FILE_H_
