// Append-only spill file of int32 pairs with block-buffered scans and a
// two-pass external counting sort — the disk-side ADJ list of the
// semi-external hierarchy construction.
//
// The paper's FND (Alg. 8) keeps its ADJ list of inter-sub-nucleus
// connections in memory; in the external-memory model that list (up to
// O(|E|) pairs) must spill to disk. BuildHierarchy (Alg. 9) only needs the
// pairs grouped by bin and visited in decreasing bin order, which an
// external counting sort delivers with one counting scan and one scatter
// scan, using O(num_bins) memory for offsets plus a small per-bin write
// buffer.
#ifndef NUCLEUS_EM_PAIR_FILE_H_
#define NUCLEUS_EM_PAIR_FILE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nucleus/em/adjacency_file.h"
#include "nucleus/util/status.h"

namespace nucleus {

class PairFile {
 public:
  /// Creates (or truncates) a pair file at `path` for appending.
  static StatusOr<PairFile> Create(const std::string& path,
                                   std::size_t buffer_pairs = 1 << 16);

  PairFile(PairFile&&) = default;
  PairFile& operator=(PairFile&&) = default;

  /// Buffered append of one (a, b) pair.
  Status Append(std::int32_t a, std::int32_t b);

  /// Flushes the append buffer to disk. Must be called before Scan /
  /// ScanRange / SortByBin observe all appended pairs.
  Status Flush();

  std::int64_t NumPairs() const { return num_pairs_; }

  /// Sequential scan of all pairs in append order.
  Status Scan(const std::function<void(std::int32_t, std::int32_t)>& f);

  /// Sequential scan of pairs [begin, end) (indices in append order for an
  /// unsorted file; bin-contiguous positions after SortByBin).
  Status ScanRange(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int32_t, std::int32_t)>& f);

  /// External counting sort: writes a new pair file at `out_path` where
  /// pairs are grouped by key(a, b) in increasing key order, and returns it
  /// together with `bin_begin` (size num_bins + 1; bin k occupies pair
  /// positions [bin_begin[k], bin_begin[k+1]) of the new file). Keys must
  /// lie in [0, num_bins). Two passes over this file, one scatter write.
  StatusOr<PairFile> SortByBin(
      const std::function<std::int32_t(std::int32_t, std::int32_t)>& key,
      std::int32_t num_bins, const std::string& out_path,
      std::vector<std::int64_t>* bin_begin);

  const EmIoStats& stats() const { return stats_; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  PairFile() = default;

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  std::int64_t num_pairs_ = 0;
  std::size_t buffer_pairs_ = 0;
  std::vector<std::int32_t> write_buffer_;  // flattened (a, b) pairs
  EmIoStats stats_;
};

}  // namespace nucleus

#endif  // NUCLEUS_EM_PAIR_FILE_H_
