#include "nucleus/em/semi_external_truss.h"

#include <algorithm>
#include <cstdio>

#include "nucleus/dsf/disjoint_set.h"
#include "nucleus/em/pair_file.h"
#include "nucleus/util/scratch.h"

namespace nucleus {
namespace {

/// In-memory edge table in EdgeIndex id order: endpoints sorted
/// lexicographically with (u, v), u < v, plus per-vertex bases so the
/// forward edges of a scanned vertex get their ids in O(1).
struct EdgeTable {
  std::vector<std::pair<VertexId, VertexId>> endpoints;
  std::vector<std::int64_t> forward_base;  // id of u's first forward edge

  EdgeId Find(VertexId u, VertexId v) const {
    if (u > v) std::swap(u, v);
    const auto it = std::lower_bound(endpoints.begin(), endpoints.end(),
                                     std::make_pair(u, v));
    if (it == endpoints.end() || *it != std::make_pair(u, v)) {
      return kInvalidId;
    }
    return static_cast<EdgeId>(it - endpoints.begin());
  }
};

StatusOr<EdgeTable> LoadEdgeTable(AdjacencyFile& graph) {
  EdgeTable table;
  table.endpoints.reserve(static_cast<std::size_t>(graph.NumEdges()));
  table.forward_base.assign(
      static_cast<std::size_t>(graph.NumVertices()) + 1, 0);
  Status scan = graph.ScanEdges([&table](VertexId u, VertexId v) {
    table.endpoints.emplace_back(u, v);  // emitted in (u, v) lex order
    ++table.forward_base[u + 1];
  });
  if (!scan.ok()) return scan;
  for (std::size_t u = 0; u + 1 < table.forward_base.size(); ++u) {
    table.forward_base[u + 1] += table.forward_base[u];
  }
  return table;
}

/// One sequential triangle enumeration: calls f(e_uv, e_uw, e_vw) for every
/// triangle u < v < w. Forward edge ids of the scanned vertex come from
/// forward_base; the closing edge by binary search.
template <typename F>
Status ScanTriangles(AdjacencyFile& graph, const EdgeTable& table, F&& f) {
  return graph.ScanVertices([&](VertexId u,
                                std::span<const VertexId> neighbors) {
    // Forward slice of the (sorted) neighbor list.
    std::size_t first_forward = 0;
    while (first_forward < neighbors.size() &&
           neighbors[first_forward] <= u) {
      ++first_forward;
    }
    const std::int64_t base = table.forward_base[u];
    for (std::size_t i = first_forward; i < neighbors.size(); ++i) {
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        const EdgeId closing = table.Find(neighbors[i], neighbors[j]);
        if (closing == kInvalidId) continue;
        const EdgeId e_uv =
            static_cast<EdgeId>(base + (i - first_forward));
        const EdgeId e_uw =
            static_cast<EdgeId>(base + (j - first_forward));
        f(e_uv, e_uw, closing);
      }
    }
  });
}

}  // namespace

StatusOr<std::vector<std::int32_t>> SemiExternalTriangleSupports(
    AdjacencyFile& graph) {
  auto table = LoadEdgeTable(graph);
  if (!table.ok()) return table.status();
  std::vector<std::int32_t> supports(table->endpoints.size(), 0);
  Status scan = ScanTriangles(graph, *table, [&](EdgeId a, EdgeId b,
                                                 EdgeId c) {
    ++supports[a];
    ++supports[b];
    ++supports[c];
  });
  if (!scan.ok()) return scan;
  return supports;
}

StatusOr<SemiExternalTrussResult> SemiExternalTrussDecomposition(
    AdjacencyFile& graph, const std::string& temp_dir) {
  SemiExternalTrussResult result;
  auto table_or = LoadEdgeTable(graph);
  if (!table_or.ok()) return table_or.status();
  const EdgeTable& table = *table_or;
  const std::int64_t m = static_cast<std::int64_t>(table.endpoints.size());

  std::vector<std::int32_t> supports(m, 0);
  if (Status s = ScanTriangles(graph, table,
                               [&](EdgeId a, EdgeId b, EdgeId c) {
                                 ++supports[a];
                                 ++supports[b];
                                 ++supports[c];
                               });
      !s.ok()) {
    return s;
  }

  // Wave-synchronous peel. States: 2 = alive, 1 = dying this wave,
  // 0 = dead (lambda final).
  result.peel.lambda.assign(m, 0);
  std::vector<char> state(m, 2);
  std::int64_t processed = 0;
  Lambda level = 0;
  while (processed < m) {
    // Kill sweep (in memory): alive edges at or below the level die now.
    bool any_dying = false;
    for (EdgeId e = 0; e < m; ++e) {
      if (state[e] == 2 && supports[e] <= level) {
        state[e] = 1;
        result.peel.lambda[e] = level;
        ++processed;
        any_dying = true;
      }
    }
    if (!any_dying) {
      ++level;
      continue;
    }
    // Charge sweep (one disk scan): a triangle dies in the wave where its
    // first edge dies; its still-alive edges each lose one support.
    ++result.waves;
    if (Status s = ScanTriangles(
            graph, table,
            [&](EdgeId a, EdgeId b, EdgeId c) {
              const EdgeId edges[3] = {a, b, c};
              int dying = 0;
              for (EdgeId e : edges) {
                if (state[e] == 0) return;  // died in an earlier wave
                dying += state[e] == 1;
              }
              if (dying == 0) return;
              for (EdgeId e : edges) {
                if (state[e] == 2) --supports[e];
              }
            });
        !s.ok()) {
      return s;
    }
    for (EdgeId e = 0; e < m; ++e) {
      if (state[e] == 1) state[e] = 0;
    }
  }
  for (EdgeId e = 0; e < m; ++e) {
    result.peel.max_lambda =
        std::max(result.peel.max_lambda, result.peel.lambda[e]);
  }

  // Hierarchy in one more triangle scan: union the minimum-lambda edges of
  // every triangle (strong triangle connectivity, Definition 5); spill
  // (higher-lambda edge, min-edge) ADJ pairs for the binned build.
  const std::vector<Lambda>& lambda = result.peel.lambda;
  const std::string spill_path =
      UniqueScratchPath(temp_dir, "em_truss_adj", ".pairs");
  const std::string sorted_path =
      UniqueScratchPath(temp_dir, "em_truss_adj_sorted", ".pairs");
  // Declared before the PairFiles so the scratch files are closed before
  // they are removed, on success and on every early-error return.
  ScratchFileRemover spill_cleanup(spill_path);
  ScratchFileRemover sorted_cleanup(sorted_path);
  auto spill_or = PairFile::Create(spill_path);
  if (!spill_or.ok()) return spill_or.status();
  PairFile spill = std::move(*spill_or);

  DisjointSet edge_sets(m);
  Status append_status = Status::Ok();
  if (Status s = ScanTriangles(
          graph, table,
          [&](EdgeId a, EdgeId b, EdgeId c) {
            if (!append_status.ok()) return;
            const EdgeId edges[3] = {a, b, c};
            EdgeId min_edge = a;
            for (EdgeId e : edges) {
              if (lambda[e] < lambda[min_edge]) min_edge = e;
            }
            for (EdgeId e : edges) {
              if (lambda[e] == lambda[min_edge]) {
                edge_sets.Union(e, min_edge);
              } else {
                append_status = spill.Append(e, min_edge);
                if (!append_status.ok()) return;
              }
            }
          });
      !s.ok()) {
    return s;
  }
  if (!append_status.ok()) return append_status;
  if (Status s = spill.Flush(); !s.ok()) return s;
  result.num_adj = spill.NumPairs();

  SkeletonBuild& build = result.build;
  build.comp.assign(m, kInvalidId);
  std::vector<std::int32_t> node_of_root(m, kInvalidId);
  for (EdgeId e = 0; e < m; ++e) {
    const std::int32_t r = edge_sets.Find(e);
    if (node_of_root[r] == kInvalidId) {
      node_of_root[r] = build.skeleton.AddNode(lambda[e]);
    }
    build.comp[e] = node_of_root[r];
  }

  const std::int32_t num_bins = result.peel.max_lambda + 1;
  std::vector<std::int64_t> bin_begin;
  auto sorted_or = spill.SortByBin(
      [&lambda](std::int32_t /*hi*/, std::int32_t lo) { return lambda[lo]; },
      num_bins, sorted_path, &bin_begin);
  if (!sorted_or.ok()) return sorted_or.status();
  PairFile sorted = std::move(*sorted_or);

  HierarchySkeleton& skeleton = build.skeleton;
  std::vector<std::pair<std::int32_t, std::int32_t>> merge;
  for (Lambda k = result.peel.max_lambda; k >= 0; --k) {
    merge.clear();
    Status bin_scan = sorted.ScanRange(
        bin_begin[k], bin_begin[k + 1],
        [&](std::int32_t hi, std::int32_t lo) {
          const std::int32_t s = skeleton.FindRoot(build.comp[hi]);
          const std::int32_t t = skeleton.FindRoot(build.comp[lo]);
          if (s == t) return;
          if (skeleton.LambdaOf(s) > skeleton.LambdaOf(t)) {
            skeleton.AttachChild(s, t);
          } else {
            merge.emplace_back(s, t);
          }
        });
    if (!bin_scan.ok()) return bin_scan;
    for (const auto& [s, t] : merge) skeleton.UnionR(s, t);
  }

  build.num_subnuclei = skeleton.NumNodes();
  build.root_id = skeleton.AddNode(kRootLambda);
  for (std::int32_t s = 0; s < build.root_id; ++s) {
    if (!skeleton.HasParent(s)) skeleton.SetParent(s, build.root_id);
  }

  result.io.Add(graph.stats());
  result.io.Add(spill.stats());
  result.io.Add(sorted.stats());
  return result;
}

}  // namespace nucleus
