// Semi-external k-truss ((2,3)-nucleus) decomposition WITH hierarchy.
//
// The paper's Section 3.2: "external memory k-truss decomposition [Wang &
// Cheng, PVLDB'12] would be more expensive and require more intricate
// algorithms if it is done to find connected subgraphs by doing the
// traversal in external memory model. We believe that our algorithms for
// efficiently finding the k-trusses and constructing the hierarchy will be
// helpful to deal with this issue." This module is that algorithm.
//
// Model: O(|E|) state in memory (edge endpoints, supports, lambda — the
// standard semi-external truss budget of Wang & Cheng), adjacency on disk,
// triangles never materialized: each enumeration is one sequential vertex
// scan that pairs forward neighbors and confirms the closing edge with a
// binary search in the in-memory endpoint table.
//
// Peeling is wave-synchronous (the ParK schema of parallel/parallel_peel.h
// driven by disk scans): at support level k, all alive edges at <= k die
// together, one triangle scan charges each still-live triangle exactly
// once, and the level advances when a sweep finds nothing to kill. Waves —
// not edges — bound the number of disk scans.
//
// The hierarchy then costs ONE more triangle scan (the FND harvesting
// idea): every triangle unions its minimum-lambda edges (Definition 5's
// strong triangle connectivity) and spills (higher, min) edge pairs to
// disk; an external counting sort plus the binned BuildHierarchy (Alg. 9)
// finishes the job without any graph traversal.
#ifndef NUCLEUS_EM_SEMI_EXTERNAL_TRUSS_H_
#define NUCLEUS_EM_SEMI_EXTERNAL_TRUSS_H_

#include <string>
#include <utility>
#include <vector>

#include "nucleus/core/types.h"
#include "nucleus/em/adjacency_file.h"
#include "nucleus/util/status.h"

namespace nucleus {

/// Result of a semi-external (2,3) decomposition. Edge ids follow the
/// EdgeIndex convention (lexicographic by (u, v), u < v), so `peel` and
/// `build` are directly comparable with the in-memory algorithms.
struct SemiExternalTrussResult {
  PeelResult peel;
  SkeletonBuild build;
  /// Disk triangle scans consumed by the peeling waves.
  int waves = 0;
  /// Spilled lambda-crossing (edge, min-edge) pairs.
  std::int64_t num_adj = 0;
  /// Aggregate IO over the graph file and the spill files.
  EmIoStats io;
};

/// Support (triangle count) of every edge in one disk scan — exposed for
/// tests and as the building block of the wave peel.
StatusOr<std::vector<std::int32_t>> SemiExternalTriangleSupports(
    AdjacencyFile& graph);

/// Full semi-external k-truss decomposition: trussness of every edge,
/// maximal sub-(2,3)-nuclei, and the complete hierarchy-skeleton.
/// `temp_dir` hosts the ADJ spill files (removed on success).
StatusOr<SemiExternalTrussResult> SemiExternalTrussDecomposition(
    AdjacencyFile& graph, const std::string& temp_dir);

}  // namespace nucleus

#endif  // NUCLEUS_EM_SEMI_EXTERNAL_TRUSS_H_
