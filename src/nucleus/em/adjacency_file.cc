#include "nucleus/em/adjacency_file.h"

#include <algorithm>
#include <cstring>

#include "nucleus/graph/binary_io.h"

namespace nucleus {

StatusOr<AdjacencyFile> AdjacencyFile::Open(const std::string& path,
                                            std::size_t block_bytes) {
  auto header = ReadBinaryGraphHeader(path);
  if (!header.ok()) return header.status();

  AdjacencyFile af;
  af.path_ = path;
  af.file_.reset(std::fopen(path.c_str(), "rb"));
  if (af.file_ == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  af.adj_size_ = header->adj_size;

  // Header is magic(8) + version(4) + |V|(4) + adj_size(8) = 24 bytes,
  // followed by the offsets array, then the adjacency payload.
  const std::size_t num_offsets =
      static_cast<std::size_t>(header->num_vertices) + 1;
  if (std::fseek(af.file_.get(), 24, SEEK_SET) != 0) {
    return Status::Internal("seek failed in " + path);
  }
  af.offsets_.resize(num_offsets);
  if (std::fread(af.offsets_.data(), sizeof(std::int64_t), num_offsets,
                 af.file_.get()) != num_offsets) {
    return Status::OutOfRange("truncated offsets in " + path);
  }
  af.stats_.bytes_read +=
      static_cast<std::int64_t>(num_offsets * sizeof(std::int64_t));
  if (af.offsets_.front() != 0 || af.offsets_.back() != af.adj_size_) {
    return Status::InvalidArgument("corrupt offsets in " + path);
  }
  for (std::size_t v = 0; v + 1 < af.offsets_.size(); ++v) {
    if (af.offsets_[v] > af.offsets_[v + 1]) {
      return Status::InvalidArgument("non-monotone offsets in " + path);
    }
  }
  af.payload_begin_ = 24 + static_cast<std::int64_t>(num_offsets *
                                                     sizeof(std::int64_t));
  af.block_ints_ = std::max<std::size_t>(block_bytes / sizeof(VertexId), 16);
  af.buffer_.reserve(af.block_ints_);
  return af;
}

Status AdjacencyFile::ScanVertices(
    const std::function<void(VertexId, std::span<const VertexId>)>& f) {
  std::FILE* file = file_.get();
  if (std::fseek(file, static_cast<long>(payload_begin_), SEEK_SET) != 0) {
    return Status::Internal("seek failed in " + path_);
  }
  ++stats_.scans;

  std::int64_t consumed = 0;   // adjacency ints consumed so far
  std::size_t buf_pos = 0;     // read cursor inside buffer_
  buffer_.clear();

  // Refills buffer_ so that at least min(want, block) ints are available
  // from buf_pos; returns the number of ints available.
  auto available = [&]() { return buffer_.size() - buf_pos; };
  auto refill = [&]() -> Status {
    // Shift the unconsumed tail to the front, then top up from disk.
    if (buf_pos > 0) {
      buffer_.erase(buffer_.begin(), buffer_.begin() + buf_pos);
      buf_pos = 0;
    }
    const std::size_t old_size = buffer_.size();
    const std::int64_t remaining_ints =
        adj_size_ - consumed - static_cast<std::int64_t>(old_size);
    const std::size_t want = std::min<std::int64_t>(
        static_cast<std::int64_t>(block_ints_ - old_size), remaining_ints);
    if (want == 0) return Status::Ok();
    buffer_.resize(old_size + want);
    if (std::fread(buffer_.data() + old_size, sizeof(VertexId), want, file) !=
        want) {
      return Status::OutOfRange("truncated adjacency in " + path_);
    }
    stats_.bytes_read += static_cast<std::int64_t>(want * sizeof(VertexId));
    return Status::Ok();
  };

  const VertexId n = NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t deg = static_cast<std::size_t>(Degree(v));
    if (deg == 0) {
      f(v, {});
      continue;
    }
    if (available() < deg) {
      if (Status s = refill(); !s.ok()) return s;
    }
    if (available() >= deg) {
      f(v, {buffer_.data() + buf_pos, deg});
      buf_pos += deg;
    } else {
      // List longer than the block: assemble it in the scratch buffer
      // (semi-external model permits O(max-degree) scratch).
      scratch_.assign(buffer_.begin() + buf_pos, buffer_.end());
      const std::size_t have = scratch_.size();
      scratch_.resize(deg);
      const std::size_t need = deg - have;
      if (std::fread(scratch_.data() + have, sizeof(VertexId), need, file) !=
          need) {
        return Status::OutOfRange("truncated adjacency in " + path_);
      }
      stats_.bytes_read += static_cast<std::int64_t>(need * sizeof(VertexId));
      buffer_.clear();
      buf_pos = 0;
      f(v, {scratch_.data(), deg});
    }
    consumed += static_cast<std::int64_t>(deg);
  }
  return Status::Ok();
}

Status AdjacencyFile::ScanEdges(
    const std::function<void(VertexId, VertexId)>& f) {
  return ScanVertices([&f](VertexId u, std::span<const VertexId> neighbors) {
    for (VertexId v : neighbors) {
      if (u < v) f(u, v);
    }
  });
}

}  // namespace nucleus
