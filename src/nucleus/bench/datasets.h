// Deterministic synthetic stand-ins for the nine evaluation graphs of the
// paper (Table 3). The real graphs (SNAP / Network Repository / UF) are not
// available offline; each proxy reproduces the structural regime that
// drives the paper's runtime behaviour — |E|/|V|, |triangle|/|E| and
// |K4|/|triangle| — at a laptop scale where even the Naive baseline
// finishes. See DESIGN.md §3 for the substitution rationale.
#ifndef NUCLEUS_BENCH_DATASETS_H_
#define NUCLEUS_BENCH_DATASETS_H_

#include <functional>
#include <string>
#include <vector>

#include "nucleus/graph/graph.h"

namespace nucleus {

struct DatasetSpec {
  std::string name;        // e.g. "stanford3-syn"
  std::string paper_name;  // e.g. "Stanford3"
  std::string regime;      // one-line description of the structural regime
  std::function<Graph()> make;
};

/// The nine proxies, in the paper's Table 3 row order.
const std::vector<DatasetSpec>& PaperDatasets();

/// Spec by name; aborts if unknown.
const DatasetSpec& DatasetByName(const std::string& name);

/// The three graphs of the paper's headline Table 1
/// (Stanford3, twitter-hb, uk-2005).
std::vector<std::string> Table1DatasetNames();

}  // namespace nucleus

#endif  // NUCLEUS_BENCH_DATASETS_H_
