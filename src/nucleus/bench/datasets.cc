#include "nucleus/bench/datasets.h"

#include "nucleus/graph/generators.h"

namespace nucleus {

const std::vector<DatasetSpec>& PaperDatasets() {
  static const std::vector<DatasetSpec>* const kDatasets = new std::vector<
      DatasetSpec>{
      {"skitter-syn", "skitter", "sparse internet topology, modest clustering",
       [] { return RMat(15, 280000, 0.57, 0.19, 0.19, 1001); }},
      {"berkeley13-syn", "Berkeley13",
       "dense facebook100-style social network",
       [] { return PlantedPartition(14, 120, 0.50, 0.008, 1002); }},
      {"mit-syn", "MIT", "small dense facebook100-style social network",
       [] { return PlantedPartition(10, 90, 0.55, 0.012, 1003); }},
      {"stanford3-syn", "Stanford3",
       "dense facebook100-style social network",
       [] { return PlantedPartition(12, 130, 0.50, 0.008, 1004); }},
      {"texas84-syn", "Texas84",
       "larger dense facebook100-style social network",
       [] { return PlantedPartition(18, 130, 0.45, 0.006, 1005); }},
      {"twitter-hb-syn", "twitter-hb",
       "skewed follower graph with heavy triadic closure",
       [] {
         return WithTriadicClosure(BarabasiAlbert(12000, 10, 1006), 120000,
                                   1007);
       }},
      {"google-syn", "Google", "sparse web graph, low clique density",
       [] { return RMat(16, 400000, 0.45, 0.25, 0.20, 1008); }},
      {"uk-2005-syn", "uk-2005",
       "clique-heavy web-host graph (extreme |K4|/|triangle|)",
       [] { return MixedCaveman(36, 16, 48, 220, 1009); }},
      {"wiki-0611-syn", "wiki-0611", "large sparse graph, low clique ratios",
       [] { return RMat(15, 340000, 0.52, 0.22, 0.20, 1010); }},
  };
  return *kDatasets;
}

const DatasetSpec& DatasetByName(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name || spec.paper_name == name) return spec;
  }
  NUCLEUS_CHECK_MSG(false, ("unknown dataset: " + name).c_str());
  static DatasetSpec dummy;
  return dummy;
}

std::vector<std::string> Table1DatasetNames() {
  return {"stanford3-syn", "twitter-hb-syn", "uk-2005-syn"};
}

}  // namespace nucleus
