#include "nucleus/bench/runner.h"

#include "nucleus/cliques/edge_index.h"
#include "nucleus/cliques/triangle_index.h"
#include "nucleus/core/naive_traversal.h"
#include "nucleus/core/peeling.h"
#include "nucleus/util/timer.h"

namespace nucleus {

BenchRun RunBench(const Graph& g, Family family, Algorithm algorithm,
                  const ParallelConfig& parallel) {
  DecomposeOptions options;
  options.family = family;
  options.algorithm = algorithm;
  options.build_tree = false;
  options.collect_nuclei = false;
  options.parallel = parallel;
  const DecompositionResult result = Decompose(g, options);

  BenchRun run;
  run.algorithm = algorithm;
  run.peel_seconds =
      result.timings.index_seconds + result.timings.peel_seconds;
  run.post_seconds = result.timings.traverse_seconds;
  run.total_seconds = result.timings.total_seconds;
  run.num_subnuclei = result.num_subnuclei;
  run.num_adj = result.num_adj;
  run.num_cliques = result.num_cliques;
  run.max_lambda = result.peel.max_lambda;
  return run;
}

double RunTotalSeconds(const Graph& g, Family family, Algorithm algorithm,
                       const ParallelConfig& parallel) {
  return RunBench(g, family, algorithm, parallel).total_seconds;
}

namespace {

template <typename Space>
NaiveBenchRun NaiveOnSpace(const Space& space, double elapsed_index,
                           double budget_seconds) {
  Timer timer;
  const PeelResult peel = Peel(space);
  const double after_peel = elapsed_index + timer.Seconds();
  timer.Restart();
  const NaiveStats stats = NaiveTraversalBudgeted(
      space, peel.lambda, peel.max_lambda, budget_seconds);
  NaiveBenchRun run;
  run.total_seconds = after_peel + timer.Seconds();
  run.completed = stats.completed;
  return run;
}

}  // namespace

NaiveBenchRun RunNaiveBudgeted(const Graph& g, Family family,
                               double budget_seconds) {
  Timer timer;
  switch (family) {
    case Family::kCore12: {
      return NaiveOnSpace(VertexSpace(g), 0.0, budget_seconds);
    }
    case Family::kTruss23: {
      const EdgeIndex edges = EdgeIndex::Build(g);
      return NaiveOnSpace(EdgeSpace(g, edges), timer.Seconds(),
                          budget_seconds);
    }
    case Family::kNucleus34: {
      const EdgeIndex edges = EdgeIndex::Build(g);
      const TriangleIndex triangles = TriangleIndex::Build(g, edges);
      return NaiveOnSpace(TriangleSpace(g, edges, triangles), timer.Seconds(),
                          budget_seconds);
    }
  }
  NUCLEUS_CHECK_MSG(false, "unknown family");
  return {};
}

}  // namespace nucleus
