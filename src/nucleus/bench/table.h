// Fixed-width table rendering for the paper-reproduction benchmark
// binaries, plus the number formats the paper's tables use.
#ifndef NUCLEUS_BENCH_TABLE_H_
#define NUCLEUS_BENCH_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nucleus {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with right-aligned cells (first column left-aligned) and a
  /// header separator.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.58x" (two decimals) — the speedup format of Tables 1, 4 and 5.
std::string FormatSpeedup(double speedup);

/// Seconds with millisecond resolution, e.g. "1.94" / "0.051".
std::string FormatSeconds(double seconds);

/// Counts with the paper's K/M/B suffixes, e.g. "11.1M", "852.4K", "837".
std::string FormatCount(std::int64_t count);

/// Fixed precision double, e.g. "6.54".
std::string FormatDouble(double value, int precision);

}  // namespace nucleus

#endif  // NUCLEUS_BENCH_TABLE_H_
