#include "nucleus/bench/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "nucleus/util/common.h"

namespace nucleus {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  NUCLEUS_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string FormatSpeedup(double speedup) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", speedup);
  return buffer;
}

std::string FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds < 0.1) {
    std::snprintf(buffer, sizeof(buffer), "%.4f", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", seconds);
  }
  return buffer;
}

std::string FormatCount(std::int64_t count) {
  char buffer[64];
  const double v = static_cast<double>(count);
  if (count >= 1000000000) {
    std::snprintf(buffer, sizeof(buffer), "%.1fB", v / 1e9);
  } else if (count >= 1000000) {
    std::snprintf(buffer, sizeof(buffer), "%.1fM", v / 1e6);
  } else if (count >= 10000) {
    std::snprintf(buffer, sizeof(buffer), "%.1fK", v / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(count));
  }
  return buffer;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace nucleus
