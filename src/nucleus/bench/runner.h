// Timed algorithm runs for the paper-reproduction benchmarks: thin wrappers
// around Decompose that report the phase split the paper's tables and
// Figure 6 use. Skeleton construction only (build_tree = false): the
// hierarchy-skeleton plus the comp assignment is the algorithms' output in
// the paper ("Report All the Nuclei by hrc, comp").
#ifndef NUCLEUS_BENCH_RUNNER_H_
#define NUCLEUS_BENCH_RUNNER_H_

#include <string>

#include "nucleus/core/decomposition.h"
#include "nucleus/graph/graph.h"
#include "nucleus/parallel/parallel_config.h"

namespace nucleus {

struct BenchRun {
  Algorithm algorithm;
  /// Peeling phase including clique-index construction (the paper's peeling
  /// numbers include triangle/K4 support computation).
  double peel_seconds = 0.0;
  /// Traversal (Naive/DFT/Hypo) or BuildHierarchy (FND) phase.
  double post_seconds = 0.0;
  double total_seconds = 0.0;
  std::int64_t num_subnuclei = 0;
  std::int64_t num_adj = 0;
  std::int64_t num_cliques = 0;
  Lambda max_lambda = 0;
};

/// Runs `algorithm` on `g` for `family` and returns the timing split.
/// `parallel` threads the run (default serial, matching the paper's
/// single-thread tables).
BenchRun RunBench(const Graph& g, Family family, Algorithm algorithm,
                  const ParallelConfig& parallel = {});

/// Convenience: total seconds of a run.
double RunTotalSeconds(const Graph& g, Family family, Algorithm algorithm,
                       const ParallelConfig& parallel = {});

/// Naive (Alg. 3) with a traversal deadline. When the deadline fires the
/// returned time is a LOWER BOUND and `completed` is false — the bench
/// tables star such entries, as the paper does for its 2-day timeouts.
struct NaiveBenchRun {
  double total_seconds = 0.0;
  bool completed = true;
};
NaiveBenchRun RunNaiveBudgeted(const Graph& g, Family family,
                               double budget_seconds);

}  // namespace nucleus

#endif  // NUCLEUS_BENCH_RUNNER_H_
