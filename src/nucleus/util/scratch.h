// Unique scratch-file naming for disk-backed algorithms. Multiple processes
// (e.g. parallel ctest invocations) and multiple in-process calls may share
// one temp directory; fixed scratch names would silently corrupt each other.
#ifndef NUCLEUS_UTIL_SCRATCH_H_
#define NUCLEUS_UTIL_SCRATCH_H_

#include <string>
#include <utility>

namespace nucleus {

/// Returns `dir/stem.<pid>.<seq><suffix>` where <seq> is a process-wide
/// atomic counter, so every call yields a path no other live call (in this
/// process or another) is using. The file is not created.
std::string UniqueScratchPath(const std::string& dir, const std::string& stem,
                              const std::string& suffix);

/// Removes `path` on destruction (best effort; a path that was never
/// created is fine). Declare one before opening the scratch file so the
/// removal runs after the file object has closed, on every exit path.
class ScratchFileRemover {
 public:
  explicit ScratchFileRemover(std::string path) : path_(std::move(path)) {}
  ~ScratchFileRemover();
  ScratchFileRemover(const ScratchFileRemover&) = delete;
  ScratchFileRemover& operator=(const ScratchFileRemover&) = delete;

 private:
  std::string path_;
};

}  // namespace nucleus

#endif  // NUCLEUS_UTIL_SCRATCH_H_
