#include "nucleus/util/bucket_queue.h"

#include <algorithm>

namespace nucleus {

void PeelingBucketQueue::Init(const std::vector<std::int32_t>& values) {
  const std::int64_t n = static_cast<std::int64_t>(values.size());
  values_ = values;
  order_.assign(n, 0);
  pos_.assign(n, 0);
  cursor_ = 0;

  std::int32_t max_value = 0;
  for (std::int32_t v : values) {
    NUCLEUS_CHECK(v >= 0);
    max_value = std::max(max_value, v);
  }

  // Counting sort of ids by key.
  std::vector<std::int64_t> count(max_value + 2, 0);
  for (std::int32_t v : values) ++count[v + 1];
  for (std::int32_t v = 0; v <= max_value; ++v) count[v + 1] += count[v];
  bin_start_ = count;  // bin_start_[v] = first position of key v
  std::vector<std::int64_t> fill = count;
  for (CliqueId id = 0; id < n; ++id) {
    const std::int64_t p = fill[values[id]]++;
    order_[p] = id;
    pos_[id] = p;
  }
  bin_start_.pop_back();  // drop the terminal sentinel
}

CliqueId PeelingBucketQueue::PopMin(std::int32_t* value) {
  NUCLEUS_CHECK(!Empty());
  const CliqueId id = order_[cursor_];
  ++cursor_;
  if (value != nullptr) *value = values_[id];
  return id;
}

void PeelingBucketQueue::Decrement(CliqueId id) {
  NUCLEUS_CHECK(!Popped(id));
  const std::int32_t v = values_[id];
  NUCLEUS_CHECK(v > 0);
  // Move `id` to the front of its bin, then shrink the bin from the left so
  // the order_ array stays sorted by current key.
  std::int64_t& front = bin_start_[v];
  if (front < cursor_) front = cursor_;  // bin front cannot precede cursor
  const std::int64_t p = pos_[id];
  const CliqueId other = order_[front];
  if (other != id) {
    std::swap(order_[front], order_[p]);
    pos_[other] = p;
    pos_[id] = front;
  }
  ++front;
  --values_[id];
}

MaxBucketFrontier::MaxBucketFrontier(std::int32_t max_value) {
  NUCLEUS_CHECK(max_value >= 0);
  buckets_.resize(max_value + 1);
}

void MaxBucketFrontier::Push(CliqueId id, std::int32_t value) {
  NUCLEUS_CHECK(value >= 0 &&
                value < static_cast<std::int32_t>(buckets_.size()));
  buckets_[value].push_back(id);
  current_max_ = std::max(current_max_, value);
  ++size_;
}

CliqueId MaxBucketFrontier::PopMax(std::int32_t* value) {
  NUCLEUS_CHECK(!Empty());
  while (buckets_[current_max_].empty()) --current_max_;
  const CliqueId id = buckets_[current_max_].back();
  buckets_[current_max_].pop_back();
  --size_;
  if (value != nullptr) *value = current_max_;
  return id;
}

}  // namespace nucleus
