// Deterministic random number generation for graph generators and tests.
#ifndef NUCLEUS_UTIL_RNG_H_
#define NUCLEUS_UTIL_RNG_H_

#include <cstdint>
#include <random>

#include "nucleus/util/common.h"

namespace nucleus {

/// Thin wrapper over std::mt19937_64 with convenience draws. All generators
/// take an explicit seed so every dataset in the repository is reproducible
/// bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform vertex id in [0, n). Requires n > 0.
  VertexId UniformVertex(VertexId n);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nucleus

#endif  // NUCLEUS_UTIL_RNG_H_
