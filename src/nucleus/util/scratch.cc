#include "nucleus/util/scratch.h"

#include <atomic>
#include <cstdint>
#include <cstdio>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace nucleus {

namespace {
long ProcessId() {
#ifdef _WIN32
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(getpid());
#endif
}
}  // namespace

ScratchFileRemover::~ScratchFileRemover() { std::remove(path_.c_str()); }

std::string UniqueScratchPath(const std::string& dir, const std::string& stem,
                              const std::string& suffix) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
  return dir + "/" + stem + "." + std::to_string(ProcessId()) + "." +
         std::to_string(seq) + suffix;
}

}  // namespace nucleus
