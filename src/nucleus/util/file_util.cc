#include "nucleus/util/file_util.h"

#include <sys/types.h>

namespace nucleus {

StatusOr<std::int64_t> FileSize(std::FILE* f, const std::string& path) {
  // ftello/fseeko keep off_t width even where long is 32-bit, so files
  // past 2 GiB size correctly (the validating readers compare against
  // header-derived totals and would otherwise reject valid large files).
  const off_t pos = ::ftello(f);
  if (pos < 0 || ::fseeko(f, 0, SEEK_END) != 0) {
    return Status::Internal("cannot stat " + path);
  }
  const off_t size = ::ftello(f);
  if (size < 0 || ::fseeko(f, pos, SEEK_SET) != 0) {
    return Status::Internal("cannot stat " + path);
  }
  return static_cast<std::int64_t>(size);
}

}  // namespace nucleus
