// Clang thread-safety (capability) analysis macros.
//
// These expand to __attribute__((...)) under Clang and to nothing
// elsewhere, so annotated code compiles unchanged with GCC/MSVC. The
// analysis itself is enabled by the `clang-analyze` CMake preset
// (-Wthread-safety -Wthread-safety-beta promoted to errors); see the
// root README and src/nucleus/serve/README.md ("Concurrency
// contracts") for how the serving tier uses them.
//
// Naming follows the upstream capability vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   GUARDED_BY(mu)      data member readable/writable only under mu
//   PT_GUARDED_BY(mu)   pointee (not the pointer) guarded by mu
//   REQUIRES(mu)        caller must already hold mu
//   ACQUIRE / RELEASE   function takes / drops the capability
//   EXCLUDES(mu)        caller must NOT hold mu (deadlock guard)
//   ACQUIRED_AFTER(...) static lock-order edge, checked under
//                       -Wthread-safety-beta
//
// Apply them to the annotated wrappers in util/mutex.h, not to raw std
// primitives — nucleus_lint rejects naked std::mutex members in src/.
#ifndef NUCLEUS_UTIL_THREAD_ANNOTATIONS_H_
#define NUCLEUS_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define NUCLEUS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NUCLEUS_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// -- Type attributes ---------------------------------------------------

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define CAPABILITY(x) NUCLEUS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY NUCLEUS_THREAD_ANNOTATION_(scoped_lockable)

// -- Data-member attributes --------------------------------------------

/// The member may only be accessed while holding `x`.
#define GUARDED_BY(x) NUCLEUS_THREAD_ANNOTATION_(guarded_by(x))

/// The pointed-to data (not the pointer itself) is guarded by `x`.
#define PT_GUARDED_BY(x) NUCLEUS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// This capability must be acquired after the listed ones
/// (lock-order edges; enforced under -Wthread-safety-beta).
#define ACQUIRED_AFTER(...) \
  NUCLEUS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// This capability must be acquired before the listed ones.
#define ACQUIRED_BEFORE(...) \
  NUCLEUS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

// -- Function attributes -----------------------------------------------

/// Caller must hold the listed capabilities exclusively.
#define REQUIRES(...) \
  NUCLEUS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold the listed capabilities at least shared.
#define REQUIRES_SHARED(...) \
  NUCLEUS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability exclusively; caller must not
/// already hold it.
#define ACQUIRE(...) \
  NUCLEUS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function acquires the capability shared.
#define ACQUIRE_SHARED(...) \
  NUCLEUS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the (exclusively held) capability.
#define RELEASE(...) \
  NUCLEUS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function releases the (shared) capability.
#define RELEASE_SHARED(...) \
  NUCLEUS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function releases the capability whether held shared or
/// exclusively (use on destructors of reader/writer scopes).
#define RELEASE_GENERIC(...) \
  NUCLEUS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// The function attempts the acquire and returns `b` on success.
#define TRY_ACQUIRE(b, ...) \
  NUCLEUS_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

#define TRY_ACQUIRE_SHARED(b, ...) \
  NUCLEUS_THREAD_ANNOTATION_(try_acquire_shared_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (the function acquires
/// them itself; re-entry would deadlock on std primitives).
#define EXCLUDES(...) NUCLEUS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the calling thread holds the
/// capability — for code reachable only under a lock taken elsewhere.
#define ASSERT_CAPABILITY(x) NUCLEUS_THREAD_ANNOTATION_(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  NUCLEUS_THREAD_ANNOTATION_(assert_shared_capability(x))

/// The function returns a reference to the named capability (so
/// `Lock l(obj->mu());` resolves to the member, not an opaque value).
#define RETURN_CAPABILITY(x) NUCLEUS_THREAD_ANNOTATION_(lock_returned(x))

/// Turns the analysis off for one function. Use only with a comment
/// explaining why the invariant holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  NUCLEUS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // NUCLEUS_UTIL_THREAD_ANNOTATIONS_H_
