// Wall-clock timer used by the benchmark harness and the decomposition
// facade to report per-phase timings (peeling vs post-processing), mirroring
// the paper's Figure 6 breakdown.
#ifndef NUCLEUS_UTIL_TIMER_H_
#define NUCLEUS_UTIL_TIMER_H_

#include <chrono>

namespace nucleus {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nucleus

#endif  // NUCLEUS_UTIL_TIMER_H_
