// Strict numeric parsing shared by the CLI flag parser and the serve
// request protocol: one definition of "the whole token must be one
// number", so the two surfaces cannot drift.
#ifndef NUCLEUS_UTIL_PARSE_UTIL_H_
#define NUCLEUS_UTIL_PARSE_UTIL_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace nucleus {

/// Caps an untrusted token for echoing in an error message: good
/// diagnostics must not be an amplifier, so a megabyte of garbage never
/// becomes a megabyte of error. 64 characters is plenty to spot a typo.
inline std::string TruncateForEcho(const std::string& token) {
  constexpr std::size_t kMaxEcho = 64;
  if (token.size() <= kMaxEcho) return token;
  return token.substr(0, kMaxEcho) + "...";
}

/// Parses `token` as one base-10 int64. Rejects empty tokens, trailing
/// garbage ("3x"), and out-of-range values; leaves *value untouched on
/// failure. The whole token must be the number: strtoll on its own would
/// skip leading whitespace (" 42") and accept an explicit plus sign
/// ("+7"), so the first character is required to be a digit or '-' before
/// strtoll ever runs.
inline bool StrictParseInt64(const std::string& token, std::int64_t* value) {
  if (token.empty()) return false;
  const char first = token.front();
  if (first != '-' && (first < '0' || first > '9')) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) return false;
  *value = static_cast<std::int64_t>(parsed);
  return true;
}

}  // namespace nucleus

#endif  // NUCLEUS_UTIL_PARSE_UTIL_H_
