// Small stdio helpers shared by the binary readers (graph/binary_io,
// store/snapshot).
#ifndef NUCLEUS_UTIL_FILE_UTIL_H_
#define NUCLEUS_UTIL_FILE_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "nucleus/util/status.h"

namespace nucleus {

/// fclose-on-scope-exit wrapper so every early return closes the stream.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Size of an open stream in bytes, preserving the current position.
/// `path` is only used for error messages.
StatusOr<std::int64_t> FileSize(std::FILE* f, const std::string& path);

}  // namespace nucleus

#endif  // NUCLEUS_UTIL_FILE_UTIL_H_
