// Core type aliases and invariant-checking macros shared by every module.
#ifndef NUCLEUS_UTIL_COMMON_H_
#define NUCLEUS_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace nucleus {

/// Vertex identifier. Graphs are limited to 2^31 - 1 vertices.
using VertexId = std::int32_t;

/// Edge identifier (index into EdgeIndex). Limited to 2^31 - 1 edges.
using EdgeId = std::int32_t;

/// Triangle identifier (index into TriangleIndex).
using TriangleId = std::int32_t;

/// Generic K_r identifier used by the decomposition algorithms: a VertexId
/// for (1,2), an EdgeId for (2,3), a TriangleId for (3,4).
using CliqueId = std::int32_t;

/// Peeling number (lambda). kUnsetLambda marks "not yet assigned"; the
/// artificial hierarchy root uses kRootLambda so genuine lambda = 0
/// sub-nuclei are not merged into it.
using Lambda = std::int32_t;

inline constexpr CliqueId kInvalidId = -1;
inline constexpr Lambda kUnsetLambda = -1;
inline constexpr Lambda kRootLambda = -1;

}  // namespace nucleus

/// CHECK-style invariant assertion, active in all build types. The library
/// does not use exceptions (Google style); violated internal invariants
/// abort with a source location.
#define NUCLEUS_CHECK(cond)                                                    \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "NUCLEUS_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                           \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

#define NUCLEUS_CHECK_MSG(cond, msg)                                           \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "NUCLEUS_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                            \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

#endif  // NUCLEUS_UTIL_COMMON_H_
