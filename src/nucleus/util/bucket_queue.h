// Bucket-based priority structures.
//
// PeelingBucketQueue is the O(|K_r| + max support) structure of Batagelj &
// Zaversnik used by the peeling phase (paper Alg. 1): elements are popped in
// nondecreasing order of their current support, and supports may be
// decremented by one while the element is still enqueued.
//
// MaxBucketFrontier is the bucket priority queue that makes the Matula-Beck
// LCPS traversal practical (paper Section 5.1): discovered vertices are
// pushed with their lambda and the maximum-lambda vertex is popped in O(1)
// amortized time.
#ifndef NUCLEUS_UTIL_BUCKET_QUEUE_H_
#define NUCLEUS_UTIL_BUCKET_QUEUE_H_

#include <cstdint>
#include <vector>

#include "nucleus/util/common.h"

namespace nucleus {

/// Min-bucket queue over ids 0..n-1 with integer keys. Keys may only be
/// decremented (by one) while an element is enqueued; elements are popped in
/// nondecreasing key order. Total cost O(n + max_key + #decrements).
class PeelingBucketQueue {
 public:
  /// Initializes the queue with one entry per element of `values`.
  void Init(const std::vector<std::int32_t>& values);

  /// Number of elements not yet popped.
  std::int64_t Remaining() const { return static_cast<std::int64_t>(order_.size()) - cursor_; }
  bool Empty() const { return Remaining() == 0; }

  /// Pops an element with the minimum current key. Requires !Empty().
  /// The popped key is the element's final peeling number.
  CliqueId PopMin(std::int32_t* value);

  /// Decrements the key of `id` by one. Requires the element to be enqueued
  /// (not popped) with a key strictly greater than the last popped key.
  void Decrement(CliqueId id);

  /// Current key of `id` (final key if already popped).
  std::int32_t Value(CliqueId id) const { return values_[id]; }

  /// True once `id` has been popped (i.e., "processed" in Alg. 1 terms).
  bool Popped(CliqueId id) const { return pos_[id] < cursor_; }

 private:
  std::vector<std::int32_t> values_;  // current key per id
  std::vector<CliqueId> order_;       // ids sorted by current key
  std::vector<std::int64_t> pos_;     // position of id in order_
  std::vector<std::int64_t> bin_start_;  // first position of each key value
  std::int64_t cursor_ = 0;           // next position to pop
};

/// Max-bucket frontier with dynamic inserts, used by LCPS. Pop returns an
/// element with the maximum key among those currently enqueued.
class MaxBucketFrontier {
 public:
  /// `max_value` is an inclusive upper bound for all pushed keys.
  explicit MaxBucketFrontier(std::int32_t max_value);

  void Push(CliqueId id, std::int32_t value);
  bool Empty() const { return size_ == 0; }
  std::int64_t Size() const { return size_; }

  /// Pops an element with the maximum key. Requires !Empty().
  CliqueId PopMax(std::int32_t* value);

 private:
  std::vector<std::vector<CliqueId>> buckets_;
  std::int32_t current_max_ = 0;
  std::int64_t size_ = 0;
};

}  // namespace nucleus

#endif  // NUCLEUS_UTIL_BUCKET_QUEUE_H_
