// Minimal Status / StatusOr for error propagation without exceptions.
// Used by IO paths; algorithmic code uses NUCLEUS_CHECK for invariants.
#ifndef NUCLEUS_UTIL_STATUS_H_
#define NUCLEUS_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "nucleus/util/common.h"

namespace nucleus {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kInternal = 4,
};

/// Result of an operation that can fail. Cheap to copy when OK.
///
/// [[nodiscard]]: silently dropping a Status hides failures (a detach that
/// never persisted, a write that never happened). Call sites that truly
/// cannot act on the error must cast to void with a comment saying why.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable one-line rendering, e.g. "INVALID_ARGUMENT: bad header".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Dereferencing a non-OK StatusOr aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : payload_(std::move(value)) {}          // NOLINT
  StatusOr(Status status) : payload_(std::move(status)) {    // NOLINT
    NUCLEUS_CHECK_MSG(!this->ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    NUCLEUS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T& value() & {
    NUCLEUS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T&& value() && {
    NUCLEUS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace nucleus

#endif  // NUCLEUS_UTIL_STATUS_H_
