#include "nucleus/util/rng.h"

namespace nucleus {

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  NUCLEUS_CHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

VertexId Rng::UniformVertex(VertexId n) {
  NUCLEUS_CHECK(n > 0);
  return static_cast<VertexId>(UniformInt(0, n - 1));
}

double Rng::UniformReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

}  // namespace nucleus
