// Annotated mutex wrappers: thin, zero-overhead shims over the std
// synchronization primitives that carry Clang thread-safety capability
// attributes (util/thread_annotations.h). All lock-holding types in
// src/ use these instead of naked std::mutex / std::shared_mutex —
// nucleus_lint enforces that — so `-Wthread-safety -Werror` (the
// clang-analyze preset) can prove GUARDED_BY and lock-order contracts
// at compile time. Under GCC the attributes vanish and each wrapper is
// exactly its std counterpart.
//
// Condition-variable waits go through MutexLock::native():
//
//   MutexLock lock(mu_);
//   while (!done_) cv_.wait(lock.native());   // not the predicate form
//
// The explicit while-loop form is deliberate: the predicate lambda of
// cv.wait(lock, pred) is analyzed as a separate function that does not
// hold the capability, so reads of GUARDED_BY members inside it would
// be (false-positive) violations.
#ifndef NUCLEUS_UTIL_MUTEX_H_
#define NUCLEUS_UTIL_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "nucleus/util/thread_annotations.h"

namespace nucleus {

/// std::mutex with capability annotations. Lock/Unlock are public for
/// the rare manual-management case; prefer MutexLock.
class CAPABILITY("mutex") Mutex {  // nucleus-lint: allow(naked-mutex)
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;  // nucleus-lint: allow(naked-mutex)
};

/// Scoped lock over Mutex, backed by std::unique_lock so it can be
/// dropped and retaken mid-scope (SnapshotRegistry::Acquire does this
/// around disk loads) and can feed std::condition_variable::wait via
/// native(). Destruction releases the lock if still held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() {}

  /// Temporarily drop the lock (e.g. across a blocking load)...
  void Unlock() RELEASE() { lock_.unlock(); }
  /// ...and retake it before touching guarded state again.
  void Lock() ACQUIRE() { lock_.lock(); }

  /// The underlying std lock, for condition_variable::wait. The wait
  /// releases and reacquires the real mutex; the analysis treats the
  /// capability as held throughout, which matches the wait's
  /// postcondition.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;  // nucleus-lint: allow(naked-mutex)
};

/// std::shared_mutex with capability annotations (reader/writer).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderLock;
  friend class WriterLock;
  std::shared_mutex mu_;  // nucleus-lint: allow(naked-mutex)
};

/// Scoped shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.mu_.lock_shared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() RELEASE_GENERIC() { mu_.mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock over SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.mu_.lock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() RELEASE() { mu_.mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

}  // namespace nucleus

#endif  // NUCLEUS_UTIL_MUTEX_H_
