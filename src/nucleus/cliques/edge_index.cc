#include "nucleus/cliques/edge_index.h"

#include <algorithm>

#include "nucleus/parallel/thread_pool.h"

namespace nucleus {

EdgeIndex EdgeIndex::Build(const Graph& g) {
  EdgeIndex index;
  const VertexId n = g.NumVertices();
  const std::int64_t m = g.NumEdges();
  NUCLEUS_CHECK_MSG(m <= 2147483647, "more than 2^31-1 edges");
  index.endpoints_.reserve(static_cast<std::size_t>(m));
  index.adj_eid_.assign(g.AdjArray().size(), kInvalidId);

  // Because adjacency lists are sorted ascending, the entries for neighbors
  // smaller than v form the prefix of v's list, and as u sweeps upward each
  // edge (u, v) with u < v lands at the next unfilled prefix slot of v.
  std::vector<std::int64_t> prefix_cursor(n, 0);
  EdgeId next_id = 0;
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = g.Neighbors(u);
    const std::int64_t base = g.AdjOffset(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (v <= u) continue;
      const EdgeId e = next_id++;
      index.endpoints_.emplace_back(u, v);
      index.adj_eid_[base + static_cast<std::int64_t>(i)] = e;
      index.adj_eid_[g.AdjOffset(v) + prefix_cursor[v]++] = e;
    }
  }
  NUCLEUS_CHECK(next_id == m);
  for (EdgeId id : index.adj_eid_) NUCLEUS_CHECK(id != kInvalidId);
  return index;
}

EdgeIndex EdgeIndex::Build(const Graph& g, const ParallelConfig& parallel) {
  if (parallel.ResolvedThreads() <= 1) return Build(g);
  ThreadPool pool(parallel);
  return Build(g, pool, parallel.ResolvedGrain());
}

EdgeIndex EdgeIndex::Build(const Graph& g, ThreadPool& pool,
                           std::int64_t grain) {
  if (pool.num_threads() <= 1) return Build(g);

  EdgeIndex index;
  const VertexId n = g.NumVertices();
  const std::int64_t m = g.NumEdges();
  NUCLEUS_CHECK_MSG(m <= 2147483647, "more than 2^31-1 edges");
  index.endpoints_.resize(static_cast<std::size_t>(m));
  index.adj_eid_.assign(g.AdjArray().size(), kInvalidId);

  // Edge ids are positional: the edges starting at u (pairs (u, v), v > u)
  // occupy the contiguous id range [start[u], start[u+1]), in neighbor
  // order. Ids therefore depend only on the graph, never on scheduling.
  std::vector<std::int64_t> start(static_cast<std::size_t>(n) + 1, 0);
  pool.ParallelFor(n, grain, [&](int, std::int64_t begin, std::int64_t end) {
    for (std::int64_t u = begin; u < end; ++u) {
      const auto nbrs = g.Neighbors(static_cast<VertexId>(u));
      start[u + 1] = nbrs.end() -
                     std::upper_bound(nbrs.begin(), nbrs.end(),
                                      static_cast<VertexId>(u));
    }
  });
  for (VertexId u = 0; u < n; ++u) start[u + 1] += start[u];
  NUCLEUS_CHECK(start[n] == m);

  pool.ParallelFor(n, grain, [&](int, std::int64_t begin, std::int64_t end) {
    for (std::int64_t uu = begin; uu < end; ++uu) {
      const VertexId u = static_cast<VertexId>(uu);
      const auto nbrs = g.Neighbors(u);
      const std::int64_t base = g.AdjOffset(u);
      const std::int64_t first =
          std::upper_bound(nbrs.begin(), nbrs.end(), u) - nbrs.begin();
      for (std::int64_t i = first;
           i < static_cast<std::int64_t>(nbrs.size()); ++i) {
        const VertexId v = nbrs[i];
        const EdgeId e = static_cast<EdgeId>(start[u] + (i - first));
        index.endpoints_[e] = {u, v};
        index.adj_eid_[base + i] = e;
        // Mirror entry: u's slot inside v's (sorted) adjacency list. Each
        // adjacency slot is written by exactly one (u, v) pair, so the
        // scatter is race-free.
        const auto nv = g.Neighbors(v);
        const std::int64_t j =
            std::lower_bound(nv.begin(), nv.end(), u) - nv.begin();
        index.adj_eid_[g.AdjOffset(v) + j] = e;
      }
    }
  });
  for (EdgeId id : index.adj_eid_) NUCLEUS_CHECK(id != kInvalidId);
  return index;
}

EdgeId EdgeIndex::GetEdgeId(const Graph& g, VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= g.NumVertices() || v >= g.NumVertices()) {
    return kInvalidId;
  }
  const auto nbrs = g.Neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidId;
  return adj_eid_[g.AdjOffset(u) + (it - nbrs.begin())];
}

}  // namespace nucleus
