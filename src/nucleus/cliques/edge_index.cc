#include "nucleus/cliques/edge_index.h"

#include <algorithm>

namespace nucleus {

EdgeIndex EdgeIndex::Build(const Graph& g) {
  EdgeIndex index;
  const VertexId n = g.NumVertices();
  const std::int64_t m = g.NumEdges();
  NUCLEUS_CHECK_MSG(m <= 2147483647, "more than 2^31-1 edges");
  index.endpoints_.reserve(static_cast<std::size_t>(m));
  index.adj_eid_.assign(g.AdjArray().size(), kInvalidId);

  // Because adjacency lists are sorted ascending, the entries for neighbors
  // smaller than v form the prefix of v's list, and as u sweeps upward each
  // edge (u, v) with u < v lands at the next unfilled prefix slot of v.
  std::vector<std::int64_t> prefix_cursor(n, 0);
  EdgeId next_id = 0;
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = g.Neighbors(u);
    const std::int64_t base = g.AdjOffset(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (v <= u) continue;
      const EdgeId e = next_id++;
      index.endpoints_.emplace_back(u, v);
      index.adj_eid_[base + static_cast<std::int64_t>(i)] = e;
      index.adj_eid_[g.AdjOffset(v) + prefix_cursor[v]++] = e;
    }
  }
  NUCLEUS_CHECK(next_id == m);
  for (EdgeId id : index.adj_eid_) NUCLEUS_CHECK(id != kInvalidId);
  return index;
}

EdgeId EdgeIndex::GetEdgeId(const Graph& g, VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= g.NumVertices() || v >= g.NumVertices()) {
    return kInvalidId;
  }
  const auto nbrs = g.Neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidId;
  return adj_eid_[g.AdjOffset(u) + (it - nbrs.begin())];
}

}  // namespace nucleus
