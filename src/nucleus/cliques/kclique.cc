#include "nucleus/cliques/kclique.h"

#include <algorithm>

#include "nucleus/graph/graph_stats.h"

namespace nucleus {
namespace {

// Shared recursion state for k-clique listing over the degeneracy DAG.
struct CliqueSearch {
  const std::vector<std::vector<VertexId>>* out;  // degeneracy-oriented adj
  int k;
  const std::function<void(std::span<const VertexId>)>* visitor;  // may be null
  std::int64_t count = 0;
  std::vector<std::int64_t>* degrees = nullptr;  // may be null
  std::vector<VertexId> stack;

  // Extends the clique on `stack` with vertices from `candidates`.
  void Recurse(std::span<const VertexId> candidates) {
    const int depth = static_cast<int>(stack.size());
    if (depth == k) {
      ++count;
      if (visitor != nullptr) (*visitor)(stack);
      if (degrees != nullptr) {
        for (VertexId v : stack) ++(*degrees)[v];
      }
      return;
    }
    // Prune: not enough candidates to complete the clique.
    if (static_cast<int>(candidates.size()) < k - depth) return;
    std::vector<VertexId> next;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const VertexId v = candidates[i];
      const auto& ov = (*out)[v];
      next.clear();
      // next = candidates ∩ out-neighbors(v); both sorted ascending by id.
      // Uniqueness comes from the rank-oriented DAG: every clique is listed
      // exactly once, in increasing degeneracy-rank order of its vertices.
      std::set_intersection(candidates.begin(), candidates.end(), ov.begin(),
                            ov.end(), std::back_inserter(next));
      stack.push_back(v);
      Recurse(next);
      stack.pop_back();
    }
  }
};

// Runs the search; returns the total count.
std::int64_t Run(const Graph& g, int k,
                 const std::function<void(std::span<const VertexId>)>* visitor,
                 std::vector<std::int64_t>* degrees) {
  NUCLEUS_CHECK(k >= 1);
  const VertexId n = g.NumVertices();
  if (k == 1) {
    if (degrees != nullptr) degrees->assign(n, 1);
    if (visitor != nullptr) {
      for (VertexId v = 0; v < n; ++v) {
        const VertexId single[1] = {v};
        (*visitor)(std::span<const VertexId>(single, 1));
      }
    }
    return n;
  }

  // Orient edges along a degeneracy ordering so every clique is enumerated
  // exactly once, from its earliest vertex.
  std::vector<VertexId> ordering;
  Degeneracy(g, &ordering);
  std::vector<std::int32_t> rank(n);
  for (VertexId i = 0; i < n; ++i) rank[ordering[i]] = i;
  std::vector<std::vector<VertexId>> out(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (rank[u] < rank[v]) out[u].push_back(v);
    }
    // Candidate lists must be sorted by vertex id for set_intersection;
    // adjacency is already ascending, so out[u] is too.
  }

  CliqueSearch search;
  search.out = &out;
  search.k = k;
  search.visitor = visitor;
  search.degrees = degrees;
  if (degrees != nullptr) degrees->assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    search.stack.assign(1, v);
    search.Recurse(out[v]);
    search.stack.clear();
  }
  return search.count;
}

}  // namespace

std::int64_t CountCliques(const Graph& g, int k) {
  return Run(g, k, nullptr, nullptr);
}

void ForEachClique(
    const Graph& g, int k,
    const std::function<void(std::span<const VertexId>)>& visitor) {
  Run(g, k, &visitor, nullptr);
}

std::vector<std::int64_t> CliqueDegrees(const Graph& g, int k) {
  std::vector<std::int64_t> degrees;
  Run(g, k, nullptr, &degrees);
  return degrees;
}

}  // namespace nucleus
