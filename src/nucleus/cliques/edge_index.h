// Assigns a dense id to every undirected edge and keeps an edge-id array
// aligned entry-for-entry with the graph's adjacency array, so that walking
// two sorted adjacency lists during triangle enumeration yields the ids of
// all three triangle edges without hashing — the access pattern the (2,3)
// and (3,4) peeling/traversal inner loops depend on.
#ifndef NUCLEUS_CLIQUES_EDGE_INDEX_H_
#define NUCLEUS_CLIQUES_EDGE_INDEX_H_

#include <span>
#include <utility>
#include <vector>

#include "nucleus/graph/graph.h"
#include "nucleus/parallel/parallel_config.h"
#include "nucleus/util/common.h"

namespace nucleus {

class ThreadPool;

class EdgeIndex {
 public:
  /// Builds the index in O(|V| + |E|).
  static EdgeIndex Build(const Graph& g);

  /// Parallel build over vertices. Edge ids are positional (lexicographic
  /// by endpoints), so the output is bit-identical to the serial Build for
  /// every thread count / grain. The ParallelConfig overload spins up its
  /// own pool; callers with several parallel phases (Decompose) pass an
  /// existing pool instead to pay the spawn cost once.
  static EdgeIndex Build(const Graph& g, const ParallelConfig& parallel);
  static EdgeIndex Build(const Graph& g, ThreadPool& pool,
                         std::int64_t grain);

  EdgeId NumEdges() const { return static_cast<EdgeId>(endpoints_.size()); }

  /// Endpoints (u, v) with u < v. Ids are assigned in lexicographic (u, v)
  /// order, so endpoints are sorted by id as well.
  std::pair<VertexId, VertexId> Endpoints(EdgeId e) const {
    return endpoints_[e];
  }

  /// Id of edge {u, v}; kInvalidId if absent. O(log deg(u)).
  EdgeId GetEdgeId(const Graph& g, VertexId u, VertexId v) const;

  /// Edge ids aligned with g.Neighbors(v): AdjEdgeIds(v)[i] is the id of the
  /// edge {v, g.Neighbors(v)[i]}.
  std::span<const EdgeId> AdjEdgeIds(const Graph& g, VertexId v) const {
    return {adj_eid_.data() + g.AdjOffset(v),
            static_cast<std::size_t>(g.Degree(v))};
  }

 private:
  std::vector<std::pair<VertexId, VertexId>> endpoints_;  // per edge, u < v
  std::vector<EdgeId> adj_eid_;  // aligned with Graph::AdjArray()
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUES_EDGE_INDEX_H_
