// Generic k-clique counting and enumeration over the degeneracy-ordered
// DAG (the Chiba-Nishizeki style recursion). Used for Table 3's |K4| column
// and as an independent cross-check of EdgeIndex / TriangleIndex in tests.
#ifndef NUCLEUS_CLIQUES_KCLIQUE_H_
#define NUCLEUS_CLIQUES_KCLIQUE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"

namespace nucleus {

/// Number of k-cliques in g (k >= 1); each clique counted once.
std::int64_t CountCliques(const Graph& g, int k);

/// Calls `visitor` with the vertex set (in degeneracy-rank order) of every
/// k-clique; each clique is visited exactly once.
void ForEachClique(const Graph& g, int k,
                   const std::function<void(std::span<const VertexId>)>& visitor);

/// Per-vertex k-clique participation counts: out[v] = number of k-cliques
/// containing v. (omega_r(v) in the paper's complexity discussion.)
std::vector<std::int64_t> CliqueDegrees(const Graph& g, int k);

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUES_KCLIQUE_H_
