#include "nucleus/cliques/triangle_index.h"

#include <algorithm>

#include "nucleus/parallel/thread_pool.h"

namespace nucleus {
namespace {

/// Walks the triangles {u, v, w}, w > v, of edge e = (u, v) — the
/// enumeration role edge e plays in the serial Build's pass 1.
template <typename F>
void ForEachUvTriangle(const Graph& g, const EdgeIndex& edges, EdgeId e,
                       F&& f) {
  const auto [u, v] = edges.Endpoints(e);
  const auto nu = g.Neighbors(u);
  const auto nv = g.Neighbors(v);
  const auto eu = edges.AdjEdgeIds(g, u);
  const auto ev = edges.AdjEdgeIds(g, v);
  std::size_t i = std::lower_bound(nu.begin(), nu.end(), v + 1) - nu.begin();
  std::size_t j = std::lower_bound(nv.begin(), nv.end(), v + 1) - nv.begin();
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      f(nu[i], eu[i], ev[j]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

TriangleIndex TriangleIndex::Build(const Graph& g, const EdgeIndex& edges) {
  TriangleIndex index;
  const EdgeId m = edges.NumEdges();

  // Pass 1: enumerate triangles {u, v, w}, u < v < w, from edge (u, v) by
  // intersecting the neighbor lists of u and v above v.
  std::vector<std::int64_t> counts(m + 1, 0);
  std::int64_t num_triangles = 0;
  for (EdgeId e = 0; e < m; ++e) {
    const auto [u, v] = edges.Endpoints(e);
    const auto nu = g.Neighbors(u);
    const auto nv = g.Neighbors(v);
    const auto eu = edges.AdjEdgeIds(g, u);
    const auto ev = edges.AdjEdgeIds(g, v);
    std::size_t i = std::lower_bound(nu.begin(), nu.end(), v + 1) - nu.begin();
    std::size_t j = std::lower_bound(nv.begin(), nv.end(), v + 1) - nv.begin();
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] < nv[j]) {
        ++i;
      } else if (nu[i] > nv[j]) {
        ++j;
      } else {
        const EdgeId e_uw = eu[i];
        const EdgeId e_vw = ev[j];
        index.vertices_.push_back({u, v, nu[i]});
        index.edges_.push_back({e, e_uw, e_vw});
        ++counts[e + 1];
        ++counts[e_uw + 1];
        ++counts[e_vw + 1];
        ++num_triangles;
        NUCLEUS_CHECK_MSG(num_triangles <= 2147483647,
                          "more than 2^31-1 triangles");
        ++i;
        ++j;
      }
    }
  }

  // Pass 2: fill the per-edge (third, tid) lists and sort each by third.
  for (EdgeId e = 0; e < m; ++e) counts[e + 1] += counts[e];
  index.offsets_ = counts;
  std::vector<std::int64_t> fill(counts.begin(), counts.end() - 1);
  index.list_.resize(index.offsets_[m]);
  for (TriangleId t = 0; t < index.NumTriangles(); ++t) {
    const auto& [u, v, w] = index.vertices_[t];
    const auto& [e_uv, e_uw, e_vw] = index.edges_[t];
    index.list_[fill[e_uv]++] = {w, t};
    index.list_[fill[e_uw]++] = {v, t};
    index.list_[fill[e_vw]++] = {u, t};
  }
  for (EdgeId e = 0; e < m; ++e) {
    std::sort(index.list_.begin() + index.offsets_[e],
              index.list_.begin() + index.offsets_[e + 1],
              [](const ThirdEntry& a, const ThirdEntry& b) {
                return a.third < b.third;
              });
  }
  return index;
}

TriangleIndex TriangleIndex::Build(const Graph& g, const EdgeIndex& edges,
                                   const ParallelConfig& parallel) {
  if (parallel.ResolvedThreads() <= 1) return Build(g, edges);
  ThreadPool pool(parallel);
  return Build(g, edges, pool, parallel.ResolvedGrain());
}

TriangleIndex TriangleIndex::Build(const Graph& g, const EdgeIndex& edges,
                                   ThreadPool& pool, std::int64_t grain) {
  if (pool.num_threads() <= 1) return Build(g, edges);

  TriangleIndex index;
  const EdgeId m = edges.NumEdges();

  // Pass 1a (parallel): triangles per uv-edge. Ids are positional: edge e's
  // triangles occupy [tri_start[e], tri_start[e+1]) in third-vertex order —
  // exactly the serial enumeration order.
  std::vector<std::int64_t> tri_start(static_cast<std::size_t>(m) + 1, 0);
  pool.ParallelFor(m, grain, [&](int, std::int64_t begin, std::int64_t end) {
    for (std::int64_t e = begin; e < end; ++e) {
      std::int64_t count = 0;
      ForEachUvTriangle(g, edges, static_cast<EdgeId>(e),
                        [&count](VertexId, EdgeId, EdgeId) { ++count; });
      tri_start[e + 1] = count;
    }
  });
  for (EdgeId e = 0; e < m; ++e) tri_start[e + 1] += tri_start[e];
  const std::int64_t num_triangles = tri_start[m];
  NUCLEUS_CHECK_MSG(num_triangles <= 2147483647,
                    "more than 2^31-1 triangles");

  // Pass 1b (parallel): place triangle records at their positional ids.
  index.vertices_.resize(static_cast<std::size_t>(num_triangles));
  index.edges_.resize(static_cast<std::size_t>(num_triangles));
  pool.ParallelFor(m, grain, [&](int, std::int64_t begin, std::int64_t end) {
    for (std::int64_t e = begin; e < end; ++e) {
      const auto [u, v] = edges.Endpoints(static_cast<EdgeId>(e));
      std::int64_t t = tri_start[e];
      ForEachUvTriangle(
          g, edges, static_cast<EdgeId>(e),
          [&](VertexId w, EdgeId e_uw, EdgeId e_vw) {
            index.vertices_[t] = {u, v, w};
            index.edges_[t] = {static_cast<EdgeId>(e), e_uw, e_vw};
            ++t;
          });
    }
  });

  // Pass 2: per-edge (third, tid) lists. Counting and filling are linear
  // in 3|T| and stay serial; the per-edge sorts dominate and parallelize.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(m) + 1, 0);
  for (TriangleId t = 0; t < index.NumTriangles(); ++t) {
    for (EdgeId e : index.edges_[t]) ++counts[e + 1];
  }
  for (EdgeId e = 0; e < m; ++e) counts[e + 1] += counts[e];
  index.offsets_ = counts;
  std::vector<std::int64_t> fill(counts.begin(), counts.end() - 1);
  index.list_.resize(static_cast<std::size_t>(index.offsets_[m]));
  for (TriangleId t = 0; t < index.NumTriangles(); ++t) {
    const auto& [u, v, w] = index.vertices_[t];
    const auto& [e_uv, e_uw, e_vw] = index.edges_[t];
    index.list_[fill[e_uv]++] = {w, t};
    index.list_[fill[e_uw]++] = {v, t};
    index.list_[fill[e_vw]++] = {u, t};
  }
  pool.ParallelFor(m, grain, [&](int, std::int64_t begin, std::int64_t end) {
    for (std::int64_t e = begin; e < end; ++e) {
      std::sort(index.list_.begin() + index.offsets_[e],
                index.list_.begin() + index.offsets_[e + 1],
                [](const ThirdEntry& a, const ThirdEntry& b) {
                  return a.third < b.third;
                });
    }
  });
  return index;
}

TriangleId TriangleIndex::GetTriangleId(const Graph& g, const EdgeIndex& edges,
                                        VertexId u, VertexId v,
                                        VertexId w) const {
  VertexId a = u;
  VertexId b = v;
  VertexId c = w;
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  const EdgeId e = edges.GetEdgeId(g, a, b);
  if (e == kInvalidId) return kInvalidId;
  const auto list = EdgeTriangles(e);
  const auto it = std::lower_bound(
      list.begin(), list.end(), c,
      [](const ThirdEntry& entry, VertexId x) { return entry.third < x; });
  if (it == list.end() || it->third != c) return kInvalidId;
  return it->tid;
}

std::int64_t TriangleIndex::TriangleSupport(TriangleId t) const {
  std::int64_t support = 0;
  ForEachK4(t, [&support](VertexId, TriangleId, TriangleId, TriangleId) {
    ++support;
  });
  return support;
}

std::int64_t TriangleIndex::CountK4s() const {
  // Each K4 {u,v,w,x} with u<v<w<x is seen from triangle {u,v,w} as the
  // completion x > w exactly once; count only those to avoid overcounting.
  std::int64_t total = 0;
  for (TriangleId t = 0; t < NumTriangles(); ++t) {
    const VertexId w = vertices_[t][2];
    ForEachK4(t, [&](VertexId x, TriangleId, TriangleId, TriangleId) {
      if (x > w) ++total;
    });
  }
  return total;
}

}  // namespace nucleus
