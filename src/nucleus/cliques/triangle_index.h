// Materialized triangle enumeration: the K_3 substrate of the (3,4)-nucleus
// decomposition.
//
// Besides per-triangle vertex/edge triples, the index stores for every edge
// the sorted list of (third vertex, triangle id) pairs of the triangles
// containing it. Three-way merging those lists for a triangle's three edges
// enumerates the K4s containing the triangle and yields the ids of the
// other three member triangles of each K4 with no hash lookups — the inner
// loop of the (3,4) peeling and traversal (see DESIGN.md §2).
#ifndef NUCLEUS_CLIQUES_TRIANGLE_INDEX_H_
#define NUCLEUS_CLIQUES_TRIANGLE_INDEX_H_

#include <array>
#include <span>
#include <vector>

#include "nucleus/cliques/edge_index.h"
#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"

namespace nucleus {

class TriangleIndex {
 public:
  /// An entry of an edge's triangle list: the triangle `tid` consists of the
  /// edge's two endpoints plus `third`.
  struct ThirdEntry {
    VertexId third;
    TriangleId tid;
  };

  /// Enumerates all triangles. O(sum over edges of min-degree endpoints).
  static TriangleIndex Build(const Graph& g, const EdgeIndex& edges);

  /// Parallel enumeration: a counting pass and a placement pass over
  /// edges, then per-edge list sorting in parallel. Triangle ids are
  /// positional ((uv-edge id, third vertex) lexicographic, the serial
  /// enumeration order), so the output is bit-identical to the serial
  /// Build for every thread count / grain. As with EdgeIndex, the pool
  /// overload lets Decompose reuse one pool across both index builds.
  static TriangleIndex Build(const Graph& g, const EdgeIndex& edges,
                             const ParallelConfig& parallel);
  static TriangleIndex Build(const Graph& g, const EdgeIndex& edges,
                             ThreadPool& pool, std::int64_t grain);

  TriangleId NumTriangles() const {
    return static_cast<TriangleId>(vertices_.size());
  }

  /// Vertices (u, v, w) with u < v < w.
  const std::array<VertexId, 3>& Vertices(TriangleId t) const {
    return vertices_[t];
  }

  /// Edge ids ({u,v}, {u,w}, {v,w}).
  const std::array<EdgeId, 3>& Edges(TriangleId t) const { return edges_[t]; }

  /// Triangles containing edge e, sorted by third vertex.
  std::span<const ThirdEntry> EdgeTriangles(EdgeId e) const {
    return {list_.data() + offsets_[e],
            static_cast<std::size_t>(offsets_[e + 1] - offsets_[e])};
  }

  /// Number of triangles containing edge e (its (2,3) support).
  std::int64_t EdgeSupport(EdgeId e) const {
    return offsets_[e + 1] - offsets_[e];
  }

  /// Id of the triangle on vertices {u, v, w}; kInvalidId if absent.
  TriangleId GetTriangleId(const Graph& g, const EdgeIndex& edges, VertexId u,
                           VertexId v, VertexId w) const;

  /// Calls f(x, t_uvx, t_uwx, t_vwx) for every K4 {u,v,w,x} containing
  /// triangle t = {u,v,w}; the three arguments after x are the ids of the
  /// K4's other member triangles.
  template <typename F>
  void ForEachK4(TriangleId t, F&& f) const {
    const auto& e = edges_[t];
    const auto l0 = EdgeTriangles(e[0]);
    const auto l1 = EdgeTriangles(e[1]);
    const auto l2 = EdgeTriangles(e[2]);
    std::size_t i = 0;
    std::size_t j = 0;
    std::size_t k = 0;
    while (i < l0.size() && j < l1.size() && k < l2.size()) {
      const VertexId a = l0[i].third;
      const VertexId b = l1[j].third;
      const VertexId c = l2[k].third;
      if (a == b && b == c) {
        f(a, l0[i].tid, l1[j].tid, l2[k].tid);
        ++i;
        ++j;
        ++k;
      } else {
        // Advance the smallest cursor(s).
        const VertexId m = a < b ? (a < c ? a : c) : (b < c ? b : c);
        if (a == m) ++i;
        if (b == m) ++j;
        if (c == m) ++k;
      }
    }
  }

  /// Number of K4s containing triangle t (its (3,4) support).
  std::int64_t TriangleSupport(TriangleId t) const;

  /// Total number of K4s in the graph (each counted once).
  std::int64_t CountK4s() const;

 private:
  std::vector<std::array<VertexId, 3>> vertices_;
  std::vector<std::array<EdgeId, 3>> edges_;
  std::vector<std::int64_t> offsets_;  // per edge, into list_
  std::vector<ThirdEntry> list_;       // size 3 * NumTriangles()
};

}  // namespace nucleus

#endif  // NUCLEUS_CLIQUES_TRIANGLE_INDEX_H_
