// Weighted k-core decomposition (Giatsidis et al., "Evaluating cooperation
// in communities with the k-core structure") WITH the connected-core
// hierarchy the paper's Section 3.1 points out that work leaves open.
//
// A weighted k-core is a maximal connected subgraph in which every vertex's
// weighted degree — the sum of its incident edge weights inside the
// subgraph — is at least k. The weighted core number lambda_w(v) is the
// largest k whose weighted k-core contains v. Peeling follows the
// Batagelj-Zaversnik generalized-core schema: repeatedly remove the vertex
// of minimum weighted degree; the running maximum of removal values is
// lambda_w (the vertex property "weighted degree" is monotone under vertex
// deletion, which is all the schema requires).
//
// Hierarchy: the weighted k-cores are the connected components of
// {v : lambda_w(v) >= k}, so BuildVertexHierarchy (the label-driven Alg. 9)
// produces the full containment tree.
#ifndef NUCLEUS_VARIANTS_WEIGHTED_CORE_H_
#define NUCLEUS_VARIANTS_WEIGHTED_CORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"
#include "nucleus/variants/vertex_hierarchy.h"

namespace nucleus {

/// One undirected weighted edge. Weights must be positive.
struct WeightedEdge {
  VertexId u = 0;
  VertexId v = 0;
  std::int64_t weight = 1;
};

/// Immutable undirected weighted simple graph: a Graph plus a weight array
/// aligned entry-for-entry with the CSR adjacency.
class WeightedGraph {
 public:
  /// Builds from an edge list. Self-loops are rejected; duplicate (u, v)
  /// pairs have their weights summed. Aborts on non-positive weights or
  /// out-of-range endpoints (programming errors, not data errors).
  static WeightedGraph FromEdges(VertexId num_vertices,
                                 std::vector<WeightedEdge> edges);

  /// Every edge of `g` with the same weight `w`.
  static WeightedGraph UniformWeights(const Graph& g, std::int64_t w);

  const Graph& graph() const { return graph_; }
  VertexId NumVertices() const { return graph_.NumVertices(); }
  std::int64_t NumEdges() const { return graph_.NumEdges(); }

  /// Weights aligned with graph().Neighbors(v).
  std::span<const std::int64_t> WeightsOf(VertexId v) const {
    return {weights_.data() + graph_.AdjOffset(v),
            static_cast<std::size_t>(graph_.Degree(v))};
  }

  /// Sum of v's incident edge weights.
  std::int64_t WeightedDegree(VertexId v) const;

 private:
  WeightedGraph(Graph graph, std::vector<std::int64_t> weights)
      : graph_(std::move(graph)), weights_(std::move(weights)) {}

  Graph graph_;
  std::vector<std::int64_t> weights_;  // aligned with graph_.AdjArray()
};

/// Weighted core numbers lambda_w of every vertex.
struct WeightedCoreResult {
  std::vector<std::int64_t> lambda;
  std::int64_t max_lambda = 0;
};

WeightedCoreResult WeightedCoreNumbers(const WeightedGraph& wg);

/// Core numbers plus the full connected-core hierarchy.
struct WeightedCoreDecomposition {
  WeightedCoreResult core;
  LabeledSkeleton skeleton;
};

WeightedCoreDecomposition DecomposeWeightedCore(const WeightedGraph& wg);

}  // namespace nucleus

#endif  // NUCLEUS_VARIANTS_WEIGHTED_CORE_H_
