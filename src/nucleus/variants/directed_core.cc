#include "nucleus/variants/directed_core.h"

#include <algorithm>
#include <deque>

#include "nucleus/graph/graph_builder.h"

namespace nucleus {
namespace {

/// CSR construction for one direction of the arc list.
void BuildCsr(VertexId n,
              const std::vector<std::pair<VertexId, VertexId>>& arcs,
              bool outgoing, std::vector<std::int64_t>* offsets,
              std::vector<VertexId>* adj) {
  offsets->assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : arcs) {
    ++(*offsets)[(outgoing ? u : v) + 1];
  }
  for (VertexId i = 0; i < n; ++i) (*offsets)[i + 1] += (*offsets)[i];
  adj->resize(arcs.size());
  std::vector<std::int64_t> fill(offsets->begin(), offsets->end() - 1);
  for (const auto& [u, v] : arcs) {
    const VertexId src = outgoing ? u : v;
    const VertexId dst = outgoing ? v : u;
    (*adj)[fill[src]++] = dst;
  }
  for (VertexId i = 0; i < n; ++i) {
    std::sort(adj->begin() + (*offsets)[i], adj->begin() + (*offsets)[i + 1]);
  }
}

}  // namespace

DirectedGraph DirectedGraph::FromArcs(
    VertexId num_vertices, std::vector<std::pair<VertexId, VertexId>> arcs) {
  for (const auto& [u, v] : arcs) {
    NUCLEUS_CHECK(u >= 0 && u < num_vertices);
    NUCLEUS_CHECK(v >= 0 && v < num_vertices);
  }
  std::erase_if(arcs, [](const auto& a) { return a.first == a.second; });
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  DirectedGraph dg;
  BuildCsr(num_vertices, arcs, /*outgoing=*/true, &dg.out_offsets_,
           &dg.out_adj_);
  BuildCsr(num_vertices, arcs, /*outgoing=*/false, &dg.in_offsets_,
           &dg.in_adj_);
  return dg;
}

Graph DirectedGraph::Underlying() const {
  GraphBuilder b(NumVertices());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : OutNeighbors(u)) b.AddEdge(u, v);
  }
  return b.Build();
}

std::vector<char> DCoreMembership(const DirectedGraph& dg, std::int32_t k,
                                  std::int32_t l) {
  NUCLEUS_CHECK(k >= 0 && l >= 0);
  const VertexId n = dg.NumVertices();
  std::vector<char> alive(n, 1);
  std::vector<std::int64_t> in_deg(n), out_deg(n);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    in_deg[v] = dg.InDegree(v);
    out_deg[v] = dg.OutDegree(v);
    if (in_deg[v] < k || out_deg[v] < l) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : dg.OutNeighbors(v)) {
      if (alive[u] && --in_deg[u] < k) {
        alive[u] = 0;
        queue.push_back(u);
      }
    }
    for (VertexId u : dg.InNeighbors(v)) {
      if (alive[u] && --out_deg[u] < l) {
        alive[u] = 0;
        queue.push_back(u);
      }
    }
  }
  return alive;
}

std::vector<std::int32_t> DCoreOutNumbers(const DirectedGraph& dg,
                                          std::int32_t k) {
  const VertexId n = dg.NumVertices();
  std::vector<std::int32_t> out_num(n, -1);
  if (n == 0) return out_num;

  // Restrict to the (k, 0)-core first: vertices outside it keep -1.
  std::vector<char> alive = DCoreMembership(dg, k, 0);
  std::vector<std::int64_t> in_deg(n), out_deg(n);
  std::int64_t remaining = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    ++remaining;
    std::int64_t din = 0, dout = 0;
    for (VertexId u : dg.InNeighbors(v)) din += alive[u];
    for (VertexId u : dg.OutNeighbors(v)) dout += alive[u];
    in_deg[v] = din;
    out_deg[v] = dout;
  }

  // Constrained peel: repeatedly remove the vertex of minimum out-degree
  // (generalized-core running max gives the out-number), restoring the
  // in >= k invariant by cascading after every removal. A vertex removed
  // by the cascade was certified by the same subgraph as the minimum
  // vertex, so it receives the same running value.
  std::vector<std::int64_t> bucket_of(n, -1);
  const std::int64_t max_out =
      *std::max_element(out_deg.begin(), out_deg.end());
  std::vector<std::vector<VertexId>> buckets(
      static_cast<std::size_t>(max_out) + 1);
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) buckets[out_deg[v]].push_back(v);
  }

  std::deque<VertexId> cascade;
  std::int32_t running = 0;
  std::int64_t cursor = 0;  // lower bound for the minimum live out-degree
  auto remove_vertex = [&](VertexId v) {
    alive[v] = 0;
    --remaining;
    out_num[v] = running;
    for (VertexId u : dg.OutNeighbors(v)) {
      if (alive[u] && --in_deg[u] < k) cascade.push_back(u);
    }
    for (VertexId u : dg.InNeighbors(v)) {
      if (alive[u]) {
        --out_deg[u];
        buckets[out_deg[u]].push_back(u);  // lazy bucket entry
        cursor = std::min(cursor, out_deg[u]);
      }
    }
  };

  while (remaining > 0) {
    // Pop the minimum live out-degree; stale lazy entries are discarded.
    // Decrements lower `cursor` as they happen, so the sweep never misses
    // a newly created smaller bucket.
    while (cursor <= max_out &&
           (buckets[cursor].empty() ||
            !alive[buckets[cursor].back()] ||
            out_deg[buckets[cursor].back()] !=
                static_cast<std::int64_t>(cursor))) {
      if (!buckets[cursor].empty()) {
        buckets[cursor].pop_back();  // stale entry
        continue;
      }
      ++cursor;
    }
    NUCLEUS_CHECK(cursor <= max_out);
    const VertexId v = buckets[cursor].back();
    buckets[cursor].pop_back();
    running = std::max(running, static_cast<std::int32_t>(cursor));
    remove_vertex(v);
    while (!cascade.empty()) {
      const VertexId u = cascade.front();
      cascade.pop_front();
      if (alive[u]) remove_vertex(u);
    }
  }
  return out_num;
}

DCoreMatrix ComputeDCoreMatrix(const DirectedGraph& dg) {
  DCoreMatrix matrix;
  for (std::int32_t k = 0;; ++k) {
    std::vector<std::int32_t> row = DCoreOutNumbers(dg, k);
    const bool nonempty =
        std::any_of(row.begin(), row.end(), [](std::int32_t x) {
          return x >= 0;
        });
    if (k > 0 && !nonempty) break;
    matrix.rows.push_back(std::move(row));
    matrix.max_k = k;
    if (!nonempty) break;  // k = 0 on an empty graph
  }
  return matrix;
}

DCoreHierarchy DecomposeDCore(const DirectedGraph& dg, std::int32_t k) {
  DCoreHierarchy out;
  out.out_numbers = DCoreOutNumbers(dg, k);
  std::vector<std::int64_t> labels(out.out_numbers.size());
  for (std::size_t v = 0; v < labels.size(); ++v) {
    labels[v] = out.out_numbers[v] + 1;  // rank 0 <=> not in the (k,0)-core
  }
  out.skeleton = BuildVertexHierarchy(dg.Underlying(), labels);
  return out;
}

}  // namespace nucleus
