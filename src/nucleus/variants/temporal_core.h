// Temporal (k, h)-core decomposition (Wu et al., "Core decomposition in
// large temporal graphs", IEEE BigData'15) WITH the connected-core
// hierarchy.
//
// A temporal graph is a multiset of timestamped contact events (u, v, t).
// For a time window [t_begin, t_end] and a multiplicity threshold h, the
// (k, h)-core is the k-core of the h-filtered snapshot: the static graph
// whose edges are the vertex pairs with at least h events inside the
// window. h = 1 gives the plain snapshot core; larger h demands repeated
// interaction, Wu et al.'s notion of a temporally robust tie.
//
// The paper's Section 3.1 lists the temporal adaptation among the
// threshold-based variants that compute only peeling numbers; here every
// window decomposition also carries the connected-core hierarchy via
// BuildVertexHierarchy, and CoreEvolution tracks how the dense structure
// moves through time — the analysis loop the variant papers motivate.
#ifndef NUCLEUS_VARIANTS_TEMPORAL_CORE_H_
#define NUCLEUS_VARIANTS_TEMPORAL_CORE_H_

#include <cstdint>
#include <vector>

#include "nucleus/core/types.h"
#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"
#include "nucleus/variants/vertex_hierarchy.h"

namespace nucleus {

/// One contact event. Events are undirected; (u, v, t) == (v, u, t).
struct TemporalEdge {
  VertexId u = 0;
  VertexId v = 0;
  std::int64_t time = 0;
};

/// Immutable multiset of contact events ordered by time.
class TemporalGraph {
 public:
  /// Builds from an event list (self-loops rejected; duplicates allowed —
  /// they are distinct events). Aborts on out-of-range endpoints.
  static TemporalGraph FromEvents(VertexId num_vertices,
                                  std::vector<TemporalEdge> events);

  VertexId NumVertices() const { return num_vertices_; }
  std::int64_t NumEvents() const {
    return static_cast<std::int64_t>(events_.size());
  }
  /// [earliest, latest] event time; {0, -1} when there are no events.
  std::pair<std::int64_t, std::int64_t> TimeRange() const;

  const std::vector<TemporalEdge>& events() const { return events_; }

  /// The h-filtered snapshot of [t_begin, t_end] (inclusive): vertex pairs
  /// with >= h events in the window become edges. Requires h >= 1.
  Graph Snapshot(std::int64_t t_begin, std::int64_t t_end,
                 std::int32_t h = 1) const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<TemporalEdge> events_;  // sorted by (time, u, v)
};

/// One window's full decomposition: snapshot, core numbers, hierarchy.
struct TemporalCoreResult {
  Graph snapshot;
  PeelResult peel;
  LabeledSkeleton skeleton;
};

/// k-core numbers + connected-core hierarchy of the (window, h) snapshot.
TemporalCoreResult DecomposeWindow(const TemporalGraph& tg,
                                   std::int64_t t_begin, std::int64_t t_end,
                                   std::int32_t h = 1);

/// Summary of one sliding window (for CoreEvolution).
struct WindowCoreStats {
  std::int64_t t_begin = 0;
  std::int64_t t_end = 0;
  std::int64_t num_edges = 0;       // snapshot edges
  Lambda max_core = 0;              // degeneracy of the snapshot
  std::int64_t max_core_size = 0;   // vertices with lambda == max_core
  std::int64_t num_nuclei = 0;      // nodes of the hierarchy (lambda >= 1)
};

/// Slides a window of `window_length` time units by `step` across the event
/// span and decomposes each position. Requires window_length >= 0 (windows
/// are [t, t + window_length] inclusive), step >= 1, h >= 1.
std::vector<WindowCoreStats> CoreEvolution(const TemporalGraph& tg,
                                           std::int64_t window_length,
                                           std::int64_t step,
                                           std::int32_t h = 1);

}  // namespace nucleus

#endif  // NUCLEUS_VARIANTS_TEMPORAL_CORE_H_
