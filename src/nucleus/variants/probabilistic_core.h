// Probabilistic (k, eta)-core decomposition of uncertain graphs (Bonchi et
// al., KDD'14) WITH the connected-core hierarchy.
//
// In an uncertain graph every edge e exists independently with probability
// p_e. The eta-degree of a vertex v is the largest k such that
// Pr[deg(v) >= k] >= eta, where deg(v) counts v's surviving incident
// edges. A (k, eta)-core is a maximal subgraph in which every vertex's
// eta-degree (within the subgraph) is at least k; the (k, eta)-core number
// lambda_eta(v) is the largest such k for v.
//
// The eta-degree is monotone under vertex deletion (removing edges can only
// shift the degree distribution down), so the Batagelj-Zaversnik
// generalized peel applies: repeatedly remove the vertex of minimum
// eta-degree, running max of removal values = lambda_eta. Per-vertex degree
// distributions are maintained by dynamic programming over the surviving
// incident edges, with the O(d) edge-removal downdate of Bonchi et al. and
// periodic full rebuilds to bound floating-point drift.
//
// Bonchi et al. define the (k, eta)-core without a connectivity condition —
// exactly the oversight the paper's Section 3.1 describes. Here the
// (k, eta)-cores are the connected components of {v : lambda_eta(v) >= k}
// and BuildVertexHierarchy yields the full containment tree.
#ifndef NUCLEUS_VARIANTS_PROBABILISTIC_CORE_H_
#define NUCLEUS_VARIANTS_PROBABILISTIC_CORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"
#include "nucleus/variants/vertex_hierarchy.h"

namespace nucleus {

/// One undirected uncertain edge with existence probability p in [0, 1].
struct ProbabilisticEdge {
  VertexId u = 0;
  VertexId v = 0;
  double p = 1.0;
};

/// Immutable undirected uncertain simple graph: a Graph plus a probability
/// array aligned entry-for-entry with the CSR adjacency. Edges with p = 0
/// are dropped at construction (they never exist).
class UncertainGraph {
 public:
  /// Builds from an edge list. Duplicate (u, v) pairs are combined as
  /// alternatives: p = 1 - prod(1 - p_i). Aborts on self-loops,
  /// out-of-range endpoints, or probabilities outside [0, 1].
  static UncertainGraph FromEdges(VertexId num_vertices,
                                  std::vector<ProbabilisticEdge> edges);

  /// Every edge of `g` with the same probability `p`.
  static UncertainGraph UniformProbability(const Graph& g, double p);

  const Graph& graph() const { return graph_; }
  VertexId NumVertices() const { return graph_.NumVertices(); }
  std::int64_t NumEdges() const { return graph_.NumEdges(); }

  /// Probabilities aligned with graph().Neighbors(v).
  std::span<const double> ProbsOf(VertexId v) const {
    return {probs_.data() + graph_.AdjOffset(v),
            static_cast<std::size_t>(graph_.Degree(v))};
  }

 private:
  UncertainGraph(Graph graph, std::vector<double> probs)
      : graph_(std::move(graph)), probs_(std::move(probs)) {}

  Graph graph_;
  std::vector<double> probs_;  // aligned with graph_.AdjArray()
};

/// Pr[deg >= j] for j = 0..probs.size() given independent edge
/// probabilities — the building block of the eta-degree, exposed for tests
/// (validated against exhaustive enumeration and Monte Carlo estimates).
std::vector<double> DegreeTailDistribution(std::span<const double> probs);

/// The eta-degree: max k with Pr[deg >= k] >= eta.
std::int32_t EtaDegree(std::span<const double> probs, double eta);

/// (k, eta)-core numbers of every vertex.
struct ProbabilisticCoreResult {
  std::vector<std::int32_t> lambda;
  std::int32_t max_lambda = 0;
};

ProbabilisticCoreResult ProbabilisticCoreNumbers(const UncertainGraph& ug,
                                                 double eta);

/// Core numbers plus the full connected-core hierarchy.
struct ProbabilisticCoreDecomposition {
  ProbabilisticCoreResult core;
  LabeledSkeleton skeleton;
};

ProbabilisticCoreDecomposition DecomposeProbabilisticCore(
    const UncertainGraph& ug, double eta);

}  // namespace nucleus

#endif  // NUCLEUS_VARIANTS_PROBABILISTIC_CORE_H_
