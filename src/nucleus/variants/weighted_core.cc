#include "nucleus/variants/weighted_core.h"

#include <algorithm>
#include <queue>
#include <tuple>
#include <utility>

namespace nucleus {

WeightedGraph WeightedGraph::FromEdges(VertexId num_vertices,
                                       std::vector<WeightedEdge> edges) {
  for (WeightedEdge& e : edges) {
    NUCLEUS_CHECK_MSG(e.weight > 0, "edge weights must be positive");
    NUCLEUS_CHECK(e.u >= 0 && e.u < num_vertices);
    NUCLEUS_CHECK(e.v >= 0 && e.v < num_vertices);
    NUCLEUS_CHECK_MSG(e.u != e.v, "self-loops are not allowed");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });
  // Coalesce duplicates by summing weights.
  std::vector<WeightedEdge> unique_edges;
  unique_edges.reserve(edges.size());
  for (const WeightedEdge& e : edges) {
    if (!unique_edges.empty() && unique_edges.back().u == e.u &&
        unique_edges.back().v == e.v) {
      unique_edges.back().weight += e.weight;
    } else {
      unique_edges.push_back(e);
    }
  }

  // CSR over both directions with aligned weights.
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(num_vertices) + 1,
                                    0);
  for (const WeightedEdge& e : unique_edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> adj(static_cast<std::size_t>(offsets.back()));
  std::vector<std::int64_t> weights(adj.size());
  std::vector<std::int64_t> fill(offsets.begin(), offsets.end() - 1);
  for (const WeightedEdge& e : unique_edges) {
    adj[fill[e.u]] = e.v;
    weights[fill[e.u]++] = e.weight;
    adj[fill[e.v]] = e.u;
    weights[fill[e.v]++] = e.weight;
  }
  // Each list must be sorted by neighbor with weights carried along.
  for (VertexId v = 0; v < num_vertices; ++v) {
    const std::int64_t begin = offsets[v];
    const std::int64_t end = offsets[v + 1];
    std::vector<std::pair<VertexId, std::int64_t>> list;
    list.reserve(end - begin);
    for (std::int64_t i = begin; i < end; ++i) {
      list.emplace_back(adj[i], weights[i]);
    }
    std::sort(list.begin(), list.end());
    for (std::int64_t i = begin; i < end; ++i) {
      adj[i] = list[i - begin].first;
      weights[i] = list[i - begin].second;
    }
  }
  return WeightedGraph(Graph::FromCsr(std::move(offsets), std::move(adj)),
                       std::move(weights));
}

WeightedGraph WeightedGraph::UniformWeights(const Graph& g, std::int64_t w) {
  NUCLEUS_CHECK(w > 0);
  std::vector<WeightedEdge> edges;
  edges.reserve(g.NumEdges());
  g.ForEachEdge([&](VertexId u, VertexId v) {
    edges.push_back({u, v, w});
  });
  return FromEdges(g.NumVertices(), std::move(edges));
}

std::int64_t WeightedGraph::WeightedDegree(VertexId v) const {
  std::int64_t sum = 0;
  for (std::int64_t w : WeightsOf(v)) sum += w;
  return sum;
}

WeightedCoreResult WeightedCoreNumbers(const WeightedGraph& wg) {
  const VertexId n = wg.NumVertices();
  WeightedCoreResult result;
  result.lambda.assign(n, 0);

  // Batagelj-Zaversnik generalized-core peel with a lazy-deletion min-heap
  // (weighted degrees are unbounded, so the O(1) bucket queue of the
  // unweighted peel does not apply).
  std::vector<std::int64_t> wdeg(n);
  using Entry = std::pair<std::int64_t, VertexId>;  // (weighted degree, v)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (VertexId v = 0; v < n; ++v) {
    wdeg[v] = wg.WeightedDegree(v);
    heap.emplace(wdeg[v], v);
  }

  const Graph& g = wg.graph();
  std::vector<char> removed(n, 0);
  std::int64_t running_max = 0;
  while (!heap.empty()) {
    const auto [value, v] = heap.top();
    heap.pop();
    if (removed[v] || value != wdeg[v]) continue;  // stale entry
    removed[v] = 1;
    running_max = std::max(running_max, value);
    result.lambda[v] = running_max;
    const auto neighbors = g.Neighbors(v);
    const auto weights = wg.WeightsOf(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId u = neighbors[i];
      if (removed[u]) continue;
      wdeg[u] -= weights[i];
      heap.emplace(wdeg[u], u);
    }
  }
  result.max_lambda = running_max;
  if (n == 0) result.max_lambda = 0;
  return result;
}

WeightedCoreDecomposition DecomposeWeightedCore(const WeightedGraph& wg) {
  WeightedCoreDecomposition out;
  out.core = WeightedCoreNumbers(wg);
  out.skeleton = BuildVertexHierarchy(wg.graph(), out.core.lambda);
  return out;
}

}  // namespace nucleus
