#include "nucleus/variants/temporal_core.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "nucleus/core/peeling.h"
#include "nucleus/core/spaces.h"
#include "nucleus/graph/graph_builder.h"

namespace nucleus {

TemporalGraph TemporalGraph::FromEvents(VertexId num_vertices,
                                        std::vector<TemporalEdge> events) {
  for (TemporalEdge& e : events) {
    NUCLEUS_CHECK(e.u >= 0 && e.u < num_vertices);
    NUCLEUS_CHECK(e.v >= 0 && e.v < num_vertices);
    NUCLEUS_CHECK_MSG(e.u != e.v, "self-loop events are not allowed");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(events.begin(), events.end(),
            [](const TemporalEdge& a, const TemporalEdge& b) {
              return std::tie(a.time, a.u, a.v) < std::tie(b.time, b.u, b.v);
            });
  TemporalGraph tg;
  tg.num_vertices_ = num_vertices;
  tg.events_ = std::move(events);
  return tg;
}

std::pair<std::int64_t, std::int64_t> TemporalGraph::TimeRange() const {
  if (events_.empty()) return {0, -1};
  return {events_.front().time, events_.back().time};
}

Graph TemporalGraph::Snapshot(std::int64_t t_begin, std::int64_t t_end,
                              std::int32_t h) const {
  NUCLEUS_CHECK(h >= 1);
  // Events are time-sorted: binary search the window, then count pair
  // multiplicities within it.
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), t_begin,
      [](const TemporalEdge& e, std::int64_t t) { return e.time < t; });
  const auto hi = std::upper_bound(
      events_.begin(), events_.end(), t_end,
      [](std::int64_t t, const TemporalEdge& e) { return t < e.time; });

  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(hi - lo);
  for (auto it = lo; it != hi; ++it) pairs.emplace_back(it->u, it->v);
  std::sort(pairs.begin(), pairs.end());

  GraphBuilder builder(num_vertices_);
  std::size_t i = 0;
  while (i < pairs.size()) {
    std::size_t j = i;
    while (j < pairs.size() && pairs[j] == pairs[i]) ++j;
    if (static_cast<std::int32_t>(j - i) >= h) {
      builder.AddEdge(pairs[i].first, pairs[i].second);
    }
    i = j;
  }
  return builder.Build();
}

TemporalCoreResult DecomposeWindow(const TemporalGraph& tg,
                                   std::int64_t t_begin, std::int64_t t_end,
                                   std::int32_t h) {
  TemporalCoreResult out;
  out.snapshot = tg.Snapshot(t_begin, t_end, h);
  out.peel = Peel(VertexSpace(out.snapshot));
  std::vector<std::int64_t> labels(out.peel.lambda.begin(),
                                   out.peel.lambda.end());
  out.skeleton = BuildVertexHierarchy(out.snapshot, labels);
  return out;
}

std::vector<WindowCoreStats> CoreEvolution(const TemporalGraph& tg,
                                           std::int64_t window_length,
                                           std::int64_t step, std::int32_t h) {
  NUCLEUS_CHECK(window_length >= 0);
  NUCLEUS_CHECK(step >= 1);
  NUCLEUS_CHECK(h >= 1);
  std::vector<WindowCoreStats> out;
  const auto [t_min, t_max] = tg.TimeRange();
  if (t_max < t_min) return out;  // no events

  for (std::int64_t t = t_min; t <= t_max; t += step) {
    const std::int64_t t_end = t + window_length;
    TemporalCoreResult window = DecomposeWindow(tg, t, t_end, h);
    WindowCoreStats stats;
    stats.t_begin = t;
    stats.t_end = t_end;
    stats.num_edges = window.snapshot.NumEdges();
    stats.max_core = window.peel.max_lambda;
    for (Lambda l : window.peel.lambda) {
      if (l == window.peel.max_lambda && l > 0) ++stats.max_core_size;
    }
    const NucleusHierarchy tree =
        LabeledHierarchyTree(window.snapshot, window.skeleton);
    stats.num_nuclei = tree.NumNuclei();
    out.push_back(stats);
  }
  return out;
}

}  // namespace nucleus
