// Hierarchy construction for ANY vertex-level decomposition.
//
// The paper's Section 3.1 observes that the threshold-based k-core
// adaptations in the literature — weighted (Giatsidis), probabilistic
// (Bonchi), temporal (Wu) — "adapt/improve the peeling part ... not the
// entire k-core decomposition which also needs traversal to locate all the
// (connected) k-cores". Every one of those variants assigns each vertex a
// scalar label lambda(v) (weighted core number, (k,eta)-core number, ...)
// such that the variant's "k-cores" are the connected components of the
// subgraphs induced on {v : lambda(v) >= t}. That is exactly the structure
// the paper's disjoint-set machinery organizes, so one label-driven builder
// closes the gap for all of them at once:
//
//   1. union equal-label edge endpoints  -> maximal sub-nuclei T
//   2. spill label-crossing edges        -> ADJ pairs
//   3. binned BuildHierarchy (Alg. 9)    -> hierarchy-skeleton
//
// Labels may be any int64 (weighted degrees can exceed 2^31); they are
// mapped to dense ranks for the skeleton, with rank 0 reserved for labels
// <= 0 so the "lambda >= 1 means a real nucleus" convention of
// NucleusHierarchy carries over unchanged.
#ifndef NUCLEUS_VARIANTS_VERTEX_HIERARCHY_H_
#define NUCLEUS_VARIANTS_VERTEX_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "nucleus/core/hierarchy.h"
#include "nucleus/core/types.h"
#include "nucleus/graph/graph.h"

namespace nucleus {

/// A hierarchy-skeleton over arbitrary vertex labels. `build` is the
/// standard SkeletonBuild (node lambdas are dense label ranks);
/// `node_label` translates each skeleton node back to the original label.
struct LabeledSkeleton {
  SkeletonBuild build;
  /// Original label of each skeleton node (kRootLambda node excluded; its
  /// entry is 0). Indexed by skeleton node id.
  std::vector<std::int64_t> node_label;
  /// Sorted distinct positive labels; rank r >= 1 corresponds to
  /// distinct_labels[r - 1].
  std::vector<std::int64_t> distinct_labels;
  /// Dense rank of each vertex's label (0 for labels <= 0) — the lambda
  /// vector in the canonical tree's terms (NucleusHierarchy::Validate).
  std::vector<Lambda> vertex_rank;
};

/// Builds the containment hierarchy of the decomposition whose "cores" are
/// the connected components of {v : label(v) >= t}. `labels` has one entry
/// per vertex; non-positive labels mean "in no core" (rank 0).
LabeledSkeleton BuildVertexHierarchy(const Graph& g,
                                     const std::vector<std::int64_t>& labels);

/// Convenience: the canonical NucleusHierarchy of a labeled skeleton.
NucleusHierarchy LabeledHierarchyTree(const Graph& g,
                                      const LabeledSkeleton& skeleton);

}  // namespace nucleus

#endif  // NUCLEUS_VARIANTS_VERTEX_HIERARCHY_H_
