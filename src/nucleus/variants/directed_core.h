// D-core ((k, l)-core) decomposition of directed graphs (Giatsidis et al.,
// "D-cores: measuring collaboration of directed graphs based on
// degeneracy") WITH an explicit connectivity/hierarchy semantic.
//
// A (k, l)-D-core is a maximal subgraph in which every vertex has in-degree
// >= k and out-degree >= l. The paper's Section 3.1 singles this variant
// out: "connectedness definition is semantically unclear for ... the
// directed graph core decomposition [18]. It is only defined that in- and
// out-degrees can be considered to find two lambda values, but traversal
// semantic is not defined for finding subgraphs or constructing the
// hierarchy."
//
// We make the choice the paper hints at and document it: for a FIXED k,
// the out-number l_k(v) (the largest l with v in the (k, l)-core) is a
// scalar vertex label, the (k, l)-cores are the WEAKLY connected components
// of {v : l_k(v) >= l} — arcs used without direction for connectivity —
// and BuildVertexHierarchy produces the l-hierarchy. Sweeping k gives the
// D-core matrix.
#ifndef NUCLEUS_VARIANTS_DIRECTED_CORE_H_
#define NUCLEUS_VARIANTS_DIRECTED_CORE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"
#include "nucleus/variants/vertex_hierarchy.h"

namespace nucleus {

/// Immutable directed simple graph in dual-CSR form (out- and in-adjacency).
class DirectedGraph {
 public:
  /// Builds from an arc list. Self-loops and duplicate arcs are dropped;
  /// (u, v) and (v, u) are distinct arcs. Aborts on out-of-range endpoints.
  static DirectedGraph FromArcs(
      VertexId num_vertices, std::vector<std::pair<VertexId, VertexId>> arcs);

  VertexId NumVertices() const {
    return static_cast<VertexId>(out_offsets_.size()) - 1;
  }
  std::int64_t NumArcs() const {
    return static_cast<std::int64_t>(out_adj_.size());
  }

  std::int64_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  std::int64_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_adj_.data() + out_offsets_[v],
            static_cast<std::size_t>(OutDegree(v))};
  }
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_adj_.data() + in_offsets_[v],
            static_cast<std::size_t>(InDegree(v))};
  }

  /// The undirected simple view (arc directions dropped, reciprocal arcs
  /// coalesced) — the connectivity substrate of the hierarchy.
  Graph Underlying() const;

 private:
  std::vector<std::int64_t> out_offsets_, in_offsets_;
  std::vector<VertexId> out_adj_, in_adj_;
};

/// Membership of the (k, l)-D-core: pruning to the in>=k, out>=l fixpoint.
std::vector<char> DCoreMembership(const DirectedGraph& dg, std::int32_t k,
                                  std::int32_t l);

/// Out-numbers at fixed k: out[v] = largest l such that v is in the
/// (k, l)-core, or -1 if v is not even in the (k, 0)-core.
std::vector<std::int32_t> DCoreOutNumbers(const DirectedGraph& dg,
                                          std::int32_t k);

/// The D-core matrix: rows[k][v] = out-number of v at in-threshold k, for
/// k = 0..max_k (max_k = the largest k with a non-empty (k, 0)-core).
struct DCoreMatrix {
  std::vector<std::vector<std::int32_t>> rows;
  std::int32_t max_k = 0;
};

DCoreMatrix ComputeDCoreMatrix(const DirectedGraph& dg);

/// l-hierarchy at fixed k over weak connectivity. Vertex labels passed to
/// the builder are out-number + 1, so rank 0 = "not in the (k, 0)-core"
/// and a node with label L represents the (k, L-1)-core level.
struct DCoreHierarchy {
  std::vector<std::int32_t> out_numbers;
  LabeledSkeleton skeleton;  // node_label entries are out-number + 1
};

DCoreHierarchy DecomposeDCore(const DirectedGraph& dg, std::int32_t k);

}  // namespace nucleus

#endif  // NUCLEUS_VARIANTS_DIRECTED_CORE_H_
