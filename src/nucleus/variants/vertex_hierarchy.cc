#include "nucleus/variants/vertex_hierarchy.h"

#include <algorithm>
#include <utility>

#include "nucleus/dsf/disjoint_set.h"

namespace nucleus {
namespace {

/// Dense rank of `label`: 0 for label <= 0, else 1 + index in the sorted
/// distinct positive labels.
Lambda RankOf(const std::vector<std::int64_t>& distinct, std::int64_t label) {
  if (label <= 0) return 0;
  const auto it = std::lower_bound(distinct.begin(), distinct.end(), label);
  NUCLEUS_CHECK(it != distinct.end() && *it == label);
  return static_cast<Lambda>(it - distinct.begin()) + 1;
}

}  // namespace

LabeledSkeleton BuildVertexHierarchy(const Graph& g,
                                     const std::vector<std::int64_t>& labels) {
  const VertexId n = g.NumVertices();
  NUCLEUS_CHECK(static_cast<std::int64_t>(labels.size()) == n);

  LabeledSkeleton out;
  out.distinct_labels.reserve(labels.size());
  for (std::int64_t l : labels) {
    if (l > 0) out.distinct_labels.push_back(l);
  }
  std::sort(out.distinct_labels.begin(), out.distinct_labels.end());
  out.distinct_labels.erase(
      std::unique(out.distinct_labels.begin(), out.distinct_labels.end()),
      out.distinct_labels.end());

  // 1. Maximal sub-nuclei: components of equal-label edges.
  DisjointSet vertex_sets(n);
  g.ForEachEdge([&](VertexId u, VertexId v) {
    if (labels[u] == labels[v]) vertex_sets.Union(u, v);
  });

  SkeletonBuild& build = out.build;
  build.comp.assign(n, kInvalidId);
  std::vector<std::int32_t> node_of_root(n, kInvalidId);
  for (VertexId v = 0; v < n; ++v) {
    const std::int32_t r = vertex_sets.Find(v);
    if (node_of_root[r] == kInvalidId) {
      node_of_root[r] =
          build.skeleton.AddNode(RankOf(out.distinct_labels, labels[v]));
      out.node_label.push_back(std::max<std::int64_t>(labels[v], 0));
    }
    build.comp[v] = node_of_root[r];
  }

  // 2. ADJ pairs from label-crossing edges, binned by the lower rank.
  const Lambda max_rank =
      static_cast<Lambda>(out.distinct_labels.size());  // ranks 1..max_rank
  std::vector<std::vector<std::pair<std::int32_t, std::int32_t>>> bins(
      static_cast<std::size_t>(max_rank) + 1);
  g.ForEachEdge([&](VertexId u, VertexId v) {
    if (labels[u] == labels[v]) return;
    const VertexId hi = labels[u] > labels[v] ? u : v;
    const VertexId lo = labels[u] > labels[v] ? v : u;
    bins[RankOf(out.distinct_labels, labels[lo])].emplace_back(
        build.comp[hi], build.comp[lo]);
  });

  // 3. BuildHierarchy (paper Alg. 9) over the bins in decreasing rank.
  HierarchySkeleton& skeleton = build.skeleton;
  std::vector<std::pair<std::int32_t, std::int32_t>> merge;
  for (Lambda k = max_rank; k >= 0; --k) {
    merge.clear();
    for (const auto& [hi_node, lo_node] : bins[k]) {
      const std::int32_t s = skeleton.FindRoot(hi_node);
      const std::int32_t t = skeleton.FindRoot(lo_node);
      if (s == t) continue;
      if (skeleton.LambdaOf(s) > skeleton.LambdaOf(t)) {
        skeleton.AttachChild(s, t);
      } else {
        merge.emplace_back(s, t);
      }
    }
    for (const auto& [s, t] : merge) skeleton.UnionR(s, t);
  }

  build.num_subnuclei = skeleton.NumNodes();
  build.root_id = skeleton.AddNode(kRootLambda);
  out.node_label.push_back(0);
  for (std::int32_t s = 0; s < build.root_id; ++s) {
    if (!skeleton.HasParent(s)) skeleton.SetParent(s, build.root_id);
  }
  out.vertex_rank.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    out.vertex_rank[v] = RankOf(out.distinct_labels, labels[v]);
  }
  return out;
}

NucleusHierarchy LabeledHierarchyTree(const Graph& g,
                                      const LabeledSkeleton& skeleton) {
  return NucleusHierarchy::FromSkeleton(skeleton.build, g.NumVertices());
}

}  // namespace nucleus
