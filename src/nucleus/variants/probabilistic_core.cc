#include "nucleus/variants/probabilistic_core.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>
#include <utility>

namespace nucleus {
namespace {

// Probabilities above this are treated as certain edges (counted, not in
// the DP) so the O(d) downdate never divides by ~0.
constexpr double kCertainThreshold = 1.0 - 1e-9;
// Edges below this probability are dropped at construction.
constexpr double kDropThreshold = 1e-15;
// Comparison slack for "Pr >= eta" against accumulated float error.
constexpr double kEtaSlack = 1e-9;
// Downdates between full DP rebuilds (bounds drift).
constexpr int kRebuildPeriod = 32;

/// Pr[exactly j uncertain edges survive], built by the standard product DP.
std::vector<double> ExactDistribution(std::span<const double> probs) {
  std::vector<double> dp(probs.size() + 1, 0.0);
  dp[0] = 1.0;
  std::size_t count = 0;
  for (double p : probs) {
    ++count;
    for (std::size_t j = count; j >= 1; --j) {
      dp[j] = dp[j] * (1.0 - p) + dp[j - 1] * p;
    }
    dp[0] *= (1.0 - p);
  }
  return dp;
}

std::int32_t EtaDegreeFromState(const std::vector<double>& dp,
                                std::int32_t certain, double eta) {
  // Pr[deg >= k] = Pr[uncertain >= k - certain]; scan tails from the top.
  double tail = 0.0;
  std::int32_t best = certain;  // Pr[deg >= certain] >= Pr[unc >= 0] = 1
  for (std::int32_t j = static_cast<std::int32_t>(dp.size()) - 1; j >= 1;
       --j) {
    tail += dp[j];
    if (tail >= eta - kEtaSlack) {
      best = certain + j;
      break;
    }
  }
  return best;
}

}  // namespace

UncertainGraph UncertainGraph::FromEdges(
    VertexId num_vertices, std::vector<ProbabilisticEdge> edges) {
  for (ProbabilisticEdge& e : edges) {
    NUCLEUS_CHECK(e.u >= 0 && e.u < num_vertices);
    NUCLEUS_CHECK(e.v >= 0 && e.v < num_vertices);
    NUCLEUS_CHECK_MSG(e.u != e.v, "self-loops are not allowed");
    NUCLEUS_CHECK_MSG(e.p >= 0.0 && e.p <= 1.0,
                      "probabilities must be in [0, 1]");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(),
            [](const ProbabilisticEdge& a, const ProbabilisticEdge& b) {
              return std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });
  // Combine duplicates as independent alternatives.
  std::vector<ProbabilisticEdge> combined;
  combined.reserve(edges.size());
  for (const ProbabilisticEdge& e : edges) {
    if (!combined.empty() && combined.back().u == e.u &&
        combined.back().v == e.v) {
      combined.back().p = 1.0 - (1.0 - combined.back().p) * (1.0 - e.p);
    } else {
      combined.push_back(e);
    }
  }
  std::erase_if(combined, [](const ProbabilisticEdge& e) {
    return e.p < kDropThreshold;
  });

  std::vector<std::int64_t> offsets(static_cast<std::size_t>(num_vertices) + 1,
                                    0);
  for (const ProbabilisticEdge& e : combined) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> adj(static_cast<std::size_t>(offsets.back()));
  std::vector<double> probs(adj.size());
  std::vector<std::int64_t> fill(offsets.begin(), offsets.end() - 1);
  for (const ProbabilisticEdge& e : combined) {
    adj[fill[e.u]] = e.v;
    probs[fill[e.u]++] = e.p;
    adj[fill[e.v]] = e.u;
    probs[fill[e.v]++] = e.p;
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    const std::int64_t begin = offsets[v];
    const std::int64_t end = offsets[v + 1];
    std::vector<std::pair<VertexId, double>> list;
    list.reserve(end - begin);
    for (std::int64_t i = begin; i < end; ++i) {
      list.emplace_back(adj[i], probs[i]);
    }
    std::sort(list.begin(), list.end());
    for (std::int64_t i = begin; i < end; ++i) {
      adj[i] = list[i - begin].first;
      probs[i] = list[i - begin].second;
    }
  }
  return UncertainGraph(Graph::FromCsr(std::move(offsets), std::move(adj)),
                        std::move(probs));
}

UncertainGraph UncertainGraph::UniformProbability(const Graph& g, double p) {
  std::vector<ProbabilisticEdge> edges;
  edges.reserve(g.NumEdges());
  g.ForEachEdge([&](VertexId u, VertexId v) {
    edges.push_back({u, v, p});
  });
  return FromEdges(g.NumVertices(), std::move(edges));
}

std::vector<double> DegreeTailDistribution(std::span<const double> probs) {
  const std::vector<double> dp = ExactDistribution(probs);
  std::vector<double> tail(dp.size());
  double sum = 0.0;
  for (std::size_t j = dp.size(); j-- > 0;) {
    sum += dp[j];
    tail[j] = std::min(sum, 1.0);
  }
  return tail;
}

std::int32_t EtaDegree(std::span<const double> probs, double eta) {
  NUCLEUS_CHECK(eta > 0.0 && eta <= 1.0);
  const std::vector<double> tail = DegreeTailDistribution(probs);
  for (std::int32_t k = static_cast<std::int32_t>(tail.size()) - 1; k >= 1;
       --k) {
    if (tail[k] >= eta - kEtaSlack) return k;
  }
  return 0;
}

ProbabilisticCoreResult ProbabilisticCoreNumbers(const UncertainGraph& ug,
                                                 double eta) {
  NUCLEUS_CHECK(eta > 0.0 && eta <= 1.0);
  const VertexId n = ug.NumVertices();
  const Graph& g = ug.graph();
  ProbabilisticCoreResult result;
  result.lambda.assign(n, 0);

  // Per-vertex state over ALIVE incident edges: count of certain edges +
  // DP over the uncertain ones.
  std::vector<std::int32_t> certain(n, 0);
  std::vector<std::vector<double>> dp(n);
  std::vector<char> removed(n, 0);
  std::vector<int> downdates(n, 0);
  std::vector<std::int32_t> eta_deg(n, 0);

  auto rebuild = [&](VertexId v) {
    std::vector<double> uncertain;
    certain[v] = 0;
    const auto neighbors = g.Neighbors(v);
    const auto probs = ug.ProbsOf(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (removed[neighbors[i]]) continue;
      if (probs[i] >= kCertainThreshold) {
        ++certain[v];
      } else {
        uncertain.push_back(probs[i]);
      }
    }
    dp[v] = ExactDistribution({uncertain.data(), uncertain.size()});
    downdates[v] = 0;
  };

  using Entry = std::pair<std::int32_t, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (VertexId v = 0; v < n; ++v) {
    rebuild(v);
    eta_deg[v] = EtaDegreeFromState(dp[v], certain[v], eta);
    heap.emplace(eta_deg[v], v);
  }

  // Removes the alive edge (u, its neighbor with probability p) from u's
  // state by the O(d) downdate, with periodic full rebuilds.
  auto downdate = [&](VertexId u, double p) {
    if (p >= kCertainThreshold) {
      --certain[u];
      return;
    }
    if (++downdates[u] >= kRebuildPeriod) {
      rebuild(u);
      return;
    }
    std::vector<double>& f = dp[u];
    const double q = 1.0 - p;
    double prev = 0.0;
    for (std::size_t j = 0; j + 1 < f.size(); ++j) {
      double gj = (f[j] - prev * p) / q;
      gj = std::clamp(gj, 0.0, 1.0);
      f[j] = gj;
      prev = gj;
    }
    f.pop_back();
  };

  std::int32_t running = 0;
  while (!heap.empty()) {
    const auto [value, v] = heap.top();
    heap.pop();
    if (removed[v] || value != eta_deg[v]) continue;  // stale
    removed[v] = 1;
    running = std::max(running, value);
    result.lambda[v] = running;

    const auto neighbors = g.Neighbors(v);
    const auto probs = ug.ProbsOf(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId u = neighbors[i];
      if (removed[u]) continue;
      downdate(u, probs[i]);
      eta_deg[u] = EtaDegreeFromState(dp[u], certain[u], eta);
      heap.emplace(eta_deg[u], u);
    }
  }
  result.max_lambda = running;
  return result;
}

ProbabilisticCoreDecomposition DecomposeProbabilisticCore(
    const UncertainGraph& ug, double eta) {
  ProbabilisticCoreDecomposition out;
  out.core = ProbabilisticCoreNumbers(ug, eta);
  std::vector<std::int64_t> labels(out.core.lambda.begin(),
                                   out.core.lambda.end());
  out.skeleton = BuildVertexHierarchy(ug.graph(), labels);
  return out;
}

}  // namespace nucleus
