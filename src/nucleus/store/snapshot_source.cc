#include "nucleus/store/snapshot_source.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "nucleus/store/record_io.h"
#include "nucleus/store/snapshot_v2.h"
#include "nucleus/util/mutex.h"

namespace nucleus {

// ---------------------------------------------------------------------------
// HeapSource

HeapSource::HeapSource(SnapshotData snapshot)
    : snapshot_(std::move(snapshot)) {
  const NucleusHierarchy& h = snapshot_.hierarchy;
  const std::int32_t n = static_cast<std::int32_t>(h.NumNodes());
  node_lambda_.resize(static_cast<std::size_t>(n));
  node_parent_.resize(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    node_lambda_[i] = h.node(i).lambda;
    node_parent_[i] = h.node(i).parent;
  }
  tables_ = snapshot_.has_index ? snapshot_.index_tables
                                : HierarchyIndex(h).Tables();
  ranking_.reserve(static_cast<std::size_t>(h.NumNuclei()));
  for (std::int32_t i = 0; i < n; ++i) {
    if (node_lambda_[i] >= 1) ranking_.push_back(i);
  }
  std::sort(ranking_.begin(), ranking_.end(),
            [this](std::int32_t a, std::int32_t b) {
              if (node_lambda_[a] != node_lambda_[b]) {
                return node_lambda_[a] > node_lambda_[b];
              }
              return a < b;
            });
  heap_bytes_ =
      EstimateSnapshotHeapBytes(snapshot_) +
      static_cast<std::int64_t>(node_lambda_.size() + node_parent_.size() +
                                ranking_.size()) *
          sizeof(std::int32_t) +
      (snapshot_.has_index
           ? 0
           : static_cast<std::int64_t>(tables_.depth.size() +
                                       tables_.up.size()) *
                 sizeof(std::int32_t));
}

std::int64_t EstimateSnapshotHeapBytes(const SnapshotData& snapshot) {
  const NucleusHierarchy& h = snapshot.hierarchy;
  std::int64_t bytes = 0;
  bytes += static_cast<std::int64_t>(snapshot.peel.lambda.size()) *
           sizeof(Lambda);
  bytes += h.NumCliques() * sizeof(std::int32_t);  // node_of_clique
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    const auto& node = h.node(id);
    bytes += static_cast<std::int64_t>(sizeof(NucleusHierarchy::Node));
    bytes += static_cast<std::int64_t>(node.children.size()) *
             sizeof(std::int32_t);
    bytes += static_cast<std::int64_t>(node.members.size()) *
             sizeof(CliqueId);
  }
  if (snapshot.has_index) {
    bytes += static_cast<std::int64_t>(snapshot.index_tables.depth.size() +
                                       snapshot.index_tables.up.size()) *
             sizeof(std::int32_t);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// MmapSource

namespace {

namespace v2 = store_v2_internal;

// Lazy verification groups. Each bit covers the digests + structural
// invariants of the sections one query family touches; dependencies are
// verified first so a validator can trust the arrays it reads.
constexpr std::uint32_t kGroupTree = 1u << 0;     // node_lambda, node_parent
constexpr std::uint32_t kGroupAssign = 1u << 1;   // lambda, node_of_clique
constexpr std::uint32_t kGroupIndex = 1u << 2;    // depth, up
constexpr std::uint32_t kGroupSub = 1u << 3;      // sub_begin, sub_end
constexpr std::uint32_t kGroupPre = 1u << 4;      // cliques_pre
constexpr std::uint32_t kGroupRanking = 1u << 5;  // density_ranking

std::uint32_t GroupsForNeeds(std::uint32_t needs) {
  std::uint32_t groups = 0;
  if (needs & kNeedLookup) groups |= kGroupTree | kGroupAssign;
  if (needs & kNeedIndex) groups |= kGroupTree | kGroupAssign | kGroupIndex;
  if (needs & kNeedSizes) groups |= kGroupTree | kGroupAssign | kGroupSub;
  if (needs & kNeedMembers) {
    groups |= kGroupTree | kGroupAssign | kGroupSub | kGroupPre;
  }
  if (needs & kNeedRanking) groups |= kGroupTree | kGroupRanking;
  return groups;
}

class MmapSource final : public SnapshotSource {
 public:
  static StatusOr<std::shared_ptr<const SnapshotSource>> Open(
      const std::string& path);

  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  ~MmapSource() override {
    if (base_ != nullptr) ::munmap(base_, static_cast<std::size_t>(size_));
  }

  const SnapshotMeta& meta() const override { return header_.meta; }
  std::int32_t NumNodes() const override { return header_.num_nodes; }
  std::int64_t NumNuclei() const override { return header_.num_ranked; }

  std::span<const Lambda> CliqueLambdas() const override {
    return Section<Lambda>(SnapshotSection::kLambda);
  }
  std::span<const Lambda> NodeLambdas() const override {
    return Section<Lambda>(SnapshotSection::kNodeLambda);
  }
  std::span<const std::int32_t> NodeParents() const override {
    return Section<std::int32_t>(SnapshotSection::kNodeParent);
  }
  std::span<const std::int32_t> NodeOfCliques() const override {
    return Section<std::int32_t>(SnapshotSection::kNodeOfClique);
  }
  std::span<const std::int32_t> Depths() const override {
    return Section<std::int32_t>(SnapshotSection::kDepth);
  }
  std::span<const std::int32_t> UpTable() const override {
    return Section<std::int32_t>(SnapshotSection::kUp);
  }
  std::int32_t IndexLevels() const override { return header_.levels; }
  std::span<const std::int32_t> DensityRanking() const override {
    return Section<std::int32_t>(SnapshotSection::kDensityRanking);
  }

  std::int64_t SubtreeSize(std::int32_t node) const override {
    return SubEnd()[node] - SubBegin()[node];
  }

  std::vector<CliqueId> MaterializeMembers(std::int32_t node) const override {
    const auto pre = Section<std::int32_t>(SnapshotSection::kCliquesPre);
    const std::int64_t begin = SubBegin()[node];
    const std::int64_t end = SubEnd()[node];
    // One contiguous slice of the member store; re-sorting ascending makes
    // the result bit-identical to the heap path's MembersOfSubtree.
    std::vector<CliqueId> members(pre.begin() + begin, pre.begin() + end);
    std::sort(members.begin(), members.end());
    return members;
  }

  Status Ensure(std::uint32_t needs) const override {
    const std::uint32_t groups = GroupsForNeeds(needs);
    if ((verified_.load(std::memory_order_acquire) & groups) == groups) {
      return Status::Ok();
    }
    MutexLock lock(verify_mutex_);
    // A sticky failure: one corrupt section poisons the source, every
    // later query gets the original diagnosis instead of a re-scan.
    if (!error_.ok()) return error_;
    // Fixed order = dependency order (tree before everything, sub before
    // pre), regardless of which bits the caller asked for first.
    const std::uint32_t todo =
        groups & ~verified_.load(std::memory_order_relaxed);
    for (const std::uint32_t group :
         {kGroupTree, kGroupAssign, kGroupIndex, kGroupSub, kGroupPre,
          kGroupRanking}) {
      if ((todo & group) == 0) continue;
      if (Status s = VerifyGroup(group); !s.ok()) {
        error_ = s;
        return error_;
      }
      verified_.fetch_or(group, std::memory_order_release);
    }
    return Status::Ok();
  }

  std::int64_t HeapBytes() const override {
    return static_cast<std::int64_t>(sizeof(MmapSource));
  }
  std::int64_t MappedBytes() const override { return size_; }

 private:
  MmapSource(void* base, std::int64_t size, std::string path,
             const v2::V2Header& header)
      : base_(base), size_(size), path_(std::move(path)), header_(header) {}

  template <typename T>
  std::span<const T> Section(SnapshotSection id) const {
    const v2::V2Header& h = header_;
    const SnapshotSectionEntry& entry =
        h.sections[static_cast<std::uint32_t>(id) - 1];
    const auto* data = reinterpret_cast<const T*>(
        static_cast<const unsigned char*>(base_) + entry.offset);
    return {data, static_cast<std::size_t>(entry.length) / sizeof(T)};
  }

  std::span<const std::int64_t> SubBegin() const {
    return Section<std::int64_t>(SnapshotSection::kSubBegin);
  }
  std::span<const std::int64_t> SubEnd() const {
    return Section<std::int64_t>(SnapshotSection::kSubEnd);
  }

  Status VerifyDigests(std::initializer_list<SnapshotSection> sections)
      const {
    const auto* base = static_cast<const unsigned char*>(base_);
    for (const SnapshotSection id : sections) {
      const SnapshotSectionEntry& entry =
          header_.sections[static_cast<std::uint32_t>(id) - 1];
      if (Status s = v2::VerifySectionDigest(base, entry, id, path_);
          !s.ok()) {
        return s;
      }
    }
    return Status::Ok();
  }

  Status VerifyGroup(std::uint32_t group) const {
    switch (group) {
      case kGroupTree:
        if (Status s = VerifyDigests({SnapshotSection::kNodeLambda,
                                      SnapshotSection::kNodeParent});
            !s.ok()) {
          return s;
        }
        return v2::ValidateTreeSections(path_, header_, NodeLambdas().data(),
                                        NodeParents().data());
      case kGroupAssign:
        if (Status s = VerifyDigests({SnapshotSection::kLambda,
                                      SnapshotSection::kNodeOfClique});
            !s.ok()) {
          return s;
        }
        return v2::ValidateAssignSections(path_, header_,
                                          CliqueLambdas().data(),
                                          NodeLambdas().data(),
                                          NodeOfCliques().data());
      case kGroupIndex:
        if (Status s = VerifyDigests(
                {SnapshotSection::kDepth, SnapshotSection::kUp});
            !s.ok()) {
          return s;
        }
        return v2::ValidateIndexSections(path_, header_,
                                         NodeParents().data(),
                                         Depths().data(), UpTable().data());
      case kGroupSub:
        if (Status s = VerifyDigests({SnapshotSection::kSubBegin,
                                      SnapshotSection::kSubEnd});
            !s.ok()) {
          return s;
        }
        return v2::ValidateSubSections(path_, header_, NodeParents().data(),
                                       NodeOfCliques().data(),
                                       SubBegin().data(), SubEnd().data());
      case kGroupPre:
        if (Status s = VerifyDigests({SnapshotSection::kCliquesPre});
            !s.ok()) {
          return s;
        }
        return v2::ValidateCliquesPre(
            path_, header_, NodeOfCliques().data(), SubBegin().data(),
            SubEnd().data(),
            Section<std::int32_t>(SnapshotSection::kCliquesPre).data());
      case kGroupRanking:
        if (Status s = VerifyDigests({SnapshotSection::kDensityRanking});
            !s.ok()) {
          return s;
        }
        return v2::ValidateRankingSection(path_, header_,
                                          NodeLambdas().data(),
                                          DensityRanking().data());
      default:
        return Status::Internal("unknown verification group");
    }
  }

  void* base_ = nullptr;
  std::int64_t size_ = 0;
  std::string path_;
  v2::V2Header header_;

  mutable std::atomic<std::uint32_t> verified_{0};
  mutable Mutex verify_mutex_;
  // Sticky first verification failure.
  mutable Status error_ GUARDED_BY(verify_mutex_);
};

StatusOr<std::shared_ptr<const SnapshotSource>> MmapSource::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(path + ": fstat failed: " +
                            std::strerror(err));
  }
  const std::int64_t size = static_cast<std::int64_t>(st.st_size);
  if (size < kSnapshotV2HeaderBytes) {
    ::close(fd);
    return Status::OutOfRange(path + ": header: truncated snapshot");
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is
  // only needed to create it.
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::Internal(path + ": mmap failed: " + std::strerror(errno));
  }
  v2::V2Header header;
  if (Status s = v2::ParseV2Header(static_cast<const unsigned char*>(base),
                                   size, path, &header);
      !s.ok()) {
    ::munmap(base, static_cast<std::size_t>(size));
    return s;
  }
  return std::shared_ptr<const SnapshotSource>(
      new MmapSource(base, size, path, header));
}

}  // namespace

// ---------------------------------------------------------------------------
// Factory + view primitives

StatusOr<std::shared_ptr<const SnapshotSource>> OpenSnapshotSource(
    const std::string& path, SnapshotMemoryMode mode) {
  StatusOr<std::uint32_t> version = ReadSnapshotVersion(path);
  if (!version.ok()) return version.status();
  if (mode == SnapshotMemoryMode::kMmap && *version == 2) {
    return MmapSource::Open(path);
  }
  // Heap mode, and the documented fallback: a v1 file has no section
  // directory to map against, so kMmap degrades to the eager heap load.
  StatusOr<SnapshotData> snapshot = LoadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  return std::shared_ptr<const SnapshotSource>(
      std::make_shared<HeapSource>(std::move(*snapshot)));
}

SourceView MakeSourceView(const SnapshotSource& source) {
  SourceView view;
  view.clique_lambda = source.CliqueLambdas();
  view.node_lambda = source.NodeLambdas();
  view.node_parent = source.NodeParents();
  view.node_of_clique = source.NodeOfCliques();
  view.depth = source.Depths();
  view.up = source.UpTable();
  view.levels = source.IndexLevels();
  view.ranking = source.DensityRanking();
  return view;
}

std::int32_t ViewLca(const SourceView& view, std::int32_t a, std::int32_t b) {
  if (view.depth[a] < view.depth[b]) std::swap(a, b);
  std::int32_t diff = view.depth[a] - view.depth[b];
  for (std::int32_t j = 0; diff != 0; ++j, diff >>= 1) {
    if (diff & 1) a = view.Up(j, a);
  }
  if (a == b) return a;
  for (std::int32_t j = view.levels - 1; j >= 0; --j) {
    if (view.Up(j, a) != view.Up(j, b)) {
      a = view.Up(j, a);
      b = view.Up(j, b);
    }
  }
  return view.Up(0, a);
}

std::int32_t ViewNucleusAtLevel(const SourceView& view, CliqueId u,
                                Lambda k) {
  std::int32_t x = view.node_of_clique[u];
  if (view.node_lambda[x] < k) return kInvalidId;
  // Lift to the highest ancestor still at lambda >= k: the k-nucleus is
  // the top of the chain segment whose lambda has not dropped below k.
  for (std::int32_t j = view.levels - 1; j >= 0; --j) {
    const std::int32_t anc = view.Up(j, x);
    if (anc != kInvalidId && view.node_lambda[anc] >= k) x = anc;
  }
  return x;
}

std::int32_t ViewSmallestCommonNucleus(const SourceView& view, CliqueId u,
                                       CliqueId v) {
  const std::int32_t lca =
      ViewLca(view, view.node_of_clique[u], view.node_of_clique[v]);
  if (view.node_lambda[lca] < 1) return kInvalidId;
  return lca;
}

Lambda ViewCommonNucleusLevel(const SourceView& view, CliqueId u,
                              CliqueId v) {
  const std::int32_t lca =
      ViewLca(view, view.node_of_clique[u], view.node_of_clique[v]);
  return view.node_lambda[lca] < 1 ? 0 : view.node_lambda[lca];
}

}  // namespace nucleus
