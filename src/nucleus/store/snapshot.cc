#include "nucleus/store/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "nucleus/store/record_io.h"
#include "nucleus/store/snapshot_v2.h"
#include "nucleus/util/file_util.h"

namespace nucleus {
namespace {

using store_internal::ChecksummingReader;
using store_internal::ChecksummingWriter;
using store_internal::Fnv1a;
using store_internal::kFnvOffset;

/// The header in parsed form (never memcpy'd as a struct: the on-disk
/// layout is packed, field by field).
struct Header {
  std::uint32_t flags = 0;
  std::int32_t family = 0;
  std::int32_t algorithm = 0;
  std::int32_t num_vertices = 0;
  std::int64_t num_edges = 0;
  std::uint64_t graph_fingerprint = 0;
  std::int64_t num_cliques = 0;
  std::int32_t max_lambda = 0;
  std::int32_t num_nodes = 0;
  std::int32_t levels = 0;
};

constexpr std::int64_t kHeaderBytes = 64;
constexpr std::int64_t kFooterBytes = 8;

/// Expected total file size from a validated header whose counts have been
/// bounded by BoundCountsByFileSize: every term is then <= actual file
/// size, so the sum cannot overflow.
std::int64_t ExpectedFileSize(const Header& h) {
  std::int64_t payload = 0;
  payload += h.num_cliques * 4;  // lambda
  payload += static_cast<std::int64_t>(h.num_nodes) * 4;  // node_lambda
  payload += static_cast<std::int64_t>(h.num_nodes) * 4;  // node_parent
  payload += h.num_cliques * 4;  // node_of_clique
  if (h.flags & kSnapshotFlagHasIndex) {
    payload += static_cast<std::int64_t>(h.num_nodes) * 4;  // depth
    payload += static_cast<std::int64_t>(h.levels) * h.num_nodes * 4;  // up
  }
  return kHeaderBytes + payload + kFooterBytes;
}

/// Rejects counts a file of `actual` bytes cannot possibly hold BEFORE any
/// size arithmetic: without this, a crafted num_cliques near 2^62 would
/// wrap the int64 multiplications in ExpectedFileSize, slip past the size
/// comparison, and reach a multi-exabyte vector::resize.
Status BoundCountsByFileSize(const Header& h, std::int64_t actual,
                             const std::string& path) {
  const std::int64_t max_entries = actual / 4;  // every array is int32
  if (h.num_cliques > max_entries || h.num_nodes > max_entries ||
      static_cast<std::int64_t>(h.levels) * h.num_nodes > max_entries) {
    return Status::InvalidArgument(
        path +
        ": header: size mismatch (header counts exceed the file size; "
        "truncated or corrupt)");
  }
  return Status::Ok();
}

Status ReadHeader(ChecksummingReader* reader, const std::string& path,
                  Header* header) {
  char magic[8];
  if (Status s = reader->Read(magic, sizeof(magic)); !s.ok()) return s;
  if (std::memcmp(magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument(path +
                                   ": header: bad magic (not a snapshot "
                                   "file)");
  }
  std::uint32_t version = 0;
  if (Status s = reader->ReadValue(&version); !s.ok()) return s;
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(path +
                                   ": header: unsupported snapshot version " +
                                   std::to_string(version));
  }
  if (Status s = reader->ReadValue(&header->flags); !s.ok()) return s;
  if (Status s = reader->ReadValue(&header->family); !s.ok()) return s;
  if (Status s = reader->ReadValue(&header->algorithm); !s.ok()) return s;
  if (Status s = reader->ReadValue(&header->num_vertices); !s.ok()) return s;
  if (Status s = reader->ReadValue(&header->num_edges); !s.ok()) return s;
  if (Status s = reader->ReadValue(&header->graph_fingerprint); !s.ok()) {
    return s;
  }
  if (Status s = reader->ReadValue(&header->num_cliques); !s.ok()) return s;
  if (Status s = reader->ReadValue(&header->max_lambda); !s.ok()) return s;
  if (Status s = reader->ReadValue(&header->num_nodes); !s.ok()) return s;
  if (Status s = reader->ReadValue(&header->levels); !s.ok()) return s;

  if (header->flags & ~kSnapshotFlagHasIndex) {
    return Status::InvalidArgument(path + ": header: unknown snapshot flags");
  }
  if (header->family < 0 ||
      header->family > static_cast<std::int32_t>(Family::kNucleus34)) {
    return Status::InvalidArgument(path + ": header: invalid family");
  }
  if (header->algorithm < 0 ||
      header->algorithm > static_cast<std::int32_t>(Algorithm::kHypo)) {
    return Status::InvalidArgument(path + ": header: invalid algorithm");
  }
  if (header->num_vertices < 0 || header->num_edges < 0 ||
      header->num_cliques < 0 || header->max_lambda < 0 ||
      header->num_nodes < 1) {
    return Status::InvalidArgument(path + ": header: impossible counts");
  }
  const bool has_index = (header->flags & kSnapshotFlagHasIndex) != 0;
  // levels is bounded by the depth of a binary-lifted tree over int32 ids.
  if (has_index ? (header->levels < 1 || header->levels > 32)
                : header->levels != 0) {
    return Status::InvalidArgument(path + ": header: invalid index levels");
  }
  return Status::Ok();
}

/// Full structural validation of the loaded arrays — everything
/// NucleusHierarchy::FromParts would abort on, surfaced as Status instead.
Status ValidateParts(const Header& h, const std::vector<Lambda>& lambda,
                     const std::vector<Lambda>& node_lambda,
                     const std::vector<std::int32_t>& node_parent,
                     const std::vector<std::int32_t>& node_of_clique,
                     const std::string& path) {
  if (node_lambda[0] != kRootLambda || node_parent[0] != kInvalidId) {
    return Status::InvalidArgument(path +
                                   ": node_parent: corrupt snapshot root "
                                   "node");
  }
  Lambda max_lambda = 0;
  for (std::int32_t i = 1; i < h.num_nodes; ++i) {
    if (node_parent[i] < 0 || node_parent[i] >= i) {
      return Status::InvalidArgument(path +
                                     ": node_parent: corrupt parent order");
    }
    if (node_lambda[i] < 0 ||
        node_lambda[node_parent[i]] >= node_lambda[i]) {
      return Status::InvalidArgument(
          path + ": node_lambda: non-increasing lambda chain");
    }
    if (node_lambda[i] > max_lambda) max_lambda = node_lambda[i];
  }
  if (max_lambda != h.max_lambda) {
    return Status::InvalidArgument(path +
                                   ": node_lambda: max lambda mismatch");
  }
  std::vector<char> has_member(static_cast<std::size_t>(h.num_nodes), 0);
  for (std::int64_t u = 0; u < h.num_cliques; ++u) {
    const std::int32_t id = node_of_clique[static_cast<std::size_t>(u)];
    if (id < 0 || id >= h.num_nodes) {
      return Status::InvalidArgument(
          path + ": node_of_clique: clique assigned out of range");
    }
    if (lambda[static_cast<std::size_t>(u)] != node_lambda[id]) {
      return Status::InvalidArgument(
          path + ": lambda: lambda / node assignment mismatch");
    }
    has_member[id] = 1;
  }
  for (std::int32_t i = 1; i < h.num_nodes; ++i) {
    if (!has_member[i]) {
      return Status::InvalidArgument(
          path + ": node_of_clique: memberless non-root node");
    }
  }
  return Status::Ok();
}

/// Jump tables must be EXACTLY what HierarchyIndex would compute for this
/// tree; the recheck is a few linear passes, orders cheaper than a
/// traversal-based rebuild, and guarantees Tables() round-trips
/// bit-identically.
Status ValidateIndexTables(const Header& h,
                           const std::vector<std::int32_t>& node_parent,
                           const HierarchyIndexTables& tables,
                           const std::string& path) {
  const std::int32_t n = h.num_nodes;
  std::int32_t max_depth = 0;
  if (tables.depth[0] != 0) {
    return Status::InvalidArgument(path + ": depth: corrupt index depth "
                                          "table");
  }
  for (std::int32_t i = 1; i < n; ++i) {
    // Parents precede children, so depth[parent] is already verified.
    if (tables.depth[i] != tables.depth[node_parent[i]] + 1) {
      return Status::InvalidArgument(path + ": depth: corrupt index depth "
                                            "table");
    }
    if (tables.depth[i] > max_depth) max_depth = tables.depth[i];
  }
  std::int32_t expected_levels = 1;
  while ((1 << expected_levels) <= std::max(max_depth, 1)) ++expected_levels;
  if (tables.levels != expected_levels) {
    return Status::InvalidArgument(path + ": up: index level count "
                                          "mismatch");
  }
  const auto up = [&](std::int32_t j, std::int32_t x) {
    return tables.up[static_cast<std::size_t>(j) * n + x];
  };
  for (std::int32_t x = 0; x < n; ++x) {
    if (up(0, x) != node_parent[x]) {
      return Status::InvalidArgument(path + ": up: corrupt index jump "
                                            "table");
    }
  }
  for (std::int32_t j = 1; j < tables.levels; ++j) {
    for (std::int32_t x = 0; x < n; ++x) {
      const std::int32_t half = up(j - 1, x);
      const std::int32_t expect =
          half == kInvalidId ? kInvalidId : up(j - 1, half);
      if (up(j, x) != expect) {
        return Status::InvalidArgument(path + ": up: corrupt index jump "
                                              "table");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

std::uint64_t GraphFingerprint(const Graph& g) {
  std::uint64_t hash = kFnvOffset;
  const std::int64_t n = g.NumVertices();
  hash = Fnv1a(hash, &n, sizeof(n));
  for (VertexId v = 0; v < n; ++v) {
    const std::int64_t offset = g.AdjOffset(v);
    hash = Fnv1a(hash, &offset, sizeof(offset));
  }
  const std::vector<VertexId>& adj = g.AdjArray();
  if (!adj.empty()) {
    hash = Fnv1a(hash, adj.data(), adj.size() * sizeof(VertexId));
  }
  return hash;
}

SnapshotData MakeSnapshot(const Graph& g, const DecomposeOptions& options,
                          const DecompositionResult& result, bool with_index) {
  DecompositionResult copy;
  copy.num_cliques = result.num_cliques;
  copy.peel = result.peel;
  copy.hierarchy = result.hierarchy;
  return MakeSnapshot(g, options, std::move(copy), with_index);
}

SnapshotData MakeSnapshot(const Graph& g, const DecomposeOptions& options,
                          DecompositionResult&& result, bool with_index) {
  NUCLEUS_CHECK_MSG(result.hierarchy.NumNodes() >= 1,
                    "snapshot requires a built hierarchy (build_tree)");
  NUCLEUS_CHECK(result.hierarchy.NumCliques() == result.num_cliques);
  SnapshotData snapshot;
  snapshot.meta.family = options.family;
  snapshot.meta.algorithm = options.algorithm;
  snapshot.meta.num_vertices = g.NumVertices();
  snapshot.meta.num_edges = g.NumEdges();
  snapshot.meta.graph_fingerprint = GraphFingerprint(g);
  snapshot.meta.num_cliques = result.num_cliques;
  snapshot.meta.max_lambda = result.peel.max_lambda;
  snapshot.peel = std::move(result.peel);
  snapshot.hierarchy = std::move(result.hierarchy);
  snapshot.has_index = with_index;
  if (with_index) {
    snapshot.index_tables = HierarchyIndex(snapshot.hierarchy).Tables();
  }
  return snapshot;
}

namespace {

/// The actual serialization, against an already-open stream.
Status WriteSnapshotTo(const SnapshotData& snapshot, std::FILE* f,
                       const std::string& path) {
  ChecksummingWriter writer(f, path);

  const NucleusHierarchy& h = snapshot.hierarchy;
  const std::int32_t num_nodes = static_cast<std::int32_t>(h.NumNodes());
  const std::int64_t num_cliques = h.NumCliques();
  NUCLEUS_CHECK(num_cliques == snapshot.meta.num_cliques);
  NUCLEUS_CHECK(static_cast<std::int64_t>(snapshot.peel.lambda.size()) ==
                num_cliques);

  const std::uint32_t flags =
      snapshot.has_index ? kSnapshotFlagHasIndex : 0u;
  const std::int32_t levels =
      snapshot.has_index ? snapshot.index_tables.levels : 0;
  if (Status s = writer.Write(kSnapshotMagic, sizeof(kSnapshotMagic));
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(kSnapshotVersion); !s.ok()) return s;
  if (Status s = writer.WriteValue(flags); !s.ok()) return s;
  if (Status s =
          writer.WriteValue(static_cast<std::int32_t>(snapshot.meta.family));
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(
          static_cast<std::int32_t>(snapshot.meta.algorithm));
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(snapshot.meta.num_vertices); !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(snapshot.meta.num_edges); !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(snapshot.meta.graph_fingerprint);
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(num_cliques); !s.ok()) return s;
  if (Status s = writer.WriteValue(snapshot.meta.max_lambda); !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(num_nodes); !s.ok()) return s;
  if (Status s = writer.WriteValue(levels); !s.ok()) return s;

  if (Status s = writer.WriteArray(snapshot.peel.lambda); !s.ok()) return s;

  // Node arrays are assembled per section so the write stays streamed even
  // for hierarchies whose member lists dwarf memory locality.
  std::vector<Lambda> node_lambda(static_cast<std::size_t>(num_nodes));
  std::vector<std::int32_t> node_parent(static_cast<std::size_t>(num_nodes));
  for (std::int32_t i = 0; i < num_nodes; ++i) {
    node_lambda[i] = h.node(i).lambda;
    node_parent[i] = h.node(i).parent;
  }
  if (Status s = writer.WriteArray(node_lambda); !s.ok()) return s;
  if (Status s = writer.WriteArray(node_parent); !s.ok()) return s;

  std::vector<std::int32_t> node_of_clique(
      static_cast<std::size_t>(num_cliques));
  for (std::int64_t u = 0; u < num_cliques; ++u) {
    node_of_clique[static_cast<std::size_t>(u)] =
        h.NodeOfClique(static_cast<CliqueId>(u));
  }
  if (Status s = writer.WriteArray(node_of_clique); !s.ok()) return s;

  if (snapshot.has_index) {
    NUCLEUS_CHECK(static_cast<std::int32_t>(
                      snapshot.index_tables.depth.size()) == num_nodes);
    NUCLEUS_CHECK(snapshot.index_tables.up.size() ==
                  static_cast<std::size_t>(levels) * num_nodes);
    if (Status s = writer.WriteArray(snapshot.index_tables.depth); !s.ok()) {
      return s;
    }
    if (Status s = writer.WriteArray(snapshot.index_tables.up); !s.ok()) {
      return s;
    }
  }

  const std::uint64_t checksum = writer.checksum();
  if (std::fwrite(&checksum, 1, sizeof(checksum), f) != sizeof(checksum)) {
    return Status::Internal("short write to " + path);
  }
  return store_internal::FlushToDevice(f, path);
}

}  // namespace

Status SaveSnapshot(const SnapshotData& snapshot, const std::string& path) {
  return store_internal::WriteFileAtomically(
      path, [&snapshot](std::FILE* f, const std::string& temp_path) {
        return WriteSnapshotTo(snapshot, f, temp_path);
      });
}

StatusOr<SnapshotData> LoadSnapshot(const std::string& path) {
  // Version dispatch on the magic: v2 files load eagerly through the
  // sectioned reader into the same SnapshotData, so chains, updates and
  // tooling are format-transparent. Anything else falls through to the v1
  // reader, whose header check owns the bad-magic diagnosis.
  {
    FilePtr probe(std::fopen(path.c_str(), "rb"));
    if (probe == nullptr) {
      return Status::NotFound("cannot open " + path);
    }
    char magic[8];
    if (std::fread(magic, 1, sizeof(magic), probe.get()) == sizeof(magic) &&
        std::memcmp(magic, kSnapshotV2Magic, sizeof(kSnapshotV2Magic)) ==
            0) {
      return LoadSnapshotV2(path);
    }
  }
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  ChecksummingReader reader(file.get(), path);

  Header header;
  if (Status s = ReadHeader(&reader, path, &header); !s.ok()) return s;

  // Size the whole file from the header BEFORE any allocation: a corrupt
  // count can neither over-allocate nor hide trailing garbage.
  StatusOr<std::int64_t> actual = FileSize(file.get(), path);
  if (!actual.ok()) return actual.status();
  if (Status s = BoundCountsByFileSize(header, *actual, path); !s.ok()) {
    return s;
  }
  if (*actual != ExpectedFileSize(header)) {
    return Status::InvalidArgument(
        path + ": header: size mismatch (expected " +
        std::to_string(ExpectedFileSize(header)) + " bytes, file has " +
        std::to_string(*actual) + "; truncated or trailing data)");
  }

  SnapshotData snapshot;
  snapshot.meta.family = static_cast<Family>(header.family);
  snapshot.meta.algorithm = static_cast<Algorithm>(header.algorithm);
  snapshot.meta.num_vertices = header.num_vertices;
  snapshot.meta.num_edges = header.num_edges;
  snapshot.meta.graph_fingerprint = header.graph_fingerprint;
  snapshot.meta.num_cliques = header.num_cliques;
  snapshot.meta.max_lambda = header.max_lambda;
  snapshot.has_index = (header.flags & kSnapshotFlagHasIndex) != 0;

  std::vector<Lambda> node_lambda;
  std::vector<std::int32_t> node_parent;
  std::vector<std::int32_t> node_of_clique;
  reader.BeginSection("lambda");
  if (Status s = reader.ReadArray(header.num_cliques, &snapshot.peel.lambda);
      !s.ok()) {
    return s;
  }
  reader.BeginSection("node_lambda");
  if (Status s = reader.ReadArray(header.num_nodes, &node_lambda); !s.ok()) {
    return s;
  }
  reader.BeginSection("node_parent");
  if (Status s = reader.ReadArray(header.num_nodes, &node_parent); !s.ok()) {
    return s;
  }
  reader.BeginSection("node_of_clique");
  if (Status s = reader.ReadArray(header.num_cliques, &node_of_clique);
      !s.ok()) {
    return s;
  }
  if (snapshot.has_index) {
    reader.BeginSection("depth");
    if (Status s =
            reader.ReadArray(header.num_nodes, &snapshot.index_tables.depth);
        !s.ok()) {
      return s;
    }
    reader.BeginSection("up");
    if (Status s = reader.ReadArray(
            static_cast<std::int64_t>(header.levels) * header.num_nodes,
            &snapshot.index_tables.up);
        !s.ok()) {
      return s;
    }
    snapshot.index_tables.levels = header.levels;
  }

  const std::uint64_t computed = reader.checksum();
  std::uint64_t stored = 0;
  if (std::fread(&stored, 1, sizeof(stored), file.get()) != sizeof(stored)) {
    return Status::OutOfRange(path + ": footer: truncated snapshot");
  }
  if (stored != computed) {
    return Status::InvalidArgument(
        path + ": footer: checksum mismatch (corrupt snapshot)");
  }

  if (Status s = ValidateParts(header, snapshot.peel.lambda, node_lambda,
                               node_parent, node_of_clique, path);
      !s.ok()) {
    return s;
  }
  if (snapshot.has_index) {
    if (Status s = ValidateIndexTables(header, node_parent,
                                       snapshot.index_tables, path);
        !s.ok()) {
      return s;
    }
  }

  snapshot.peel.max_lambda = header.max_lambda;
  snapshot.hierarchy = NucleusHierarchy::FromParts(
      std::move(node_lambda), std::move(node_parent),
      std::move(node_of_clique));
  return snapshot;
}

StatusOr<SnapshotMeta> ReadSnapshotMeta(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  // Same magic dispatch as LoadSnapshot: a v2 header carries the identical
  // meta block, validated (with the directory) in O(header).
  {
    char magic[8];
    const std::size_t got = std::fread(magic, 1, sizeof(magic), file.get());
    std::rewind(file.get());
    if (got == sizeof(magic) &&
        std::memcmp(magic, kSnapshotV2Magic, sizeof(kSnapshotV2Magic)) ==
            0) {
      StatusOr<std::int64_t> actual = FileSize(file.get(), path);
      if (!actual.ok()) return actual.status();
      std::vector<unsigned char> bytes(
          static_cast<std::size_t>(std::min<std::int64_t>(
              *actual, kSnapshotV2HeaderBytes)));
      if (std::fread(bytes.data(), 1, bytes.size(), file.get()) !=
          bytes.size()) {
        return Status::OutOfRange(path + ": header: truncated snapshot");
      }
      store_v2_internal::V2Header v2_header;
      if (Status s = store_v2_internal::ParseV2Header(bytes.data(), *actual,
                                                      path, &v2_header);
          !s.ok()) {
        return s;
      }
      return v2_header.meta;
    }
  }
  ChecksummingReader reader(file.get(), path);
  Header header;
  if (Status s = ReadHeader(&reader, path, &header); !s.ok()) return s;
  SnapshotMeta meta;
  meta.family = static_cast<Family>(header.family);
  meta.algorithm = static_cast<Algorithm>(header.algorithm);
  meta.num_vertices = header.num_vertices;
  meta.num_edges = header.num_edges;
  meta.graph_fingerprint = header.graph_fingerprint;
  meta.num_cliques = header.num_cliques;
  meta.max_lambda = header.max_lambda;
  return meta;
}

}  // namespace nucleus
