// Shared plumbing of the checksummed store formats (.nucsnap snapshots,
// .nucdelta chain records): streaming FNV-1a writers/readers so a record's
// footer checksum is computed in the same pass that moves the bytes, plus
// the count-bounding guard every reader must run BEFORE any size
// arithmetic or allocation.
//
// Internal to store/ — the public surfaces are snapshot.h and delta.h.
#ifndef NUCLEUS_STORE_RECORD_IO_H_
#define NUCLEUS_STORE_RECORD_IO_H_

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "nucleus/util/file_util.h"
#include "nucleus/util/scratch.h"
#include "nucleus/util/status.h"

namespace nucleus {
namespace store_internal {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t Fnv1a(std::uint64_t hash, const void* data,
                           std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// Streams writes through an incremental FNV-1a so the checksum never needs
// a second pass over the payload.
class ChecksummingWriter {
 public:
  ChecksummingWriter(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  Status Write(const void* data, std::size_t size) {
    if (std::fwrite(data, 1, size, file_) != size) {
      return Status::Internal("short write to " + path_);
    }
    checksum_ = Fnv1a(checksum_, data, size);
    return Status::Ok();
  }

  template <typename T>
  Status WriteValue(const T& value) {
    return Write(&value, sizeof(T));
  }

  template <typename T>
  Status WriteArray(const std::vector<T>& values) {
    if (values.empty()) return Status::Ok();
    return Write(values.data(), values.size() * sizeof(T));
  }

  std::uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* file_;
  std::string path_;
  std::uint64_t checksum_ = kFnvOffset;
};

// The mirror image: every read feeds the same incremental checksum, so the
// footer comparison covers header and payload alike. `kind` names the
// record type in truncation errors ("snapshot", "delta record"), so an
// operator chasing a damaged chain is pointed at the right file type.
// Errors follow the store-wide `path: section: reason` shape; callers
// advance the section name with BeginSection as the format's layout moves
// from one array to the next.
class ChecksummingReader {
 public:
  ChecksummingReader(std::FILE* f, std::string path,
                     std::string kind = "snapshot")
      : file_(f), path_(std::move(path)), kind_(std::move(kind)) {}

  /// Names the region subsequent reads belong to, for error attribution.
  void BeginSection(std::string section) { section_ = std::move(section); }

  Status Read(void* data, std::size_t size) {
    if (std::fread(data, 1, size, file_) != size) {
      return Status::OutOfRange(path_ + ": " + section_ + ": truncated " +
                                kind_);
    }
    checksum_ = Fnv1a(checksum_, data, size);
    return Status::Ok();
  }

  template <typename T>
  Status ReadValue(T* value) {
    return Read(value, sizeof(T));
  }

  /// Sized up front from the validated header: one allocation, one read.
  template <typename T>
  Status ReadArray(std::int64_t count, std::vector<T>* values) {
    values->resize(static_cast<std::size_t>(count));
    if (values->empty()) return Status::Ok();
    return Read(values->data(), values->size() * sizeof(T));
  }

  std::uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* file_;
  std::string path_;
  std::string kind_;
  std::string section_ = "header";
  std::uint64_t checksum_ = kFnvOffset;
};

/// Flushes `f` all the way to the device. fflush moves the bytes to the
/// kernel; fsync moves them to the device. Without the latter, a power
/// loss after a rename could journal the new name before the data blocks,
/// leaving garbage at the target.
inline Status FlushToDevice(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    return Status::Internal("flush failed for " + path);
  }
  return Status::Ok();
}

/// Best-effort fsync of the directory containing `path`, making a rename
/// into it durable. Failure is ignored (some filesystems reject directory
/// fsync); the data-file fsync is the critical one.
inline void SyncParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Write-temp-then-rename: a crash or full disk mid-write must never
/// destroy an existing good record at `path` — for a serving process the
/// store IS the restart path. The temp file lives next to the target so
/// the rename stays within one filesystem. `write_fn(FILE*, temp_path)`
/// performs the serialization (including its own FlushToDevice).
template <typename WriteFn>
Status WriteFileAtomically(const std::string& path, const WriteFn& write_fn) {
  static std::atomic<std::uint64_t> counter{0};
  const std::string temp_path = path + ".tmp." +
                                std::to_string(::getpid()) + "." +
                                std::to_string(counter.fetch_add(1));
  ScratchFileRemover remover(temp_path);
  {
    FilePtr file(std::fopen(temp_path.c_str(), "wb"));
    if (file == nullptr) {
      return Status::Internal("cannot create " + temp_path);
    }
    if (Status s = write_fn(file.get(), temp_path); !s.ok()) return s;
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename " + temp_path + " to " + path);
  }
  SyncParentDirectory(path);
  return Status::Ok();
}

}  // namespace store_internal
}  // namespace nucleus

#endif  // NUCLEUS_STORE_RECORD_IO_H_
