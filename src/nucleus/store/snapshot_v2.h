// .nucsnap format v2: the mmap-friendly, sectioned snapshot layout.
//
// v1 (snapshot.h) is a streaming format: one whole-file checksum, arrays
// packed back to back, every load a bulk read + full validation + heap
// rebuild. That couples cold-start cost (and resident bytes) to snapshot
// size — a snapshot larger than RAM cannot serve at all. v2 decouples them:
//
//   * fixed-width little-endian sections at 8-byte-aligned offsets, so a
//     mapping of the file IS the serving representation (zero-copy spans,
//     no FromParts rebuild);
//   * a section DIRECTORY in the header with one FNV-1a digest per
//     section, so integrity and structural validation run lazily, per
//     section, on first access — opening a v2 snapshot validates only the
//     header + directory (O(sections), not O(bytes));
//   * a paged MEMBER STORE: cliques grouped by hierarchy node in DFS
//     preorder (children in ascending id order, each node's direct group
//     sorted ascending) plus per-node [sub_begin, sub_end) ranges, so any
//     node's full subtree member list is ONE contiguous slice of the
//     `cliques_pre` section — materialization is copy + sort, and
//     `subtree_members` is just `sub_end - sub_begin`;
//   * a precomputed density ranking (lambda >= 1 nodes by lambda
//     descending, id ascending), so `top` queries never scan the tree.
//
// v2 always embeds the binary-lifting index tables (the writer builds them
// if the source snapshot lacks them). On-disk layout (all integers
// little-endian; see README.md in this directory for the full spec):
//
//   preamble (72 bytes, fixed):
//     bytes  0..7   magic "NUCSNAP2"
//     bytes  8..11  format version (uint32, 2)
//     bytes 12..15  flags (uint32, must be 0)
//     bytes 16..19  family (int32)          bytes 20..23  algorithm (int32)
//     bytes 24..27  |V| (int32)             bytes 28..35  |E| (int64)
//     bytes 36..43  graph fingerprint       bytes 44..51  |K_r| (int64)
//     bytes 52..55  max lambda (int32)      bytes 56..59  node count (int32)
//     bytes 60..63  index levels (int32)    bytes 64..67  ranked nodes (int32)
//     bytes 68..71  section count (uint32, kSnapshotV2SectionCount)
//   directory (section count x 32 bytes):
//     {section id (uint32), reserved (uint32, 0), offset (int64),
//      length (int64), FNV-1a digest (uint64)} per section, in id order
//   header digest (8 bytes): FNV-1a over preamble + directory
//   sections: each at an 8-byte-aligned offset, zero-padded up to the next
//     alignment boundary; lengths are fully determined by the preamble
//     counts, and the digest covers exactly `length` bytes.
#ifndef NUCLEUS_STORE_SNAPSHOT_V2_H_
#define NUCLEUS_STORE_SNAPSHOT_V2_H_

#include <cstdint>
#include <string>

#include "nucleus/store/snapshot.h"
#include "nucleus/util/status.h"

namespace nucleus {

inline constexpr char kSnapshotV2Magic[8] = {'N', 'U', 'C', 'S',
                                             'N', 'A', 'P', '2'};
inline constexpr std::uint32_t kSnapshotV2Version = 2;

/// Section ids, in file order. Every v2 snapshot carries all of them.
enum class SnapshotSection : std::uint32_t {
  kLambda = 1,          // |K_r| x int32   peeling numbers per clique
  kNodeLambda = 2,      // nodes x int32   per hierarchy node
  kNodeParent = 3,      // nodes x int32   kInvalidId for the root
  kNodeOfClique = 4,    // |K_r| x int32   deepest node per clique
  kDepth = 5,           // nodes x int32   root = 0
  kUp = 6,              // levels*nodes x int32, row-major jump tables
  kSubBegin = 7,        // nodes x int64   member-store range start
  kSubEnd = 8,          // nodes x int64   member-store range end
  kCliquesPre = 9,      // |K_r| x int32   cliques in DFS preorder groups
  kDensityRanking = 10  // ranked x int32  lambda>=1 nodes, densest first
};

inline constexpr std::uint32_t kSnapshotV2SectionCount = 10;
inline constexpr std::int64_t kSnapshotV2PreambleBytes = 72;
inline constexpr std::int64_t kSnapshotV2DirEntryBytes = 32;
inline constexpr std::int64_t kSnapshotV2HeaderBytes =
    kSnapshotV2PreambleBytes +
    kSnapshotV2SectionCount * kSnapshotV2DirEntryBytes + 8;

/// One parsed directory entry: where a section lives and what its bytes
/// must hash to. Offsets/lengths are validated against the file size at
/// open; the digest is checked lazily on first access (MmapSource) or
/// eagerly (LoadSnapshotV2).
struct SnapshotSectionEntry {
  std::int64_t offset = 0;
  std::int64_t length = 0;
  std::uint64_t digest = 0;
};

/// Writes `snapshot` to `path` in the v2 layout (atomically, like
/// SaveSnapshot). Builds the index tables when the snapshot lacks them and
/// derives the member store + density ranking from the hierarchy; the
/// input is not required to carry has_index.
Status SaveSnapshotV2(const SnapshotData& snapshot, const std::string& path);

/// Loads a v2 file EAGERLY into the same SnapshotData a v1 load produces
/// (hierarchy rebuilt, index tables attached): the heap path for v2 files,
/// and the interoperability guarantee that chains, updates and tooling
/// work on either version. Every section is digest-checked and
/// structurally validated.
StatusOr<SnapshotData> LoadSnapshotV2(const std::string& path);

/// Peeks at the magic/version prefix: 1 for v1 files, 2 for v2 files, a
/// Status for anything else (missing file, foreign magic, truncation).
StatusOr<std::uint32_t> ReadSnapshotVersion(const std::string& path);

/// Rewrites a snapshot (either version) as v2 at `out_path`. Lossless: the
/// upgraded file loads to a state that answers every query byte-
/// identically to the original (pinned in tests/snapshot_v2_test.cc).
Status UpgradeSnapshot(const std::string& in_path,
                       const std::string& out_path);

// Shared between the eager reader (LoadSnapshotV2) and the lazy mmap view
// (store/snapshot_source.cc). Not part of the public store API.
namespace store_v2_internal {

/// Parsed preamble + directory of one v2 file.
struct V2Header {
  SnapshotMeta meta;
  std::int32_t num_nodes = 0;
  std::int32_t levels = 0;
  std::int32_t num_ranked = 0;
  SnapshotSectionEntry sections[kSnapshotV2SectionCount];
};

const char* SectionName(SnapshotSection section);
std::int64_t ExpectedSectionLength(SnapshotSection section,
                                   const V2Header& header);

/// The v2 digest: FNV-1a folded over 8-byte little-endian words (classic
/// byte-wise FNV-1a over the < 8-byte tail). One multiply per word instead
/// of per byte keeps cold-start section validation at memory bandwidth —
/// this is what mmap time-to-first-answer pays, so it matters. v2-only;
/// v1 files and delta records keep the byte-wise record_io checksum.
std::uint64_t SectionDigest(const void* data, std::size_t size);

/// Validates magic/version/flags/counts, the header digest, and every
/// directory entry (expected length, aligned in-bounds offset, no overlap,
/// exact file size). O(header); section BYTES are not touched.
Status ParseV2Header(const unsigned char* data, std::int64_t file_size,
                     const std::string& path, V2Header* header);

/// FNV-1a over exactly `entry.length` bytes vs. the directory digest.
Status VerifySectionDigest(const unsigned char* base,
                           const SnapshotSectionEntry& entry,
                           SnapshotSection section, const std::string& path);

// Structural validators, grouped by the sections they read. Dependencies
// (callers must have validated, in order): tree ← nothing; assign/index ←
// tree; sub ← tree+assign; pre ← sub; ranking ← tree.
Status ValidateTreeSections(const std::string& path, const V2Header& h,
                            const Lambda* node_lambda,
                            const std::int32_t* node_parent);
Status ValidateAssignSections(const std::string& path, const V2Header& h,
                              const Lambda* lambda, const Lambda* node_lambda,
                              const std::int32_t* node_of_clique);
Status ValidateIndexSections(const std::string& path, const V2Header& h,
                             const std::int32_t* node_parent,
                             const std::int32_t* depth,
                             const std::int32_t* up);
Status ValidateSubSections(const std::string& path, const V2Header& h,
                           const std::int32_t* node_parent,
                           const std::int32_t* node_of_clique,
                           const std::int64_t* sub_begin,
                           const std::int64_t* sub_end);
Status ValidateCliquesPre(const std::string& path, const V2Header& h,
                          const std::int32_t* node_of_clique,
                          const std::int64_t* sub_begin,
                          const std::int64_t* sub_end,
                          const std::int32_t* cliques_pre);
Status ValidateRankingSection(const std::string& path, const V2Header& h,
                              const Lambda* node_lambda,
                              const std::int32_t* ranking);

}  // namespace store_v2_internal

}  // namespace nucleus

#endif  // NUCLEUS_STORE_SNAPSHOT_V2_H_
