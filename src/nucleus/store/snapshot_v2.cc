#include "nucleus/store/snapshot_v2.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "nucleus/core/hierarchy_index.h"
#include "nucleus/store/record_io.h"
#include "nucleus/util/file_util.h"

namespace nucleus {

// v2 is defined as a little-endian format served zero-copy from a mapping;
// a big-endian port would need byte-swapping shims in the source layer.
static_assert(std::endian::native == std::endian::little,
              ".nucsnap v2 requires a little-endian host");

namespace store_v2_internal {

const char* SectionName(SnapshotSection section) {
  switch (section) {
    case SnapshotSection::kLambda: return "lambda";
    case SnapshotSection::kNodeLambda: return "node_lambda";
    case SnapshotSection::kNodeParent: return "node_parent";
    case SnapshotSection::kNodeOfClique: return "node_of_clique";
    case SnapshotSection::kDepth: return "depth";
    case SnapshotSection::kUp: return "up";
    case SnapshotSection::kSubBegin: return "sub_begin";
    case SnapshotSection::kSubEnd: return "sub_end";
    case SnapshotSection::kCliquesPre: return "cliques_pre";
    case SnapshotSection::kDensityRanking: return "density_ranking";
  }
  return "unknown";
}

std::int64_t ExpectedSectionLength(SnapshotSection section,
                                   const V2Header& header) {
  const std::int64_t nodes = header.num_nodes;
  const std::int64_t cliques = header.meta.num_cliques;
  switch (section) {
    case SnapshotSection::kLambda:
    case SnapshotSection::kNodeOfClique:
    case SnapshotSection::kCliquesPre:
      return cliques * 4;
    case SnapshotSection::kNodeLambda:
    case SnapshotSection::kNodeParent:
    case SnapshotSection::kDepth:
      return nodes * 4;
    case SnapshotSection::kUp:
      return static_cast<std::int64_t>(header.levels) * nodes * 4;
    case SnapshotSection::kSubBegin:
    case SnapshotSection::kSubEnd:
      return nodes * 8;
    case SnapshotSection::kDensityRanking:
      return static_cast<std::int64_t>(header.num_ranked) * 4;
  }
  return 0;
}

std::uint64_t SectionDigest(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = store_internal::kFnvOffset;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes + i, 8);
    hash ^= word;
    hash *= store_internal::kFnvPrime;
  }
  for (; i < size; ++i) {
    hash ^= bytes[i];
    hash *= store_internal::kFnvPrime;
  }
  return hash;
}

namespace {

std::int64_t AlignUp8(std::int64_t value) { return (value + 7) & ~std::int64_t{7}; }

template <typename T>
T ReadLe(const unsigned char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

Status HeaderError(const std::string& path, const std::string& reason) {
  return Status::InvalidArgument(path + ": header: " + reason);
}

Status DirectoryError(const std::string& path, const std::string& reason) {
  return Status::InvalidArgument(path + ": directory: " + reason);
}

}  // namespace

Status ParseV2Header(const unsigned char* data, std::int64_t file_size,
                     const std::string& path, V2Header* header) {
  if (file_size < kSnapshotV2HeaderBytes) {
    return Status::OutOfRange(path + ": header: truncated snapshot");
  }
  if (std::memcmp(data, kSnapshotV2Magic, sizeof(kSnapshotV2Magic)) != 0) {
    return HeaderError(path, "bad magic (not a snapshot file)");
  }
  const std::uint32_t version = ReadLe<std::uint32_t>(data + 8);
  if (version != kSnapshotV2Version) {
    return HeaderError(path, "unsupported snapshot version " +
                                 std::to_string(version));
  }
  const std::uint32_t flags = ReadLe<std::uint32_t>(data + 12);
  if (flags != 0) {
    return HeaderError(path, "unknown snapshot flags");
  }
  const std::int32_t family = ReadLe<std::int32_t>(data + 16);
  const std::int32_t algorithm = ReadLe<std::int32_t>(data + 20);
  if (family < 0 ||
      family > static_cast<std::int32_t>(Family::kNucleus34)) {
    return HeaderError(path, "invalid family");
  }
  if (algorithm < 0 ||
      algorithm > static_cast<std::int32_t>(Algorithm::kHypo)) {
    return HeaderError(path, "invalid algorithm");
  }
  header->meta.family = static_cast<Family>(family);
  header->meta.algorithm = static_cast<Algorithm>(algorithm);
  header->meta.num_vertices = ReadLe<std::int32_t>(data + 24);
  header->meta.num_edges = ReadLe<std::int64_t>(data + 28);
  header->meta.graph_fingerprint = ReadLe<std::uint64_t>(data + 36);
  header->meta.num_cliques = ReadLe<std::int64_t>(data + 44);
  header->meta.max_lambda = ReadLe<std::int32_t>(data + 52);
  header->num_nodes = ReadLe<std::int32_t>(data + 56);
  header->levels = ReadLe<std::int32_t>(data + 60);
  header->num_ranked = ReadLe<std::int32_t>(data + 64);
  const std::uint32_t section_count = ReadLe<std::uint32_t>(data + 68);

  if (header->meta.num_vertices < 0 || header->meta.num_edges < 0 ||
      header->meta.num_cliques < 0 || header->meta.max_lambda < 0 ||
      header->num_nodes < 1) {
    return HeaderError(path, "impossible counts");
  }
  if (header->levels < 1 || header->levels > 32) {
    return HeaderError(path, "invalid index levels");
  }
  if (header->num_ranked < 0 || header->num_ranked > header->num_nodes) {
    return HeaderError(path, "impossible density ranking count");
  }
  if (section_count != kSnapshotV2SectionCount) {
    return HeaderError(path, "unexpected section count " +
                                 std::to_string(section_count));
  }
  // Bound every count by the file size BEFORE the length arithmetic below,
  // exactly like v1's BoundCountsByFileSize: a crafted 2^62 count must not
  // wrap the int64 multiplications and reach an allocation.
  const std::int64_t max_entries = file_size / 4;
  if (header->meta.num_cliques > max_entries ||
      header->num_nodes > max_entries ||
      static_cast<std::int64_t>(header->levels) * header->num_nodes >
          max_entries ||
      header->num_nodes > file_size / 8) {
    return HeaderError(
        path, "size mismatch (header counts exceed the file size; "
              "truncated or corrupt)");
  }

  // Directory digest covers preamble + directory: corrupting an offset,
  // length or per-section digest is caught HERE, eagerly and in O(header),
  // never by wandering into the wrong bytes later.
  const std::int64_t dir_end =
      kSnapshotV2PreambleBytes +
      kSnapshotV2SectionCount * kSnapshotV2DirEntryBytes;
  const std::uint64_t computed =
      SectionDigest(data, static_cast<std::size_t>(dir_end));
  const std::uint64_t stored = ReadLe<std::uint64_t>(data + dir_end);
  if (computed != stored) {
    return HeaderError(path, "checksum mismatch (corrupt header/directory)");
  }

  std::int64_t cursor = kSnapshotV2HeaderBytes;
  for (std::uint32_t i = 0; i < kSnapshotV2SectionCount; ++i) {
    const unsigned char* entry =
        data + kSnapshotV2PreambleBytes + i * kSnapshotV2DirEntryBytes;
    const auto section = static_cast<SnapshotSection>(i + 1);
    const char* name = SectionName(section);
    if (ReadLe<std::uint32_t>(entry) != i + 1) {
      return DirectoryError(path, std::string("section id mismatch for ") +
                                      name);
    }
    SnapshotSectionEntry& out = header->sections[i];
    out.offset = ReadLe<std::int64_t>(entry + 8);
    out.length = ReadLe<std::int64_t>(entry + 16);
    out.digest = ReadLe<std::uint64_t>(entry + 24);
    if (out.length != ExpectedSectionLength(section, *header)) {
      return Status::InvalidArgument(
          path + ": " + name +
          ": size mismatch (section length disagrees with header counts)");
    }
    if (out.offset < kSnapshotV2HeaderBytes || (out.offset & 7) != 0 ||
        out.offset > file_size) {
      return DirectoryError(path, std::string("offset out of range for ") +
                                      name);
    }
    if (out.length > file_size - out.offset) {
      return Status::InvalidArgument(
          path + ": " + name +
          ": section out of file bounds (truncated or corrupt)");
    }
    if (out.offset < cursor) {
      return DirectoryError(path, std::string("overlapping sections at ") +
                                      name);
    }
    cursor = AlignUp8(out.offset + out.length);
  }
  if (cursor != AlignUp8(file_size) || file_size != cursor) {
    return Status::InvalidArgument(
        path + ": directory: size mismatch (expected " +
        std::to_string(cursor) + " bytes, file has " +
        std::to_string(file_size) + "; truncated or trailing data)");
  }
  return Status::Ok();
}

Status VerifySectionDigest(const unsigned char* base,
                           const SnapshotSectionEntry& entry,
                           SnapshotSection section, const std::string& path) {
  const std::uint64_t computed = SectionDigest(
      base + entry.offset, static_cast<std::size_t>(entry.length));
  if (computed != entry.digest) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(SectionName(section)) +
                                   ": checksum mismatch (corrupt section)");
  }
  return Status::Ok();
}

Status ValidateTreeSections(const std::string& path, const V2Header& h,
                            const Lambda* node_lambda,
                            const std::int32_t* node_parent) {
  if (node_lambda[0] != kRootLambda || node_parent[0] != kInvalidId) {
    return Status::InvalidArgument(path +
                                   ": node_parent: corrupt snapshot root "
                                   "node");
  }
  Lambda max_lambda = 0;
  for (std::int32_t i = 1; i < h.num_nodes; ++i) {
    if (node_parent[i] < 0 || node_parent[i] >= i) {
      return Status::InvalidArgument(path +
                                     ": node_parent: corrupt parent order");
    }
    if (node_lambda[i] < 0 || node_lambda[node_parent[i]] >= node_lambda[i]) {
      return Status::InvalidArgument(
          path + ": node_lambda: non-increasing lambda chain");
    }
    if (node_lambda[i] > max_lambda) max_lambda = node_lambda[i];
  }
  if (max_lambda != h.meta.max_lambda) {
    return Status::InvalidArgument(path +
                                   ": node_lambda: max lambda mismatch");
  }
  return Status::Ok();
}

Status ValidateAssignSections(const std::string& path, const V2Header& h,
                              const Lambda* lambda,
                              const Lambda* node_lambda,
                              const std::int32_t* node_of_clique) {
  std::vector<char> has_member(static_cast<std::size_t>(h.num_nodes), 0);
  for (std::int64_t u = 0; u < h.meta.num_cliques; ++u) {
    const std::int32_t id = node_of_clique[u];
    if (id < 0 || id >= h.num_nodes) {
      return Status::InvalidArgument(
          path + ": node_of_clique: clique assigned out of range");
    }
    if (lambda[u] != node_lambda[id]) {
      return Status::InvalidArgument(
          path + ": lambda: lambda / node assignment mismatch");
    }
    has_member[id] = 1;
  }
  for (std::int32_t i = 1; i < h.num_nodes; ++i) {
    if (!has_member[i]) {
      return Status::InvalidArgument(
          path + ": node_of_clique: memberless non-root node");
    }
  }
  return Status::Ok();
}

Status ValidateIndexSections(const std::string& path, const V2Header& h,
                             const std::int32_t* node_parent,
                             const std::int32_t* depth,
                             const std::int32_t* up) {
  const std::int32_t n = h.num_nodes;
  std::int32_t max_depth = 0;
  if (depth[0] != 0) {
    return Status::InvalidArgument(path + ": depth: corrupt index depth "
                                          "table");
  }
  for (std::int32_t i = 1; i < n; ++i) {
    if (depth[i] != depth[node_parent[i]] + 1) {
      return Status::InvalidArgument(path + ": depth: corrupt index depth "
                                            "table");
    }
    if (depth[i] > max_depth) max_depth = depth[i];
  }
  std::int32_t expected_levels = 1;
  while ((1 << expected_levels) <= std::max(max_depth, 1)) ++expected_levels;
  if (h.levels != expected_levels) {
    return Status::InvalidArgument(path + ": up: index level count "
                                          "mismatch");
  }
  const auto at = [&](std::int32_t j, std::int32_t x) {
    return up[static_cast<std::size_t>(j) * n + x];
  };
  for (std::int32_t x = 0; x < n; ++x) {
    if (at(0, x) != node_parent[x]) {
      return Status::InvalidArgument(path + ": up: corrupt index jump "
                                            "table");
    }
  }
  for (std::int32_t j = 1; j < h.levels; ++j) {
    for (std::int32_t x = 0; x < n; ++x) {
      const std::int32_t half = at(j - 1, x);
      const std::int32_t expect =
          half == kInvalidId ? kInvalidId : at(j - 1, half);
      if (at(j, x) != expect) {
        return Status::InvalidArgument(path + ": up: corrupt index jump "
                                              "table");
      }
    }
  }
  return Status::Ok();
}

Status ValidateSubSections(const std::string& path, const V2Header& h,
                           const std::int32_t* node_parent,
                           const std::int32_t* node_of_clique,
                           const std::int64_t* sub_begin,
                           const std::int64_t* sub_end) {
  const std::int32_t n = h.num_nodes;
  const std::int64_t cliques = h.meta.num_cliques;
  if (sub_begin[0] != 0 || sub_end[0] != cliques) {
    return Status::InvalidArgument(
        path + ": sub_begin: root interval does not cover the clique "
               "space");
  }
  for (std::int32_t i = 1; i < n; ++i) {
    const std::int32_t p = node_parent[i];
    if (sub_begin[i] < sub_begin[p] || sub_end[i] > sub_end[p] ||
        sub_begin[i] > sub_end[i]) {
      return Status::InvalidArgument(
          path + ": sub_begin: subtree interval not nested in its parent");
    }
  }
  // Exactness: every node's interval must hold exactly its direct cliques
  // plus its children's intervals. Nesting alone would let two siblings
  // share positions; the size balance below rules that out in O(n).
  std::vector<std::int64_t> direct(static_cast<std::size_t>(n), 0);
  for (std::int64_t u = 0; u < cliques; ++u) {
    const std::int32_t id = node_of_clique[u];
    if (id < 0 || id >= n) {
      return Status::InvalidArgument(
          path + ": node_of_clique: clique assigned out of range");
    }
    ++direct[id];
  }
  std::vector<std::int64_t> child_sum(static_cast<std::size_t>(n), 0);
  for (std::int32_t i = n - 1; i >= 1; --i) {
    const std::int64_t size = sub_end[i] - sub_begin[i];
    if (size != direct[i] + child_sum[i]) {
      return Status::InvalidArgument(
          path + ": sub_end: subtree interval size disagrees with the "
                 "tree");
    }
    child_sum[node_parent[i]] += size;
  }
  if (cliques != direct[0] + child_sum[0]) {
    return Status::InvalidArgument(
        path + ": sub_end: subtree interval size disagrees with the tree");
  }
  return Status::Ok();
}

Status ValidateCliquesPre(const std::string& path, const V2Header& h,
                          const std::int32_t* node_of_clique,
                          const std::int64_t* sub_begin,
                          const std::int64_t* sub_end,
                          const std::int32_t* cliques_pre) {
  const std::int64_t cliques = h.meta.num_cliques;
  std::vector<char> seen(static_cast<std::size_t>(cliques), 0);
  for (std::int64_t p = 0; p < cliques; ++p) {
    const std::int32_t c = cliques_pre[p];
    if (c < 0 || c >= cliques || seen[static_cast<std::size_t>(c)]) {
      return Status::InvalidArgument(
          path + ": cliques_pre: not a permutation of the clique space");
    }
    seen[static_cast<std::size_t>(c)] = 1;
    const std::int32_t node = node_of_clique[c];
    if (p < sub_begin[node] || p >= sub_end[node]) {
      return Status::InvalidArgument(
          path + ": cliques_pre: clique outside its node's subtree "
                 "interval");
    }
  }
  return Status::Ok();
}

Status ValidateRankingSection(const std::string& path, const V2Header& h,
                              const Lambda* node_lambda,
                              const std::int32_t* ranking) {
  std::int64_t expected = 0;
  for (std::int32_t i = 0; i < h.num_nodes; ++i) {
    if (node_lambda[i] >= 1) ++expected;
  }
  if (expected != h.num_ranked) {
    return Status::InvalidArgument(
        path + ": density_ranking: ranking count disagrees with the tree");
  }
  for (std::int32_t i = 0; i < h.num_ranked; ++i) {
    const std::int32_t id = ranking[i];
    if (id < 0 || id >= h.num_nodes || node_lambda[id] < 1) {
      return Status::InvalidArgument(
          path + ": density_ranking: entry is not a nucleus node");
    }
    if (i > 0) {
      const std::int32_t prev = ranking[i - 1];
      const bool ordered =
          node_lambda[prev] > node_lambda[id] ||
          (node_lambda[prev] == node_lambda[id] && prev < id);
      if (!ordered) {
        return Status::InvalidArgument(
            path + ": density_ranking: not ordered by (lambda desc, id "
                   "asc)");
      }
    }
  }
  return Status::Ok();
}

}  // namespace store_v2_internal

namespace {

using store_v2_internal::V2Header;

/// Every serialized array of one v2 snapshot, materialized in write order.
struct V2Payload {
  std::vector<Lambda> node_lambda;
  std::vector<std::int32_t> node_parent;
  HierarchyIndexTables tables;
  std::vector<std::int64_t> sub_begin;
  std::vector<std::int64_t> sub_end;
  std::vector<std::int32_t> cliques_pre;
  std::vector<std::int32_t> ranking;
};

/// Derives the member store: DFS preorder from the root with children in
/// ascending id order, each node's direct members (already sorted) emitted
/// at entry. Every subtree then occupies one contiguous [begin, end) run
/// of `cliques_pre`, which is the property the mmap source's
/// MaterializeMembers and SubtreeSize lean on.
void BuildMemberStore(const NucleusHierarchy& h, V2Payload* payload) {
  const std::int32_t n = static_cast<std::int32_t>(h.NumNodes());
  payload->sub_begin.assign(static_cast<std::size_t>(n), 0);
  payload->sub_end.assign(static_cast<std::size_t>(n), 0);
  payload->cliques_pre.reserve(static_cast<std::size_t>(h.NumCliques()));
  // (node, next child index) stack; a node's interval closes when its last
  // child's subtree has been emitted.
  std::vector<std::pair<std::int32_t, std::size_t>> stack;
  stack.emplace_back(h.root(), 0);
  payload->sub_begin[h.root()] =
      static_cast<std::int64_t>(payload->cliques_pre.size());
  for (const CliqueId c : h.node(h.root()).members) {
    payload->cliques_pre.push_back(c);
  }
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto& children = h.node(node).children;
    if (next_child == children.size()) {
      payload->sub_end[node] =
          static_cast<std::int64_t>(payload->cliques_pre.size());
      stack.pop_back();
      continue;
    }
    const std::int32_t child = children[next_child++];
    payload->sub_begin[child] =
        static_cast<std::int64_t>(payload->cliques_pre.size());
    for (const CliqueId c : h.node(child).members) {
      payload->cliques_pre.push_back(c);
    }
    stack.emplace_back(child, 0);
  }
}

void AppendLe(std::vector<unsigned char>* buffer, const void* data,
              std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  buffer->insert(buffer->end(), bytes, bytes + size);
}

template <typename T>
void AppendValue(std::vector<unsigned char>* buffer, T value) {
  AppendLe(buffer, &value, sizeof(T));
}

template <typename T>
std::uint64_t ArrayDigest(const std::vector<T>& values) {
  return store_v2_internal::SectionDigest(values.data(),
                                          values.size() * sizeof(T));
}

struct SectionPlan {
  SnapshotSection id;
  std::int64_t offset = 0;
  std::int64_t length = 0;
  std::uint64_t digest = 0;
  const void* data = nullptr;
};

Status WriteSnapshotV2To(const SnapshotData& snapshot,
                         const V2Payload& payload, std::FILE* f,
                         const std::string& path) {
  const NucleusHierarchy& h = snapshot.hierarchy;
  const std::int32_t num_nodes = static_cast<std::int32_t>(h.NumNodes());
  const std::int64_t num_cliques = h.NumCliques();
  const std::int32_t levels = payload.tables.levels;
  const std::int32_t num_ranked =
      static_cast<std::int32_t>(payload.ranking.size());

  SectionPlan plan[kSnapshotV2SectionCount] = {
      {SnapshotSection::kLambda, 0, num_cliques * 4,
       ArrayDigest(snapshot.peel.lambda), snapshot.peel.lambda.data()},
      {SnapshotSection::kNodeLambda, 0, num_nodes * 4,
       ArrayDigest(payload.node_lambda), payload.node_lambda.data()},
      {SnapshotSection::kNodeParent, 0, num_nodes * 4,
       ArrayDigest(payload.node_parent), payload.node_parent.data()},
      {SnapshotSection::kNodeOfClique, 0, num_cliques * 4,
       ArrayDigest(h.NodeOfCliqueArray()), h.NodeOfCliqueArray().data()},
      {SnapshotSection::kDepth, 0, num_nodes * 4,
       ArrayDigest(payload.tables.depth), payload.tables.depth.data()},
      {SnapshotSection::kUp, 0,
       static_cast<std::int64_t>(levels) * num_nodes * 4,
       ArrayDigest(payload.tables.up), payload.tables.up.data()},
      {SnapshotSection::kSubBegin, 0, num_nodes * 8,
       ArrayDigest(payload.sub_begin), payload.sub_begin.data()},
      {SnapshotSection::kSubEnd, 0, num_nodes * 8,
       ArrayDigest(payload.sub_end), payload.sub_end.data()},
      {SnapshotSection::kCliquesPre, 0, num_cliques * 4,
       ArrayDigest(payload.cliques_pre), payload.cliques_pre.data()},
      {SnapshotSection::kDensityRanking, 0, num_ranked * 4,
       ArrayDigest(payload.ranking), payload.ranking.data()},
  };
  std::int64_t cursor = kSnapshotV2HeaderBytes;
  for (SectionPlan& section : plan) {
    section.offset = cursor;
    cursor = (cursor + section.length + 7) & ~std::int64_t{7};
  }

  std::vector<unsigned char> header;
  header.reserve(static_cast<std::size_t>(kSnapshotV2HeaderBytes));
  AppendLe(&header, kSnapshotV2Magic, sizeof(kSnapshotV2Magic));
  AppendValue(&header, kSnapshotV2Version);
  AppendValue(&header, std::uint32_t{0});  // flags
  AppendValue(&header, static_cast<std::int32_t>(snapshot.meta.family));
  AppendValue(&header, static_cast<std::int32_t>(snapshot.meta.algorithm));
  AppendValue(&header, snapshot.meta.num_vertices);
  AppendValue(&header, snapshot.meta.num_edges);
  AppendValue(&header, snapshot.meta.graph_fingerprint);
  AppendValue(&header, num_cliques);
  AppendValue(&header, snapshot.meta.max_lambda);
  AppendValue(&header, num_nodes);
  AppendValue(&header, levels);
  AppendValue(&header, num_ranked);
  AppendValue(&header, kSnapshotV2SectionCount);
  for (const SectionPlan& section : plan) {
    AppendValue(&header, static_cast<std::uint32_t>(section.id));
    AppendValue(&header, std::uint32_t{0});  // reserved
    AppendValue(&header, section.offset);
    AppendValue(&header, section.length);
    AppendValue(&header, section.digest);
  }
  const std::uint64_t header_digest =
      store_v2_internal::SectionDigest(header.data(), header.size());
  AppendValue(&header, header_digest);
  NUCLEUS_CHECK(static_cast<std::int64_t>(header.size()) ==
                kSnapshotV2HeaderBytes);

  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    return Status::Internal("short write to " + path);
  }
  const unsigned char padding[8] = {0};
  std::int64_t written = kSnapshotV2HeaderBytes;
  for (const SectionPlan& section : plan) {
    if (section.length > 0 &&
        std::fwrite(section.data, 1,
                    static_cast<std::size_t>(section.length),
                    f) != static_cast<std::size_t>(section.length)) {
      return Status::Internal("short write to " + path);
    }
    written += section.length;
    const std::int64_t pad = ((written + 7) & ~std::int64_t{7}) - written;
    if (pad > 0 && std::fwrite(padding, 1, static_cast<std::size_t>(pad),
                               f) != static_cast<std::size_t>(pad)) {
      return Status::Internal("short write to " + path);
    }
    written += pad;
  }
  return store_internal::FlushToDevice(f, path);
}

}  // namespace

Status SaveSnapshotV2(const SnapshotData& snapshot, const std::string& path) {
  const NucleusHierarchy& h = snapshot.hierarchy;
  NUCLEUS_CHECK_MSG(h.NumNodes() >= 1,
                    "snapshot requires a built hierarchy (build_tree)");
  NUCLEUS_CHECK(static_cast<std::int64_t>(snapshot.peel.lambda.size()) ==
                h.NumCliques());
  const std::int32_t num_nodes = static_cast<std::int32_t>(h.NumNodes());

  V2Payload payload;
  payload.node_lambda.resize(static_cast<std::size_t>(num_nodes));
  payload.node_parent.resize(static_cast<std::size_t>(num_nodes));
  for (std::int32_t i = 0; i < num_nodes; ++i) {
    payload.node_lambda[i] = h.node(i).lambda;
    payload.node_parent[i] = h.node(i).parent;
  }
  // v2 always ships the jump tables: the whole point of the layout is that
  // a load never rebuilds anything.
  payload.tables = snapshot.has_index ? snapshot.index_tables
                                      : HierarchyIndex(h).Tables();
  BuildMemberStore(h, &payload);
  payload.ranking.reserve(static_cast<std::size_t>(h.NumNuclei()));
  for (std::int32_t i = 0; i < num_nodes; ++i) {
    if (h.node(i).lambda >= 1) payload.ranking.push_back(i);
  }
  std::sort(payload.ranking.begin(), payload.ranking.end(),
            [&h](std::int32_t a, std::int32_t b) {
              if (h.node(a).lambda != h.node(b).lambda) {
                return h.node(a).lambda > h.node(b).lambda;
              }
              return a < b;
            });

  return store_internal::WriteFileAtomically(
      path, [&](std::FILE* f, const std::string& temp_path) {
        return WriteSnapshotV2To(snapshot, payload, f, temp_path);
      });
}

StatusOr<SnapshotData> LoadSnapshotV2(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  StatusOr<std::int64_t> size = FileSize(file.get(), path);
  if (!size.ok()) return size.status();
  std::vector<unsigned char> bytes;
  if (*size < kSnapshotV2HeaderBytes) {
    return Status::OutOfRange(path + ": header: truncated snapshot");
  }
  bytes.resize(static_cast<std::size_t>(*size));
  if (std::fread(bytes.data(), 1, bytes.size(), file.get()) != bytes.size()) {
    return Status::OutOfRange(path + ": header: truncated snapshot");
  }

  namespace v2 = store_v2_internal;
  V2Header header;
  if (Status s = v2::ParseV2Header(bytes.data(), *size, path, &header);
      !s.ok()) {
    return s;
  }
  // Eager load: every section is digest-checked and structurally validated
  // up front, mirroring the v1 reader's guarantees (this is the heap path;
  // laziness lives in MmapSource).
  for (std::uint32_t i = 0; i < kSnapshotV2SectionCount; ++i) {
    if (Status s = v2::VerifySectionDigest(
            bytes.data(), header.sections[i],
            static_cast<SnapshotSection>(i + 1), path);
        !s.ok()) {
      return s;
    }
  }
  const auto section = [&](SnapshotSection id) {
    return bytes.data() +
           header.sections[static_cast<std::uint32_t>(id) - 1].offset;
  };
  const auto* lambda =
      reinterpret_cast<const Lambda*>(section(SnapshotSection::kLambda));
  const auto* node_lambda = reinterpret_cast<const Lambda*>(
      section(SnapshotSection::kNodeLambda));
  const auto* node_parent = reinterpret_cast<const std::int32_t*>(
      section(SnapshotSection::kNodeParent));
  const auto* node_of_clique = reinterpret_cast<const std::int32_t*>(
      section(SnapshotSection::kNodeOfClique));
  const auto* depth =
      reinterpret_cast<const std::int32_t*>(section(SnapshotSection::kDepth));
  const auto* up =
      reinterpret_cast<const std::int32_t*>(section(SnapshotSection::kUp));
  const auto* sub_begin = reinterpret_cast<const std::int64_t*>(
      section(SnapshotSection::kSubBegin));
  const auto* sub_end = reinterpret_cast<const std::int64_t*>(
      section(SnapshotSection::kSubEnd));
  const auto* cliques_pre = reinterpret_cast<const std::int32_t*>(
      section(SnapshotSection::kCliquesPre));
  const auto* ranking = reinterpret_cast<const std::int32_t*>(
      section(SnapshotSection::kDensityRanking));

  if (Status s = v2::ValidateTreeSections(path, header, node_lambda,
                                          node_parent);
      !s.ok()) {
    return s;
  }
  if (Status s = v2::ValidateAssignSections(path, header, lambda,
                                            node_lambda, node_of_clique);
      !s.ok()) {
    return s;
  }
  if (Status s = v2::ValidateIndexSections(path, header, node_parent, depth,
                                           up);
      !s.ok()) {
    return s;
  }
  if (Status s = v2::ValidateSubSections(path, header, node_parent,
                                         node_of_clique, sub_begin, sub_end);
      !s.ok()) {
    return s;
  }
  if (Status s = v2::ValidateCliquesPre(path, header, node_of_clique,
                                        sub_begin, sub_end, cliques_pre);
      !s.ok()) {
    return s;
  }
  if (Status s = v2::ValidateRankingSection(path, header, node_lambda,
                                            ranking);
      !s.ok()) {
    return s;
  }

  SnapshotData snapshot;
  snapshot.meta = header.meta;
  snapshot.peel.lambda.assign(lambda, lambda + header.meta.num_cliques);
  snapshot.peel.max_lambda = header.meta.max_lambda;
  snapshot.has_index = true;
  snapshot.index_tables.depth.assign(depth, depth + header.num_nodes);
  snapshot.index_tables.up.assign(
      up, up + static_cast<std::int64_t>(header.levels) * header.num_nodes);
  snapshot.index_tables.levels = header.levels;
  snapshot.hierarchy = NucleusHierarchy::FromParts(
      std::vector<Lambda>(node_lambda, node_lambda + header.num_nodes),
      std::vector<std::int32_t>(node_parent,
                                node_parent + header.num_nodes),
      std::vector<std::int32_t>(node_of_clique,
                                node_of_clique + header.meta.num_cliques));
  return snapshot;
}

StatusOr<std::uint32_t> ReadSnapshotVersion(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), file.get()) != sizeof(magic)) {
    return Status::OutOfRange(path + ": header: truncated snapshot");
  }
  if (std::memcmp(magic, kSnapshotMagic, sizeof(kSnapshotMagic)) == 0) {
    return std::uint32_t{1};
  }
  if (std::memcmp(magic, kSnapshotV2Magic, sizeof(kSnapshotV2Magic)) == 0) {
    return std::uint32_t{2};
  }
  return Status::InvalidArgument(path +
                                 ": header: bad magic (not a snapshot "
                                 "file)");
}

Status UpgradeSnapshot(const std::string& in_path,
                       const std::string& out_path) {
  // LoadSnapshot dispatches on the magic, so upgrading is idempotent: a v2
  // input is validated and rewritten (fresh digests, canonical layout).
  StatusOr<SnapshotData> snapshot = LoadSnapshot(in_path);
  if (!snapshot.ok()) return snapshot.status();
  return SaveSnapshotV2(*snapshot, out_path);
}

}  // namespace nucleus
