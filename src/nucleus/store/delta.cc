#include "nucleus/store/delta.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "nucleus/store/record_io.h"
#include "nucleus/util/file_util.h"

namespace nucleus {
namespace {

using store_internal::ChecksummingReader;
using store_internal::ChecksummingWriter;

constexpr std::int64_t kDeltaHeaderBytes = 112;
constexpr std::int64_t kDeltaFooterBytes = 8;

/// Expected total file size; safe to compute only after
/// BoundCountsByFileSize has capped both counts at actual/4.
std::int64_t ExpectedDeltaFileSize(std::int64_t num_edits,
                                   std::int64_t num_patched) {
  return kDeltaHeaderBytes + num_edits * 12 + num_patched * 8 +
         kDeltaFooterBytes;
}

Status WriteDeltaTo(const DeltaData& delta, std::FILE* f,
                    const std::string& path) {
  ChecksummingWriter writer(f, path);
  NUCLEUS_CHECK(delta.patched_ids.size() == delta.patched_lambda.size());

  if (Status s = writer.Write(kDeltaMagic, sizeof(kDeltaMagic)); !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(kDeltaVersion); !s.ok()) return s;
  if (Status s = writer.WriteValue(std::uint32_t{0}); !s.ok()) return s;
  if (Status s =
          writer.WriteValue(static_cast<std::int32_t>(Family::kCore12));
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(static_cast<std::int32_t>(Algorithm::kDft));
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(delta.num_vertices); !s.ok()) return s;
  if (Status s = writer.WriteValue(delta.max_lambda); !s.ok()) return s;
  if (Status s = writer.WriteValue(delta.parent_num_edges); !s.ok()) return s;
  if (Status s = writer.WriteValue(delta.child_num_edges); !s.ok()) return s;
  if (Status s = writer.WriteValue(delta.base_fingerprint); !s.ok()) return s;
  if (Status s = writer.WriteValue(delta.parent_fingerprint); !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(delta.child_fingerprint); !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(delta.parent_lambda_fingerprint);
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(delta.child_lambda_fingerprint);
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(
          static_cast<std::int64_t>(delta.edits.size()));
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(
          static_cast<std::int64_t>(delta.patched_ids.size()));
      !s.ok()) {
    return s;
  }
  if (Status s = writer.WriteValue(std::uint64_t{0}); !s.ok()) return s;

  // Edits flattened as (u, v, op) int32 triples, keeping the "every array
  // entry is an int32" sizing rule of the store formats.
  std::vector<std::int32_t> flat;
  flat.reserve(delta.edits.size() * 3);
  for (const EdgeEdit& edit : delta.edits) {
    flat.push_back(edit.u);
    flat.push_back(edit.v);
    flat.push_back(static_cast<std::int32_t>(edit.op));
  }
  if (Status s = writer.WriteArray(flat); !s.ok()) return s;
  if (Status s = writer.WriteArray(delta.patched_ids); !s.ok()) return s;
  if (Status s = writer.WriteArray(delta.patched_lambda); !s.ok()) return s;

  const std::uint64_t checksum = writer.checksum();
  if (std::fwrite(&checksum, 1, sizeof(checksum), f) != sizeof(checksum)) {
    return Status::Internal("short write to " + path);
  }
  return store_internal::FlushToDevice(f, path);
}

}  // namespace

std::uint64_t LambdaFingerprint(const std::vector<Lambda>& lambda) {
  std::uint64_t hash = store_internal::kFnvOffset;
  const std::int64_t n = static_cast<std::int64_t>(lambda.size());
  hash = store_internal::Fnv1a(hash, &n, sizeof(n));
  if (!lambda.empty()) {
    hash = store_internal::Fnv1a(hash, lambda.data(),
                                 lambda.size() * sizeof(Lambda));
  }
  return hash;
}

Status SaveDelta(const DeltaData& delta, const std::string& path) {
  return store_internal::WriteFileAtomically(
      path, [&delta](std::FILE* f, const std::string& temp_path) {
        return WriteDeltaTo(delta, f, temp_path);
      });
}

StatusOr<DeltaData> LoadDelta(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  ChecksummingReader reader(file.get(), path, "delta record");

  char magic[8];
  if (Status s = reader.Read(magic, sizeof(magic)); !s.ok()) return s;
  if (std::memcmp(magic, kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    return Status::InvalidArgument(path +
                                   ": header: bad magic (not a delta "
                                   "record)");
  }
  std::uint32_t version = 0;
  if (Status s = reader.ReadValue(&version); !s.ok()) return s;
  if (version != kDeltaVersion) {
    return Status::InvalidArgument(path +
                                   ": header: unsupported delta version " +
                                   std::to_string(version));
  }
  std::uint32_t flags = 0;
  std::int32_t family = 0;
  std::int32_t algorithm = 0;
  std::int64_t num_edits = 0;
  std::int64_t num_patched = 0;
  std::uint64_t reserved = 0;
  DeltaData delta;
  if (Status s = reader.ReadValue(&flags); !s.ok()) return s;
  if (Status s = reader.ReadValue(&family); !s.ok()) return s;
  if (Status s = reader.ReadValue(&algorithm); !s.ok()) return s;
  if (Status s = reader.ReadValue(&delta.num_vertices); !s.ok()) return s;
  if (Status s = reader.ReadValue(&delta.max_lambda); !s.ok()) return s;
  if (Status s = reader.ReadValue(&delta.parent_num_edges); !s.ok()) return s;
  if (Status s = reader.ReadValue(&delta.child_num_edges); !s.ok()) return s;
  if (Status s = reader.ReadValue(&delta.base_fingerprint); !s.ok()) return s;
  if (Status s = reader.ReadValue(&delta.parent_fingerprint); !s.ok()) {
    return s;
  }
  if (Status s = reader.ReadValue(&delta.child_fingerprint); !s.ok()) {
    return s;
  }
  if (Status s = reader.ReadValue(&delta.parent_lambda_fingerprint);
      !s.ok()) {
    return s;
  }
  if (Status s = reader.ReadValue(&delta.child_lambda_fingerprint);
      !s.ok()) {
    return s;
  }
  if (Status s = reader.ReadValue(&num_edits); !s.ok()) return s;
  if (Status s = reader.ReadValue(&num_patched); !s.ok()) return s;
  if (Status s = reader.ReadValue(&reserved); !s.ok()) return s;

  if (flags != 0 || reserved != 0) {
    return Status::InvalidArgument(path + ": header: unknown delta flags");
  }
  if (family != static_cast<std::int32_t>(Family::kCore12) ||
      algorithm != static_cast<std::int32_t>(Algorithm::kDft)) {
    return Status::InvalidArgument(
        path +
        ": header: delta records describe (1,2) core chains only (record "
        "claims another family or algorithm)");
  }
  if (delta.num_vertices < 0 || delta.max_lambda < 0 ||
      delta.parent_num_edges < 0 || delta.child_num_edges < 0 ||
      num_edits < 0 || num_patched < 0) {
    return Status::InvalidArgument(path + ": header: impossible counts");
  }

  // Bound counts by the file size BEFORE any size arithmetic (the same
  // guard as the snapshot reader: a crafted count must not wrap the
  // multiplication or reach an over-allocation).
  StatusOr<std::int64_t> actual = FileSize(file.get(), path);
  if (!actual.ok()) return actual.status();
  const std::int64_t max_entries = *actual / 4;  // every array is int32
  if (num_edits > max_entries || num_patched > max_entries) {
    return Status::InvalidArgument(
        path +
        ": header: size mismatch (header counts exceed the file size; "
        "truncated or corrupt)");
  }
  if (*actual != ExpectedDeltaFileSize(num_edits, num_patched)) {
    return Status::InvalidArgument(
        path + ": header: size mismatch (expected " +
        std::to_string(ExpectedDeltaFileSize(num_edits, num_patched)) +
        " bytes, file has " + std::to_string(*actual) +
        "; truncated or trailing data)");
  }

  std::vector<std::int32_t> flat;
  reader.BeginSection("edits");
  if (Status s = reader.ReadArray(num_edits * 3, &flat); !s.ok()) return s;
  reader.BeginSection("patched_ids");
  if (Status s = reader.ReadArray(num_patched, &delta.patched_ids); !s.ok()) {
    return s;
  }
  reader.BeginSection("patched_lambda");
  if (Status s = reader.ReadArray(num_patched, &delta.patched_lambda);
      !s.ok()) {
    return s;
  }

  const std::uint64_t computed = reader.checksum();
  std::uint64_t stored = 0;
  if (std::fread(&stored, 1, sizeof(stored), file.get()) != sizeof(stored)) {
    return Status::OutOfRange(path + ": footer: truncated delta record");
  }
  if (stored != computed) {
    return Status::InvalidArgument(
        path + ": footer: checksum mismatch (corrupt delta record)");
  }

  delta.edits.reserve(static_cast<std::size_t>(num_edits));
  for (std::int64_t i = 0; i < num_edits; ++i) {
    EdgeEdit edit;
    edit.u = flat[static_cast<std::size_t>(3 * i)];
    edit.v = flat[static_cast<std::size_t>(3 * i + 1)];
    const std::int32_t op = flat[static_cast<std::size_t>(3 * i + 2)];
    if (edit.u < 0 || edit.u >= delta.num_vertices || edit.v < 0 ||
        edit.v >= delta.num_vertices || edit.u == edit.v ||
        (op != static_cast<std::int32_t>(EdgeEditOp::kInsert) &&
         op != static_cast<std::int32_t>(EdgeEditOp::kRemove))) {
      return Status::InvalidArgument(path + ": edits: corrupt edit list");
    }
    edit.op = static_cast<EdgeEditOp>(op);
    delta.edits.push_back(edit);
  }
  for (std::int64_t i = 0; i < num_patched; ++i) {
    const VertexId id = delta.patched_ids[static_cast<std::size_t>(i)];
    const Lambda l = delta.patched_lambda[static_cast<std::size_t>(i)];
    if (id < 0 || id >= delta.num_vertices ||
        (i > 0 && delta.patched_ids[static_cast<std::size_t>(i - 1)] >= id)) {
      return Status::InvalidArgument(path +
                                     ": patched_ids: corrupt lambda patch "
                                     "ids");
    }
    if (l < 0 || l > delta.max_lambda) {
      return Status::InvalidArgument(path +
                                     ": patched_lambda: corrupt lambda "
                                     "patch values");
    }
  }
  return delta;
}

StatusOr<SnapshotData> ResolveChain(const std::vector<std::string>& paths,
                                    const Graph& graph, ChainLink* link) {
  if (paths.empty()) {
    return Status::InvalidArgument("empty snapshot chain");
  }
  StatusOr<SnapshotData> base = LoadSnapshot(paths[0]);
  if (!base.ok()) return base.status();
  SnapshotData snapshot = std::move(*base);
  if (snapshot.meta.family != Family::kCore12) {
    return Status::InvalidArgument(
        "snapshot chains support (1,2) core snapshots only (base " +
        paths[0] + " is another family)");
  }
  if (snapshot.meta.num_cliques != snapshot.meta.num_vertices) {
    return Status::InvalidArgument(
        "corrupt (1,2) base snapshot " + paths[0] +
        " (clique count differs from vertex count)");
  }
  if (graph.NumVertices() != snapshot.meta.num_vertices) {
    return Status::InvalidArgument(
        "graph does not match the chain: vertex count differs from " +
        paths[0]);
  }

  const std::uint64_t base_fingerprint = snapshot.meta.graph_fingerprint;
  std::int64_t current_edges = snapshot.meta.num_edges;
  std::uint64_t parent_fingerprint = 0;  // edge-set identity, set below
  std::uint64_t lambda_fingerprint = LambdaFingerprint(snapshot.peel.lambda);
  Lambda final_max_lambda = snapshot.meta.max_lambda;
  bool first = true;

  for (std::size_t i = 1; i < paths.size(); ++i) {
    StatusOr<DeltaData> loaded = LoadDelta(paths[i]);
    if (!loaded.ok()) return loaded.status();
    const DeltaData& delta = *loaded;
    if (delta.num_vertices != snapshot.meta.num_vertices) {
      return Status::InvalidArgument("broken chain: " + paths[i] +
                                     " has a different vertex count");
    }
    if (delta.base_fingerprint != base_fingerprint) {
      return Status::InvalidArgument("broken chain: " + paths[i] +
                                     " descends from a different base "
                                     "snapshot");
    }
    // The lambda fingerprint anchors every link to the base snapshot's
    // lambdas — the first record included, for which the edge-set parent
    // fingerprint is not independently checkable.
    if (delta.parent_num_edges != current_edges ||
        delta.parent_lambda_fingerprint != lambda_fingerprint ||
        (!first && delta.parent_fingerprint != parent_fingerprint)) {
      return Status::InvalidArgument(
          "broken chain: " + paths[i] +
          " does not continue the preceding record (wrong order or a "
          "missing link)");
    }
    for (std::size_t j = 0; j < delta.patched_ids.size(); ++j) {
      snapshot.peel
          .lambda[static_cast<std::size_t>(delta.patched_ids[j])] =
          delta.patched_lambda[j];
    }
    lambda_fingerprint = LambdaFingerprint(snapshot.peel.lambda);
    if (delta.child_lambda_fingerprint != lambda_fingerprint) {
      return Status::InvalidArgument(
          "broken chain: " + paths[i] +
          " patch does not produce its recorded lambda state");
    }
    current_edges = delta.child_num_edges;
    parent_fingerprint = delta.child_fingerprint;
    final_max_lambda = delta.max_lambda;
    first = false;
  }

  // Pair the resolved chain with the caller's graph: |E| and the edge-set
  // fingerprint of the leaf state must match (for a delta-less chain the
  // base's CSR fingerprint is the authority).
  if (graph.NumEdges() != current_edges) {
    return Status::InvalidArgument(
        "graph does not match the chain: edge count differs from the leaf "
        "record");
  }
  if (first) {
    if (GraphFingerprint(graph) != base_fingerprint) {
      return Status::InvalidArgument(
          "graph does not match the snapshot fingerprint of " + paths[0]);
    }
    if (link != nullptr) {
      link->base_fingerprint = base_fingerprint;
      link->parent_fingerprint = EdgeSetFingerprint(graph);
    }
    return snapshot;
  }
  if (EdgeSetFingerprint(graph) != parent_fingerprint) {
    return Status::InvalidArgument(
        "graph does not match the chain: edge-set fingerprint differs from "
        "the leaf record");
  }

  // Patched lambdas must still be a plausible peel: the recorded maximum
  // must equal the actual maximum (a cheap cross-record consistency check;
  // full provenance is the fingerprint pairing above).
  Lambda max_lambda = 0;
  for (Lambda l : snapshot.peel.lambda) {
    if (l < 0) {
      return Status::InvalidArgument(
          "broken chain: patched lambdas are negative");
    }
    if (l > max_lambda) max_lambda = l;
  }
  if (max_lambda != final_max_lambda) {
    return Status::InvalidArgument(
        "broken chain: patched lambdas disagree with the leaf record's "
        "max lambda");
  }

  snapshot.peel.max_lambda = max_lambda;
  snapshot.hierarchy = RebuildCoreHierarchy(graph, snapshot.peel);
  snapshot.meta.algorithm = Algorithm::kDft;
  snapshot.meta.num_edges = graph.NumEdges();
  snapshot.meta.graph_fingerprint = GraphFingerprint(graph);
  snapshot.meta.max_lambda = max_lambda;
  // The base's jump tables describe the base hierarchy; the resolved state
  // gets fresh ones from the engine (or HierarchyIndex) on demand.
  snapshot.has_index = false;
  snapshot.index_tables = HierarchyIndexTables{};

  if (link != nullptr) {
    link->base_fingerprint = base_fingerprint;
    link->parent_fingerprint = parent_fingerprint;
  }
  return snapshot;
}

}  // namespace nucleus
