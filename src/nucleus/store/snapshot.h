// Persistent hierarchy snapshots (.nucsnap): the durable form of a
// decomposition result.
//
// The paper's premise is that the hierarchy is built ONCE so that
// community-search questions become cheap tree lookups; until this module
// existed, everything downstream of Decompose — the per-clique lambdas, the
// contracted NucleusHierarchy, the binary-lifting tables of HierarchyIndex —
// died with the process and every query re-ran the full decomposition. A
// snapshot captures all of it behind a versioned, checksummed header, so a
// serving process (serve/query_engine.h) loads in bulk reads what a
// decomposition takes peel + traversal time to recompute.
//
// On-disk layout (integers in host byte order; like the binary CSR graph
// format this is a processing artifact, not an interchange format — see
// README.md in this directory for the full spec):
//
//   header (64 bytes, fixed):
//     bytes  0..7   magic "NUCSNAP1"
//     bytes  8..11  format version (uint32, currently 1)
//     bytes 12..15  flags (uint32; bit 0 = index tables present)
//     bytes 16..19  family (int32, Family enum value)
//     bytes 20..23  algorithm (int32, Algorithm enum value)
//     bytes 24..27  |V| of the source graph (int32)
//     bytes 28..35  |E| of the source graph (int64)
//     bytes 36..43  graph fingerprint (uint64, FNV-1a over the CSR arrays)
//     bytes 44..51  |K_r| = number of cliques (int64)
//     bytes 52..55  max lambda (int32)
//     bytes 56..59  hierarchy node count (int32)
//     bytes 60..63  index levels (int32; 0 iff bit 0 of flags is clear)
//   payload (sizes fully determined by the header):
//     lambda          |K_r|  x int32     peeling numbers per clique id
//     node_lambda     nodes  x int32     per hierarchy node
//     node_parent     nodes  x int32     kInvalidId for the root (node 0)
//     node_of_clique  |K_r|  x int32     deepest node of every clique
//     [depth          nodes  x int32]    only with index tables
//     [up      levels*nodes  x int32]    binary-lifting ancestors, row-major
//   footer (8 bytes):
//     checksum (uint64, FNV-1a over header + payload bytes)
//
// Children lists, member lists and subtree aggregates are derivable from
// node_parent / node_of_clique and are rebuilt on load
// (NucleusHierarchy::FromParts), keeping the file near the information-
// theoretic minimum. LoadSnapshot validates untrusted input strictly —
// short files, bad magic, impossible headers, payload/checksum mismatches
// and structurally inconsistent trees all surface as Status errors, never
// as aborts or over-allocation.
#ifndef NUCLEUS_STORE_SNAPSHOT_H_
#define NUCLEUS_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "nucleus/core/decomposition.h"
#include "nucleus/core/hierarchy.h"
#include "nucleus/core/hierarchy_index.h"
#include "nucleus/core/types.h"
#include "nucleus/graph/graph.h"
#include "nucleus/util/status.h"

namespace nucleus {

inline constexpr char kSnapshotMagic[8] = {'N', 'U', 'C', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kSnapshotFlagHasIndex = 1u;

/// Identity of a snapshot: what was decomposed and how. Checked against the
/// graph a serving process pairs the snapshot with (see GraphFingerprint).
struct SnapshotMeta {
  Family family = Family::kCore12;
  Algorithm algorithm = Algorithm::kFnd;
  std::int32_t num_vertices = 0;
  std::int64_t num_edges = 0;
  std::uint64_t graph_fingerprint = 0;
  std::int64_t num_cliques = 0;
  Lambda max_lambda = 0;
};

/// Everything a snapshot round-trips. Plain movable data: the optional
/// HierarchyIndex travels as raw tables, not as a built index, so moving a
/// SnapshotData can never dangle an internal pointer — consumers
/// (QueryEngine) bind the tables to their own stored hierarchy.
struct SnapshotData {
  SnapshotMeta meta;
  PeelResult peel;
  NucleusHierarchy hierarchy;
  bool has_index = false;
  HierarchyIndexTables index_tables;
};

/// FNV-1a over |V|, the CSR offsets and the adjacency array — a cheap
/// stand-in for content equality between the snapshot's source graph and
/// the graph a query process pairs it with.
std::uint64_t GraphFingerprint(const Graph& g);

/// Packages a decomposition result for persistence. `result` must carry a
/// built hierarchy (build_tree, i.e. kDft / kFnd / kLcps). `with_index`
/// additionally precomputes and embeds the HierarchyIndex jump tables so
/// the load path skips even that construction. The rvalue overload moves
/// the peel vector and hierarchy out of `result` instead of deep-copying
/// them — use it when the result is not needed afterwards (large graphs:
/// the copy doubles peak memory at the worst moment).
SnapshotData MakeSnapshot(const Graph& g, const DecomposeOptions& options,
                          const DecompositionResult& result, bool with_index);
SnapshotData MakeSnapshot(const Graph& g, const DecomposeOptions& options,
                          DecompositionResult&& result, bool with_index);

/// Writes `snapshot` to `path` (overwriting), streaming the sections
/// through an incremental checksum. Fails with kInternal on IO errors.
Status SaveSnapshot(const SnapshotData& snapshot, const std::string& path);

/// Loads a .nucsnap file: header validation, single-allocation bulk array
/// reads, checksum verification, then full structural validation of the
/// tree and (if present) the jump tables. Every corruption mode returns a
/// Status; the returned data is safe to feed to NucleusHierarchy::FromParts
/// (already done — `hierarchy` is rebuilt) and HierarchyIndex.
StatusOr<SnapshotData> LoadSnapshot(const std::string& path);

/// Reads and validates only the header — a cheap probe for tooling.
StatusOr<SnapshotMeta> ReadSnapshotMeta(const std::string& path);

}  // namespace nucleus

#endif  // NUCLEUS_STORE_SNAPSHOT_H_
