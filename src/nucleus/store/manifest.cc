#include "nucleus/store/manifest.h"

#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "nucleus/util/parse_util.h"

namespace nucleus {
namespace {

constexpr std::size_t kMaxTenantNameLength = 64;

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

std::string ResolvePath(const std::string& base_dir,
                        const std::string& path) {
  if (base_dir.empty() || path.empty() || path.front() == '/') return path;
  return base_dir + "/" + path;
}

/// Splits "d1.nucdelta,d2.nucdelta" into non-empty components; an empty
/// component ("a,,b" or a trailing comma) is the caller's error to report.
bool SplitDeltaList(const std::string& value,
                    std::vector<std::string>* parts) {
  parts->clear();
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end =
        comma == std::string::npos ? value.size() : comma;
    if (end == start) return false;  // empty component
    parts->push_back(value.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !parts->empty();
}

}  // namespace

bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > kMaxTenantNameLength) return false;
  for (char c : name) {
    if (!ValidNameChar(c)) return false;
  }
  return true;
}

Status CheckTenantTrio(const std::string& subject,
                       const std::string& snapshot_path,
                       const std::vector<std::string>& delta_paths,
                       const std::string& graph_path,
                       const TenantTrioVocabulary& vocab) {
  if (snapshot_path.empty()) {
    return Status::InvalidArgument(subject + " requires " +
                                   vocab.snapshot_flag);
  }
  if (!delta_paths.empty() && graph_path.empty()) {
    return Status::InvalidArgument(
        subject + ": " + vocab.deltas_flag + " requires " +
        vocab.graph_flag +
        " (chain resolution rebuilds the final "
        "hierarchy from the current graph)");
  }
  return Status::Ok();
}

Status ValidateTenantSpec(const TenantSpec& spec) {
  if (!ValidTenantName(spec.name)) {
    return Status::InvalidArgument(
        "invalid tenant name '" + TruncateForEcho(spec.name) +
        "' (1-64 characters from [A-Za-z0-9_.-])");
  }
  return CheckTenantTrio("tenant '" + spec.name + "'", spec.snapshot_path,
                         spec.delta_paths, spec.graph_path,
                         TenantTrioVocabulary{});
}

Status ParseTenantSpecArgs(const std::vector<std::string>& args,
                           const std::string& base_dir, TenantSpec* spec) {
  std::unordered_set<std::string> seen;
  for (const std::string& arg : args) {
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected key=value, got '" +
                                     TruncateForEcho(arg) +
                                     "' (snapshot= | deltas= | graph=)");
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (value.empty()) {
      return Status::InvalidArgument("empty value for '" +
                                     TruncateForEcho(key) + "='");
    }
    if (!seen.insert(key).second) {
      return Status::InvalidArgument("duplicate key '" +
                                     TruncateForEcho(key) + "='");
    }
    if (key == "snapshot") {
      spec->snapshot_path = ResolvePath(base_dir, value);
    } else if (key == "deltas") {
      std::vector<std::string> parts;
      if (!SplitDeltaList(value, &parts)) {
        return Status::InvalidArgument(
            "deltas= expects a comma-separated list of non-empty paths, "
            "got '" + TruncateForEcho(value) + "'");
      }
      spec->delta_paths.clear();
      for (std::string& part : parts) {
        spec->delta_paths.push_back(ResolvePath(base_dir, part));
      }
    } else if (key == "graph") {
      spec->graph_path = ResolvePath(base_dir, value);
    } else {
      return Status::InvalidArgument(
          "unknown key '" + TruncateForEcho(key) +
          "=' (snapshot= | deltas= | graph=)");
    }
  }
  return ValidateTenantSpec(*spec);
}

StatusOr<RegistryManifest> ParseManifest(const std::string& text,
                                         const std::string& base_dir) {
  RegistryManifest manifest;
  std::unordered_set<std::string> names;
  std::istringstream stream(text);
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;

    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword != "tenant") {
      return Status::InvalidArgument(
          "manifest line " + std::to_string(line_no) +
          ": expected 'tenant <name> snapshot=<path> ...', got '" +
          TruncateForEcho(keyword) + "'");
    }
    TenantSpec spec;
    fields >> spec.name;
    std::vector<std::string> args;
    for (std::string token; fields >> token;) args.push_back(token);
    if (Status s = ParseTenantSpecArgs(args, base_dir, &spec); !s.ok()) {
      return Status::InvalidArgument("manifest line " +
                                     std::to_string(line_no) + ": " +
                                     s.message());
    }
    if (!names.insert(spec.name).second) {
      return Status::InvalidArgument(
          "manifest line " + std::to_string(line_no) + ": tenant '" +
          spec.name + "' declared twice");
    }
    manifest.tenants.push_back(std::move(spec));
  }
  return manifest;
}

StatusOr<RegistryManifest> LoadManifest(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::size_t slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  return ParseManifest(buffer.str(), base_dir);
}

}  // namespace nucleus
