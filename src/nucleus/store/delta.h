// Snapshot version chains (.nucdelta): incremental maintenance records
// that extend a base .nucsnap without rewriting it.
//
// The paper's motivation for fast hierarchy construction is that graphs
// change; the serving answer to that is the streaming k-core maintenance
// of core/incremental_core.h. A delta record is the durable form of one
// ApplyEdits batch: it stores the edit stream, the sparse lambda patch the
// batch produced, and the fingerprints that pin it between its parent
// state and its child state. A chain
//
//   base.nucsnap <- d1.nucdelta <- d2.nucdelta <- ...
//
// is resolved by ResolveChain back to a materialized SnapshotData for the
// final graph: the base lambdas are patched record by record, and the
// (1,2) hierarchy of the final state is rebuilt in one DF-Traversal pass
// (RebuildCoreHierarchy) — byte-identical, node numbering included, to a
// fresh Algorithm::kDft decomposition of the edited graph. Persisting a
// batch therefore costs O(touched region), not O(graph): the one linear
// pass is deferred to chain resolution, where it is paid once per restart
// instead of once per batch (bench/incremental_update prices both sides).
//
// Deltas are (1,2)-core only: that is the space the incremental
// maintainer updates (Sariyuce et al., PVLDB 2013).
//
// On-disk layout (host byte order, like .nucsnap; see README.md):
//
//   header (112 bytes, fixed):
//     bytes   0..7    magic "NUCDELT1"
//     bytes   8..11   format version (uint32, currently 1)
//     bytes  12..15   flags (uint32, must be 0)
//     bytes  16..19   family (int32, must be Family::kCore12)
//     bytes  20..23   algorithm (int32, must be Algorithm::kDft — the
//                     algorithm whose hierarchy chain resolution reproduces)
//     bytes  24..27   |V| (int32, fixed along the whole chain)
//     bytes  28..31   max lambda after the batch (int32)
//     bytes  32..39   |E| before the batch (int64)
//     bytes  40..47   |E| after the batch (int64)
//     bytes  48..55   base fingerprint (uint64: GraphFingerprint recorded
//                     in the chain's root .nucsnap; constant per chain)
//     bytes  56..63   parent fingerprint (uint64: EdgeSetFingerprint of
//                     the pre-state; for the first record, of the base
//                     graph — trusted for the first record, since the base
//                     snapshot stores no edge-set form; the lambda
//                     fingerprints below anchor the first link instead)
//     bytes  64..71   child fingerprint (uint64: EdgeSetFingerprint of
//                     the post-state)
//     bytes  72..79   parent lambda fingerprint (uint64: LambdaFingerprint
//                     of the full pre-state lambda array — verifiable all
//                     the way from the base snapshot's lambdas, so a
//                     dropped or reordered link is caught even when edge
//                     counts happen to balance)
//     bytes  80..87   child lambda fingerprint (uint64, post-state)
//     bytes  88..95   number of edits (int64)
//     bytes  96..103  number of patched vertices (int64)
//     bytes 104..111  reserved (uint64, must be 0)
//   payload:
//     edits           num_edits   x 3 int32   (u, v, op) per edit;
//                                             op 0 = insert, 1 = remove
//     patched_ids     num_patched x int32     strictly ascending vertex ids
//     patched_lambda  num_patched x int32     lambda after the batch
//   footer (8 bytes):
//     checksum (uint64, FNV-1a over header + payload bytes)
//
// LoadDelta applies the same untrusted-input discipline as LoadSnapshot:
// counts are bounded by the file size before any allocation, the expected
// size must match exactly, the checksum must verify, and every structural
// rule above surfaces as a Status — never an abort.
#ifndef NUCLEUS_STORE_DELTA_H_
#define NUCLEUS_STORE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nucleus/core/incremental_core.h"
#include "nucleus/store/snapshot.h"
#include "nucleus/util/status.h"

namespace nucleus {

inline constexpr char kDeltaMagic[8] = {'N', 'U', 'C', 'D', 'E', 'L', 'T',
                                        '1'};
inline constexpr std::uint32_t kDeltaVersion = 1;

/// One maintenance batch in serializable form. Produced by
/// serve/LiveUpdater (which owns the fingerprint bookkeeping); consumed by
/// SaveDelta / ResolveChain.
struct DeltaData {
  std::int32_t num_vertices = 0;
  Lambda max_lambda = 0;  // after the batch
  std::int64_t parent_num_edges = 0;
  std::int64_t child_num_edges = 0;
  /// GraphFingerprint stored in the chain's root snapshot.
  std::uint64_t base_fingerprint = 0;
  /// EdgeSetFingerprint of the graph before / after this batch.
  std::uint64_t parent_fingerprint = 0;
  std::uint64_t child_fingerprint = 0;
  /// LambdaFingerprint of the full lambda array before / after this batch.
  std::uint64_t parent_lambda_fingerprint = 0;
  std::uint64_t child_lambda_fingerprint = 0;
  /// The batch as submitted (skipped edits included — the record is also
  /// the audit log of the stream).
  std::vector<EdgeEdit> edits;
  /// Sparse lambda patch: patched_ids ascending, patched_lambda parallel.
  std::vector<VertexId> patched_ids;
  std::vector<Lambda> patched_lambda;
};

/// FNV-1a over a lambda array — the per-record state anchor of a chain.
std::uint64_t LambdaFingerprint(const std::vector<Lambda>& lambda);

/// Writes `delta` to `path` (write-temp-then-rename, checksummed,
/// fsynced), exactly like SaveSnapshot.
Status SaveDelta(const DeltaData& delta, const std::string& path);

/// Loads and fully validates one delta record.
StatusOr<DeltaData> LoadDelta(const std::string& path);

/// Where a resolved chain ends: what the next delta's parent /  base
/// fingerprints must be. Passed to serve/LiveUpdater so a maintenance
/// session can extend an existing chain.
struct ChainLink {
  std::uint64_t base_fingerprint = 0;
  std::uint64_t parent_fingerprint = 0;
};

/// Resolves a snapshot chain to materialized state. `paths[0]` is the base
/// .nucsnap, the rest are .nucdelta records in chain order; `graph` is the
/// CURRENT graph (after every recorded batch) — required both to verify
/// the chain's endpoint (EdgeSetFingerprint must match the leaf record)
/// and to rebuild the (1,2) hierarchy of the final state.
///
/// Verification: the base must be a (1,2) snapshot; every record must
/// carry the base's fingerprint and |V|; consecutive records must agree on
/// fingerprints and edge counts; the leaf must match `graph`. The returned
/// SnapshotData carries the patched lambdas, the rebuilt hierarchy
/// (Algorithm::kDft shape) and meta refreshed for `graph`; `link` (if
/// non-null) receives the chain endpoint for a continuing LiveUpdater.
StatusOr<SnapshotData> ResolveChain(const std::vector<std::string>& paths,
                                    const Graph& graph,
                                    ChainLink* link = nullptr);

}  // namespace nucleus

#endif  // NUCLEUS_STORE_DELTA_H_
