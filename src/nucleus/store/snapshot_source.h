// SnapshotSource: the store→serve boundary.
//
// A SnapshotSource is everything the serving tier needs from one loaded
// snapshot, expressed as flat read-only views: per-clique lambdas, the
// hierarchy tree arrays, the binary-lifting jump tables, subtree member
// ranges, and the density ranking. Two implementations:
//
//   * HeapSource — wraps a fully validated SnapshotData (the v1 bulk-read
//     path, or an eagerly loaded v2 file). Everything is heap-resident;
//     Ensure() is a no-op.
//   * MmapSource — a read-only mapping of a .nucsnap v2 file. Spans point
//     straight into the mapping (zero-copy); per-section digests and
//     structural invariants are verified lazily, on the first query that
//     needs them, in dependency groups. Eviction is an munmap, not a
//     destructor walk, and resident bytes are whatever the kernel chose
//     to keep paged in — not the snapshot size.
//
// QueryEngine consumes a source through a SourceView (spans captured once
// per state) so the per-query hot path does no virtual calls; the only
// heap-resident hot set for an mmap tenant is the engine's byte-budgeted
// member cache.
#ifndef NUCLEUS_STORE_SNAPSHOT_SOURCE_H_
#define NUCLEUS_STORE_SNAPSHOT_SOURCE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nucleus/core/hierarchy_index.h"
#include "nucleus/store/snapshot.h"
#include "nucleus/util/status.h"

namespace nucleus {

/// How a serving path should hold a snapshot in memory.
enum class SnapshotMemoryMode {
  kHeap,  // bulk read + validate + heap rebuild (v1 semantics)
  kMmap,  // map the file, verify lazily, serve zero-copy (v2 files only)
};

/// Verification demands a query kind can place on a source, OR-able.
/// HeapSource satisfies all of them by construction; MmapSource maps them
/// onto per-section digest + structural checks, run once.
inline constexpr std::uint32_t kNeedLookup = 1u << 0;   // lambda / assignment
inline constexpr std::uint32_t kNeedIndex = 1u << 1;    // depth + jump tables
inline constexpr std::uint32_t kNeedSizes = 1u << 2;    // subtree intervals
inline constexpr std::uint32_t kNeedMembers = 1u << 3;  // member store
inline constexpr std::uint32_t kNeedRanking = 1u << 4;  // density ranking

class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;

  virtual const SnapshotMeta& meta() const = 0;
  virtual std::int32_t NumNodes() const = 0;
  /// Nodes with lambda >= 1 (= density ranking length).
  virtual std::int64_t NumNuclei() const = 0;

  // Flat views. Valid for the lifetime of the source; a view whose backing
  // section has not passed Ensure() may hold corrupt bytes, so callers
  // must Ensure() the matching need bits before trusting the contents.
  virtual std::span<const Lambda> CliqueLambdas() const = 0;
  virtual std::span<const Lambda> NodeLambdas() const = 0;
  virtual std::span<const std::int32_t> NodeParents() const = 0;
  virtual std::span<const std::int32_t> NodeOfCliques() const = 0;
  virtual std::span<const std::int32_t> Depths() const = 0;
  /// Row-major levels x nodes jump table (row j = 2^j-th ancestors).
  virtual std::span<const std::int32_t> UpTable() const = 0;
  virtual std::int32_t IndexLevels() const = 0;
  /// lambda >= 1 node ids, ordered (lambda desc, id asc).
  virtual std::span<const std::int32_t> DensityRanking() const = 0;

  /// Number of cliques in `node`'s subtree (== MembersOfSubtree size).
  virtual std::int64_t SubtreeSize(std::int32_t node) const = 0;
  /// Sorted member clique ids of `node`'s subtree — byte-identical across
  /// implementations for the same snapshot.
  virtual std::vector<CliqueId> MaterializeMembers(std::int32_t node)
      const = 0;

  /// Verifies every section group in `needs` (idempotent, thread-safe; a
  /// failure is sticky and returned to every later caller).
  virtual Status Ensure(std::uint32_t needs) const = 0;

  /// Estimated heap bytes owned by this source (arrays, tree, caches it
  /// carries — NOT the engine's member cache).
  virtual std::int64_t HeapBytes() const = 0;
  /// Bytes of file mapped into the address space (0 for heap sources).
  virtual std::int64_t MappedBytes() const = 0;
};

/// Heap-resident source wrapping a validated SnapshotData. Adopts the
/// snapshot's index tables (builds them if absent) and precomputes the
/// density ranking.
class HeapSource final : public SnapshotSource {
 public:
  explicit HeapSource(SnapshotData snapshot);

  const SnapshotMeta& meta() const override { return snapshot_.meta; }
  std::int32_t NumNodes() const override {
    return static_cast<std::int32_t>(node_lambda_.size());
  }
  std::int64_t NumNuclei() const override {
    return static_cast<std::int64_t>(ranking_.size());
  }
  std::span<const Lambda> CliqueLambdas() const override {
    return snapshot_.peel.lambda;
  }
  std::span<const Lambda> NodeLambdas() const override {
    return node_lambda_;
  }
  std::span<const std::int32_t> NodeParents() const override {
    return node_parent_;
  }
  std::span<const std::int32_t> NodeOfCliques() const override {
    return snapshot_.hierarchy.NodeOfCliqueArray();
  }
  std::span<const std::int32_t> Depths() const override {
    return tables_.depth;
  }
  std::span<const std::int32_t> UpTable() const override {
    return tables_.up;
  }
  std::int32_t IndexLevels() const override { return tables_.levels; }
  std::span<const std::int32_t> DensityRanking() const override {
    return ranking_;
  }
  std::int64_t SubtreeSize(std::int32_t node) const override {
    return snapshot_.hierarchy.node(node).subtree_members;
  }
  std::vector<CliqueId> MaterializeMembers(std::int32_t node) const override {
    return snapshot_.hierarchy.MembersOfSubtree(node);
  }
  Status Ensure(std::uint32_t) const override { return Status::Ok(); }
  std::int64_t HeapBytes() const override { return heap_bytes_; }
  std::int64_t MappedBytes() const override { return 0; }

  /// The wrapped snapshot (LiveUpdater reads the hierarchy / peel).
  const SnapshotData& snapshot() const { return snapshot_; }

 private:
  SnapshotData snapshot_;
  std::vector<Lambda> node_lambda_;
  std::vector<std::int32_t> node_parent_;
  HierarchyIndexTables tables_;
  std::vector<std::int32_t> ranking_;
  std::int64_t heap_bytes_ = 0;
};

/// Estimated heap footprint of a fully materialized SnapshotData (peel
/// array, tree nodes, children/member vectors, index tables). The registry
/// charges this against its byte budget for heap tenants.
std::int64_t EstimateSnapshotHeapBytes(const SnapshotData& snapshot);

/// Opens `path` as a SnapshotSource. kMmap maps v2 files zero-copy;
/// kHeap — and, as a documented fallback, kMmap over a v1 file — loads
/// eagerly through the version-dispatching LoadSnapshot into a HeapSource.
StatusOr<std::shared_ptr<const SnapshotSource>> OpenSnapshotSource(
    const std::string& path, SnapshotMemoryMode mode);

/// Spans of one source captured once, so query hot paths (binary lifting,
/// lambda lookups) run with zero virtual dispatch. Plain value; copy per
/// engine state.
struct SourceView {
  std::span<const Lambda> clique_lambda;
  std::span<const Lambda> node_lambda;
  std::span<const std::int32_t> node_parent;
  std::span<const std::int32_t> node_of_clique;
  std::span<const std::int32_t> depth;
  std::span<const std::int32_t> up;
  std::int32_t levels = 0;
  std::span<const std::int32_t> ranking;

  std::int32_t Up(std::int32_t level, std::int32_t node) const {
    return up[static_cast<std::size_t>(level) * node_lambda.size() + node];
  }
};

SourceView MakeSourceView(const SnapshotSource& source);

// Query primitives over a SourceView — the span mirror of
// HierarchyIndex::{NucleusAtLevel, SmallestCommonNucleus,
// CommonNucleusLevel}, answer-identical by construction.
std::int32_t ViewLca(const SourceView& view, std::int32_t a, std::int32_t b);
std::int32_t ViewNucleusAtLevel(const SourceView& view, CliqueId u, Lambda k);
std::int32_t ViewSmallestCommonNucleus(const SourceView& view, CliqueId u,
                                       CliqueId v);
Lambda ViewCommonNucleusLevel(const SourceView& view, CliqueId u, CliqueId v);

}  // namespace nucleus

#endif  // NUCLEUS_STORE_SNAPSHOT_SOURCE_H_
