// Registry manifests: the durable description of a multi-tenant serving
// process — which named tenants exist and which files back each one.
//
// A serving process that holds many graphs (serve/snapshot_registry.h)
// needs a startup answer to "what do I serve?"; the manifest is that
// answer, one tenant per line:
//
//   # comments and blank lines are skipped
//   tenant <name> snapshot=<path> [deltas=<p1,p2,...>] [graph=<path>]
//
//   * name       [A-Za-z0-9_.-]{1,64}; unique within the manifest. Names
//                route protocol lines (`<name>:<verb> ...`), so ':' and
//                whitespace can never appear in one.
//   * snapshot   required; the tenant's base .nucsnap.
//   * deltas     optional; comma-separated .nucdelta chain resolved
//                against `graph` at load time (store/delta.h). Requires
//                `graph` — chain resolution rebuilds the final hierarchy
//                from the current adjacency.
//   * graph      optional; the tenant's current edge-list graph. Its
//                presence makes the tenant LIVE: the registry pairs the
//                graph with the snapshot through the existing fingerprint
//                check (serve/live_update.h) and enables the
//                `<name>:update u v +|-` protocol verb.
//
// Parsing follows the strict discipline of the CLI flag and serve
// protocol surfaces: unknown keys, duplicate keys, duplicate tenants,
// malformed names and dangling values all fail with the offending line
// number — a typo is an error, never a silently ignored token.
#ifndef NUCLEUS_STORE_MANIFEST_H_
#define NUCLEUS_STORE_MANIFEST_H_

#include <string>
#include <vector>

#include "nucleus/util/status.h"

namespace nucleus {

/// One tenant: a (snapshot [+ delta chain] [+ graph]) triple plus the name
/// protocol lines route by.
struct TenantSpec {
  std::string name;
  std::string snapshot_path;
  std::vector<std::string> delta_paths;  // chain order; requires graph_path
  std::string graph_path;                // empty = read-only tenant
};

/// All tenants of one manifest, in file order.
struct RegistryManifest {
  std::vector<TenantSpec> tenants;
};

/// True iff `name` is a routable tenant name: 1-64 characters from
/// [A-Za-z0-9_.-].
bool ValidTenantName(const std::string& name);

/// How one serving surface spells the snapshot / deltas / graph trio.
/// The manifest and the `attach` protocol verb say `snapshot=<path>` /
/// `deltas=` / `graph=`; the CLI says `--snapshot F` / `--deltas` /
/// `--input`. CheckTenantTrio reports in the caller's spelling so every
/// surface enforces the SAME rules while erroring in its own vocabulary.
struct TenantTrioVocabulary {
  /// Flag spelling including its value shape, for "requires ..." errors.
  const char* snapshot_flag = "snapshot=<path>";
  /// Bare flag spellings, for the deltas/graph pairing rule.
  const char* deltas_flag = "deltas=";
  const char* graph_flag = "graph=";
};

/// The structural rules every (snapshot, deltas, graph) trio obeys, on
/// every surface that accepts one: the snapshot is required, and deltas
/// require the graph — chain resolution rebuilds the final hierarchy from
/// the current adjacency, so a chain without its graph is unservable.
/// `subject` prefixes each message ("tenant 'x'", "query", "serve").
Status CheckTenantTrio(const std::string& subject,
                       const std::string& snapshot_path,
                       const std::vector<std::string>& delta_paths,
                       const std::string& graph_path,
                       const TenantTrioVocabulary& vocab = {});

/// Structural validation shared by every spec producer (manifest lines,
/// the `attach` protocol verb, direct API callers): valid name, then the
/// shared trio rules (CheckTenantTrio) in manifest vocabulary.
Status ValidateTenantSpec(const TenantSpec& spec);

/// Parses the `key=value...` tail of a tenant declaration (manifest line
/// or `attach` verb) into `spec`, which must already carry the name.
/// Recognized keys: snapshot, deltas, graph; anything else, a duplicate
/// key, or a key without '=' is an error. Relative paths are resolved
/// against `base_dir` when it is non-empty. Ends with ValidateTenantSpec.
Status ParseTenantSpecArgs(const std::vector<std::string>& args,
                           const std::string& base_dir, TenantSpec* spec);

/// Parses a whole manifest from text. `base_dir` resolves relative paths
/// (pass the manifest's directory so a manifest can sit next to its
/// snapshots). Errors carry the 1-based line number.
StatusOr<RegistryManifest> ParseManifest(const std::string& text,
                                         const std::string& base_dir = "");

/// Reads and parses a manifest file; relative paths inside resolve
/// against the manifest's own directory.
StatusOr<RegistryManifest> LoadManifest(const std::string& path);

}  // namespace nucleus

#endif  // NUCLEUS_STORE_MANIFEST_H_
