// Exporters for the nucleus hierarchy: Graphviz DOT (visualization, the
// use-case of Alvarez-Hamelin et al. and Colomer-de-Simon et al. the paper
// cites) and a line-oriented JSON document for downstream tooling.
#ifndef NUCLEUS_IO_HIERARCHY_EXPORT_H_
#define NUCLEUS_IO_HIERARCHY_EXPORT_H_

#include <string>

#include "nucleus/core/hierarchy.h"
#include "nucleus/util/status.h"

namespace nucleus {

struct ExportOptions {
  /// Include the direct member ids of every node (can be large).
  bool include_members = false;
  /// Skip nodes whose subtree has fewer members than this. Hidden nodes
  /// are spliced: a visible node's parent/edges point to its nearest
  /// visible ancestor (both exporters).
  std::int64_t min_subtree_members = 0;
  /// Free-form label (e.g. the dataset name) embedded in the output;
  /// escaped, so any string is safe.
  std::string name;
};

/// Escapes a string for embedding inside a JSON string literal: quote,
/// backslash and control characters (incl. \n, \t, ...) per RFC 8259.
std::string JsonEscape(const std::string& s);

/// DOT digraph, one box per hierarchy node labeled "λ=<k> |subtree|=<n>".
std::string HierarchyToDot(const NucleusHierarchy& h,
                           const ExportOptions& options = {});

/// JSON object {"root": id, "nodes": [{id, lambda, parent, size,
/// subtree_size, children: [...], members?: [...]}]}. With
/// min_subtree_members, hidden nodes are dropped and the emitted
/// parent/children describe the spliced (visible) tree.
std::string HierarchyToJson(const NucleusHierarchy& h,
                            const ExportOptions& options = {});

Status WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace nucleus

#endif  // NUCLEUS_IO_HIERARCHY_EXPORT_H_
