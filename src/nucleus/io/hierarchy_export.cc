#include "nucleus/io/hierarchy_export.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace nucleus {
namespace {

bool NodeVisible(const NucleusHierarchy& h, std::int32_t id,
                 const ExportOptions& options) {
  return id == h.root() ||
         h.node(id).subtree_members >= options.min_subtree_members;
}

/// Nearest visible ancestor of a visible non-root node (the root is always
/// visible, so the climb terminates).
std::int32_t SplicedParent(const NucleusHierarchy& h, std::int32_t id,
                           const ExportOptions& options) {
  std::int32_t parent = h.node(id).parent;
  while (parent != h.root() && !NodeVisible(h, parent, options)) {
    parent = h.node(parent).parent;
  }
  return parent;
}

/// Escapes a string for a DOT double-quoted label.
std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string HierarchyToDot(const NucleusHierarchy& h,
                           const ExportOptions& options) {
  std::ostringstream out;
  out << "digraph nucleus_hierarchy {\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  if (!options.name.empty()) {
    out << "  label=\"" << DotEscape(options.name) << "\";\n";
  }
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (!NodeVisible(h, id, options)) continue;
    const auto& node = h.node(id);
    out << "  n" << id << " [label=\"";
    if (id == h.root()) {
      out << "root";
    } else {
      out << "k=" << node.lambda;
    }
    out << "\\nsubtree=" << node.subtree_members;
    if (options.include_members && !node.members.empty()) {
      out << "\\nmembers=";
      for (std::size_t i = 0; i < node.members.size(); ++i) {
        if (i > 0) out << ",";
        out << node.members[i];
      }
    }
    out << "\"];\n";
  }
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (id == h.root() || !NodeVisible(h, id, options)) continue;
    // Splice hidden intermediate nodes up to the nearest visible ancestor.
    out << "  n" << SplicedParent(h, id, options) << " -> n" << id << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string HierarchyToJson(const NucleusHierarchy& h,
                            const ExportOptions& options) {
  // Spliced children lists, so the emitted tree is closed over the visible
  // node set (matching the DOT exporter's edge splicing).
  std::vector<std::int32_t> parent(static_cast<std::size_t>(h.NumNodes()),
                                   kInvalidId);
  std::vector<std::vector<std::int32_t>> children(
      static_cast<std::size_t>(h.NumNodes()));
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (id == h.root() || !NodeVisible(h, id, options)) continue;
    parent[id] = SplicedParent(h, id, options);
    children[parent[id]].push_back(id);
  }

  std::ostringstream out;
  out << "{";
  if (!options.name.empty()) {
    out << "\"name\": \"" << JsonEscape(options.name) << "\", ";
  }
  out << "\"root\": " << h.root() << ", \"max_lambda\": " << h.MaxLambda()
      << ", \"num_nuclei\": " << h.NumNuclei() << ", \"nodes\": [\n";
  bool first = true;
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (!NodeVisible(h, id, options)) continue;
    const auto& node = h.node(id);
    if (!first) out << ",\n";
    first = false;
    out << "  {\"id\": " << id << ", \"lambda\": " << node.lambda
        << ", \"parent\": " << parent[id]
        << ", \"size\": " << node.members.size()
        << ", \"subtree_size\": " << node.subtree_members << ", \"children\": [";
    for (std::size_t i = 0; i < children[id].size(); ++i) {
      if (i > 0) out << ", ";
      out << children[id][i];
    }
    out << "]";
    if (options.include_members) {
      out << ", \"members\": [";
      for (std::size_t i = 0; i < node.members.size(); ++i) {
        if (i > 0) out << ", ";
        out << node.members[i];
      }
      out << "]";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for writing");
  out << content;
  out.flush();
  if (!out) return Status::Internal("write failure on '" + path + "'");
  return Status::Ok();
}

}  // namespace nucleus
