#include "nucleus/io/hierarchy_export.h"

#include <fstream>
#include <sstream>

namespace nucleus {
namespace {

bool NodeVisible(const NucleusHierarchy& h, std::int32_t id,
                 const ExportOptions& options) {
  return id == h.root() ||
         h.node(id).subtree_members >= options.min_subtree_members;
}

}  // namespace

std::string HierarchyToDot(const NucleusHierarchy& h,
                           const ExportOptions& options) {
  std::ostringstream out;
  out << "digraph nucleus_hierarchy {\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (!NodeVisible(h, id, options)) continue;
    const auto& node = h.node(id);
    out << "  n" << id << " [label=\"";
    if (id == h.root()) {
      out << "root";
    } else {
      out << "k=" << node.lambda;
    }
    out << "\\nsubtree=" << node.subtree_members;
    if (options.include_members && !node.members.empty()) {
      out << "\\nmembers=";
      for (std::size_t i = 0; i < node.members.size(); ++i) {
        if (i > 0) out << ",";
        out << node.members[i];
      }
    }
    out << "\"];\n";
  }
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (id == h.root() || !NodeVisible(h, id, options)) continue;
    // Splice hidden intermediate nodes up to the nearest visible ancestor.
    std::int32_t parent = h.node(id).parent;
    while (parent != h.root() && !NodeVisible(h, parent, options)) {
      parent = h.node(parent).parent;
    }
    out << "  n" << parent << " -> n" << id << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string HierarchyToJson(const NucleusHierarchy& h,
                            const ExportOptions& options) {
  std::ostringstream out;
  out << "{\"root\": " << h.root() << ", \"max_lambda\": " << h.MaxLambda()
      << ", \"num_nuclei\": " << h.NumNuclei() << ", \"nodes\": [\n";
  bool first = true;
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    const auto& node = h.node(id);
    if (!first) out << ",\n";
    first = false;
    out << "  {\"id\": " << id << ", \"lambda\": " << node.lambda
        << ", \"parent\": " << node.parent
        << ", \"size\": " << node.members.size()
        << ", \"subtree_size\": " << node.subtree_members << ", \"children\": [";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) out << ", ";
      out << node.children[i];
    }
    out << "]";
    if (options.include_members) {
      out << ", \"members\": [";
      for (std::size_t i = 0; i < node.members.size(); ++i) {
        if (i > 0) out << ", ";
        out << node.members[i];
      }
      out << "]";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for writing");
  out << content;
  out.flush();
  if (!out) return Status::Internal("write failure on '" + path + "'");
  return Status::Ok();
}

}  // namespace nucleus
