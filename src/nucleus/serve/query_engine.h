// QueryEngine: a long-lived, concurrent community-query server over a
// loaded snapshot — the downstream payoff the paper promises ("community
// search becomes a tree lookup") turned into a service component.
//
// The engine answers the community-search vocabulary over a
// SnapshotSource (store/snapshot_source.h):
//
//   * lambda(u)                     — peeling number of the K_r u;
//   * nucleus(u, k)                 — the k-(r,s) nucleus containing u
//                                     (binary lifting over the source's
//                                     jump tables);
//   * common(u, v) / level(u, v)    — smallest common nucleus / its k;
//   * top(k)                        — the k densest nuclei (max lambda
//                                     first, precomputed ranking);
//   * members(node)                 — full member materialization of one
//                                     nucleus subtree, memoized in a
//                                     sharded, byte-budgeted LRU cache.
//
// Construction goes through factories: FromSource serves any
// SnapshotSource — a HeapSource (v1 semantics, everything resident) or an
// MmapSource (zero-copy spans over a mapped v2 file; sections verify
// lazily on the first query that needs them, members page in through the
// LRU cache, which is then the engine's only heap-resident hot set).
// FromSnapshotData wraps the data in a HeapSource — the tests' and
// LiveUpdater's path.
//
// Since PR 4 the engine is UPDATABLE: ApplyUpdate swaps in the state of an
// edited graph (produced by serve/live_update.h from the incremental
// k-core maintainer) without a restart. The hot path stays lock-light: all
// query state lives in one immutable State object behind a shared_ptr;
// readers take a shared lock only long enough to copy the pointer, so an
// in-flight Run/RunBatch keeps its state alive and is never torn by a
// concurrent swap — a batch answers every query against the single state
// it captured on entry. Member-cache invalidation is by epoch: every state
// carries a generation number that prefixes the cache key, so entries of a
// replaced state simply stop being referenced and age out of the LRU
// shards (no full flush, no stop-the-world).
//
// Unlike the core-layer HierarchyIndex (which NUCLEUS_CHECKs its inputs),
// the engine treats queries as untrusted network input: out-of-range ids
// and invalid parameters come back as error Responses, never aborts — and
// a lazily detected corrupt section of an mmap source surfaces the same
// way, as an error Response on the queries that need that section.
#ifndef NUCLEUS_SERVE_QUERY_ENGINE_H_
#define NUCLEUS_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nucleus/parallel/thread_pool.h"
#include "nucleus/serve/lru_cache.h"
#include "nucleus/store/snapshot.h"
#include "nucleus/store/snapshot_source.h"
#include "nucleus/util/mutex.h"
#include "nucleus/util/status.h"

namespace nucleus {

struct QueryEngineOptions {
  /// Member-materialization cache: total entry capacity is
  /// cache_shards * cache_entries_per_shard subtree member lists.
  std::size_t cache_shards = 8;
  std::size_t cache_entries_per_shard = 64;
  /// Byte budget per cache shard (0 = entry-capacity only). For mmap
  /// sources the member cache is the only heap-resident hot set, so this
  /// is the knob that bounds a tenant's RSS.
  std::size_t cache_bytes_per_shard = 0;
};

class QueryEngine {
 public:
  enum class QueryKind : std::int32_t {
    kLambda,   // a = clique id
    kNucleus,  // a = clique id, b = k
    kCommon,   // a, b = clique ids
    kLevel,    // a, b = clique ids
    kTop,      // a = k (number of nuclei to report)
    kMembers,  // a = hierarchy node id
  };

  struct Query {
    QueryKind kind = QueryKind::kLambda;
    std::int64_t a = 0;
    std::int64_t b = 0;
  };

  /// One nucleus in an answer: its hierarchy node, its k and its size
  /// (number of member K_r's in the subtree).
  struct NucleusRef {
    std::int32_t node = kInvalidId;
    Lambda k = 0;
    std::int64_t size = 0;
  };

  struct Response {
    Status status;                  // non-OK: invalid query, others unset
    Lambda lambda = 0;              // kLambda / kLevel
    bool found = false;             // kNucleus / kCommon
    NucleusRef nucleus;             // kNucleus / kCommon (when found)
    std::vector<NucleusRef> top;    // kTop
    /// kMembers: shared view of the cached member list.
    std::shared_ptr<const std::vector<CliqueId>> members;
  };

  /// Serves an already-open source (heap or mmap). The engine shares
  /// ownership; a source may back several engines.
  static std::unique_ptr<QueryEngine> FromSource(
      std::shared_ptr<const SnapshotSource> source,
      const QueryEngineOptions& options = {});

  /// Wraps `snapshot` in a HeapSource (v1 bulk-read semantics, index
  /// tables adopted or built here once) — the path tests and the live
  /// update pipeline use.
  static std::unique_ptr<QueryEngine> FromSnapshotData(
      SnapshotData snapshot, const QueryEngineOptions& options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Metadata of the CURRENT state. Stays valid until the next
  /// ApplyUpdate; callers racing updates should query via Run/RunBatch,
  /// which pin the state they answer from.
  const SnapshotMeta& meta() const { return CurrentState()->source->meta(); }
  std::int64_t NumCliques() const {
    return CurrentState()->source->meta().num_cliques;
  }
  std::int32_t NumNodes() const {
    return CurrentState()->source->NumNodes();
  }
  std::int64_t NumNuclei() const {
    return CurrentState()->source->NumNuclei();
  }
  /// Current source's memory split (registry accounting / stats verb).
  std::int64_t HeapBytes() const {
    return CurrentState()->source->HeapBytes();
  }
  std::int64_t MappedBytes() const {
    return CurrentState()->source->MappedBytes();
  }

  /// Swaps in a new source. The source must describe the same family and
  /// K_r id space layout as the current state (for (1,2): the same vertex
  /// count) — anything else is a pairing error and returns InvalidArgument
  /// without touching the served state. The swap itself is a pointer
  /// assignment, so readers are stalled for nanoseconds. In-flight readers
  /// finish on the state they captured; their member-cache entries age out
  /// by epoch.
  Status ApplyUpdate(std::shared_ptr<const SnapshotSource> source);

  /// Convenience overload: wraps the post-state of an edit batch (the
  /// LiveUpdater product) in a HeapSource. Index tables and the density
  /// ranking are built OUTSIDE the writer lock.
  Status ApplyUpdate(SnapshotData snapshot);

  /// Number of state swaps applied so far (telemetry; initial state is 0).
  std::int64_t UpdateEpoch() const;

  /// Answers one query against the current state. Thread-safe, including
  /// against concurrent ApplyUpdate; invalid input yields an error Status
  /// in the Response.
  Response Run(const Query& query) const;

  /// Answers a batch concurrently over `pool`, preserving input order.
  /// The whole batch is answered against ONE state (captured on entry),
  /// so responses are identical to sequential Run() calls on that state
  /// and mutually consistent even if an update lands mid-batch.
  std::vector<Response> RunBatch(const std::vector<Query>& queries,
                                 ThreadPool& pool) const;

  /// The `k` densest nuclei: all lambda >= 1 nodes ordered by lambda
  /// descending, node id ascending as the tiebreak (deterministic).
  std::vector<NucleusRef> TopKDensest(std::int64_t k) const;

  /// Member list of one node's subtree, via the sharded LRU cache.
  std::shared_ptr<const std::vector<CliqueId>> Members(
      std::int32_t node) const;

  LruCacheStats CacheStats() const { return members_cache_.Stats(); }

 private:
  /// Everything a query touches, immutable once published. The SourceView
  /// captures the source's spans once, so the per-query hot path does no
  /// virtual dispatch.
  struct State {
    std::shared_ptr<const SnapshotSource> source;
    SourceView view;
    /// Cache-key prefix: entries of retired states become unreachable.
    std::uint64_t epoch = 0;
  };

  QueryEngine(std::shared_ptr<const SnapshotSource> source,
              const QueryEngineOptions& options);

  static std::shared_ptr<State> BuildState(
      std::shared_ptr<const SnapshotSource> source, std::uint64_t epoch);
  std::shared_ptr<const State> CurrentState() const;

  Response RunOnState(const State& state, const Query& query) const;
  NucleusRef MakeRef(const State& state, std::int32_t node) const;
  std::shared_ptr<const std::vector<CliqueId>> MembersOnState(
      const State& state, std::int32_t node) const;

  mutable SharedMutex state_mutex_;  // guards state_ (swap only)
  std::shared_ptr<const State> state_ GUARDED_BY(state_mutex_);
  mutable ShardedLruCache<std::uint64_t, std::vector<CliqueId>>
      members_cache_;  // key = epoch << 32 | node
};

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_QUERY_ENGINE_H_
