// QueryEngine: a long-lived, concurrent community-query server over a
// loaded snapshot — the downstream payoff the paper promises ("community
// search becomes a tree lookup") turned into a service component.
//
// The engine owns a SnapshotData (hierarchy + lambdas + jump tables) and
// answers the community-search vocabulary:
//
//   * lambda(u)                     — peeling number of the K_r u;
//   * nucleus(u, k)                 — the k-(r,s) nucleus containing u
//                                     (HierarchyIndex::NucleusAtLevel);
//   * common(u, v) / level(u, v)    — smallest common nucleus / its k;
//   * top(k)                        — the k densest nuclei (max lambda
//                                     first, precomputed ranking);
//   * members(node)                 — full member materialization of one
//                                     nucleus subtree, memoized in a
//                                     sharded LRU cache.
//
// Everything the hot path touches is immutable after construction, so
// Run() is safe from any number of threads; RunBatch() fans a request
// vector over the shared ThreadPool and returns answers in input order.
// Unlike the core-layer HierarchyIndex (which NUCLEUS_CHECKs its inputs),
// the engine treats queries as untrusted network input: out-of-range ids
// and invalid parameters come back as error Responses, never aborts.
#ifndef NUCLEUS_SERVE_QUERY_ENGINE_H_
#define NUCLEUS_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "nucleus/core/hierarchy_index.h"
#include "nucleus/parallel/thread_pool.h"
#include "nucleus/serve/lru_cache.h"
#include "nucleus/store/snapshot.h"
#include "nucleus/util/status.h"

namespace nucleus {

struct QueryEngineOptions {
  /// Member-materialization cache: total capacity is
  /// cache_shards * cache_entries_per_shard subtree member lists.
  std::size_t cache_shards = 8;
  std::size_t cache_entries_per_shard = 64;
};

class QueryEngine {
 public:
  enum class QueryKind : std::int32_t {
    kLambda,   // a = clique id
    kNucleus,  // a = clique id, b = k
    kCommon,   // a, b = clique ids
    kLevel,    // a, b = clique ids
    kTop,      // a = k (number of nuclei to report)
    kMembers,  // a = hierarchy node id
  };

  struct Query {
    QueryKind kind = QueryKind::kLambda;
    std::int64_t a = 0;
    std::int64_t b = 0;
  };

  /// One nucleus in an answer: its hierarchy node, its k and its size
  /// (number of member K_r's in the subtree).
  struct NucleusRef {
    std::int32_t node = kInvalidId;
    Lambda k = 0;
    std::int64_t size = 0;
  };

  struct Response {
    Status status;                  // non-OK: invalid query, others unset
    Lambda lambda = 0;              // kLambda / kLevel
    bool found = false;             // kNucleus / kCommon
    NucleusRef nucleus;             // kNucleus / kCommon (when found)
    std::vector<NucleusRef> top;    // kTop
    /// kMembers: shared view of the cached member list.
    std::shared_ptr<const std::vector<CliqueId>> members;
  };

  /// Takes ownership of the snapshot. If it carries index tables they are
  /// adopted verbatim; otherwise the HierarchyIndex is built here once.
  explicit QueryEngine(SnapshotData snapshot,
                       const QueryEngineOptions& options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  const SnapshotMeta& meta() const { return snapshot_.meta; }
  const NucleusHierarchy& hierarchy() const { return snapshot_.hierarchy; }
  const HierarchyIndex& index() const { return *index_; }
  std::int64_t NumCliques() const { return snapshot_.meta.num_cliques; }

  /// Answers one query. Thread-safe; invalid input yields an error Status
  /// in the Response.
  Response Run(const Query& query) const;

  /// Answers a batch concurrently over `pool`, preserving input order.
  /// Responses are identical to sequential Run() calls.
  std::vector<Response> RunBatch(const std::vector<Query>& queries,
                                 ThreadPool& pool) const;

  /// The `k` densest nuclei: all lambda >= 1 nodes ordered by lambda
  /// descending, node id ascending as the tiebreak (deterministic).
  std::vector<NucleusRef> TopKDensest(std::int64_t k) const;

  /// Member list of one node's subtree, via the sharded LRU cache.
  std::shared_ptr<const std::vector<CliqueId>> Members(
      std::int32_t node) const;

  LruCacheStats CacheStats() const { return members_cache_.Stats(); }

 private:
  NucleusRef MakeRef(std::int32_t node) const;

  SnapshotData snapshot_;
  std::optional<HierarchyIndex> index_;  // bound to snapshot_.hierarchy
  /// lambda >= 1 nodes sorted by (lambda desc, id asc); TopKDensest serves
  /// prefixes of this.
  std::vector<std::int32_t> density_ranking_;
  mutable ShardedLruCache<std::int32_t, std::vector<CliqueId>> members_cache_;
};

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_QUERY_ENGINE_H_
