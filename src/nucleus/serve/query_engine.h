// QueryEngine: a long-lived, concurrent community-query server over a
// loaded snapshot — the downstream payoff the paper promises ("community
// search becomes a tree lookup") turned into a service component.
//
// The engine owns a SnapshotData (hierarchy + lambdas + jump tables) and
// answers the community-search vocabulary:
//
//   * lambda(u)                     — peeling number of the K_r u;
//   * nucleus(u, k)                 — the k-(r,s) nucleus containing u
//                                     (HierarchyIndex::NucleusAtLevel);
//   * common(u, v) / level(u, v)    — smallest common nucleus / its k;
//   * top(k)                        — the k densest nuclei (max lambda
//                                     first, precomputed ranking);
//   * members(node)                 — full member materialization of one
//                                     nucleus subtree, memoized in a
//                                     sharded LRU cache.
//
// Since PR 4 the engine is UPDATABLE: ApplyUpdate swaps in the state of an
// edited graph (produced by serve/live_update.h from the incremental
// k-core maintainer) without a restart. The hot path stays lock-light: all
// query state lives in one immutable State object behind a shared_ptr;
// readers take a shared lock only long enough to copy the pointer, so an
// in-flight Run/RunBatch keeps its state alive and is never torn by a
// concurrent swap — a batch answers every query against the single state
// it captured on entry. Member-cache invalidation is by epoch: every state
// carries a generation number that prefixes the cache key, so entries of a
// replaced state simply stop being referenced and age out of the LRU
// shards (no full flush, no stop-the-world).
//
// Unlike the core-layer HierarchyIndex (which NUCLEUS_CHECKs its inputs),
// the engine treats queries as untrusted network input: out-of-range ids
// and invalid parameters come back as error Responses, never aborts.
#ifndef NUCLEUS_SERVE_QUERY_ENGINE_H_
#define NUCLEUS_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "nucleus/core/hierarchy_index.h"
#include "nucleus/parallel/thread_pool.h"
#include "nucleus/serve/lru_cache.h"
#include "nucleus/store/snapshot.h"
#include "nucleus/util/status.h"

namespace nucleus {

struct QueryEngineOptions {
  /// Member-materialization cache: total capacity is
  /// cache_shards * cache_entries_per_shard subtree member lists.
  std::size_t cache_shards = 8;
  std::size_t cache_entries_per_shard = 64;
};

class QueryEngine {
 public:
  enum class QueryKind : std::int32_t {
    kLambda,   // a = clique id
    kNucleus,  // a = clique id, b = k
    kCommon,   // a, b = clique ids
    kLevel,    // a, b = clique ids
    kTop,      // a = k (number of nuclei to report)
    kMembers,  // a = hierarchy node id
  };

  struct Query {
    QueryKind kind = QueryKind::kLambda;
    std::int64_t a = 0;
    std::int64_t b = 0;
  };

  /// One nucleus in an answer: its hierarchy node, its k and its size
  /// (number of member K_r's in the subtree).
  struct NucleusRef {
    std::int32_t node = kInvalidId;
    Lambda k = 0;
    std::int64_t size = 0;
  };

  struct Response {
    Status status;                  // non-OK: invalid query, others unset
    Lambda lambda = 0;              // kLambda / kLevel
    bool found = false;             // kNucleus / kCommon
    NucleusRef nucleus;             // kNucleus / kCommon (when found)
    std::vector<NucleusRef> top;    // kTop
    /// kMembers: shared view of the cached member list.
    std::shared_ptr<const std::vector<CliqueId>> members;
  };

  /// Takes ownership of the snapshot. If it carries index tables they are
  /// adopted verbatim; otherwise the HierarchyIndex is built here once.
  explicit QueryEngine(SnapshotData snapshot,
                       const QueryEngineOptions& options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Accessors into the CURRENT state. The returned references stay valid
  /// until the next ApplyUpdate (the engine keeps the current state
  /// alive); callers that run concurrently with updates must not hold
  /// them across an update boundary — query via Run/RunBatch instead,
  /// which pin the state they answer from.
  const SnapshotMeta& meta() const { return CurrentState()->snapshot.meta; }
  const NucleusHierarchy& hierarchy() const {
    return CurrentState()->snapshot.hierarchy;
  }
  const HierarchyIndex& index() const { return *CurrentState()->index; }
  std::int64_t NumCliques() const {
    return CurrentState()->snapshot.meta.num_cliques;
  }

  /// Swaps in the state of an edited graph. `snapshot` must describe the
  /// same family and K_r id space layout as the current state (for (1,2):
  /// the same vertex count) — anything else is a pairing error and returns
  /// InvalidArgument without touching the served state. Index tables and
  /// the density ranking are built OUTSIDE the writer lock; the swap
  /// itself is a pointer assignment, so readers are stalled for
  /// nanoseconds, not for the rebuild. In-flight readers finish on the
  /// state they captured; their member-cache entries age out by epoch.
  Status ApplyUpdate(SnapshotData snapshot);

  /// Number of state swaps applied so far (telemetry; initial state is 0).
  std::int64_t UpdateEpoch() const;

  /// Answers one query against the current state. Thread-safe, including
  /// against concurrent ApplyUpdate; invalid input yields an error Status
  /// in the Response.
  Response Run(const Query& query) const;

  /// Answers a batch concurrently over `pool`, preserving input order.
  /// The whole batch is answered against ONE state (captured on entry),
  /// so responses are identical to sequential Run() calls on that state
  /// and mutually consistent even if an update lands mid-batch.
  std::vector<Response> RunBatch(const std::vector<Query>& queries,
                                 ThreadPool& pool) const;

  /// The `k` densest nuclei: all lambda >= 1 nodes ordered by lambda
  /// descending, node id ascending as the tiebreak (deterministic).
  std::vector<NucleusRef> TopKDensest(std::int64_t k) const;

  /// Member list of one node's subtree, via the sharded LRU cache.
  std::shared_ptr<const std::vector<CliqueId>> Members(
      std::int32_t node) const;

  LruCacheStats CacheStats() const { return members_cache_.Stats(); }

 private:
  /// Everything a query touches, immutable once published. Heap-allocated
  /// so the HierarchyIndex's internal pointer to the hierarchy survives
  /// publication (the State never moves after construction).
  struct State {
    SnapshotData snapshot;
    std::optional<HierarchyIndex> index;  // bound to snapshot.hierarchy
    /// lambda >= 1 nodes sorted by (lambda desc, id asc); TopKDensest
    /// serves prefixes of this.
    std::vector<std::int32_t> density_ranking;
    /// Cache-key prefix: entries of retired states become unreachable.
    std::uint64_t epoch = 0;
  };

  static std::shared_ptr<State> BuildState(SnapshotData snapshot,
                                           std::uint64_t epoch);
  std::shared_ptr<const State> CurrentState() const;

  Response RunOnState(const State& state, const Query& query) const;
  NucleusRef MakeRef(const State& state, std::int32_t node) const;
  std::shared_ptr<const std::vector<CliqueId>> MembersOnState(
      const State& state, std::int32_t node) const;

  mutable std::shared_mutex state_mutex_;      // guards state_ (swap only)
  std::shared_ptr<const State> state_;
  mutable ShardedLruCache<std::uint64_t, std::vector<CliqueId>>
      members_cache_;  // key = epoch << 32 | node
};

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_QUERY_ENGINE_H_
