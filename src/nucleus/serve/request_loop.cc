#include "nucleus/serve/request_loop.h"

#include <chrono>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "nucleus/io/hierarchy_export.h"
#include "nucleus/serve/snapshot_registry.h"
#include "nucleus/store/manifest.h"
#include "nucleus/util/mutex.h"
#include "nucleus/util/parse_util.h"

namespace nucleus {
namespace {

using ProcessorClock = std::chrono::steady_clock;

std::int64_t DurationUs(ProcessorClock::time_point from,
                        ProcessorClock::time_point to) {
  const std::int64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us >= 0 ? us : 0;
}

const char* VerbName(QueryEngine::QueryKind kind) {
  switch (kind) {
    case QueryEngine::QueryKind::kLambda: return "lambda";
    case QueryEngine::QueryKind::kNucleus: return "nucleus";
    case QueryEngine::QueryKind::kCommon: return "common";
    case QueryEngine::QueryKind::kLevel: return "level";
    case QueryEngine::QueryKind::kTop: return "top";
    case QueryEngine::QueryKind::kMembers: return "members";
  }
  return "unknown";
}

const char* AdminVerbName(RoutedServeLine::Admin admin) {
  switch (admin) {
    case RoutedServeLine::Admin::kAttach: return "attach";
    case RoutedServeLine::Admin::kDetach: return "detach";
    case RoutedServeLine::Admin::kTenants: return "tenants";
    case RoutedServeLine::Admin::kStats: return "stats";
    case RoutedServeLine::Admin::kMetrics: return "metrics";
    case RoutedServeLine::Admin::kShutdown: return "shutdown";
    case RoutedServeLine::Admin::kNone: break;
  }
  return "none";
}

void AppendRef(std::ostringstream& out, const QueryEngine::NucleusRef& ref) {
  out << "\"node\": " << ref.node << ", \"k\": " << ref.k
      << ", \"size\": " << ref.size;
}

/// Whitespace-split tokens of one request line. NUL and other control
/// bytes are not whitespace, so they stay inside tokens and travel into
/// (JSON-escaped) error messages rather than confusing the tokenizer.
std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> tokens;
  for (std::string token; stream >> token;) tokens.push_back(token);
  return tokens;
}

/// Parses one already-tokenized request (verb + argument tokens). The
/// shared tail of ParseServeLine (unrouted) and ParseRoutedServeLine.
StatusOr<ServeRequest> ParseServeVerb(const std::string& verb,
                                      const std::vector<std::string>& args) {
  ServeRequest request;
  if (verb == "update") {
    if (args.size() != 3 || (args[2] != "+" && args[2] != "-")) {
      return Status::InvalidArgument(
          "'update' expects: update <u> <v> <+|->");
    }
    std::int64_t u = 0;
    std::int64_t v = 0;
    if (!StrictParseInt64(args[0], &u) || !StrictParseInt64(args[1], &v) ||
        u < 0 || v < 0 || u > 2147483647 || v > 2147483647) {
      return Status::InvalidArgument(
          "'update' expects non-negative integer vertex ids");
    }
    request.is_update = true;
    request.edit.u = static_cast<VertexId>(u);
    request.edit.v = static_cast<VertexId>(v);
    request.edit.op =
        args[2] == "+" ? EdgeEditOp::kInsert : EdgeEditOp::kRemove;
    return request;
  }

  QueryEngine::Query query;
  int arity = 0;
  if (verb == "lambda") {
    query.kind = QueryEngine::QueryKind::kLambda;
    arity = 1;
  } else if (verb == "nucleus") {
    query.kind = QueryEngine::QueryKind::kNucleus;
    arity = 2;
  } else if (verb == "common") {
    query.kind = QueryEngine::QueryKind::kCommon;
    arity = 2;
  } else if (verb == "level") {
    query.kind = QueryEngine::QueryKind::kLevel;
    arity = 2;
  } else if (verb == "top") {
    query.kind = QueryEngine::QueryKind::kTop;
    arity = 1;
  } else if (verb == "members") {
    query.kind = QueryEngine::QueryKind::kMembers;
    arity = 1;
  } else {
    return Status::InvalidArgument("unknown request '" + TruncateForEcho(verb) +
                                   "' (lambda | nucleus | common | level | "
                                   "top | members | update)");
  }
  if (static_cast<int>(args.size()) != arity) {
    return Status::InvalidArgument("'" + verb + "' expects " +
                                   std::to_string(arity) + " argument(s)");
  }
  if (!StrictParseInt64(args[0], &query.a) ||
      (arity == 2 && !StrictParseInt64(args[1], &query.b))) {
    return Status::InvalidArgument("'" + verb +
                                   "' expects integer arguments");
  }
  request.query = query;
  return request;
}

}  // namespace

StatusOr<ServeRequest> ParseServeLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  return ParseServeVerb(
      tokens[0], std::vector<std::string>(tokens.begin() + 1, tokens.end()));
}

StatusOr<RoutedServeLine> ParseRoutedServeLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  RoutedServeLine parsed;
  const std::string& head = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (head == "attach") {
    parsed.admin = RoutedServeLine::Admin::kAttach;
    parsed.admin_args = args;
    return parsed;
  }
  if (head == "detach") {
    if (args.empty() || args.size() > 2 ||
        (args.size() == 2 && args[1] != "force")) {
      return Status::InvalidArgument(
          "'detach' expects: detach <tenant> [force]");
    }
    parsed.admin = RoutedServeLine::Admin::kDetach;
    parsed.admin_args = args;
    return parsed;
  }
  if (head == "tenants") {
    if (!args.empty()) {
      return Status::InvalidArgument("'tenants' takes no arguments");
    }
    parsed.admin = RoutedServeLine::Admin::kTenants;
    return parsed;
  }
  if (head == "stats") {
    if (!args.empty()) {
      return Status::InvalidArgument("'stats' takes no arguments");
    }
    parsed.admin = RoutedServeLine::Admin::kStats;
    return parsed;
  }
  if (head == "metrics") {
    if (!(args.empty() || (args.size() == 1 && args[0] == "text"))) {
      return Status::InvalidArgument("'metrics' expects: metrics [text]");
    }
    parsed.admin = RoutedServeLine::Admin::kMetrics;
    parsed.admin_args = args;
    return parsed;
  }
  if (head == "shutdown") {
    if (!args.empty()) {
      return Status::InvalidArgument("'shutdown' takes no arguments");
    }
    parsed.admin = RoutedServeLine::Admin::kShutdown;
    return parsed;
  }

  std::string verb = head;
  const std::size_t colon = head.find(':');
  if (colon != std::string::npos) {
    parsed.tenant = head.substr(0, colon);
    verb = head.substr(colon + 1);
    if (!ValidTenantName(parsed.tenant)) {
      return Status::InvalidArgument(
          "invalid tenant name '" + TruncateForEcho(parsed.tenant) +
          "' before ':' (1-64 characters from [A-Za-z0-9_.-])");
    }
    if (verb.empty()) {
      return Status::InvalidArgument("missing verb after '" + parsed.tenant +
                                     ":'");
    }
  }
  StatusOr<ServeRequest> request = ParseServeVerb(verb, args);
  if (!request.ok()) return request.status();
  parsed.request = *request;
  return parsed;
}

StatusOr<QueryEngine::Query> ParseRequestLine(const std::string& line) {
  StatusOr<ServeRequest> request = ParseServeLine(line);
  if (!request.ok()) return request.status();
  if (request->is_update) {
    return Status::InvalidArgument(
        "'update' is not a query (serve sessions accept it only with a "
        "live updater)");
  }
  return request->query;
}

std::string ResponseToJson(const QueryEngine::Query& query,
                           const QueryEngine::Response& response) {
  std::ostringstream out;
  if (!response.status.ok()) {
    out << "{\"error\": \"" << JsonEscape(response.status.message())
        << "\"}";
    return out.str();
  }
  switch (query.kind) {
    case QueryEngine::QueryKind::kLambda:
      out << "{\"query\": \"lambda\", \"u\": " << query.a
          << ", \"lambda\": " << response.lambda << "}";
      break;
    case QueryEngine::QueryKind::kNucleus:
      out << "{\"query\": \"nucleus\", \"u\": " << query.a
          << ", \"k\": " << query.b
          << ", \"found\": " << (response.found ? "true" : "false");
      if (response.found) {
        // node_k >= the requested k: the smallest lambda on u's ancestor
        // chain that still clears the bar.
        out << ", \"node\": " << response.nucleus.node
            << ", \"node_k\": " << response.nucleus.k
            << ", \"size\": " << response.nucleus.size;
      }
      out << "}";
      break;
    case QueryEngine::QueryKind::kCommon:
      out << "{\"query\": \"common\", \"u\": " << query.a
          << ", \"v\": " << query.b
          << ", \"found\": " << (response.found ? "true" : "false");
      if (response.found) {
        out << ", ";
        AppendRef(out, response.nucleus);
      }
      out << "}";
      break;
    case QueryEngine::QueryKind::kLevel:
      out << "{\"query\": \"level\", \"u\": " << query.a
          << ", \"v\": " << query.b << ", \"level\": " << response.lambda
          << "}";
      break;
    case QueryEngine::QueryKind::kTop: {
      out << "{\"query\": \"top\", \"count\": " << response.top.size()
          << ", \"nuclei\": [";
      for (std::size_t i = 0; i < response.top.size(); ++i) {
        if (i > 0) out << ", ";
        out << "{";
        AppendRef(out, response.top[i]);
        out << "}";
      }
      out << "]}";
      break;
    }
    case QueryEngine::QueryKind::kMembers: {
      out << "{\"query\": \"members\", ";
      AppendRef(out, response.nucleus);
      out << ", \"members\": [";
      const auto& members = *response.members;
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out << ", ";
        out << members[i];
      }
      out << "]}";
      break;
    }
  }
  return out.str();
}

std::string UpdateToJson(const EdgeEdit& edit,
                         const CoreDeltaReport& report) {
  std::ostringstream out;
  out << "{\"query\": \"update\", \"u\": " << edit.u
      << ", \"v\": " << edit.v << ", \"op\": \""
      << (edit.op == EdgeEditOp::kInsert ? "+" : "-")
      << "\", \"applied\": " << (report.applied > 0 ? "true" : "false")
      << ", \"touched\": " << report.touched.size()
      << ", \"max_lambda\": " << report.max_lambda << "}";
  return out.str();
}

RequestProcessor::RequestProcessor(ServeSessionResolver resolver,
                                   SnapshotRegistry* registry,
                                   std::ostream& out,
                                   const ServeOptions& options)
    : resolver_(std::move(resolver)),
      registry_(registry),
      out_(out),
      options_(options),
      pool_(options.parallel),
      batch_size_(options.batch_size >= 1 ? options.batch_size : 1),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &obs::MetricsRegistry::Global()),
      parse_errors_(
          metrics_->GetCounter("nucleus_serve_errors_total", "", "parse")),
      resolve_errors_(
          metrics_->GetCounter("nucleus_serve_errors_total", "", "resolve")),
      query_errors_(
          metrics_->GetCounter("nucleus_serve_errors_total", "", "query")),
      update_errors_(
          metrics_->GetCounter("nucleus_serve_errors_total", "", "update")),
      admin_errors_(
          metrics_->GetCounter("nucleus_serve_errors_total", "", "admin")),
      reject_errors_(
          metrics_->GetCounter("nucleus_serve_errors_total", "", "reject")) {}

RequestProcessor::~RequestProcessor() = default;

void RequestProcessor::EmitError(const Status& status, std::int64_t line) {
  out_ << "{\"error\": \"" << JsonEscape(status.message())
       << "\", \"line\": " << line << "}\n";
  ++stats_.errors;
}

void RequestProcessor::FlushBatch() {
  if (items_.empty()) return;
  ++stats_.batches;
  const bool timing = timing_live();
  // Per-tenant sub-batches run back to back; each one is parallel over
  // the pool and order-deterministic on its own, and emission below is
  // by input order, so the interleaving is thread-count-invariant.
  std::vector<std::vector<QueryEngine::Response>> responses(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (timing) groups_[g].exec_start = Clock::now();
    responses[g] = groups_[g].session.engine->RunBatch(groups_[g].queries,
                                                       pool_);
    if (timing) {
      groups_[g].exec_us = DurationUs(groups_[g].exec_start, Clock::now());
    }
  }
  const Clock::time_point emit_start =
      timing ? Clock::now() : Clock::time_point{};
  for (const Item& item : items_) {
    if (!item.error.ok()) {
      EmitError(item.error, item.line_no);
      continue;
    }
    const QueryEngine::Response& response =
        responses[item.group][static_cast<std::size_t>(item.query_index)];
    if (!response.status.ok()) {
      ++stats_.errors;
      query_errors_->Increment();
    }
    const QueryEngine::Query& query =
        groups_[item.group]
            .queries[static_cast<std::size_t>(item.query_index)];
    out_ << ResponseToJson(query, response) << "\n";
  }
  // Instrumentation pass, entirely after emission so no clock read or
  // histogram update sits between two response writes. exec/flush are
  // batch-level durations attributed to every line of the batch.
  if (timing) {
    const std::int64_t flush_us = DurationUs(emit_start, Clock::now());
    const bool enabled = obs::MetricsEnabled();
    for (const Item& item : items_) {
      std::int64_t queue_us = 0;
      std::int64_t exec_us = 0;
      bool is_error = !item.error.ok();
      const std::string* tenant = nullptr;
      if (!is_error) {
        Group& group = groups_[item.group];
        tenant = &group.tenant;
        queue_us = DurationUs(item.ready, group.exec_start);
        exec_us = group.exec_us;
        const QueryEngine::Query& query =
            groups_[item.group]
                .queries[static_cast<std::size_t>(item.query_index)];
        is_error = !responses[item.group]
                        [static_cast<std::size_t>(item.query_index)]
                            .status.ok();
        if (enabled) {
          VerbMetrics& vm =
              group.metrics->by_verb[static_cast<int>(query.kind)];
          if (vm.requests == nullptr) {
            vm.requests = metrics_->GetCounter("nucleus_serve_requests_total",
                                               group.tenant, item.verb);
            vm.latency = metrics_->GetHistogram(
                "nucleus_serve_request_latency_us", group.tenant, item.verb);
          }
          vm.requests->Increment();
          vm.latency->Observe(item.parse_us + queue_us + exec_us + flush_us);
        }
      } else {
        queue_us = DurationUs(item.ready, emit_start);
      }
      if (options_.trace_log) {
        obs::TraceSpan span;
        span.line = item.line_no;
        if (tenant != nullptr) span.tenant = *tenant;
        span.verb = item.verb;
        span.error = is_error;
        span.parse_us = item.parse_us;
        span.queue_us = queue_us;
        span.exec_us = exec_us;
        span.flush_us = flush_us;
        options_.trace_log->Record(span);
      }
    }
  }
  items_.clear();
  groups_.clear();  // releases every pin
  group_of_tenant_.clear();
}

StatusOr<std::size_t> RequestProcessor::GroupFor(const std::string& tenant) {
  const auto it = group_of_tenant_.find(tenant);
  if (it != group_of_tenant_.end()) return it->second;
  StatusOr<ServeSession> session = resolver_(tenant);
  if (!session.ok()) return session.status();
  Group group;
  group.session = std::move(*session);
  group.tenant = tenant;
  group.metrics = &tenant_metrics_[tenant];
  groups_.push_back(std::move(group));
  const std::size_t index = groups_.size() - 1;
  group_of_tenant_.emplace(tenant, index);
  return index;
}

// An update is a sequencing point: everything before it answers on the
// pre-update state, everything after on the post-update state, so the
// output is deterministic at any thread count / batch size.
Status RequestProcessor::ApplyUpdate(const std::string& tenant,
                                     const EdgeEdit& edit) {
  StatusOr<ServeSession> session = resolver_(tenant);
  if (!session.ok()) return session.status();
  if (session->updater == nullptr) {
    return Status::InvalidArgument(
        "updates are not enabled on this session (serve with --input "
        "<graph>, or give the tenant graph= in its spec)");
  }
  // One updater can be shared by many sessions (TCP connections on a
  // single-engine server, or concurrent leases of one registry tenant).
  // The whole apply sequence — maintainer mutation, engine swap, dirty
  // marking — runs under the updater's mutex so concurrent updates
  // serialize and the delta chain and the served state advance in the
  // same order everywhere.
  MutexLock apply_lock(session->updater->apply_mutex());
  StatusOr<LiveUpdater::Result> result =
      session->updater->Apply(std::span<const EdgeEdit>(&edit, 1));
  if (!result.ok()) return result.status();
  // A skipped no-op (duplicate insert / missing removal) left the graph
  // untouched: keep serving the current state — no swap, no epoch bump,
  // the member cache stays warm, the tenant stays clean (evictable).
  if (result->changed) {
    if (Status s = session->engine->ApplyUpdate(std::move(result->snapshot));
        !s.ok()) {
      return s;
    }
    if (session->on_update) session->on_update(result->delta);
  }
  ++stats_.updates;
  out_ << UpdateToJson(edit, result->report) << "\n";
  return Status::Ok();
}

void RequestProcessor::PublishScrapeGauges() {
  if (!obs::MetricsEnabled()) return;
  if (registry_ != nullptr) PublishRegistryMetrics(*registry_, *metrics_);
}

void RequestProcessor::TraceInline(const char* verb,
                                   const std::string& tenant, bool error,
                                   std::int64_t parse_us,
                                   std::int64_t exec_us) {
  if (!options_.trace_log) return;
  obs::TraceSpan span;
  span.line = line_no_;
  span.tenant = tenant;
  span.verb = verb;
  span.error = error;
  span.parse_us = parse_us;
  span.exec_us = exec_us;
  options_.trace_log->Record(span);
}

Status RequestProcessor::RunAdmin(const RoutedServeLine& parsed) {
  // `shutdown` works on every session shape — a single-tenant TCP
  // connection must be able to drain its server too.
  if (parsed.admin == RoutedServeLine::Admin::kShutdown) {
    ++stats_.admin;
    shutdown_ = true;
    out_ << "{\"query\": \"shutdown\", \"ok\": true}\n";
    return Status::Ok();
  }
  // `metrics` reads the process-wide registry, so it too works on every
  // session shape. Per-tenant scrape gauges (resident/mapped bytes,
  // cache hit ratio) are refreshed from the snapshot registry first.
  if (parsed.admin == RoutedServeLine::Admin::kMetrics) {
    ++stats_.admin;
    PublishScrapeGauges();
    if (!parsed.admin_args.empty()) {
      // `metrics text`: the Prometheus exposition, carried inside the
      // one-JSON-object-per-line protocol as an escaped string.
      out_ << "{\"query\": \"metrics\", \"format\": \"text\", "
              "\"exposition\": \""
           << JsonEscape(metrics_->ToPrometheusText()) << "\"}\n";
    } else {
      out_ << "{\"query\": \"metrics\", " << metrics_->ToJsonBody()
           << "}\n";
    }
    return Status::Ok();
  }
  if (registry_ == nullptr) {
    return Status::InvalidArgument(
        "admin verbs (attach | detach | tenants | stats) require a "
        "registry session (serve --registry)");
  }
  switch (parsed.admin) {
    case RoutedServeLine::Admin::kAttach: {
      if (parsed.admin_args.empty()) {
        return Status::InvalidArgument(
            "'attach' expects: attach <name> snapshot=<path> "
            "[deltas=<p1,p2>] [graph=<path>]");
      }
      TenantSpec spec;
      spec.name = parsed.admin_args[0];
      const std::vector<std::string> args(parsed.admin_args.begin() + 1,
                                          parsed.admin_args.end());
      if (Status s = ParseTenantSpecArgs(args, "", &spec); !s.ok()) {
        return s;
      }
      if (Status s = registry_->Attach(spec); !s.ok()) return s;
      ++stats_.admin;
      out_ << "{\"query\": \"attach\", \"tenant\": \""
           << JsonEscape(spec.name) << "\", \"ok\": true}\n";
      return Status::Ok();
    }
    case RoutedServeLine::Admin::kDetach: {
      const bool force =
          parsed.admin_args.size() == 2 && parsed.admin_args[1] == "force";
      std::vector<std::string> persisted;
      if (Status s = registry_->Detach(parsed.admin_args[0], force,
                                       &persisted);
          !s.ok()) {
        return s;
      }
      ++stats_.admin;
      out_ << "{\"query\": \"detach\", \"tenant\": \""
           << JsonEscape(parsed.admin_args[0]) << "\", \"ok\": true";
      if (force) out_ << ", \"forced\": true";
      if (!persisted.empty()) {
        // A dirty tenant's pending state was written out; name the files
        // so the operator can re-attach (or archive) the exact state.
        out_ << ", \"persisted\": [";
        for (std::size_t i = 0; i < persisted.size(); ++i) {
          if (i > 0) out_ << ", ";
          out_ << "\"" << JsonEscape(persisted[i]) << "\"";
        }
        out_ << "]";
      }
      out_ << "}\n";
      return Status::Ok();
    }
    case RoutedServeLine::Admin::kTenants: {
      ++stats_.admin;
      const std::vector<std::string> names = registry_->TenantNames();
      out_ << "{\"query\": \"tenants\", \"count\": " << names.size()
           << ", \"tenants\": [";
      bool first = true;
      for (const std::string& name : names) {
        const StatusOr<TenantStats> tenant_stats = registry_->Stats(name);
        if (!tenant_stats.ok()) continue;  // detached between calls
        if (!first) out_ << ", ";
        first = false;
        out_ << "{\"name\": \"" << JsonEscape(name) << "\", \"resident\": "
             << (tenant_stats->resident ? "true" : "false")
             << ", \"live\": " << (tenant_stats->live ? "true" : "false")
             << ", \"dirty\": " << (tenant_stats->dirty ? "true" : "false")
             << ", \"loads\": " << tenant_stats->loads
             << ", \"evictions\": " << tenant_stats->evictions
             << ", \"hits\": " << tenant_stats->hits
             << ", \"updates\": " << tenant_stats->updates
             << ", \"resident_bytes\": " << tenant_stats->resident_bytes
             << "}";
      }
      out_ << "]}\n";
      return Status::Ok();
    }
    case RoutedServeLine::Admin::kStats: {
      ++stats_.admin;
      const RegistrySummary summary = registry_->Summary();
      out_ << "{\"query\": \"stats\", \"tenants\": [";
      bool first = true;
      for (const std::string& name : registry_->TenantNames()) {
        const StatusOr<TenantStats> tenant_stats = registry_->Stats(name);
        if (!tenant_stats.ok()) continue;  // detached between calls
        if (!first) out_ << ", ";
        first = false;
        out_ << "{\"name\": \"" << JsonEscape(name) << "\", \"resident\": "
             << (tenant_stats->resident ? "true" : "false")
             << ", \"live\": " << (tenant_stats->live ? "true" : "false")
             << ", \"dirty\": " << (tenant_stats->dirty ? "true" : "false")
             << ", \"loads\": " << tenant_stats->loads
             << ", \"evictions\": " << tenant_stats->evictions
             << ", \"hits\": " << tenant_stats->hits
             << ", \"updates\": " << tenant_stats->updates
             << ", \"pins\": " << tenant_stats->pins
             << ", \"resident_bytes\": " << tenant_stats->resident_bytes
             << ", \"heap_bytes\": " << tenant_stats->heap_bytes
             << ", \"mapped_bytes\": " << tenant_stats->mapped_bytes
             << ", \"cache\": {\"hits\": " << tenant_stats->cache.hits
             << ", \"misses\": " << tenant_stats->cache.misses
             << ", \"evictions\": " << tenant_stats->cache.evictions
             << ", \"entries\": " << tenant_stats->cache.entries
             << ", \"bytes\": " << tenant_stats->cache.bytes << "}}";
      }
      out_ << "], \"registry\": {\"tenants\": " << summary.tenants
           << ", \"resident_bytes\": " << summary.resident_bytes
           << ", \"mapped_bytes\": " << summary.mapped_bytes
           << ", \"budget_bytes\": " << summary.budget_bytes
           << ", \"detaches\": " << summary.detaches
           << ", \"detached_cache\": {\"hits\": "
           << summary.detached_cache.hits
           << ", \"misses\": " << summary.detached_cache.misses
           << ", \"evictions\": " << summary.detached_cache.evictions
           << "}}";
      if (options_.server_stats_json) {
        out_ << ", \"server\": " << options_.server_stats_json();
      }
      out_ << "}\n";
      return Status::Ok();
    }
    case RoutedServeLine::Admin::kMetrics:
    case RoutedServeLine::Admin::kShutdown:
    case RoutedServeLine::Admin::kNone:
      break;
  }
  return Status::Internal("unreachable admin verb");
}

void RequestProcessor::ProcessLine(const std::string& line) {
  ++line_no_;
  // After an acknowledged shutdown the session ignores further input —
  // the stream loop stops reading; a socket worker drains its queue
  // without answering (the client asked the server to go away).
  if (shutdown_) return;
  const std::size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '#') return;

  ++stats_.requests;
  const bool timing = timing_live();
  const Clock::time_point t0 = timing ? Clock::now() : Clock::time_point{};
  StatusOr<RoutedServeLine> parsed = ParseRoutedServeLine(line);
  Clock::time_point parsed_at{};
  std::int64_t parse_us = 0;
  if (timing) {
    // The parse/queue split is only visible in trace records; with
    // metrics alone the latency histogram needs just the t0->flush
    // total, so parse time folds into queue_us and this path costs one
    // clock read per line instead of two.
    if (options_.trace_log != nullptr) {
      parsed_at = Clock::now();
      parse_us = DurationUs(t0, parsed_at);
    } else {
      parsed_at = t0;
    }
  }
  if (!parsed.ok()) {
    parse_errors_->Increment();
    Item item;
    item.line_no = line_no_;
    item.error = parsed.status();
    item.verb = "error";
    item.parse_us = parse_us;
    item.ready = parsed_at;
    items_.push_back(std::move(item));
    if (static_cast<std::int64_t>(items_.size()) >= batch_size_) FlushBatch();
    return;
  }

  if (parsed->admin != RoutedServeLine::Admin::kNone) {
    // Admin verbs are sequencing points: the pending batch answers on
    // the pre-admin registry, everything later on the post-admin one.
    FlushBatch();
    const Clock::time_point exec_start =
        timing ? Clock::now() : Clock::time_point{};
    Status s = RunAdmin(*parsed);
    if (!s.ok()) {
      admin_errors_->Increment();
      EmitError(s, line_no_);
    }
    if (timing) {
      const char* verb = AdminVerbName(parsed->admin);
      if (obs::MetricsEnabled()) {
        metrics_->GetCounter("nucleus_serve_admin_total", "", verb)
            ->Increment();
      }
      TraceInline(verb, parsed->tenant, !s.ok(), parse_us,
                  DurationUs(exec_start, Clock::now()));
    }
    return;
  }

  if (parsed->request.is_update) {
    FlushBatch();
    const Clock::time_point exec_start =
        timing ? Clock::now() : Clock::time_point{};
    Status s = ApplyUpdate(parsed->tenant, parsed->request.edit);
    if (!s.ok()) {
      update_errors_->Increment();
      EmitError(s, line_no_);
    }
    if (timing) {
      const std::int64_t exec_us = DurationUs(exec_start, Clock::now());
      if (obs::MetricsEnabled()) {
        metrics_->GetCounter("nucleus_serve_updates_total", parsed->tenant)
            ->Increment();
        metrics_->GetHistogram("nucleus_serve_update_us", parsed->tenant)
            ->Observe(exec_us);
      }
      TraceInline("update", parsed->tenant, !s.ok(), parse_us, exec_us);
    }
    return;
  }

  Item item;
  item.line_no = line_no_;
  item.parse_us = parse_us;
  item.ready = parsed_at;
  StatusOr<std::size_t> group = GroupFor(parsed->tenant);
  if (group.ok()) {
    item.group = *group;
    item.verb = VerbName(parsed->request.query.kind);
    item.query_index =
        static_cast<std::int64_t>(groups_[*group].queries.size());
    groups_[*group].queries.push_back(parsed->request.query);
  } else {
    resolve_errors_->Increment();
    item.error = group.status();
    item.verb = "error";
  }
  items_.push_back(std::move(item));
  if (static_cast<std::int64_t>(items_.size()) >= batch_size_) FlushBatch();
}

void RequestProcessor::RejectLine(const Status& status) {
  ++line_no_;
  if (shutdown_) return;
  // The line's text never reached us (back-pressure dropped it), but it
  // still owns one slot of the response stream: count it and answer with
  // the rejection, keeping one-JSON-object-per-line and input order.
  ++stats_.requests;
  reject_errors_->Increment();
  Item item;
  item.line_no = line_no_;
  item.error = status;
  item.verb = "reject";
  if (timing_live()) item.ready = Clock::now();
  items_.push_back(std::move(item));
  if (static_cast<std::int64_t>(items_.size()) >= batch_size_) FlushBatch();
}

void RequestProcessor::Flush() {
  FlushBatch();
  out_.flush();
}

void RequestProcessor::Finish() { Flush(); }

ServeStats ServeResolvedRequests(const ServeSessionResolver& resolver,
                                 SnapshotRegistry* registry,
                                 std::istream& in, std::ostream& out,
                                 const ServeOptions& options) {
  RequestProcessor processor(resolver, registry, out, options);
  std::string line;
  while (std::getline(in, line)) {
    processor.ProcessLine(line);
    if (processor.shutdown_requested()) break;
  }
  processor.Finish();
  return processor.stats();
}

ServeSessionResolver MakeEngineResolver(QueryEngine& engine,
                                        LiveUpdater* updater) {
  return [&engine, updater](const std::string& tenant)
      -> StatusOr<ServeSession> {
    if (!tenant.empty()) {
      return Status::InvalidArgument(
          "this session serves a single snapshot; routed '" + tenant +
          ":' requests require serve --registry");
    }
    ServeSession session;
    session.engine = &engine;
    session.updater = updater;
    return session;
  };
}

ServeStats ServeRequests(QueryEngine& engine, LiveUpdater* updater,
                         std::istream& in, std::ostream& out,
                         const ServeOptions& options) {
  return ServeResolvedRequests(MakeEngineResolver(engine, updater), nullptr,
                               in, out, options);
}

ServeStats ServeRequests(const QueryEngine& engine, std::istream& in,
                         std::ostream& out, const ServeOptions& options) {
  // Without an updater the engine is never mutated (the only mutating path
  // is apply_update, which requires one), so serving a const engine
  // through the mutable entry point is sound.
  return ServeRequests(const_cast<QueryEngine&>(engine), nullptr, in, out,
                       options);
}

ServeSessionResolver MakeRegistryResolver(SnapshotRegistry& registry) {
  return [&registry](const std::string& tenant) -> StatusOr<ServeSession> {
    if (tenant.empty()) {
      return Status::InvalidArgument(
          "registry sessions route by tenant: '<tenant>:<verb> ...' "
          "(admin: attach | detach | tenants)");
    }
    StatusOr<SnapshotRegistry::Lease> lease = registry.Acquire(tenant);
    if (!lease.ok()) return lease.status();
    auto shared = std::make_shared<SnapshotRegistry::Lease>(
        std::move(*lease));
    ServeSession session;
    session.engine = &shared->engine();
    session.updater = shared->updater();
    session.on_update = [shared](const DeltaData& delta) {
      // Dirty + queued for persistence: a later `detach` writes the
      // record out instead of losing the applied batch.
      shared->MarkUpdated(delta);
    };
    session.pin = shared;
    return session;
  };
}

ServeStats ServeRegistryRequests(SnapshotRegistry& registry,
                                 std::istream& in, std::ostream& out,
                                 const ServeOptions& options) {
  return ServeResolvedRequests(MakeRegistryResolver(registry), &registry, in,
                               out, options);
}

}  // namespace nucleus
