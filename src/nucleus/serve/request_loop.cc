#include "nucleus/serve/request_loop.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "nucleus/io/hierarchy_export.h"
#include "nucleus/util/parse_util.h"

namespace nucleus {
namespace {

void AppendRef(std::ostringstream& out, const QueryEngine::NucleusRef& ref) {
  out << "\"node\": " << ref.node << ", \"k\": " << ref.k
      << ", \"size\": " << ref.size;
}

}  // namespace

StatusOr<QueryEngine::Query> ParseRequestLine(const std::string& line) {
  std::istringstream stream(line);
  std::string verb;
  std::vector<std::string> args;
  stream >> verb;
  for (std::string token; stream >> token;) args.push_back(token);

  QueryEngine::Query query;
  int arity = 0;
  if (verb == "lambda") {
    query.kind = QueryEngine::QueryKind::kLambda;
    arity = 1;
  } else if (verb == "nucleus") {
    query.kind = QueryEngine::QueryKind::kNucleus;
    arity = 2;
  } else if (verb == "common") {
    query.kind = QueryEngine::QueryKind::kCommon;
    arity = 2;
  } else if (verb == "level") {
    query.kind = QueryEngine::QueryKind::kLevel;
    arity = 2;
  } else if (verb == "top") {
    query.kind = QueryEngine::QueryKind::kTop;
    arity = 1;
  } else if (verb == "members") {
    query.kind = QueryEngine::QueryKind::kMembers;
    arity = 1;
  } else {
    return Status::InvalidArgument("unknown request '" + verb +
                                   "' (lambda | nucleus | common | level | "
                                   "top | members)");
  }
  if (static_cast<int>(args.size()) != arity) {
    return Status::InvalidArgument("'" + verb + "' expects " +
                                   std::to_string(arity) + " argument(s)");
  }
  if (!StrictParseInt64(args[0], &query.a) ||
      (arity == 2 && !StrictParseInt64(args[1], &query.b))) {
    return Status::InvalidArgument("'" + verb +
                                   "' expects integer arguments");
  }
  return query;
}

std::string ResponseToJson(const QueryEngine::Query& query,
                           const QueryEngine::Response& response) {
  std::ostringstream out;
  if (!response.status.ok()) {
    out << "{\"error\": \"" << JsonEscape(response.status.message())
        << "\"}";
    return out.str();
  }
  switch (query.kind) {
    case QueryEngine::QueryKind::kLambda:
      out << "{\"query\": \"lambda\", \"u\": " << query.a
          << ", \"lambda\": " << response.lambda << "}";
      break;
    case QueryEngine::QueryKind::kNucleus:
      out << "{\"query\": \"nucleus\", \"u\": " << query.a
          << ", \"k\": " << query.b
          << ", \"found\": " << (response.found ? "true" : "false");
      if (response.found) {
        // node_k >= the requested k: the smallest lambda on u's ancestor
        // chain that still clears the bar.
        out << ", \"node\": " << response.nucleus.node
            << ", \"node_k\": " << response.nucleus.k
            << ", \"size\": " << response.nucleus.size;
      }
      out << "}";
      break;
    case QueryEngine::QueryKind::kCommon:
      out << "{\"query\": \"common\", \"u\": " << query.a
          << ", \"v\": " << query.b
          << ", \"found\": " << (response.found ? "true" : "false");
      if (response.found) {
        out << ", ";
        AppendRef(out, response.nucleus);
      }
      out << "}";
      break;
    case QueryEngine::QueryKind::kLevel:
      out << "{\"query\": \"level\", \"u\": " << query.a
          << ", \"v\": " << query.b << ", \"level\": " << response.lambda
          << "}";
      break;
    case QueryEngine::QueryKind::kTop: {
      out << "{\"query\": \"top\", \"count\": " << response.top.size()
          << ", \"nuclei\": [";
      for (std::size_t i = 0; i < response.top.size(); ++i) {
        if (i > 0) out << ", ";
        out << "{";
        AppendRef(out, response.top[i]);
        out << "}";
      }
      out << "]}";
      break;
    }
    case QueryEngine::QueryKind::kMembers: {
      out << "{\"query\": \"members\", ";
      AppendRef(out, response.nucleus);
      out << ", \"members\": [";
      const auto& members = *response.members;
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out << ", ";
        out << members[i];
      }
      out << "]}";
      break;
    }
  }
  return out.str();
}

ServeStats ServeRequests(const QueryEngine& engine, std::istream& in,
                         std::ostream& out, const ServeOptions& options) {
  struct Item {
    std::int64_t line_no = 0;
    Status parse_status;
    QueryEngine::Query query;
    std::int64_t query_index = -1;  // into the batch's query vector
  };

  ThreadPool pool(options.parallel);
  const std::int64_t batch_size =
      options.batch_size >= 1 ? options.batch_size : 1;
  ServeStats stats;
  std::vector<Item> items;
  std::vector<QueryEngine::Query> queries;
  std::int64_t line_no = 0;

  const auto flush = [&] {
    if (items.empty()) return;
    ++stats.batches;
    const std::vector<QueryEngine::Response> responses =
        engine.RunBatch(queries, pool);
    for (const Item& item : items) {
      if (!item.parse_status.ok()) {
        out << "{\"error\": \"" << JsonEscape(item.parse_status.message())
            << "\", \"line\": " << item.line_no << "}\n";
        ++stats.errors;
        continue;
      }
      const QueryEngine::Response& response =
          responses[static_cast<std::size_t>(item.query_index)];
      if (!response.status.ok()) ++stats.errors;
      out << ResponseToJson(item.query, response) << "\n";
    }
    items.clear();
    queries.clear();
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;

    Item item;
    item.line_no = line_no;
    ++stats.requests;
    StatusOr<QueryEngine::Query> parsed = ParseRequestLine(line);
    if (parsed.ok()) {
      item.query = *parsed;
      item.query_index = static_cast<std::int64_t>(queries.size());
      queries.push_back(*parsed);
    } else {
      item.parse_status = parsed.status();
    }
    items.push_back(std::move(item));
    if (static_cast<std::int64_t>(items.size()) >= batch_size) flush();
  }
  flush();
  out.flush();
  return stats;
}

}  // namespace nucleus
