#include "nucleus/serve/request_loop.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "nucleus/io/hierarchy_export.h"
#include "nucleus/util/parse_util.h"

namespace nucleus {
namespace {

void AppendRef(std::ostringstream& out, const QueryEngine::NucleusRef& ref) {
  out << "\"node\": " << ref.node << ", \"k\": " << ref.k
      << ", \"size\": " << ref.size;
}

}  // namespace

StatusOr<ServeRequest> ParseServeLine(const std::string& line) {
  std::istringstream stream(line);
  std::string verb;
  std::vector<std::string> args;
  stream >> verb;
  for (std::string token; stream >> token;) args.push_back(token);

  ServeRequest request;
  if (verb == "update") {
    if (args.size() != 3 || (args[2] != "+" && args[2] != "-")) {
      return Status::InvalidArgument(
          "'update' expects: update <u> <v> <+|->");
    }
    std::int64_t u = 0;
    std::int64_t v = 0;
    if (!StrictParseInt64(args[0], &u) || !StrictParseInt64(args[1], &v) ||
        u < 0 || v < 0 || u > 2147483647 || v > 2147483647) {
      return Status::InvalidArgument(
          "'update' expects non-negative integer vertex ids");
    }
    request.is_update = true;
    request.edit.u = static_cast<VertexId>(u);
    request.edit.v = static_cast<VertexId>(v);
    request.edit.op =
        args[2] == "+" ? EdgeEditOp::kInsert : EdgeEditOp::kRemove;
    return request;
  }

  QueryEngine::Query query;
  int arity = 0;
  if (verb == "lambda") {
    query.kind = QueryEngine::QueryKind::kLambda;
    arity = 1;
  } else if (verb == "nucleus") {
    query.kind = QueryEngine::QueryKind::kNucleus;
    arity = 2;
  } else if (verb == "common") {
    query.kind = QueryEngine::QueryKind::kCommon;
    arity = 2;
  } else if (verb == "level") {
    query.kind = QueryEngine::QueryKind::kLevel;
    arity = 2;
  } else if (verb == "top") {
    query.kind = QueryEngine::QueryKind::kTop;
    arity = 1;
  } else if (verb == "members") {
    query.kind = QueryEngine::QueryKind::kMembers;
    arity = 1;
  } else {
    return Status::InvalidArgument("unknown request '" + verb +
                                   "' (lambda | nucleus | common | level | "
                                   "top | members | update)");
  }
  if (static_cast<int>(args.size()) != arity) {
    return Status::InvalidArgument("'" + verb + "' expects " +
                                   std::to_string(arity) + " argument(s)");
  }
  if (!StrictParseInt64(args[0], &query.a) ||
      (arity == 2 && !StrictParseInt64(args[1], &query.b))) {
    return Status::InvalidArgument("'" + verb +
                                   "' expects integer arguments");
  }
  request.query = query;
  return request;
}

StatusOr<QueryEngine::Query> ParseRequestLine(const std::string& line) {
  StatusOr<ServeRequest> request = ParseServeLine(line);
  if (!request.ok()) return request.status();
  if (request->is_update) {
    return Status::InvalidArgument(
        "'update' is not a query (serve sessions accept it only with a "
        "live updater)");
  }
  return request->query;
}

std::string ResponseToJson(const QueryEngine::Query& query,
                           const QueryEngine::Response& response) {
  std::ostringstream out;
  if (!response.status.ok()) {
    out << "{\"error\": \"" << JsonEscape(response.status.message())
        << "\"}";
    return out.str();
  }
  switch (query.kind) {
    case QueryEngine::QueryKind::kLambda:
      out << "{\"query\": \"lambda\", \"u\": " << query.a
          << ", \"lambda\": " << response.lambda << "}";
      break;
    case QueryEngine::QueryKind::kNucleus:
      out << "{\"query\": \"nucleus\", \"u\": " << query.a
          << ", \"k\": " << query.b
          << ", \"found\": " << (response.found ? "true" : "false");
      if (response.found) {
        // node_k >= the requested k: the smallest lambda on u's ancestor
        // chain that still clears the bar.
        out << ", \"node\": " << response.nucleus.node
            << ", \"node_k\": " << response.nucleus.k
            << ", \"size\": " << response.nucleus.size;
      }
      out << "}";
      break;
    case QueryEngine::QueryKind::kCommon:
      out << "{\"query\": \"common\", \"u\": " << query.a
          << ", \"v\": " << query.b
          << ", \"found\": " << (response.found ? "true" : "false");
      if (response.found) {
        out << ", ";
        AppendRef(out, response.nucleus);
      }
      out << "}";
      break;
    case QueryEngine::QueryKind::kLevel:
      out << "{\"query\": \"level\", \"u\": " << query.a
          << ", \"v\": " << query.b << ", \"level\": " << response.lambda
          << "}";
      break;
    case QueryEngine::QueryKind::kTop: {
      out << "{\"query\": \"top\", \"count\": " << response.top.size()
          << ", \"nuclei\": [";
      for (std::size_t i = 0; i < response.top.size(); ++i) {
        if (i > 0) out << ", ";
        out << "{";
        AppendRef(out, response.top[i]);
        out << "}";
      }
      out << "]}";
      break;
    }
    case QueryEngine::QueryKind::kMembers: {
      out << "{\"query\": \"members\", ";
      AppendRef(out, response.nucleus);
      out << ", \"members\": [";
      const auto& members = *response.members;
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out << ", ";
        out << members[i];
      }
      out << "]}";
      break;
    }
  }
  return out.str();
}

std::string UpdateToJson(const EdgeEdit& edit,
                         const CoreDeltaReport& report) {
  std::ostringstream out;
  out << "{\"query\": \"update\", \"u\": " << edit.u
      << ", \"v\": " << edit.v << ", \"op\": \""
      << (edit.op == EdgeEditOp::kInsert ? "+" : "-")
      << "\", \"applied\": " << (report.applied > 0 ? "true" : "false")
      << ", \"touched\": " << report.touched.size()
      << ", \"max_lambda\": " << report.max_lambda << "}";
  return out.str();
}

ServeStats ServeRequests(QueryEngine& engine, LiveUpdater* updater,
                         std::istream& in, std::ostream& out,
                         const ServeOptions& options) {
  struct Item {
    std::int64_t line_no = 0;
    Status parse_status;
    QueryEngine::Query query;
    std::int64_t query_index = -1;  // into the batch's query vector
  };

  ThreadPool pool(options.parallel);
  const std::int64_t batch_size =
      options.batch_size >= 1 ? options.batch_size : 1;
  ServeStats stats;
  std::vector<Item> items;
  std::vector<QueryEngine::Query> queries;
  std::int64_t line_no = 0;

  const auto flush = [&] {
    if (items.empty()) return;
    ++stats.batches;
    const std::vector<QueryEngine::Response> responses =
        engine.RunBatch(queries, pool);
    for (const Item& item : items) {
      if (!item.parse_status.ok()) {
        out << "{\"error\": \"" << JsonEscape(item.parse_status.message())
            << "\", \"line\": " << item.line_no << "}\n";
        ++stats.errors;
        continue;
      }
      const QueryEngine::Response& response =
          responses[static_cast<std::size_t>(item.query_index)];
      if (!response.status.ok()) ++stats.errors;
      out << ResponseToJson(item.query, response) << "\n";
    }
    items.clear();
    queries.clear();
  };

  /// An update is a sequencing point: everything before it answers on the
  /// pre-update state, everything after on the post-update state, so the
  /// output is deterministic at any thread count / batch size.
  const auto apply_update = [&](const EdgeEdit& edit) -> Status {
    if (updater == nullptr) {
      return Status::InvalidArgument(
          "updates are not enabled on this session (serve with --input "
          "<graph> to allow them)");
    }
    StatusOr<LiveUpdater::Result> result =
        updater->Apply(std::span<const EdgeEdit>(&edit, 1));
    if (!result.ok()) return result.status();
    // A skipped no-op (duplicate insert / missing removal) left the graph
    // untouched: keep serving the current state — no swap, no epoch bump,
    // the member cache stays warm.
    if (result->changed) {
      if (Status s = engine.ApplyUpdate(std::move(result->snapshot));
          !s.ok()) {
        return s;
      }
    }
    ++stats.updates;
    out << UpdateToJson(edit, result->report) << "\n";
    return Status::Ok();
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;

    ++stats.requests;
    StatusOr<ServeRequest> parsed = ParseServeLine(line);
    if (parsed.ok() && parsed->is_update) {
      flush();
      if (Status s = apply_update(parsed->edit); !s.ok()) {
        out << "{\"error\": \"" << JsonEscape(s.message())
            << "\", \"line\": " << line_no << "}\n";
        ++stats.errors;
      }
      continue;
    }

    Item item;
    item.line_no = line_no;
    if (parsed.ok()) {
      item.query = parsed->query;
      item.query_index = static_cast<std::int64_t>(queries.size());
      queries.push_back(parsed->query);
    } else {
      item.parse_status = parsed.status();
    }
    items.push_back(std::move(item));
    if (static_cast<std::int64_t>(items.size()) >= batch_size) flush();
  }
  flush();
  out.flush();
  return stats;
}

ServeStats ServeRequests(const QueryEngine& engine, std::istream& in,
                         std::ostream& out, const ServeOptions& options) {
  // Without an updater the engine is never mutated (the only mutating path
  // is apply_update, which requires one), so serving a const engine
  // through the mutable entry point is sound.
  return ServeRequests(const_cast<QueryEngine&>(engine), nullptr, in, out,
                       options);
}

}  // namespace nucleus
