#include "nucleus/serve/live_update.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "nucleus/obs/metrics.h"
#include "nucleus/util/parse_util.h"

namespace nucleus {
namespace {

std::int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

LiveUpdater::LiveUpdater(const Graph& g, std::vector<Lambda> lambda,
                         const ChainLink& link)
    : maintainer_(g, std::move(lambda)),
      base_fingerprint_(link.base_fingerprint),
      parent_fingerprint_(link.parent_fingerprint),
      parent_lambda_fingerprint_(LambdaFingerprint(maintainer_.lambda())) {}

StatusOr<std::unique_ptr<LiveUpdater>> LiveUpdater::Create(
    const Graph& g, const SnapshotData& snapshot,
    const std::optional<ChainLink>& link) {
  const SnapshotMeta& meta = snapshot.meta;
  if (meta.family != Family::kCore12) {
    return Status::InvalidArgument(
        "live updates support (1,2) core snapshots only (the incremental "
        "maintainer updates the k-core space)");
  }
  if (meta.algorithm != Algorithm::kDft) {
    // The update path rebuilds hierarchies in DF-Traversal shape; adopting
    // a snapshot built by another algorithm would silently renumber every
    // hierarchy node id a client holds at the first applied update (kFnd
    // numbering differs from kDft on sparse graphs).
    return Status::InvalidArgument(
        "live updates require an --algorithm dft (1,2) snapshot: the "
        "update path maintains the DF-Traversal hierarchy shape, and "
        "node ids of a snapshot built by another algorithm would not "
        "survive the first update");
  }
  if (meta.num_vertices != g.NumVertices() ||
      meta.num_cliques != g.NumVertices()) {
    return Status::InvalidArgument(
        "snapshot does not match the graph: vertex count differs");
  }
  if (meta.num_edges != g.NumEdges()) {
    return Status::InvalidArgument(
        "snapshot does not match the graph: edge count differs");
  }
  if (meta.graph_fingerprint != GraphFingerprint(g)) {
    return Status::InvalidArgument(
        "snapshot does not match the graph: fingerprint differs (decompose "
        "this graph, or pass the graph the snapshot was built from)");
  }
  ChainLink resolved;
  if (link.has_value()) {
    resolved = *link;
  } else {
    resolved.base_fingerprint = meta.graph_fingerprint;
    resolved.parent_fingerprint = EdgeSetFingerprint(g);
  }
  return std::unique_ptr<LiveUpdater>(
      new LiveUpdater(g, snapshot.peel.lambda, resolved));
}

StatusOr<LiveUpdater::Result> LiveUpdater::Apply(
    std::span<const EdgeEdit> edits) {
  const bool timing = obs::MetricsEnabled();
  const auto apply_start = std::chrono::steady_clock::now();
  // Validate the whole batch before touching anything: a rejected batch
  // must leave the maintained state (and the chain bookkeeping) unchanged.
  const VertexId n = maintainer_.NumVertices();
  for (std::size_t i = 0; i < edits.size(); ++i) {
    const EdgeEdit& edit = edits[i];
    if (edit.u < 0 || edit.u >= n || edit.v < 0 || edit.v >= n) {
      return Status::InvalidArgument(
          "edit " + std::to_string(i) + ": vertex out of range [0, " +
          std::to_string(n) + ")");
    }
    if (edit.u == edit.v) {
      return Status::InvalidArgument("edit " + std::to_string(i) +
                                     ": self-loops are not allowed");
    }
    if (edit.op != EdgeEditOp::kInsert && edit.op != EdgeEditOp::kRemove) {
      return Status::InvalidArgument("edit " + std::to_string(i) +
                                     ": unknown operation");
    }
  }

  Result result;
  const std::int64_t parent_num_edges = maintainer_.NumEdges();
  result.report = maintainer_.ApplyEdits(edits);

  // Chain record: the durable form of this batch.
  result.delta.num_vertices = n;
  result.delta.max_lambda = result.report.max_lambda;
  result.delta.parent_num_edges = parent_num_edges;
  result.delta.child_num_edges = maintainer_.NumEdges();
  result.delta.base_fingerprint = base_fingerprint_;
  result.delta.parent_fingerprint = parent_fingerprint_;
  result.delta.child_fingerprint = maintainer_.edge_set_fingerprint();
  result.delta.parent_lambda_fingerprint = parent_lambda_fingerprint_;
  result.delta.child_lambda_fingerprint =
      LambdaFingerprint(maintainer_.lambda());
  result.delta.edits.assign(edits.begin(), edits.end());
  result.delta.patched_ids = result.report.touched;
  result.delta.patched_lambda = result.report.new_lambda;
  parent_fingerprint_ = result.delta.child_fingerprint;
  parent_lambda_fingerprint_ = result.delta.child_lambda_fingerprint;

  result.changed = result.report.applied > 0;
  if (!result.changed) {
    if (timing) {
      obs::MetricsRegistry::Global()
          .GetHistogram("nucleus_update_apply_us")
          ->Observe(ElapsedUs(apply_start));
    }
    return result;  // nothing to materialize or swap
  }

  // Servable post-state: patched lambdas + the hierarchy a fresh kDft
  // decomposition of the edited graph would build. The one linear pass
  // here (CSR assembly + DF-Traversal) is the price of serving exact
  // answers immediately; the durable path above cost only O(touched).
  const auto rebuild_start = std::chrono::steady_clock::now();
  const Graph g = maintainer_.ToGraph();
  result.snapshot.meta.family = Family::kCore12;
  result.snapshot.meta.algorithm = Algorithm::kDft;
  result.snapshot.meta.num_vertices = n;
  result.snapshot.meta.num_edges = g.NumEdges();
  result.snapshot.meta.graph_fingerprint = GraphFingerprint(g);
  result.snapshot.meta.num_cliques = n;
  result.snapshot.meta.max_lambda = result.report.max_lambda;
  result.snapshot.peel.lambda = maintainer_.lambda();
  result.snapshot.peel.max_lambda = result.report.max_lambda;
  result.snapshot.hierarchy = RebuildCoreHierarchy(g, result.snapshot.peel);
  result.snapshot.has_index = false;
  if (timing) {
    obs::MetricsRegistry& m = obs::MetricsRegistry::Global();
    // The rebuild (CSR assembly + DF-Traversal) is the O(V+E) tail the
    // ROADMAP wants sublinear; tracking it separately from the whole
    // apply shows exactly how much of an update batch it costs.
    m.GetHistogram("nucleus_update_rebuild_us")
        ->Observe(ElapsedUs(rebuild_start));
    m.GetHistogram("nucleus_update_apply_us")->Observe(ElapsedUs(apply_start));
  }
  return result;
}

StatusOr<std::vector<EdgeEdit>> ParseEditList(const std::string& text) {
  std::vector<EdgeEdit> edits;
  std::istringstream stream(text);
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;

    std::istringstream fields(line);
    std::string op, u_token, v_token, extra;
    fields >> op >> u_token >> v_token;
    const bool has_extra = static_cast<bool>(fields >> extra);
    std::int64_t u = 0;
    std::int64_t v = 0;
    if ((op != "+" && op != "-") || v_token.empty() || has_extra ||
        !StrictParseInt64(u_token, &u) || !StrictParseInt64(v_token, &v) ||
        u < 0 || v < 0 || u > 2147483647 || v > 2147483647) {
      return Status::InvalidArgument(
          "edit line " + std::to_string(line_no) +
          ": expected '+ <u> <v>' or '- <u> <v>' with non-negative "
          "integer ids");
    }
    EdgeEdit edit;
    edit.u = static_cast<VertexId>(u);
    edit.v = static_cast<VertexId>(v);
    edit.op = op == "+" ? EdgeEditOp::kInsert : EdgeEditOp::kRemove;
    edits.push_back(edit);
  }
  return edits;
}

StatusOr<std::vector<EdgeEdit>> ReadEditList(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseEditList(buffer.str());
}

}  // namespace nucleus
