// SnapshotRegistry: one process, many graphs — the multi-tenant layer of
// the serving stack.
//
// PR 3/4 made a single snapshot loadable, servable and live-updatable;
// this module lifts that to the operating mode production serving assumes
// (and the ROADMAP names as the next serving step): a registry of named
// TENANTS, each a (snapshot [+ delta chain] [+ graph for live updates])
// triple resolved through the existing fingerprint pairing. The routed
// request loop (`<tenant>:<verb> ...`, request_loop.h) resolves every
// line through this registry.
//
// Residency and eviction. Attach loads a tenant eagerly, so a corrupt or
// mismatched backing file surfaces as a per-tenant Status at attach time
// while every other tenant keeps serving. Loaded engines are accounted
// against an optional byte budget; when the budget is exceeded the
// registry evicts least-recently-used IDLE engines. Three states are
// never evicted:
//
//   * pinned    — a Lease is alive (a batch is in flight). RunBatch never
//                 loses its state mid-batch; the budget is best-effort
//                 while everything is pinned, and the overshoot is
//                 reclaimed as soon as a lease releases (not just at the
//                 next attach/acquire).
//   * dirty     — updates were applied that exist nowhere on disk;
//                 evicting would silently roll the tenant back.
//   * detached-but-leased — Detach drops the registry's reference, but a
//                 live Lease keeps the engine alive until it is released.
//
// An evicted tenant stays attached: the next Acquire lazily re-loads it
// from its backing files, and (for clean tenants) the re-loaded state
// answers byte-identically to the never-evicted one — the property
// tests/snapshot_registry_test.cc pins. A re-load failure (file corrupted
// since attach) is again a per-tenant Status; the tenant remains attached
// and recovers on the next Acquire once the file does.
//
// Locking. One mutex guards the tenant table — the ADMIN plane
// (attach/detach/acquire/stats). Query execution happens on leased
// engines outside that lock, so a slow re-load of one tenant never stalls
// another tenant's in-flight batches; it only delays concurrent admin
// calls. Per-engine concurrency is the QueryEngine's own affair.
#ifndef NUCLEUS_SERVE_SNAPSHOT_REGISTRY_H_
#define NUCLEUS_SERVE_SNAPSHOT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nucleus/serve/live_update.h"
#include "nucleus/serve/lru_cache.h"
#include "nucleus/serve/query_engine.h"
#include "nucleus/store/manifest.h"
#include "nucleus/store/snapshot.h"
#include "nucleus/util/status.h"

namespace nucleus {

struct RegistryOptions {
  /// Total resident-engine budget in bytes; 0 = unlimited. Enforced by
  /// LRU eviction of idle engines (see file comment for what "idle"
  /// excludes), so the actual footprint can exceed the budget while every
  /// resident engine is pinned or dirty.
  std::int64_t memory_budget_bytes = 0;
  /// Per-engine member-cache shape (each tenant gets its own cache).
  QueryEngineOptions engine;
};

/// Telemetry for one tenant, cumulative across evictions and re-loads.
struct TenantStats {
  bool resident = false;
  bool live = false;   // graph paired: the update verb is enabled
  bool dirty = false;  // unpersisted updates applied (never evicted)
  std::int64_t loads = 0;      // attach + lazy re-loads
  std::int64_t evictions = 0;  // budget-driven engine drops
  std::int64_t hits = 0;       // Acquires served from a resident engine
  std::int64_t updates = 0;    // applied update batches
  std::int64_t pins = 0;       // currently live Leases
  std::int64_t resident_bytes = 0;  // 0 when evicted
  /// Per-tenant member-cache telemetry: the resident engine's counters
  /// plus everything accumulated from engines this tenant already
  /// retired — the per-tenant dimension of LruCacheStats.
  LruCacheStats cache;
};

/// Rough resident footprint of a loaded snapshot (lambdas, hierarchy,
/// jump tables), used for budget accounting. Exposed so tests and benches
/// can size eviction budgets relative to real tenants.
std::int64_t EstimateResidentBytes(const SnapshotData& snapshot);

class SnapshotRegistry {
 public:
  class Lease;

  explicit SnapshotRegistry(const RegistryOptions& options = {});

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Registers and eagerly loads a tenant. Any failure — invalid spec,
  /// unreadable/corrupt snapshot, delta-chain or fingerprint mismatch,
  /// live pairing rejected — returns a Status prefixed with the tenant
  /// name and registers nothing. Duplicate names are errors.
  Status Attach(const TenantSpec& spec);

  /// Attaches every tenant of a manifest, stopping at the first failure
  /// (already-attached tenants from earlier lines stay attached).
  Status AttachManifest(const RegistryManifest& manifest);

  /// Unregisters a tenant. Its engine is dropped from the budget
  /// immediately; a Lease still holding it keeps the state alive (and
  /// answering) until released.
  Status Detach(const std::string& name);

  /// Acquires a pinned lease on a tenant's engine, lazily re-loading it
  /// if it was evicted. The tenant cannot be evicted while the lease is
  /// alive. Re-load failures are per-tenant Statuses; the tenant stays
  /// attached for a later retry.
  StatusOr<Lease> Acquire(const std::string& name);

  /// Attached tenant names, sorted.
  std::vector<std::string> TenantNames() const;

  StatusOr<TenantStats> Stats(const std::string& name) const;

  /// Sum of resident engine estimates currently accounted to the budget.
  std::int64_t ResidentBytes() const;

  const RegistryOptions& options() const { return options_; }

 private:
  /// Everything resident for one loaded tenant. Held by shared_ptr so an
  /// in-flight Lease outlives Detach; never mutated structurally after
  /// construction (the engine handles its own update swaps).
  struct Resident {
    Resident(SnapshotData snapshot, const QueryEngineOptions& options,
             std::int64_t bytes_estimate)
        : engine(std::move(snapshot), options), bytes(bytes_estimate) {}
    QueryEngine engine;
    std::unique_ptr<LiveUpdater> updater;  // null for read-only tenants
    const std::int64_t bytes;
    std::atomic<std::int64_t> pins{0};
    std::atomic<bool> dirty{false};
  };

  struct Tenant {
    TenantSpec spec;
    std::shared_ptr<Resident> resident;  // null = evicted
    std::int64_t loads = 0;
    std::int64_t evictions = 0;
    std::int64_t hits = 0;
    std::int64_t updates = 0;
    std::uint64_t last_used = 0;
    /// Cache counters of engines already evicted (gauges excluded).
    LruCacheStats retired_cache;
  };

  static StatusOr<std::shared_ptr<Resident>> LoadResident(
      const TenantSpec& spec, const RegistryOptions& options);

  /// Drops LRU idle engines until the budget holds (or nothing idle is
  /// left). Caller holds mutex_.
  void EvictLocked();
  /// Takes mutex_ and evicts; run by a releasing Lease so an overshoot
  /// tolerated while pinned is reclaimed as soon as the pin drops, not
  /// only at the next Attach/Acquire.
  void EnforceBudget();
  void MarkUpdated(const std::string& name,
                   const std::shared_ptr<Resident>& resident);

  const RegistryOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Tenant> tenants_;
  std::int64_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;  // deterministic LRU clock

  friend class Lease;
};

/// A pinned reference to one tenant's serving surface. Movable, not
/// copyable; releasing (destruction) unpins. The engine and updater
/// pointers stay valid for the lease's lifetime even across a concurrent
/// Detach or (impossible while pinned, but for clarity) eviction.
class SnapshotRegistry::Lease {
 public:
  Lease(Lease&& other) noexcept;
  Lease& operator=(Lease&& other) noexcept;
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease();

  QueryEngine& engine() { return resident_->engine; }
  const QueryEngine& engine() const { return resident_->engine; }
  /// Null for read-only tenants.
  LiveUpdater* updater() { return resident_->updater.get(); }

  /// Marks the leased state dirty after an APPLIED update batch: the
  /// tenant becomes unevictable (its in-memory state is now ahead of its
  /// backing files) and the per-tenant update counter advances.
  void MarkUpdated();

 private:
  Lease(SnapshotRegistry* registry, std::string name,
        std::shared_ptr<Resident> resident)
      : registry_(registry),
        name_(std::move(name)),
        resident_(std::move(resident)) {}

  void Release();

  SnapshotRegistry* registry_ = nullptr;
  std::string name_;
  std::shared_ptr<Resident> resident_;

  friend class SnapshotRegistry;
};

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_SNAPSHOT_REGISTRY_H_
