// SnapshotRegistry: one process, many graphs — the multi-tenant layer of
// the serving stack.
//
// PR 3/4 made a single snapshot loadable, servable and live-updatable;
// this module lifts that to the operating mode production serving assumes
// (and the ROADMAP names as the next serving step): a registry of named
// TENANTS, each a (snapshot [+ delta chain] [+ graph for live updates])
// triple resolved through the existing fingerprint pairing. The routed
// request loop (`<tenant>:<verb> ...`, request_loop.h) resolves every
// line through this registry.
//
// Residency and eviction. Attach loads a tenant eagerly, so a corrupt or
// mismatched backing file surfaces as a per-tenant Status at attach time
// while every other tenant keeps serving. Loaded engines are accounted
// against an optional byte budget; when the budget is exceeded the
// registry evicts least-recently-used IDLE engines. Three states are
// never evicted:
//
//   * pinned    — a Lease is alive (a batch is in flight). RunBatch never
//                 loses its state mid-batch; the budget is best-effort
//                 while everything is pinned, and the overshoot is
//                 reclaimed as soon as a lease releases (not just at the
//                 next attach/acquire).
//   * dirty     — updates were applied that exist nowhere on disk;
//                 evicting would silently roll the tenant back.
//   * detached-but-leased — Detach drops the registry's reference, but a
//                 live Lease keeps the engine alive until it is released.
//
// An evicted tenant stays attached: the next Acquire lazily re-loads it
// from its backing files, and (for clean tenants) the re-loaded state
// answers byte-identically to the never-evicted one — the property
// tests/snapshot_registry_test.cc pins. A re-load failure (file corrupted
// since attach) is again a per-tenant Status; the tenant remains attached
// and recovers on the next Acquire once the file does.
//
// Locking. One mutex guards the tenant table — the ADMIN plane
// (attach/detach/acquire/stats). Query execution happens on leased
// engines outside that lock, and so does the lazy re-load itself: an
// Acquire that finds its tenant evicted plants a per-tenant loading
// latch, drops the mutex, loads from disk, and re-takes the mutex only
// to install the result. Concurrent Acquires of the same tenant coalesce
// onto that latch; Acquires of OTHER tenants (and all admin calls) run
// in the meantime, so one tenant's slow disk never head-of-line-blocks
// the rest of the registry. Per-engine concurrency is the QueryEngine's
// own affair.
#ifndef NUCLEUS_SERVE_SNAPSHOT_REGISTRY_H_
#define NUCLEUS_SERVE_SNAPSHOT_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nucleus/serve/live_update.h"
#include "nucleus/serve/lru_cache.h"
#include "nucleus/serve/query_engine.h"
#include "nucleus/store/manifest.h"
#include "nucleus/store/snapshot.h"
#include "nucleus/store/snapshot_source.h"
#include "nucleus/util/mutex.h"
#include "nucleus/util/status.h"

namespace nucleus {

struct RegistryOptions {
  /// Total resident-engine HEAP budget in bytes; 0 = unlimited. Enforced
  /// by LRU eviction of idle engines (see file comment for what "idle"
  /// excludes), so the actual footprint can exceed the budget while every
  /// resident engine is pinned or dirty. Mapped bytes (mmap tenants) are
  /// tracked separately and do NOT count against this budget — the kernel
  /// reclaims mapped pages under pressure on its own; evicting an mmap
  /// tenant just unmaps the file.
  std::int64_t memory_budget_bytes = 0;
  /// How read-only tenants load their snapshot: kHeap materializes
  /// everything (v1 semantics, any snapshot version); kMmap serves v2
  /// files zero-copy from a private read-only mapping (a v1 file falls
  /// back to heap). Live tenants (a graph is paired) always load heap —
  /// chain resolution and the incremental maintainer need materialized
  /// state.
  SnapshotMemoryMode memory_mode = SnapshotMemoryMode::kHeap;
  /// Per-engine member-cache shape (each tenant gets its own cache).
  QueryEngineOptions engine;
  /// Test seam: invoked (with the tenant name) at the start of every
  /// engine load — eager attach loads AND lazy re-loads — from the
  /// loading thread. Lazy re-loads run it OUTSIDE the registry mutex, so
  /// a hook that blocks lets tests hold one tenant's load open while
  /// proving other tenants keep serving. Must not call back into the
  /// registry for attach loads (those still hold the mutex).
  std::function<void(const std::string&)> load_hook;
};

/// Telemetry for one tenant, cumulative across evictions and re-loads.
struct TenantStats {
  bool resident = false;
  bool live = false;   // graph paired: the update verb is enabled
  bool dirty = false;  // unpersisted updates applied (never evicted)
  std::int64_t loads = 0;      // attach + lazy re-loads
  std::int64_t evictions = 0;  // budget-driven engine drops
  std::int64_t hits = 0;       // Acquires served from a resident engine
  std::int64_t updates = 0;    // applied update batches
  std::int64_t pins = 0;       // currently live Leases
  /// Bytes charged against the registry budget (heap + live state);
  /// 0 when evicted.
  std::int64_t resident_bytes = 0;
  /// The budget charge split by residency kind: `heap_bytes` is malloc'd
  /// state (everything for a heap tenant; the engine shell + live state
  /// for an mmap tenant — the member cache's share is in `cache.bytes`),
  /// `mapped_bytes` is the mmap'd snapshot file (kernel-reclaimable,
  /// outside the budget). Both 0 when evicted.
  std::int64_t heap_bytes = 0;
  std::int64_t mapped_bytes = 0;
  /// Per-tenant member-cache telemetry: the resident engine's counters
  /// plus everything accumulated from engines this tenant already
  /// retired — the per-tenant dimension of LruCacheStats.
  LruCacheStats cache;
};

/// Registry-wide telemetry: the cross-tenant dimension the `stats` admin
/// verb exports next to the per-tenant TenantStats rows.
struct RegistrySummary {
  std::int64_t tenants = 0;
  std::int64_t resident_bytes = 0;
  /// Sum of resident tenants' mapped snapshot bytes (mmap tenants only;
  /// not charged against the budget — see RegistryOptions).
  std::int64_t mapped_bytes = 0;
  std::int64_t budget_bytes = 0;
  std::int64_t detaches = 0;  // completed Detach calls
  /// Cache counters folded out of detached tenants (their engines AND
  /// whatever those tenants had already retired via eviction) — detaching
  /// moves a tenant's counters here instead of dropping them.
  LruCacheStats detached_cache;
};

/// Rough resident footprint of a heap-loaded snapshot (lambdas,
/// hierarchy, jump tables), used for budget accounting. Exposed so tests
/// and benches can size eviction budgets relative to real tenants.
/// Delegates to EstimateSnapshotHeapBytes (store/snapshot_source.h).
std::int64_t EstimateResidentBytes(const SnapshotData& snapshot);

class SnapshotRegistry;

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Publishes the registry's point-in-time per-tenant gauges into `m`:
/// nucleus_registry_resident_bytes{tenant}, _mapped_bytes{tenant},
/// nucleus_cache_hit_ratio{tenant}, plus the registry-wide tenant count
/// and budget. Called at scrape time (the `metrics` verb and the
/// --metrics-port exposition), not on the serving hot path.
void PublishRegistryMetrics(const SnapshotRegistry& registry,
                            obs::MetricsRegistry& m);

class SnapshotRegistry {
 public:
  class Lease;

  explicit SnapshotRegistry(const RegistryOptions& options = {});

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Registers and eagerly loads a tenant. Any failure — invalid spec,
  /// unreadable/corrupt snapshot, delta-chain or fingerprint mismatch,
  /// live pairing rejected — returns a Status prefixed with the tenant
  /// name and registers nothing. Duplicate names are errors.
  Status Attach(const TenantSpec& spec) EXCLUDES(mutex_);

  /// Attaches every tenant of a manifest ATOMICALLY: on the first failure
  /// the tenants this call already attached are rolled back (detached),
  /// and the returned Status names the failing tenant. A failed
  /// `--registry` startup therefore leaves the registry exactly as it
  /// found it.
  Status AttachManifest(const RegistryManifest& manifest) EXCLUDES(mutex_);

  /// Unregisters a tenant. Its engine is dropped from the budget
  /// immediately; a Lease still holding it keeps the state alive (and
  /// answering) until released. A DIRTY live tenant (updates applied that
  /// exist nowhere on disk) is persisted first — every pending delta
  /// record goes next to the snapshot and the current graph next to the
  /// tenant's graph file (paths reported via `persisted`) — so detach
  /// never silently discards applied updates. If persistence is
  /// impossible (IO failure, or dirty state with no recorded delta
  /// batches) the detach is REFUSED and the tenant stays attached, unless
  /// `force` is set, which discards the unpersisted state deliberately.
  /// The detached tenant's cache counters (resident engine + already
  /// retired) fold into Summary().detached_cache instead of vanishing.
  Status Detach(const std::string& name, bool force = false,
                std::vector<std::string>* persisted = nullptr)
      EXCLUDES(mutex_);

  /// Acquires a pinned lease on a tenant's engine, lazily re-loading it
  /// if it was evicted. The tenant cannot be evicted while the lease is
  /// alive. Re-load failures are per-tenant Statuses; the tenant stays
  /// attached for a later retry.
  ///
  /// The re-load itself runs OUTSIDE the registry mutex behind a
  /// per-tenant loading latch: resident tenants keep serving while one
  /// tenant loads, two tenants load concurrently, and concurrent Acquires
  /// of the SAME loading tenant coalesce onto the one in-flight load
  /// (each still reporting a failure individually, leaving the tenant
  /// retryable).
  StatusOr<Lease> Acquire(const std::string& name) EXCLUDES(mutex_);

  /// Attached tenant names, sorted.
  std::vector<std::string> TenantNames() const EXCLUDES(mutex_);

  StatusOr<TenantStats> Stats(const std::string& name) const
      EXCLUDES(mutex_);

  /// Registry-wide counters (see RegistrySummary).
  RegistrySummary Summary() const EXCLUDES(mutex_);

  /// Sum of resident engine estimates currently accounted to the budget.
  std::int64_t ResidentBytes() const EXCLUDES(mutex_);

  const RegistryOptions& options() const { return options_; }

 private:
  /// Everything resident for one loaded tenant. Held by shared_ptr so an
  /// in-flight Lease outlives Detach; never mutated structurally after
  /// construction (the engine handles its own update swaps).
  struct Resident {
    Resident(const SnapshotRegistry* owner_in,
             std::unique_ptr<QueryEngine> engine_in,
             std::int64_t heap_bytes_in, std::int64_t mapped_bytes_in)
        : owner(owner_in),
          engine(std::move(engine_in)),
          heap_bytes(heap_bytes_in),
          mapped_bytes(mapped_bytes_in) {}
    /// The owning registry — referenced only by the lock-order
    /// annotation on pending_mutex below (the registry that loaded a
    /// resident is the one whose mutex_ sits above it).
    const SnapshotRegistry* const owner;
    std::unique_ptr<QueryEngine> engine;  // never null
    std::unique_ptr<LiveUpdater> updater;  // null for read-only tenants
    /// Heap bytes charged against the budget (engine estimate + live
    /// state for live tenants).
    const std::int64_t heap_bytes;
    /// Mapped snapshot bytes (mmap tenants; 0 for heap). Dropping the
    /// resident unmaps the file — eviction of an mmap tenant IS munmap.
    const std::int64_t mapped_bytes;
    std::atomic<std::int64_t> pins{0};
    std::atomic<bool> dirty{false};
    /// Applied update batches. Lives on the resident (not the Tenant row)
    /// so MarkUpdated needs no registry lock — which keeps the lock order
    /// mutex_ -> apply_mutex -> pending_mutex acyclic (see
    /// PersistDirtyLocked). Updates always dirty a resident and dirty
    /// residents are never evicted, so the count survives as long as it
    /// is nonzero.
    std::atomic<std::int64_t> updates{0};
    /// Applied-but-unpersisted delta records, in application order — what
    /// Detach writes out for a dirty tenant. The mutex also guards the
    /// dirty flag's transitions (updates happen on leased engines outside
    /// the registry lock), so a persist's clear and a concurrent mark
    /// never interleave into a dirty=false state with deltas queued.
    ///
    /// Bottom of the registry's lock order: the ACQUIRED_AFTER edges
    /// state mutex_ -> apply_mutex -> pending_mutex in the type system
    /// (checked under -Wthread-safety-beta; see PersistDirtyLocked for
    /// the one path that holds all three).
    Mutex pending_mutex ACQUIRED_AFTER(owner->mutex_,
                                       updater->apply_mutex());
    std::vector<DeltaData> pending_deltas GUARDED_BY(pending_mutex);
  };

  /// One in-flight lazy re-load. `done`/`status` are guarded by the
  /// registry mutex and signalled through load_cv_; every Acquire that
  /// coalesced onto this load reads its own copy of the outcome.
  struct LoadState {
    bool done = false;
    Status status = Status::Ok();
  };

  struct Tenant {
    TenantSpec spec;
    std::shared_ptr<Resident> resident;  // null = evicted
    std::shared_ptr<LoadState> loading;  // non-null = re-load in flight
    std::int64_t loads = 0;
    std::int64_t evictions = 0;
    std::int64_t hits = 0;
    std::uint64_t last_used = 0;
    /// Cache counters of engines already evicted (gauges excluded).
    LruCacheStats retired_cache;
  };

  /// LoadResident wraps LoadResidentImpl (the actual disk work) with the
  /// nucleus_registry_load_us{tenant} histogram + load/failure counters.
  static StatusOr<std::shared_ptr<Resident>> LoadResident(
      const SnapshotRegistry* self, const TenantSpec& spec,
      const RegistryOptions& options);
  static StatusOr<std::shared_ptr<Resident>> LoadResidentImpl(
      const SnapshotRegistry* self, const TenantSpec& spec,
      const RegistryOptions& options);

  /// Drops LRU idle engines until the budget holds (or nothing idle is
  /// left).
  void EvictLocked() REQUIRES(mutex_);
  /// Takes mutex_ and evicts; run by a releasing Lease so an overshoot
  /// tolerated while pinned is reclaimed as soon as the pin drops, not
  /// only at the next Attach/Acquire.
  void EnforceBudget() EXCLUDES(mutex_);
  static void MarkUpdated(const std::shared_ptr<Resident>& resident,
                          const DeltaData* delta);
  /// Writes a dirty tenant's pending deltas + current graph next to its
  /// backing files; clears the dirty state on success. Runs under mutex_
  /// (detach is an admin-plane operation; the IO cost mirrors the eager
  /// load Attach already performs under the lock). Holds the updater's
  /// apply mutex for the duration, so no update batch can land between
  /// the drain and the clear and be lost.
  Status PersistDirtyLocked(Tenant& tenant,
                            std::vector<std::string>* persisted)
      REQUIRES(mutex_);

  const RegistryOptions options_;
  mutable Mutex mutex_;
  /// Wakes Acquires that coalesced onto an in-flight lazy re-load.
  std::condition_variable load_cv_;
  std::map<std::string, Tenant> tenants_ GUARDED_BY(mutex_);
  // Charged (heap) bytes.
  std::int64_t resident_bytes_ GUARDED_BY(mutex_) = 0;
  // Resident mmap tenants' file bytes.
  std::int64_t mapped_bytes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t tick_ GUARDED_BY(mutex_) = 0;  // deterministic LRU clock
  std::int64_t detaches_ GUARDED_BY(mutex_) = 0;
  LruCacheStats detached_cache_ GUARDED_BY(mutex_);

  friend class Lease;
};

/// A pinned reference to one tenant's serving surface. Movable, not
/// copyable; releasing (destruction) unpins. The engine and updater
/// pointers stay valid for the lease's lifetime even across a concurrent
/// Detach or (impossible while pinned, but for clarity) eviction.
class SnapshotRegistry::Lease {
 public:
  Lease(Lease&& other) noexcept;
  Lease& operator=(Lease&& other) noexcept;
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease();

  QueryEngine& engine() { return *resident_->engine; }
  const QueryEngine& engine() const { return *resident_->engine; }
  /// Null for read-only tenants.
  LiveUpdater* updater() { return resident_->updater.get(); }

  /// Marks the leased state dirty after an APPLIED update batch: the
  /// tenant becomes unevictable (its in-memory state is now ahead of its
  /// backing files) and the per-tenant update counter advances. The
  /// overload taking the batch's delta record also queues it for
  /// persistence, which is what lets Detach write the dirty state out
  /// instead of refusing; the zero-argument form only marks dirty (such a
  /// tenant can only be force-detached).
  void MarkUpdated();
  void MarkUpdated(const DeltaData& delta);

 private:
  Lease(SnapshotRegistry* registry, std::string name,
        std::shared_ptr<Resident> resident)
      : registry_(registry),
        name_(std::move(name)),
        resident_(std::move(resident)) {}

  void Release();

  SnapshotRegistry* registry_ = nullptr;
  std::string name_;
  std::shared_ptr<Resident> resident_;

  friend class SnapshotRegistry;
};

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_SNAPSHOT_REGISTRY_H_
