// Line-oriented request/response protocol over a QueryEngine — the
// transport `nucleus_cli serve` speaks on stdin/stdout (or files), designed
// so a snapshot-backed process can be driven by anything that writes lines
// and reads JSON.
//
// Requests, one per line (blank lines and '#' comments are skipped).
// <u> and <v> are K_r ids of the snapshot's family — vertex ids for
// (1,2), EdgeIndex edge ids for (2,3), TriangleIndex triangle ids for
// (3,4); <node> is a hierarchy node id:
//
//   lambda <u>            peeling number of the K_r u
//   nucleus <u> <k>       the k-(r,s) nucleus containing u
//   common <u> <v>        smallest common nucleus of u and v
//   level <u> <v>         largest k with u, v in a common k-nucleus
//   top <k>               the k densest nuclei
//   members <node>        member K_r ids of one hierarchy node's subtree
//   update <u> <v> <+|->  insert (+) or remove (-) the undirected edge
//                         {u, v} and re-serve the edited graph — only on a
//                         (1,2) session started with the graph at hand
//                         (`serve --input`); requires a LiveUpdater
//
// Responses: exactly one JSON object per request line, in request order,
// e.g. {"query": "common", "u": 3, "v": 17, "found": true, "node": 5,
// "k": 4, "size": 128}. Malformed requests produce
// {"error": "<message>", "line": <n>} without stopping the loop.
//
// Requests are batched and answered concurrently over the shared
// ThreadPool; ordering is restored before emission, so output is
// byte-identical for every thread count. An `update` line is a
// sequencing point: the pending batch is flushed (answered against the
// pre-update state), the edit is applied synchronously, and every later
// line sees the edited graph — which keeps sessions with updates
// deterministic at any thread count and batch size too.
//
// ROUTED sessions (`nucleus_cli serve --registry`) extend the grammar to
// many tenants in one process. Every request line is prefixed with the
// tenant it routes to, and three unprefixed ADMIN verbs manage the
// registry itself:
//
//   <tenant>:<verb> <args...>     any verb above, routed — e.g.
//                                 `web:lambda 3`, `social:update 1 2 +`
//   attach <name> snapshot=<path> [deltas=<p1,p2>] [graph=<path>]
//                                 register + load a tenant (same key=value
//                                 grammar as the store/manifest.h format)
//   detach <name> [force]         unregister a tenant; a dirty live
//                                 tenant is persisted first (or the
//                                 detach refuses) unless `force` discards
//   tenants                       list attached tenants with stats
//   stats                         one JSON object: per-tenant TenantStats
//                                 plus registry / server counters
//   metrics [text]                the process-wide metrics registry as one
//                                 JSON tree; `metrics text` embeds the
//                                 Prometheus plain-text exposition instead
//                                 (works on every session shape)
//   shutdown                      acknowledge, then end the session (over
//                                 TCP: drain the whole server)
//
// The single-tenant contract holds PER TENANT: exactly one JSON object
// per request line, in input order, byte-identical at every thread count
// and batch size; successful responses carry no tenant field, so a
// tenant's slice of a routed transcript — its successfully parsed and
// resolved lines — is byte-identical to replaying those lines against a
// dedicated single-tenant session (error objects embed the GLOBAL line
// number of the routed session, so they diagnose the session they
// occurred in rather than matching a replay). Updates and admin verbs
// are global sequencing points. Resolution failures (unknown tenant,
// evicted tenant whose backing file went bad) are structured per-line
// JSON errors; the loop never stops and other tenants never notice.
#ifndef NUCLEUS_SERVE_REQUEST_LOOP_H_
#define NUCLEUS_SERVE_REQUEST_LOOP_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nucleus/core/incremental_core.h"
#include "nucleus/obs/metrics.h"
#include "nucleus/obs/trace.h"
#include "nucleus/parallel/parallel_config.h"
#include "nucleus/parallel/thread_pool.h"
#include "nucleus/serve/live_update.h"
#include "nucleus/serve/query_engine.h"
#include "nucleus/util/status.h"

namespace nucleus {

class SnapshotRegistry;

struct ServeOptions {
  ParallelConfig parallel;
  /// Lines read before a batch is dispatched to the pool.
  std::int64_t batch_size = 256;
  /// Extra per-server counters for the `stats` verb: when set, its return
  /// (a JSON object body, e.g. `{"connections": 3}`) is embedded as the
  /// response's "server" field. Installed by the TCP tier; unset on
  /// stdio sessions, whose stats responses carry no "server" field.
  std::function<std::string()> server_stats_json;
  /// Sampled JSON-lines trace sink (parse -> queue-wait -> execute ->
  /// flush per request line); null = no tracing. The TCP tier shares one
  /// log across every connection worker. Traces never touch the response
  /// stream, so transcripts stay byte-identical with tracing on.
  std::shared_ptr<obs::TraceLog> trace_log;
  /// Metrics registry the session's instrumentation writes to; null =
  /// the process-global registry. Tests pass their own for isolation.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ServeStats {
  std::int64_t requests = 0;
  std::int64_t errors = 0;   // parse failures + invalid queries/updates
  std::int64_t batches = 0;
  std::int64_t updates = 0;  // update lines applied
  std::int64_t admin = 0;    // admin verbs executed
};

/// One parsed protocol line: a query, or an edge update.
struct ServeRequest {
  bool is_update = false;
  QueryEngine::Query query;  // when !is_update
  EdgeEdit edit;             // when is_update
};

/// One parsed line of the ROUTED grammar: an admin verb, or a request
/// with its tenant prefix ("" = unrouted).
struct RoutedServeLine {
  enum class Admin : std::int32_t {
    kNone,
    kAttach,
    kDetach,
    kTenants,
    kStats,
    kMetrics,
    kShutdown,
  };
  std::string tenant;                  // empty = unrouted
  Admin admin = Admin::kNone;
  std::vector<std::string> admin_args; // raw tokens after the admin verb
  ServeRequest request;                // when admin == kNone
};

/// Parses one request line (any verb, including `update`). Strict:
/// unknown verbs, wrong arity and non-numeric / trailing-garbage
/// arguments all fail.
StatusOr<ServeRequest> ParseServeLine(const std::string& line);

/// Parses one line of the routed grammar: `tenant:verb args...`, an admin
/// verb, or an unrouted request line (tenant left empty — the session
/// decides whether unrouted lines are legal). Tenant names are validated
/// against the manifest charset; an empty tenant or verb around ':' is an
/// error.
StatusOr<RoutedServeLine> ParseRoutedServeLine(const std::string& line);

/// Parses one QUERY line; the `update` verb is rejected here (callers that
/// serve updates use ParseServeLine).
StatusOr<QueryEngine::Query> ParseRequestLine(const std::string& line);

/// Serializes one answered query as a single-line JSON object.
std::string ResponseToJson(const QueryEngine::Query& query,
                           const QueryEngine::Response& response);

/// Serializes one applied update as a single-line JSON object:
/// {"query": "update", "u": .., "v": .., "op": "+", "applied": true,
///  "touched": .., "max_lambda": ..}. `applied` is false for no-op edits
/// (inserting an existing edge, removing a missing one).
std::string UpdateToJson(const EdgeEdit& edit, const CoreDeltaReport& report);

/// One resolved serving surface: the engine (and optional updater) a
/// request line routes to. `pin` keeps whatever owns the pointers alive —
/// and, for registry tenants, pinned against eviction — for as long as
/// the session object is held; `on_update` (optional) tells the owner an
/// update batch was APPLIED (registry tenants become dirty/unevictable).
struct ServeSession {
  QueryEngine* engine = nullptr;
  LiveUpdater* updater = nullptr;       // null = read-only
  /// Called with each APPLIED batch's durable delta record, so the owner
  /// can both mark the state dirty and queue the record for persistence
  /// (registry tenants: a later Detach writes the queue out).
  std::function<void(const DeltaData&)> on_update;
  std::shared_ptr<void> pin;
};

/// Maps a tenant name ("" = unrouted line) to its serving surface. The
/// serve loop holds every session it resolved only for the duration of
/// one batch (a batch is pinned, a session is not cached across flushes),
/// and turns resolution failures into per-line JSON errors. This is the
/// seam the single-tenant wrappers and the registry loop share: the loop
/// itself no longer hard-binds one engine.
using ServeSessionResolver =
    std::function<StatusOr<ServeSession>(const std::string& tenant)>;

/// Push-driven core of the serve loop: one protocol session whose lines
/// arrive one call at a time instead of from a stream. This is the seam
/// the stream loops AND the TCP tier share — a connection worker feeds
/// socket lines to ProcessLine and the transport-level rejections
/// (admission-queue overflow, oversized line) to RejectLine, and the
/// session stays byte-identical to the same lines served over stdio.
///
/// Lines are numbered in arrival order (ProcessLine and RejectLine both
/// advance the counter, so rejection errors carry the right "line"
/// field). Batching follows options.batch_size exactly like the stream
/// loop; Flush() additionally forces the pending batch out early —
/// content is batch-invariant, so transports flush whenever input runs
/// dry to keep interactive latency bounded. After a `shutdown` verb
/// (shutdown_requested()) further lines are ignored, mirroring the
/// stream loop, which stops reading. Not thread-safe; one processor per
/// session.
class RequestProcessor {
 public:
  RequestProcessor(ServeSessionResolver resolver, SnapshotRegistry* registry,
                   std::ostream& out, const ServeOptions& options = {});
  ~RequestProcessor();

  RequestProcessor(const RequestProcessor&) = delete;
  RequestProcessor& operator=(const RequestProcessor&) = delete;

  /// Feeds one protocol line (without its trailing newline).
  void ProcessLine(const std::string& line);
  /// Counts one line WITHOUT processing its text and answers it with
  /// `status` as a structured error — the back-pressure path.
  void RejectLine(const Status& status);
  /// Runs and emits the pending batch now, and flushes `out`.
  void Flush();
  /// Final Flush at end of session.
  void Finish();

  bool shutdown_requested() const { return shutdown_; }
  const ServeStats& stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One pending request line. `group` indexes the per-tenant batch the
  /// query joined; parse/resolve failures carry the error instead. The
  /// timing fields feed the latency histograms and trace spans; they are
  /// only populated when instrumentation is live (see timing_live()).
  struct Item {
    std::int64_t line_no = 0;
    Status error;
    std::size_t group = 0;
    std::int64_t query_index = -1;
    const char* verb = "";       // metrics/trace label; "" for error lines
    std::int64_t parse_us = 0;
    Clock::time_point ready{};   // parsed and queued, awaiting its batch
  };
  /// One tenant's slice of the pending batch. Holding the session here is
  /// the pin: the engine cannot be evicted (or die under a Detach) while
  /// its slice is waiting to run.
  struct VerbMetrics {
    obs::Counter* requests = nullptr;
    obs::Histogram* latency = nullptr;
  };
  struct TenantMetrics {
    std::array<VerbMetrics, 8> by_verb{};  // indexed by QueryKind
  };
  struct Group {
    ServeSession session;
    std::vector<QueryEngine::Query> queries;
    std::string tenant;
    TenantMetrics* metrics = nullptr;   // owned by tenant_metrics_
    std::int64_t exec_us = 0;           // this slice's RunBatch wall time
    Clock::time_point exec_start{};
  };
  /// True when per-line clocks must run: tracing is on, or metrics are
  /// globally enabled. With both off, ProcessLine takes zero clock reads.
  bool timing_live() const {
    return options_.trace_log != nullptr || obs::MetricsEnabled();
  }

  void EmitError(const Status& status, std::int64_t line);
  void FlushBatch();
  StatusOr<std::size_t> GroupFor(const std::string& tenant);
  Status ApplyUpdate(const std::string& tenant, const EdgeEdit& edit);
  Status RunAdmin(const RoutedServeLine& parsed);
  void PublishScrapeGauges();
  /// Records one span for a line answered inline (admin / update / the
  /// sequencing-point paths), where exec is the verb body itself.
  void TraceInline(const char* verb, const std::string& tenant, bool error,
                   std::int64_t parse_us, std::int64_t exec_us);

  const ServeSessionResolver resolver_;
  SnapshotRegistry* const registry_;
  std::ostream& out_;
  const ServeOptions options_;
  ThreadPool pool_;
  const std::int64_t batch_size_;
  obs::MetricsRegistry* const metrics_;
  obs::Counter* const parse_errors_;
  obs::Counter* const resolve_errors_;
  obs::Counter* const query_errors_;
  obs::Counter* const update_errors_;
  obs::Counter* const admin_errors_;
  obs::Counter* const reject_errors_;
  ServeStats stats_;
  std::vector<Item> items_;
  std::vector<Group> groups_;
  std::map<std::string, std::size_t> group_of_tenant_;
  std::map<std::string, TenantMetrics> tenant_metrics_;
  std::int64_t line_no_ = 0;
  bool shutdown_ = false;
};

/// The resolver behind single-snapshot sessions: unrouted lines bind to
/// `engine` (+ optional `updater`); routed lines are errors pointing at
/// --registry. Both referents must outlive the resolver. Shared by
/// ServeRequests and the TCP tier's single-snapshot mode.
ServeSessionResolver MakeEngineResolver(QueryEngine& engine,
                                        LiveUpdater* updater);

/// The resolver behind routed multi-tenant sessions: tenant names resolve
/// through SnapshotRegistry::Acquire (the lease is the batch pin; applied
/// updates are marked + queued for persistence on the lease), unrouted
/// lines are errors. `registry` must outlive the resolver. Shared by
/// ServeRegistryRequests and the TCP tier's registry mode.
ServeSessionResolver MakeRegistryResolver(SnapshotRegistry& registry);

/// Core loop: reads request lines from `in` until EOF (or a `shutdown`
/// verb), answers them on `out` (one JSON line each, input order),
/// resolving every line's tenant through `resolver` and batching per
/// tenant over a ThreadPool sized by `options.parallel`. Admin verbs
/// require a non-null `registry`; without one they are answered with
/// error objects.
ServeStats ServeResolvedRequests(const ServeSessionResolver& resolver,
                                 SnapshotRegistry* registry,
                                 std::istream& in, std::ostream& out,
                                 const ServeOptions& options = {});

/// Single-tenant session over one engine (unrouted lines only; routed
/// lines are answered with an error object pointing at --registry). With
/// a non-null `updater` the session is mutable: `update` lines go through
/// the updater and swap the engine's state; with a null `updater` they
/// are answered with an error object.
ServeStats ServeRequests(QueryEngine& engine, LiveUpdater* updater,
                         std::istream& in, std::ostream& out,
                         const ServeOptions& options = {});

/// Read-only session (no update support) over a const engine.
ServeStats ServeRequests(const QueryEngine& engine, std::istream& in,
                         std::ostream& out, const ServeOptions& options = {});

/// Routed multi-tenant session over a registry: `tenant:verb` lines
/// resolve through SnapshotRegistry::Acquire (pinned per batch, lazily
/// re-loaded after eviction), admin verbs mutate the registry, and
/// unrouted request lines are errors.
ServeStats ServeRegistryRequests(SnapshotRegistry& registry,
                                 std::istream& in, std::ostream& out,
                                 const ServeOptions& options = {});

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_REQUEST_LOOP_H_
