// Line-oriented request/response protocol over a QueryEngine — the
// transport `nucleus_cli serve` speaks on stdin/stdout (or files), designed
// so a snapshot-backed process can be driven by anything that writes lines
// and reads JSON.
//
// Requests, one per line (blank lines and '#' comments are skipped).
// <u> and <v> are K_r ids of the snapshot's family — vertex ids for
// (1,2), EdgeIndex edge ids for (2,3), TriangleIndex triangle ids for
// (3,4); <node> is a hierarchy node id:
//
//   lambda <u>            peeling number of the K_r u
//   nucleus <u> <k>       the k-(r,s) nucleus containing u
//   common <u> <v>        smallest common nucleus of u and v
//   level <u> <v>         largest k with u, v in a common k-nucleus
//   top <k>               the k densest nuclei
//   members <node>        member K_r ids of one hierarchy node's subtree
//
// Responses: exactly one JSON object per request line, in request order,
// e.g. {"query": "common", "u": 3, "v": 17, "found": true, "node": 5,
// "k": 4, "size": 128}. Malformed requests produce
// {"error": "<message>", "line": <n>} without stopping the loop.
//
// Requests are batched and answered concurrently over the shared
// ThreadPool; ordering is restored before emission, so output is
// byte-identical for every thread count.
#ifndef NUCLEUS_SERVE_REQUEST_LOOP_H_
#define NUCLEUS_SERVE_REQUEST_LOOP_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "nucleus/parallel/parallel_config.h"
#include "nucleus/serve/query_engine.h"
#include "nucleus/util/status.h"

namespace nucleus {

struct ServeOptions {
  ParallelConfig parallel;
  /// Lines read before a batch is dispatched to the pool.
  std::int64_t batch_size = 256;
};

struct ServeStats {
  std::int64_t requests = 0;
  std::int64_t errors = 0;  // parse failures + invalid queries
  std::int64_t batches = 0;
};

/// Parses one request line. Strict: unknown verbs, wrong arity and
/// non-numeric / trailing-garbage arguments all fail.
StatusOr<QueryEngine::Query> ParseRequestLine(const std::string& line);

/// Serializes one answered query as a single-line JSON object.
std::string ResponseToJson(const QueryEngine::Query& query,
                           const QueryEngine::Response& response);

/// Reads requests from `in` until EOF, answers them on `out` (one JSON
/// line each, input order), batching over a ThreadPool sized by
/// `options.parallel`.
ServeStats ServeRequests(const QueryEngine& engine, std::istream& in,
                         std::ostream& out, const ServeOptions& options = {});

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_REQUEST_LOOP_H_
