// Line-oriented request/response protocol over a QueryEngine — the
// transport `nucleus_cli serve` speaks on stdin/stdout (or files), designed
// so a snapshot-backed process can be driven by anything that writes lines
// and reads JSON.
//
// Requests, one per line (blank lines and '#' comments are skipped).
// <u> and <v> are K_r ids of the snapshot's family — vertex ids for
// (1,2), EdgeIndex edge ids for (2,3), TriangleIndex triangle ids for
// (3,4); <node> is a hierarchy node id:
//
//   lambda <u>            peeling number of the K_r u
//   nucleus <u> <k>       the k-(r,s) nucleus containing u
//   common <u> <v>        smallest common nucleus of u and v
//   level <u> <v>         largest k with u, v in a common k-nucleus
//   top <k>               the k densest nuclei
//   members <node>        member K_r ids of one hierarchy node's subtree
//   update <u> <v> <+|->  insert (+) or remove (-) the undirected edge
//                         {u, v} and re-serve the edited graph — only on a
//                         (1,2) session started with the graph at hand
//                         (`serve --input`); requires a LiveUpdater
//
// Responses: exactly one JSON object per request line, in request order,
// e.g. {"query": "common", "u": 3, "v": 17, "found": true, "node": 5,
// "k": 4, "size": 128}. Malformed requests produce
// {"error": "<message>", "line": <n>} without stopping the loop.
//
// Requests are batched and answered concurrently over the shared
// ThreadPool; ordering is restored before emission, so output is
// byte-identical for every thread count. An `update` line is a
// sequencing point: the pending batch is flushed (answered against the
// pre-update state), the edit is applied synchronously, and every later
// line sees the edited graph — which keeps sessions with updates
// deterministic at any thread count and batch size too.
#ifndef NUCLEUS_SERVE_REQUEST_LOOP_H_
#define NUCLEUS_SERVE_REQUEST_LOOP_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "nucleus/core/incremental_core.h"
#include "nucleus/parallel/parallel_config.h"
#include "nucleus/serve/live_update.h"
#include "nucleus/serve/query_engine.h"
#include "nucleus/util/status.h"

namespace nucleus {

struct ServeOptions {
  ParallelConfig parallel;
  /// Lines read before a batch is dispatched to the pool.
  std::int64_t batch_size = 256;
};

struct ServeStats {
  std::int64_t requests = 0;
  std::int64_t errors = 0;   // parse failures + invalid queries/updates
  std::int64_t batches = 0;
  std::int64_t updates = 0;  // update lines applied
};

/// One parsed protocol line: a query, or an edge update.
struct ServeRequest {
  bool is_update = false;
  QueryEngine::Query query;  // when !is_update
  EdgeEdit edit;             // when is_update
};

/// Parses one request line (any verb, including `update`). Strict:
/// unknown verbs, wrong arity and non-numeric / trailing-garbage
/// arguments all fail.
StatusOr<ServeRequest> ParseServeLine(const std::string& line);

/// Parses one QUERY line; the `update` verb is rejected here (callers that
/// serve updates use ParseServeLine).
StatusOr<QueryEngine::Query> ParseRequestLine(const std::string& line);

/// Serializes one answered query as a single-line JSON object.
std::string ResponseToJson(const QueryEngine::Query& query,
                           const QueryEngine::Response& response);

/// Serializes one applied update as a single-line JSON object:
/// {"query": "update", "u": .., "v": .., "op": "+", "applied": true,
///  "touched": .., "max_lambda": ..}. `applied` is false for no-op edits
/// (inserting an existing edge, removing a missing one).
std::string UpdateToJson(const EdgeEdit& edit, const CoreDeltaReport& report);

/// Reads requests from `in` until EOF, answers them on `out` (one JSON
/// line each, input order), batching over a ThreadPool sized by
/// `options.parallel`. With a non-null `updater` the session is mutable:
/// `update` lines go through the updater and swap the engine's state;
/// with a null `updater` they are answered with an error object.
ServeStats ServeRequests(QueryEngine& engine, LiveUpdater* updater,
                         std::istream& in, std::ostream& out,
                         const ServeOptions& options = {});

/// Read-only session (no update support) over a const engine.
ServeStats ServeRequests(const QueryEngine& engine, std::istream& in,
                         std::ostream& out, const ServeOptions& options = {});

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_REQUEST_LOOP_H_
