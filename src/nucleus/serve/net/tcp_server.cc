#include "nucleus/serve/net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <ostream>
#include <streambuf>
#include <utility>

#include "nucleus/util/mutex.h"

namespace nucleus {
namespace {

/// Blocking, SIGPIPE-free writes to a (possibly O_NONBLOCK) socket.
/// Workers stream responses through this; a peer that went away — or
/// that holds the socket open without reading past the write-stall
/// deadline — turns the buffer into a sink (the session still finishes
/// deterministically, its output just has nowhere to go), so a stalled
/// client can never pin its worker and wedge drain behind it.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setp(buffer_, buffer_ + sizeof(buffer_));
  }
  ~FdStreamBuf() override { FlushToFd(); }

 protected:
  int overflow(int_type ch) override {
    if (!FlushToFd()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return FlushToFd() ? 0 : -1; }

 private:
  bool FlushToFd() {
    const char* p = pbase();
    while (p < pptr()) {
      if (broken_) break;
      const ssize_t n = ::send(fd_, p, static_cast<std::size_t>(pptr() - p),
                               MSG_NOSIGNAL);
      if (n > 0) {
        p += n;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // The fd is non-blocking (it shares flags with the reader):
        // wait for writability — boundedly. The deadline restarts on
        // every send that makes progress, so only a peer that accepts
        // NOTHING for the whole window is cut off.
        struct pollfd pfd;
        pfd.fd = fd_;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        const int r = ::poll(&pfd, 1, kWriteStallMs);
        if (r > 0) continue;                    // writable (or error:
                                                // the next send reports it)
        if (r < 0 && errno == EINTR) continue;
        // Stalled past the deadline: the peer stopped reading but kept
        // the socket open. Treat it like a vanished peer.
      }
      broken_ = true;  // peer is gone; drop the rest of the session
    }
    setp(buffer_, buffer_ + sizeof(buffer_));
    return true;
  }

  /// How long one blocked write waits for the peer to drain its receive
  /// buffer before the stream is declared broken. Matches the reap
  /// pass's linger deadline: both bound how long a dead-but-open client
  /// can hold server resources.
  static constexpr int kWriteStallMs = 5000;

  int fd_;
  bool broken_ = false;
  char buffer_[16384];
};

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// The default per-connection handler: a RequestProcessor session, which
/// keeps the resolver/registry constructor byte-identical to the stdio
/// serving path.
class RequestProcessorHandler : public ConnectionHandler {
 public:
  RequestProcessorHandler(const ServeSessionResolver& resolver,
                          SnapshotRegistry* registry, std::ostream& out,
                          const ServeOptions& serve)
      : processor_(resolver, registry, out, serve) {}

  void ProcessLine(const std::string& line) override {
    processor_.ProcessLine(line);
  }
  void RejectLine(const Status& status) override {
    processor_.RejectLine(status);
  }
  void Flush() override { processor_.Flush(); }
  void Finish() override { processor_.Finish(); }
  bool shutdown_requested() const override {
    return processor_.shutdown_requested();
  }

 private:
  RequestProcessor processor_;
};

}  // namespace

/// One live connection: the IO thread owns fd/read-state and feeds the
/// queue; the worker thread drains the queue through a RequestProcessor
/// and owns all writes to the socket.
struct TcpServer::Connection {
  int fd = -1;

  // IO-thread-only read state.
  std::string inbuf;         // partial line, bounded by max_line_bytes
  bool discarding = false;   // inside an oversized line, dropping to '\n'
  bool eof_enqueued = false; // stop polling this fd for reads

  struct Item {
    enum class Kind { kLine, kReject, kEof };
    Kind kind = Kind::kLine;
    std::string text;          // kLine
    Status reject;             // kReject
    std::int64_t count = 0;    // kReject: consecutive rejected lines
    bool overflow = false;     // kReject: coalescable back-pressure drop
    // kLine admission time for the queue-wait histogram; default
    // (epoch) means metrics were off at admission — not observed.
    std::chrono::steady_clock::time_point enqueued{};
  };

  Mutex mutex;
  std::condition_variable cv;
  std::deque<Item> queue GUARDED_BY(mutex);
  // kLine items currently queued.
  std::int64_t admitted_depth GUARDED_BY(mutex) = 0;

  std::thread worker;
  std::atomic<bool> worker_done{false};

  // Linger state (IO-thread-only): after the worker half-closes, the fd
  // stays open until the client's FIN (or the deadline) so the final
  // close is never an RST racing the client's last reads.
  bool lingering = false;
  std::chrono::steady_clock::time_point linger_deadline;
};

TcpServer::TcpServer(ConnectionHandlerFactory factory,
                     TcpServerOptions options)
    : handler_factory_(std::move(factory)),
      options_(std::move(options)),
      metrics_(options_.serve.metrics != nullptr
                   ? options_.serve.metrics
                   : &obs::MetricsRegistry::Global()),
      m_accepted_(
          metrics_->GetCounter("nucleus_tcp_connections_accepted_total")),
      m_rejected_connections_(
          metrics_->GetCounter("nucleus_tcp_connections_rejected_total")),
      m_drained_(
          metrics_->GetCounter("nucleus_tcp_connections_drained_total")),
      m_accept_errors_(
          metrics_->GetCounter("nucleus_tcp_accept_errors_total")),
      m_lines_admitted_(
          metrics_->GetCounter("nucleus_tcp_lines_admitted_total")),
      m_lines_rejected_(
          metrics_->GetCounter("nucleus_tcp_lines_rejected_total")),
      m_oversized_lines_(
          metrics_->GetCounter("nucleus_tcp_oversized_lines_total")),
      m_open_(metrics_->GetGauge("nucleus_tcp_connections_open")),
      m_queue_depth_(metrics_->GetGauge("nucleus_tcp_queue_depth")),
      m_max_queue_depth_(metrics_->GetGauge("nucleus_tcp_max_queue_depth")),
      m_queue_wait_(metrics_->GetHistogram("nucleus_tcp_queue_wait_us")) {}

TcpServer::TcpServer(ServeSessionResolver resolver,
                     SnapshotRegistry* registry, TcpServerOptions options)
    : TcpServer(ConnectionHandlerFactory(), std::move(options)) {
  // The factory is installed after delegation so it can capture `this`
  // (for the live stats hook) — workers only read it after Start().
  auto shared_resolver =
      std::make_shared<ServeSessionResolver>(std::move(resolver));
  handler_factory_ =
      [this, shared_resolver,
       registry](std::ostream& out) -> std::unique_ptr<ConnectionHandler> {
    ServeOptions serve = options_.serve;
    serve.server_stats_json = [this] { return StatsJson(); };
    return std::make_unique<RequestProcessorHandler>(*shared_resolver,
                                                     registry, out, serve);
  };
}

TcpServer::~TcpServer() {
  Stop();
  // Safe only after the join inside Stop(): nothing can be writing the
  // wake pipe through this object once the IO thread is gone.
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

Status TcpServer::Start() {
  if (io_thread_.joinable()) {
    return Status::Internal("TcpServer already started");
  }
  // A failed Start (bad host, port taken) may be retried; reuse the wake
  // pipe from the previous attempt instead of leaking two fds per retry.
  if (wake_pipe_[0] < 0) {
    if (::pipe(wake_pipe_) != 0) {
      return Status::Internal("pipe() failed: " +
                              std::string(std::strerror(errno)));
    }
    SetNonBlocking(wake_pipe_[0]);
    SetNonBlocking(wake_pipe_[1]);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  const std::string host =
      options_.host.empty() ? std::string("127.0.0.1") : options_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("invalid listen address '" + host +
                                   "' (numeric IPv4 expected)");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind(" + host + ":" +
                            std::to_string(options_.port) +
                            ") failed: " + error);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed: " + error);
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  SetNonBlocking(listen_fd_);

  io_thread_ = std::thread(&TcpServer::PollLoop, this);
  return Status::Ok();
}

void TcpServer::RequestDrain() {
  // Flag + self-pipe only: callable from a signal handler and from
  // connection workers (the `shutdown` verb).
  draining_.store(true, std::memory_order_release);
  WakeIoThread();
}

void TcpServer::WakeIoThread() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void TcpServer::Wait() {
  if (io_thread_.joinable()) io_thread_.join();
}

void TcpServer::Stop() {
  if (!io_thread_.joinable()) return;
  RequestDrain();
  Wait();
}

TcpServerStats TcpServer::Stats() const {
  TcpServerStats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      rejected_connections_.load(std::memory_order_relaxed);
  stats.connections_open = open_.load(std::memory_order_relaxed);
  stats.connections_drained = drained_.load(std::memory_order_relaxed);
  stats.accept_errors = accept_errors_.load(std::memory_order_relaxed);
  stats.lines_admitted = lines_admitted_.load(std::memory_order_relaxed);
  stats.lines_rejected = lines_rejected_.load(std::memory_order_relaxed);
  stats.oversized_lines = oversized_lines_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  stats.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  stats.draining = draining_.load(std::memory_order_relaxed);
  return stats;
}

std::string TcpServer::StatsJson() const {
  const TcpServerStats stats = Stats();
  std::string json = "{";
  json += "\"connections_accepted\": " +
          std::to_string(stats.connections_accepted);
  json += ", \"connections_open\": " +
          std::to_string(stats.connections_open);
  json += ", \"connections_rejected\": " +
          std::to_string(stats.connections_rejected);
  json += ", \"connections_drained\": " +
          std::to_string(stats.connections_drained);
  json += ", \"accept_errors\": " + std::to_string(stats.accept_errors);
  json += ", \"lines_admitted\": " + std::to_string(stats.lines_admitted);
  json += ", \"lines_rejected\": " + std::to_string(stats.lines_rejected);
  json += ", \"oversized_lines\": " + std::to_string(stats.oversized_lines);
  json += ", \"queue_depth\": " + std::to_string(stats.queue_depth);
  json += ", \"max_queue_depth\": " + std::to_string(stats.max_queue_depth);
  json += ", \"queue_high_water\": " +
          std::to_string(options_.queue_high_water);
  json += ", \"draining\": ";
  json += stats.draining ? "true" : "false";
  json += "}";
  return json;
}

void TcpServer::AcceptPending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;  // backlog drained: nothing more to accept
      }
      // Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) or another
      // transient failure. poll() is level-triggered, so returning with
      // no backoff would re-enter here immediately and busy-spin while
      // fds stay exhausted. Sleeping would stall every established
      // connection's IO (this is the shared IO thread), so instead the
      // listener fd is dropped from the poll set until the deadline —
      // established connections keep being serviced, the process gets a
      // beat to shed descriptors, and the still-pending connection
      // re-triggers the re-armed listener — the listener stays alive.
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      m_accept_errors_->Increment();
      accept_backoff_until_ =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
      return;
    }
    if (open_.load(std::memory_order_relaxed) >= options_.max_connections) {
      // Over the connection cap: one structured error, then close. The
      // client gets a parseable reason instead of a silent RST.
      const std::string error =
          "{\"error\": \"server at connection limit (" +
          std::to_string(options_.max_connections) + ")\"}\n";
      [[maybe_unused]] const ssize_t n =
          ::send(fd, error.data(), error.size(), MSG_NOSIGNAL);
      ::close(fd);
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_connections_->Increment();
      continue;
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t now_open =
        open_.fetch_add(1, std::memory_order_relaxed) + 1;
    m_accepted_->Increment();
    m_open_->Set(static_cast<double>(now_open));
    Connection* raw = conn.get();
    conn->worker = std::thread(&TcpServer::WorkerLoop, this, raw);
    connections_.push_back(std::move(conn));
  }
}

void TcpServer::AdmitLine(Connection& conn, std::string line) {
  MutexLock lock(conn.mutex);
  if (conn.admitted_depth >= options_.queue_high_water) {
    // Back-pressure: the line is dropped HERE, but it still gets its
    // response slot — consecutive drops coalesce into one queue item the
    // worker expands into per-line errors, so a firehose of rejected
    // lines costs O(1) memory.
    lines_rejected_.fetch_add(1, std::memory_order_relaxed);
    m_lines_rejected_->Increment();
    if (!conn.queue.empty() && conn.queue.back().kind ==
            Connection::Item::Kind::kReject &&
        conn.queue.back().overflow) {
      ++conn.queue.back().count;
    } else {
      Connection::Item item;
      item.kind = Connection::Item::Kind::kReject;
      item.reject = Status::OutOfRange(
          "admission queue full (high water " +
          std::to_string(options_.queue_high_water) +
          " lines): request rejected");
      item.count = 1;
      item.overflow = true;
      conn.queue.push_back(std::move(item));
    }
  } else {
    Connection::Item item;
    item.kind = Connection::Item::Kind::kLine;
    item.text = std::move(line);
    const std::int64_t admitted =
        lines_admitted_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsEnabled() && (admitted & 7) == 0) {
      // Queue-wait is sampled 1-in-8: the histogram prices the wait
      // distribution, and the two clock reads a timestamp costs (here
      // and at dequeue) are the most expensive instructions on this
      // path.
      item.enqueued = std::chrono::steady_clock::now();
    }
    conn.queue.push_back(std::move(item));
    ++conn.admitted_depth;
    m_lines_admitted_->Increment();
    const std::int64_t depth =
        queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::int64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
    m_queue_depth_->Set(static_cast<double>(depth));
    m_max_queue_depth_->Set(static_cast<double>(
        max_queue_depth_.load(std::memory_order_relaxed)));
  }
  conn.cv.notify_one();
}

void TcpServer::RejectOversized(Connection& conn) {
  oversized_lines_.fetch_add(1, std::memory_order_relaxed);
  lines_rejected_.fetch_add(1, std::memory_order_relaxed);
  m_oversized_lines_->Increment();
  m_lines_rejected_->Increment();
  MutexLock lock(conn.mutex);
  Connection::Item item;
  item.kind = Connection::Item::Kind::kReject;
  item.reject = Status::OutOfRange(
      "request line exceeds " + std::to_string(options_.max_line_bytes) +
      " bytes: rejected without buffering");
  item.count = 1;
  conn.queue.push_back(std::move(item));
  conn.cv.notify_one();
}

void TcpServer::EnqueueEof(Connection& conn) {
  if (conn.eof_enqueued) return;
  conn.eof_enqueued = true;
  MutexLock lock(conn.mutex);
  Connection::Item item;
  item.kind = Connection::Item::Kind::kEof;
  conn.queue.push_back(std::move(item));
  conn.cv.notify_one();
}

void TcpServer::ReadFromConnection(Connection& conn) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Hard error: treat as disconnect.
    }
    if (n <= 0) {
      // Disconnect. A partial final line is served the way std::getline
      // serves an unterminated last line: as a line.
      if (!conn.inbuf.empty() && !conn.discarding) {
        AdmitLine(conn, std::move(conn.inbuf));
      }
      conn.inbuf.clear();
      EnqueueEof(conn);
      return;
    }
    std::size_t begin = 0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      if (chunk[i] != '\n') continue;
      if (conn.discarding) {
        // The tail of an already-rejected oversized line.
        conn.discarding = false;
      } else if (static_cast<std::int64_t>(conn.inbuf.size() +
                                           (i - begin)) >
                 options_.max_line_bytes) {
        // Oversized even though it fit in one read: same rejection as the
        // buffered case, the limit is on the LINE, not the buffering.
        RejectOversized(conn);
        conn.inbuf.clear();
      } else {
        conn.inbuf.append(chunk + begin, i - begin);
        AdmitLine(conn, std::move(conn.inbuf));
        conn.inbuf.clear();
      }
      begin = i + 1;
    }
    if (!conn.discarding) {
      conn.inbuf.append(chunk + begin, static_cast<std::size_t>(n) - begin);
      if (static_cast<std::int64_t>(conn.inbuf.size()) >
          options_.max_line_bytes) {
        // Unbounded-buffering guard: reject now, swallow to the newline.
        RejectOversized(conn);
        conn.inbuf.clear();
        conn.discarding = true;
      }
    }
  }
}

void TcpServer::WorkerLoop(Connection* conn) {
  FdStreamBuf buf(conn->fd);
  std::ostream out(&buf);
  const std::unique_ptr<ConnectionHandler> handler = handler_factory_(out);
  ConnectionHandler& processor = *handler;

  bool eof = false;
  while (!eof && !processor.shutdown_requested()) {
    std::deque<Connection::Item> batch;
    {
      MutexLock lock(conn->mutex);
      while (conn->queue.empty()) conn->cv.wait(lock.native());
      batch.swap(conn->queue);
      conn->admitted_depth = 0;
    }
    for (Connection::Item& item : batch) {
      // The depth gauge counts admitted-but-undequeued lines, so it drops
      // for every kLine leaving the queue — including ones discarded
      // below (post-shutdown, post-EOF) that are never processed.
      if (item.kind == Connection::Item::Kind::kLine) {
        const std::int64_t depth =
            queue_depth_.fetch_sub(1, std::memory_order_relaxed) - 1;
        m_queue_depth_->Set(static_cast<double>(depth));
        if (item.enqueued != std::chrono::steady_clock::time_point{}) {
          m_queue_wait_->Observe(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - item.enqueued)
                  .count());
        }
      }
      if (eof || processor.shutdown_requested()) continue;  // drop input
      switch (item.kind) {
        case Connection::Item::Kind::kLine:
          processor.ProcessLine(item.text);
          break;
        case Connection::Item::Kind::kReject:
          for (std::int64_t i = 0; i < item.count; ++i) {
            processor.RejectLine(item.reject);
          }
          break;
        case Connection::Item::Kind::kEof:
          eof = true;
          break;
      }
    }
    // Input ran dry (or ended): emit what's pending so an interactive
    // client is never left waiting on a half-full batch.
    bool quiescent;
    {
      MutexLock lock(conn->mutex);
      quiescent = conn->queue.empty();
    }
    if (quiescent || eof) processor.Flush();
  }
  if (processor.shutdown_requested()) {
    // The client asked the whole server to go: acknowledge (already
    // emitted), then drain every connection including this one.
    RequestDrain();
  }
  processor.Finish();
  ::shutdown(conn->fd, SHUT_WR);  // flush EOF to the client's read side
  conn->worker_done.store(true, std::memory_order_release);
  WakeIoThread();
}

void TcpServer::PollLoop() {
  bool drain_started = false;
  for (;;) {
    // Reap finished connections. The worker already sent everything and
    // half-closed (SHUT_WR); closing while the client is still sending
    // would turn that into an RST, which may discard response bytes the
    // client has not read yet. So a finished connection LINGERS: its
    // unread client bytes are read and discarded until the client's FIN
    // (read() == 0) confirms it saw our EOF — then close is a clean FIN
    // handshake. A client that never stops sending is cut off at the
    // deadline; it forfeited the tail of its transcript.
    bool any_lingering = false;
    for (auto it = connections_.begin(); it != connections_.end();) {
      Connection& conn = **it;
      if (!conn.worker_done.load(std::memory_order_acquire)) {
        ++it;
        continue;
      }
      if (conn.worker.joinable()) conn.worker.join();
      if (!conn.lingering) {
        conn.lingering = true;
        conn.linger_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
      }
      bool finished = false;
      char sink[4096];
      for (;;) {
        const ssize_t n = ::read(conn.fd, sink, sizeof(sink));
        if (n > 0) continue;
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;  // nothing buffered; wait for FIN or deadline
        }
        finished = true;  // FIN (0) or error: no more client bytes coming
        break;
      }
      if (!finished &&
          std::chrono::steady_clock::now() < conn.linger_deadline) {
        any_lingering = true;
        ++it;
        continue;
      }
      {
        // Lines admitted after the worker quit (it exits on `shutdown`
        // without waiting for the reader) were never dequeued; unwind
        // their share of the depth gauge before the connection goes away.
        MutexLock lock(conn.mutex);
        for (const Connection::Item& item : conn.queue) {
          if (item.kind == Connection::Item::Kind::kLine) {
            queue_depth_.fetch_sub(1, std::memory_order_relaxed);
          }
        }
        conn.queue.clear();
        m_queue_depth_->Set(static_cast<double>(
            queue_depth_.load(std::memory_order_relaxed)));
      }
      ::close(conn.fd);
      const std::int64_t now_open =
          open_.fetch_sub(1, std::memory_order_relaxed) - 1;
      drained_.fetch_add(1, std::memory_order_relaxed);
      m_open_->Set(static_cast<double>(now_open));
      m_drained_->Increment();
      it = connections_.erase(it);
    }

    if (draining_.load(std::memory_order_acquire) && !drain_started) {
      drain_started = true;
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);  // stop accepting
        listen_fd_ = -1;
      }
      // Stop admitting: every connection gets its end-of-input marker
      // behind whatever is already queued; workers finish, flush, close.
      for (auto& conn : connections_) EnqueueEof(*conn);
    }
    if (drain_started && connections_.empty()) break;

    std::vector<struct pollfd> fds;
    fds.reserve(connections_.size() + 2);
    std::vector<Connection*> polled;
    polled.reserve(connections_.size());
    {
      struct pollfd pfd;
      pfd.fd = wake_pipe_[0];
      pfd.events = POLLIN;
      pfd.revents = 0;
      fds.push_back(pfd);
    }
    // During accept backoff the listener is left out of the poll set so
    // the level-triggered pending connection cannot spin this loop;
    // established connections below keep being serviced meanwhile.
    const auto now = std::chrono::steady_clock::now();
    const bool accept_backing_off = now < accept_backoff_until_;
    const bool poll_listener =
        listen_fd_ >= 0 && !drain_started && !accept_backing_off;
    if (poll_listener) {
      struct pollfd pfd;
      pfd.fd = listen_fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      fds.push_back(pfd);
    }
    for (auto& conn : connections_) {
      // Lingering fds are polled too: the client's next bytes (or FIN)
      // must wake the reap pass above, not sit until another event.
      if (conn->eof_enqueued && !conn->lingering) continue;
      struct pollfd pfd;
      pfd.fd = conn->fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      fds.push_back(pfd);
      polled.push_back(conn.get());
    }

    // A finite timeout only exists to enforce linger deadlines and to
    // re-arm the listener when its accept backoff expires.
    int timeout_ms = any_lingering ? 100 : -1;
    if (listen_fd_ >= 0 && !drain_started && accept_backing_off) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              accept_backoff_until_ - now)
              .count() +
          1;
      const int rearm_ms = static_cast<int>(remaining);
      if (timeout_ms < 0 || rearm_ms < timeout_ms) timeout_ms = rearm_ms;
    }
    if (::poll(fds.data(), fds.size(), timeout_ms) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure
    }

    std::size_t index = 0;
    if (fds[index].revents & POLLIN) {
      char sink[64];
      while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
      }
    }
    ++index;
    if (poll_listener) {
      if (fds[index].revents & POLLIN) AcceptPending();
      ++index;
    }
    for (Connection* conn : polled) {
      const short revents = fds[index++].revents;
      if (conn->lingering) continue;  // the reap pass consumes its bytes
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        ReadFromConnection(*conn);
      }
    }
  }

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // The wake pipe is deliberately NOT closed here: RequestDrain() may be
  // called (from a signal handler, a worker's `shutdown`, or Stop()) at
  // any point relative to this exit, and its write must never race a
  // close. The destructor closes the pipe after the join.
}

}  // namespace nucleus
