// TcpServer: the network front door of the serving stack.
//
// Everything below the socket already exists — the routed
// one-JSON-object-per-line grammar (serve/request_loop.h), the
// multi-tenant registry, live updates. What this module adds is
// CONNECTION LIFECYCLE, in three pieces (the acceptor / limited-queue /
// stat-counter layering production stores use):
//
//   * an acceptor: one poll()-based IO thread owns the loopback listener
//     and every connection's read side. Connections past
//     `max_connections` are answered with one error object and closed.
//   * bounded admission: each connection owns a queue of at most
//     `queue_high_water` admitted lines. Lines arriving past the high
//     water mark are REJECTED with a structured error carrying their
//     line number — the queue never grows without bound, and rejected
//     ranges coalesce to O(1) memory, so a firehose client costs the
//     server nothing but a counter. Oversized lines (no newline within
//     `max_line_bytes`) are likewise rejected without buffering them.
//   * graceful drain: RequestDrain() (async-signal-safe, also triggered
//     by a client's `shutdown` verb) stops the acceptor, stops admitting
//     input, lets every connection's worker finish its queued lines,
//     flushes, and closes. Wait() returns once the last worker is gone.
//
// Each connection runs its own worker thread driving a RequestProcessor,
// so the per-session protocol contract is exactly the stdio one: one
// JSON object per line, input order, byte-identical to serving the same
// lines over stdin/stdout (tests/tcp_server_test.cc pins this against
// the request-loop fuzz corpus). A connection that disconnects mid-line
// has its partial final line served like std::getline would — as a line.
//
// The per-server counters surface through the `stats` admin verb (the
// processor's server_stats_json hook) and through Stats(). They are also
// mirrored into the obs metrics registry (nucleus_tcp_* families, plus a
// queue-wait histogram timed from admission to worker dequeue) so a
// scrape sees the same numbers `stats` reports — the atomics here stay
// the source of truth; the mirror is last-writer-wins and updates only
// while obs::MetricsEnabled().
#ifndef NUCLEUS_SERVE_NET_TCP_SERVER_H_
#define NUCLEUS_SERVE_NET_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <ostream>
#include <string>
#include <thread>

#include "nucleus/obs/metrics.h"
#include "nucleus/serve/request_loop.h"
#include "nucleus/util/status.h"

namespace nucleus {

/// Per-connection protocol driver. The server feeds it the connection's
/// lines in input order with RequestProcessor semantics: ProcessLine for
/// each admitted line, RejectLine for each back-pressure/oversized slot
/// (the line was dropped but still owes a response), Flush whenever the
/// input runs dry, Finish exactly once at end of session. All calls for
/// one connection happen on that connection's worker thread; the handler
/// owns every write to its output stream.
class ConnectionHandler {
 public:
  virtual ~ConnectionHandler() = default;
  virtual void ProcessLine(const std::string& line) = 0;
  virtual void RejectLine(const Status& status) = 0;
  virtual void Flush() = 0;
  virtual void Finish() = 0;
  /// True once this session asked the whole server to stop (the
  /// `shutdown` verb): the server drops remaining input and starts a
  /// graceful drain.
  virtual bool shutdown_requested() const = 0;
};

/// Builds one handler per accepted connection, writing to that
/// connection's socket stream. Invoked on the connection's worker
/// thread; must be safe to call concurrently from many workers.
using ConnectionHandlerFactory =
    std::function<std::unique_ptr<ConnectionHandler>(std::ostream& out)>;

struct TcpServerOptions {
  /// Numeric listen address. Loopback by default — the tier is built for
  /// a trusted reverse proxy or local clients first; binding wider is a
  /// deliberate operator decision.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by port() after Start().
  int port = 0;
  /// Connections past this are answered with an error object and closed.
  int max_connections = 64;
  /// Admitted-but-unprocessed lines per connection before back-pressure
  /// rejects new ones.
  std::int64_t queue_high_water = 1024;
  /// A line longer than this (no newline yet) is rejected and discarded
  /// up to its newline instead of being buffered.
  std::int64_t max_line_bytes = 1 << 20;
  /// Per-connection session options (threads, batch size). The server
  /// installs its own server_stats_json hook.
  ServeOptions serve;
};

/// Snapshot of the per-server counters (the "server" object of the
/// `stats` verb).
struct TcpServerStats {
  std::int64_t connections_accepted = 0;
  std::int64_t connections_rejected = 0;  // over max_connections
  std::int64_t connections_open = 0;      // gauge
  std::int64_t connections_drained = 0;   // fully closed
  std::int64_t accept_errors = 0;         // accept() failures (EMFILE, ...)
  std::int64_t lines_admitted = 0;
  std::int64_t lines_rejected = 0;        // back-pressure + oversized
  std::int64_t oversized_lines = 0;
  std::int64_t queue_depth = 0;           // gauge, across connections
  std::int64_t max_queue_depth = 0;       // high-water mark observed
  bool draining = false;
};

class TcpServer {
 public:
  /// `resolver` and `registry` have ServeResolvedRequests semantics and
  /// are shared by every connection (the registry and engines are
  /// thread-safe; each connection's protocol state is its own). Each
  /// connection runs a RequestProcessor with the server's stats hook
  /// installed.
  TcpServer(ServeSessionResolver resolver, SnapshotRegistry* registry,
            TcpServerOptions options);

  /// Generic front: each accepted connection drives a handler built by
  /// `factory` instead of a RequestProcessor. The accept / admission /
  /// back-pressure / drain machinery is identical; only the per-line
  /// protocol logic changes (the router tier plugs in here).
  TcpServer(ConnectionHandlerFactory factory, TcpServerOptions options);
  ~TcpServer();  // Stop()

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the IO thread. Fails on bind/listen
  /// errors (port taken, bad host).
  Status Start();

  /// The actually bound port (after Start(); resolves port 0).
  int port() const { return port_; }

  /// Initiates graceful drain: stop accepting, stop admitting, finish
  /// queued work, flush, close. Async-signal-safe (a flag and a
  /// self-pipe write), so a SIGINT handler may call it directly.
  void RequestDrain();

  /// Blocks until the drain completes and the IO thread exits.
  void Wait();

  /// RequestDrain() + Wait().
  void Stop();

  TcpServerStats Stats() const;
  /// Stats() as a JSON object body, e.g. {"connections_open": 2, ...}.
  std::string StatsJson() const;

 private:
  struct Connection;

  void PollLoop();
  void AcceptPending();
  void ReadFromConnection(Connection& conn);
  void AdmitLine(Connection& conn, std::string line);
  void RejectOversized(Connection& conn);
  void EnqueueEof(Connection& conn);
  void WorkerLoop(Connection* conn);
  void WakeIoThread();

  /// Set once during construction, read only by connection workers.
  ConnectionHandlerFactory handler_factory_;
  const TcpServerOptions options_;

  int listen_fd_ = -1;
  /// While now < this deadline the listener is left out of the poll set
  /// (accept() hit resource exhaustion; re-armed by the poll timeout).
  /// Touched only by the IO thread.
  std::chrono::steady_clock::time_point accept_backoff_until_{};
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::thread io_thread_;
  /// Owned by the IO thread between Start() and PollLoop() exit.
  std::list<std::unique_ptr<Connection>> connections_;

  std::atomic<bool> draining_{false};
  std::atomic<std::int64_t> accepted_{0};
  std::atomic<std::int64_t> rejected_connections_{0};
  std::atomic<std::int64_t> open_{0};
  std::atomic<std::int64_t> drained_{0};
  std::atomic<std::int64_t> accept_errors_{0};
  std::atomic<std::int64_t> lines_admitted_{0};
  std::atomic<std::int64_t> lines_rejected_{0};
  std::atomic<std::int64_t> oversized_lines_{0};
  std::atomic<std::int64_t> queue_depth_{0};
  std::atomic<std::int64_t> max_queue_depth_{0};

  // Scrape mirror of the counters above, resolved once in the
  // constructor (options_.serve.metrics, or the process registry).
  // Gauges are Set() from the freshly updated atomic rather than
  // Add()ed, so a mid-run kill-switch toggle can never leave them
  // drifted from the source-of-truth atomics.
  obs::MetricsRegistry* const metrics_;
  obs::Counter* const m_accepted_;
  obs::Counter* const m_rejected_connections_;
  obs::Counter* const m_drained_;
  obs::Counter* const m_accept_errors_;
  obs::Counter* const m_lines_admitted_;
  obs::Counter* const m_lines_rejected_;
  obs::Counter* const m_oversized_lines_;
  obs::Gauge* const m_open_;
  obs::Gauge* const m_queue_depth_;
  obs::Gauge* const m_max_queue_depth_;
  obs::Histogram* const m_queue_wait_;  // sampled 1-in-8 admissions
};

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_NET_TCP_SERVER_H_
