// LiveUpdater: the orchestration layer of live snapshot maintenance.
//
// A serving process pairs three things: the current graph, the snapshot
// state derived from it, and (since PR 4) a stream of edge edits. The
// updater owns the middle of that pipeline — it keeps the incremental
// k-core maintainer (core/incremental_core.h) seeded from the snapshot's
// lambdas, and turns each validated edit batch into
//
//   * a CoreDeltaReport        (what changed),
//   * a DeltaData chain record (the durable form, store/delta.h), and
//   * a materialized SnapshotData of the post-state (the servable form:
//     patched lambdas + the rebuilt (1,2) hierarchy, byte-identical to a
//     fresh Algorithm::kDft decomposition of the edited graph),
//
// leaving the caller to wire the pieces: QueryEngine::ApplyUpdate for
// serving without a restart, SaveDelta / SaveSnapshot for persistence.
//
// Edits arrive from untrusted surfaces (the serve protocol's `update`
// verb, `nucleus_cli update --edits` files), so Apply validates the whole
// batch up front and applies nothing on rejection. Updates are (1,2)-core
// only — the space the streaming maintenance of Sariyuce et al.
// (PVLDB 2013) covers.
#ifndef NUCLEUS_SERVE_LIVE_UPDATE_H_
#define NUCLEUS_SERVE_LIVE_UPDATE_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nucleus/core/incremental_core.h"
#include "nucleus/store/delta.h"
#include "nucleus/store/snapshot.h"
#include "nucleus/util/mutex.h"
#include "nucleus/util/status.h"

namespace nucleus {

class LiveUpdater {
 public:
  /// One applied batch, in every form downstream consumers need.
  struct Result {
    CoreDeltaReport report;
    DeltaData delta;
    /// True iff the batch changed the graph (report.applied > 0).
    bool changed = false;
    /// Post-state snapshot: (1,2), Algorithm::kDft, no index tables (the
    /// engine or a later save builds them on demand). Only populated when
    /// `changed` — an all-skipped batch leaves the served state as-is, so
    /// there is nothing to swap in and the O(V+E) materialization is
    /// skipped (idempotent replays stay O(edits)).
    SnapshotData snapshot;
  };

  /// Validates that `snapshot` is the (1,2), Algorithm::kDft state of `g`
  /// — family, algorithm, vertex / clique / edge counts and the graph
  /// fingerprint must all match — and seeds the maintainer from the
  /// snapshot's lambdas (no re-peel). kDft is required because that is
  /// the hierarchy shape updates rebuild: any other algorithm's node ids
  /// would not survive the first applied batch.
  /// `link` continues an existing chain (the ChainLink ResolveChain
  /// returned); without it the snapshot is treated as a chain base.
  /// `g` is copied into the maintainer's adjacency; it need not outlive
  /// the updater.
  static StatusOr<std::unique_ptr<LiveUpdater>> Create(
      const Graph& g, const SnapshotData& snapshot,
      const std::optional<ChainLink>& link = std::nullopt);

  /// Validates `edits` (every endpoint in range, no self-loops — anything
  /// else rejects the WHOLE batch with InvalidArgument and changes
  /// nothing), applies them, and rebuilds the post-state. Inserts of
  /// existing edges and removals of missing edges are valid no-ops,
  /// counted in report.skipped.
  /// REQUIRES(apply_mutex_): even single-threaded callers take a
  /// MutexLock on apply_mutex() first — the compile-time contract does
  /// not know which callers later grow concurrent.
  StatusOr<Result> Apply(std::span<const EdgeEdit> edits)
      REQUIRES(apply_mutex_);

  VertexId NumVertices() const { return maintainer_.NumVertices(); }
  std::int64_t NumEdges() const { return maintainer_.NumEdges(); }
  const IncrementalCoreMaintainer& maintainer() const { return maintainer_; }

  /// Serializes concurrent users of ONE updater. Apply mutates the
  /// maintainer and advances the fingerprint chain, so it is not
  /// thread-safe by itself; callers that share an updater across threads
  /// (the TCP tier: many connections, one engine or one registry tenant)
  /// hold this across the whole apply sequence — Apply, the engine swap,
  /// the dirty marking — so updates serialize and the delta chain and the
  /// served state advance in the same order.
  Mutex& apply_mutex() RETURN_CAPABILITY(apply_mutex_) {
    return apply_mutex_;
  }

 private:
  LiveUpdater(const Graph& g, std::vector<Lambda> lambda,
              const ChainLink& link);

  Mutex apply_mutex_;
  /// The maintainer is mutated only by Apply (REQUIRES apply_mutex_) but
  /// read lock-free by the NumVertices/NumEdges/maintainer() accessors,
  /// which callers use only from the applying thread — so it is
  /// deliberately not GUARDED_BY(apply_mutex_).
  IncrementalCoreMaintainer maintainer_;
  std::uint64_t base_fingerprint_;
  /// EdgeSetFingerprint / LambdaFingerprint of the state the NEXT delta
  /// descends from; both advance to the child values after every Apply.
  std::uint64_t parent_fingerprint_ GUARDED_BY(apply_mutex_);
  std::uint64_t parent_lambda_fingerprint_ GUARDED_BY(apply_mutex_);
};

/// Parses a `nucleus_cli update --edits` file: one edit per line,
///
///   + <u> <v>    insert undirected edge {u, v}
///   - <u> <v>    remove undirected edge {u, v}
///
/// with '#' comments and blank lines skipped. Integers are strict
/// (util/parse_util.h); any malformed line fails the whole file with its
/// line number.
StatusOr<std::vector<EdgeEdit>> ParseEditList(const std::string& text);

/// Reads and parses an edit file from disk.
StatusOr<std::vector<EdgeEdit>> ReadEditList(const std::string& path);

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_LIVE_UPDATE_H_
