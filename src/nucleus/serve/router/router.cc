#include "nucleus/serve/router/router.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <sstream>
#include <utility>

#include "nucleus/io/hierarchy_export.h"
#include "nucleus/serve/request_loop.h"
#include "nucleus/store/manifest.h"
#include "nucleus/util/parse_util.h"

namespace nucleus {
namespace {

/// Front-session error object, same shape RequestProcessor emits. The
/// message must already be JSON-escaped (or escape-free).
std::string ErrorLine(const std::string& escaped_message,
                      std::int64_t line_no) {
  return "{\"error\": \"" + escaped_message +
         "\", \"line\": " + std::to_string(line_no) + "}";
}

bool IsErrorLine(const std::string& response) {
  return response.rfind("{\"error\"", 0) == 0;
}

/// Replaces the `"line": N` value of a backend error object with the
/// front session's line number. The pattern `, "line": ` cannot occur
/// inside the escaped message (a literal quote is \" there), so the
/// last occurrence is always the real key.
std::string RewriteErrorLineNumber(const std::string& response,
                                   std::int64_t line_no) {
  const std::string key = ", \"line\": ";
  const std::size_t at = response.rfind(key);
  if (at == std::string::npos) return response;
  std::size_t digits = at + key.size();
  while (digits < response.size() &&
         (std::isdigit(static_cast<unsigned char>(response[digits])) ||
          response[digits] == '-')) {
    ++digits;
  }
  return response.substr(0, at) + key + std::to_string(line_no) +
         response.substr(digits);
}

/// Extracts the escaped payload of `"<field>": "<payload>"` from a JSON
/// object WE (or a backend we run) formatted — not a general parser.
/// Returns false when the field is absent.
bool ExtractEscapedField(const std::string& json, const std::string& field,
                         std::string* out) {
  const std::string key = "\"" + field + "\": \"";
  const std::size_t start = json.find(key);
  if (start == std::string::npos) return false;
  std::size_t i = start + key.size();
  std::string value;
  while (i < json.size() && json[i] != '"') {
    if (json[i] == '\\' && i + 1 < json.size()) {
      value.push_back(json[i]);
      value.push_back(json[i + 1]);
      i += 2;
      continue;
    }
    value.push_back(json[i]);
    ++i;
  }
  *out = value;
  return true;
}

/// Reverses JsonEscape for the path strings a `detach` response names.
std::string JsonUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      default: out.push_back(s[i]); break;  // \" \\ and anything else
    }
  }
  return out;
}

/// The `"persisted": ["p1", "p2", ...]` array of a detach response,
/// unescaped; empty when the field is absent (clean tenant).
std::vector<std::string> ParsePersistedArray(const std::string& response) {
  std::vector<std::string> paths;
  const std::string key = "\"persisted\": [";
  std::size_t i = response.find(key);
  if (i == std::string::npos) return paths;
  i += key.size();
  while (i < response.size() && response[i] != ']') {
    if (response[i] != '"') {
      ++i;
      continue;
    }
    ++i;  // opening quote
    std::string escaped;
    while (i < response.size() && response[i] != '"') {
      if (response[i] == '\\' && i + 1 < response.size()) {
        escaped.push_back(response[i]);
        escaped.push_back(response[i + 1]);
        i += 2;
        continue;
      }
      escaped.push_back(response[i]);
      ++i;
    }
    ++i;  // closing quote
    paths.push_back(JsonUnescape(escaped));
  }
  return paths;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool SendAllFd(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking-handshake TCP dial with a connect deadline (nonblocking
/// connect + poll, then back to blocking for the session).
int DialTcp(const std::string& host, int port, int timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      ::close(fd);
      return -1;
    }
  } else if (rc != 0) {
    ::close(fd);
    return -1;
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for send/recv
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// One response line off `fd` within the deadline (for health probes).
bool ReadLineWithDeadline(int fd, int timeout_ms, std::string* line) {
  line->clear();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char c = 0;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1);
    const int r = ::poll(&pfd, 1, wait_ms);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    if (c == '\n') return true;
    line->push_back(c);
  }
}

constexpr std::size_t kHandlerBatch = 256;

}  // namespace

std::uint64_t RouterTenantKey(const std::string& tenant) {
  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64 offset basis
  for (const char c : tenant) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  return hash;
}

std::int32_t JumpConsistentHash(std::uint64_t key,
                                std::int32_t num_buckets) {
  if (num_buckets <= 0) return 0;
  std::int64_t bucket = -1;
  std::int64_t next = 0;
  while (next < num_buckets) {
    bucket = next;
    key = key * 2862933555777941757ULL + 1;
    next = static_cast<std::int64_t>(
        static_cast<double>(bucket + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<std::int32_t>(bucket);
}

/// One forwarded line's rendezvous: the front worker waits on it, the
/// backend connection's reader (or a failure path) completes it exactly
/// once.
struct TenantRouter::Slot {
  explicit Slot(std::int64_t line) : line_no(line) {}
  const std::int64_t line_no;
  Mutex mutex;
  std::condition_variable cv;
  bool done GUARDED_BY(mutex) = false;
  std::string text GUARDED_BY(mutex);
};

/// One pooled connection to one backend. Wire order must equal FIFO
/// order — write_mutex is held across the (push, send) pair to pin that
/// invariant; the reader thread pops the FIFO as response lines arrive.
struct TenantRouter::BackendConn {
  /// Serializes forwarders; ACQUIRED_BEFORE mutex.
  Mutex write_mutex;
  Mutex mutex ACQUIRED_AFTER(write_mutex);
  int fd GUARDED_BY(mutex) = -1;
  bool alive GUARDED_BY(mutex) = false;
  std::deque<std::shared_ptr<Slot>> fifo GUARDED_BY(mutex);
  /// Managed under write_mutex (EnsureConnected joins before re-dialing).
  std::thread reader;
};

struct TenantRouter::Backend {
  std::string address;
  std::string host;
  int port = 0;
  std::atomic<bool> up{false};
  std::vector<std::unique_ptr<BackendConn>> conns;
};

void TenantRouter::CompleteSlot(Slot& slot, std::string text) {
  {
    MutexLock lock(slot.mutex);
    if (slot.done) return;  // first completion wins
    slot.done = true;
    slot.text = std::move(text);
  }
  slot.cv.notify_all();
}

std::string TenantRouter::WaitSlot(Slot& slot) {
  MutexLock lock(slot.mutex);
  while (!slot.done) slot.cv.wait(lock.native());
  return slot.text;
}

std::shared_ptr<TenantRouter::Slot> TenantRouter::MakeCompletedSlot(
    std::int64_t line_no, std::string text) {
  auto slot = std::make_shared<Slot>(line_no);
  CompleteSlot(*slot, std::move(text));
  return slot;
}

TenantRouter::TenantRouter(TenantRouterOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::MetricsRegistry::Global()),
      m_forwarded_(
          metrics_->GetCounter("nucleus_router_lines_forwarded_total")),
      m_rejected_(
          metrics_->GetCounter("nucleus_router_lines_rejected_total")),
      m_failures_(
          metrics_->GetCounter("nucleus_router_backend_failures_total")),
      m_migrations_(metrics_->GetCounter("nucleus_router_migrations_total")),
      m_backends_up_(metrics_->GetGauge("nucleus_router_backends_up")) {}

TenantRouter::~TenantRouter() { Stop(); }

Status TenantRouter::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::Internal("TenantRouter already started");
  }
  if (options_.backends.empty()) {
    return Status::InvalidArgument("route requires at least one backend");
  }
  const int pool =
      options_.pool_size < 1 ? 1 : options_.pool_size;
  // Validate every address into a local list first: a mid-list error
  // must leave backends_ empty, so a retried Start() cannot append
  // duplicates onto a partially populated table.
  std::vector<std::unique_ptr<Backend>> validated;
  for (const std::string& address : options_.backends) {
    const std::size_t colon = address.rfind(':');
    std::int64_t port = 0;
    if (colon == std::string::npos || colon == 0 ||
        !StrictParseInt64(address.substr(colon + 1), &port) || port <= 0 ||
        port > 65535) {
      return Status::InvalidArgument(
          "backend '" + address + "' is not <host>:<port>");
    }
    const std::string host = address.substr(0, colon);
    struct in_addr probe;
    if (::inet_pton(AF_INET, host.c_str(), &probe) != 1) {
      return Status::InvalidArgument("backend host '" + host +
                                     "' (numeric IPv4 expected)");
    }
    auto backend = std::make_unique<Backend>();
    backend->address = address;
    backend->host = host;
    backend->port = static_cast<int>(port);
    for (int i = 0; i < pool; ++i) {
      backend->conns.push_back(std::make_unique<BackendConn>());
    }
    validated.push_back(std::move(backend));
  }
  backends_ = std::move(validated);
  stopping_.store(false, std::memory_order_release);
  // First health pass: unreachable backends start down (they re-admit
  // when a later probe succeeds) instead of failing startup.
  CheckBackendsNow();
  if (options_.health_interval_ms > 0) {
    if (::pipe(prober_wake_) != 0) {
      backends_.clear();
      return Status::Internal(std::string("router wake pipe: ") +
                              std::strerror(errno));
    }
    prober_ = std::thread(&TenantRouter::ProberLoop, this);
  }
  started_.store(true, std::memory_order_release);
  return Status::Ok();
}

void TenantRouter::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (prober_.joinable()) {
    const char byte = 'x';
    (void)!::write(prober_wake_[1], &byte, 1);
    prober_.join();
  }
  if (prober_wake_[0] >= 0) ::close(prober_wake_[0]);
  if (prober_wake_[1] >= 0) ::close(prober_wake_[1]);
  prober_wake_[0] = prober_wake_[1] = -1;
  for (auto& backend : backends_) {
    for (auto& conn : backend->conns) {
      {
        MutexLock lock(conn->mutex);
        // Wakes the reader with EOF; it fails outstanding slots and
        // exits. The fd is closed after the join.
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
      }
      if (conn->reader.joinable()) conn->reader.join();
      MutexLock lock(conn->mutex);
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
      conn->alive = false;
    }
  }
  backends_.clear();
  started_.store(false, std::memory_order_release);
}

const std::string& TenantRouter::backend_address(int index) const {
  return backends_[static_cast<std::size_t>(index)]->address;
}

bool TenantRouter::backend_up(int index) const {
  return backends_[static_cast<std::size_t>(index)]->up.load(
      std::memory_order_acquire);
}

int TenantRouter::BackendIndexFor(const std::string& tenant) const {
  {
    ReaderLock lock(route_mutex_);
    const auto it = overrides_.find(tenant);
    if (it != overrides_.end()) return it->second;
  }
  return JumpConsistentHash(RouterTenantKey(tenant), num_backends());
}

int TenantRouter::ConnIndexFor(const std::string& tenant) const {
  const int pool = static_cast<int>(backends_[0]->conns.size());
  if (pool <= 1) return 0;
  // The high half of the key, so the conn pin is independent of the
  // backend pin (which consumes the key through the jump hash).
  return static_cast<int>((RouterTenantKey(tenant) >> 32) %
                          static_cast<std::uint64_t>(pool));
}

Status TenantRouter::EnsureConnected(Backend& backend, BackendConn& conn) {
  MutexLock wlock(conn.write_mutex);
  {
    MutexLock lock(conn.mutex);
    if (conn.alive) return Status::Ok();
  }
  // The previous session (if any) is fully dead: its reader cleared
  // `alive` on the way out. Join it, recycle the fd, dial fresh.
  if (conn.reader.joinable()) conn.reader.join();
  {
    MutexLock lock(conn.mutex);
    if (conn.fd >= 0) {
      ::close(conn.fd);
      conn.fd = -1;
    }
  }
  const int fd =
      DialTcp(backend.host, backend.port, options_.health_timeout_ms);
  if (fd < 0) {
    return Status::Internal("backend " + backend.address +
                            " unreachable: request rejected");
  }
  {
    MutexLock lock(conn.mutex);
    conn.fd = fd;
    conn.alive = true;
  }
  conn.reader =
      std::thread(&TenantRouter::ReaderLoop, this, &backend, &conn, fd);
  return Status::Ok();
}

void TenantRouter::FailConnLocked(Backend& backend, BackendConn& conn,
                                  const std::string& reason) {
  for (const std::shared_ptr<Slot>& slot : conn.fifo) {
    CompleteSlot(*slot, ErrorLine(JsonEscape(reason), slot->line_no));
  }
  conn.fifo.clear();
  (void)backend;
}

void TenantRouter::ReaderLoop(Backend* backend, BackendConn* conn, int fd) {
  std::string buffered;
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffered.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffered.find('\n', start);
         nl != std::string::npos; nl = buffered.find('\n', start)) {
      std::string line = buffered.substr(start, nl - start);
      start = nl + 1;
      std::shared_ptr<Slot> slot;
      {
        MutexLock lock(conn->mutex);
        if (!conn->fifo.empty()) {
          slot = conn->fifo.front();
          conn->fifo.pop_front();
        }
      }
      if (slot == nullptr) continue;  // stray line; nothing waits on it
      if (IsErrorLine(line)) {
        // The backend numbered the error in ITS session; renumber it
        // into the front session the client actually sees.
        line = RewriteErrorLineNumber(line, slot->line_no);
      }
      CompleteSlot(*slot, std::move(line));
    }
    buffered.erase(0, start);
  }
  // EOF or hard error: the session is gone. Fail whatever was in
  // flight, flag the connection for lazy reconnect, and treat the tear
  // as a down signal — the prober re-admits when the backend answers
  // again.
  {
    MutexLock lock(conn->mutex);
    conn->alive = false;
    FailConnLocked(*backend, *conn,
                   "backend " + backend->address +
                       " connection lost before responding");
    // Half-close to send our FIN now: a draining backend lingers until
    // it sees it, and nothing will be written on this fd again before
    // EnsureConnected replaces it.
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_WR);
  }
  if (!stopping_.load(std::memory_order_acquire)) {
    backend->up.store(false, std::memory_order_release);
    backend_failures_.fetch_add(1, std::memory_order_relaxed);
    m_failures_->Increment();
  }
}

std::shared_ptr<TenantRouter::Slot> TenantRouter::ForwardToConn(
    Backend& backend, BackendConn& conn, const std::string& raw_line,
    std::int64_t line_no) {
  if (!backend.up.load(std::memory_order_acquire)) {
    lines_rejected_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_->Increment();
    return MakeCompletedSlot(
        line_no, ErrorLine("backend " + backend.address +
                               " is down (health check failed): "
                               "request rejected",
                           line_no));
  }
  if (Status s = EnsureConnected(backend, conn); !s.ok()) {
    lines_rejected_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_->Increment();
    return MakeCompletedSlot(line_no,
                             ErrorLine(JsonEscape(s.message()), line_no));
  }
  MutexLock wlock(conn.write_mutex);
  auto slot = std::make_shared<Slot>(line_no);
  int fd = -1;
  {
    MutexLock lock(conn.mutex);
    if (!conn.alive) {
      lines_rejected_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->Increment();
      CompleteSlot(*slot, ErrorLine("backend " + backend.address +
                                        " connection lost: request rejected",
                                    line_no));
      return slot;
    }
    if (static_cast<std::int64_t>(conn.fifo.size()) >=
        options_.max_inflight) {
      // The same admission discipline the TCP tier applies to its
      // queues: bound the buffer, reject with a structured error.
      lines_rejected_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->Increment();
      CompleteSlot(*slot,
                   ErrorLine("backend " + backend.address +
                                 " in-flight limit (" +
                                 std::to_string(options_.max_inflight) +
                                 " lines) reached: request rejected",
                             line_no));
      return slot;
    }
    conn.fifo.push_back(slot);
    fd = conn.fd;
  }
  // Send outside conn.mutex (the reader must keep popping while we
  // block on a full socket) but inside write_mutex (wire order == FIFO
  // order).
  std::string wire = raw_line;
  wire.push_back('\n');
  if (!SendAllFd(fd, wire)) {
    MutexLock lock(conn.mutex);
    // write_mutex is still held: our slot is the tail if the reader has
    // not already failed the whole FIFO.
    if (!conn.fifo.empty() && conn.fifo.back() == slot) {
      conn.fifo.pop_back();
    }
    CompleteSlot(*slot, ErrorLine("backend " + backend.address +
                                      " send failed: request not delivered",
                                  line_no));
    return slot;
  }
  lines_forwarded_.fetch_add(1, std::memory_order_relaxed);
  m_forwarded_->Increment();
  return slot;
}

std::shared_ptr<TenantRouter::Slot> TenantRouter::ForwardLine(
    int backend_index, const std::string& tenant,
    const std::string& raw_line, std::int64_t line_no) {
  Backend& backend = *backends_[static_cast<std::size_t>(backend_index)];
  BackendConn& conn =
      *backend.conns[static_cast<std::size_t>(ConnIndexFor(tenant))];
  return ForwardToConn(backend, conn, raw_line, line_no);
}

bool TenantRouter::ProbeBackend(Backend& backend) {
  const int fd =
      DialTcp(backend.host, backend.port, options_.health_timeout_ms);
  if (fd < 0) return false;
  bool healthy = SendAllFd(fd, "stats\n");
  std::string line;
  if (healthy) {
    // Any one-line answer counts: the probe is a liveness check of the
    // serving loop, not a health grade of the registry behind it.
    healthy = ReadLineWithDeadline(fd, options_.health_timeout_ms, &line) &&
              !line.empty();
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  return healthy;
}

void TenantRouter::TearBackendConns(Backend& backend) {
  for (auto& conn : backend.conns) {
    MutexLock lock(conn->mutex);
    // Wakes the reader out of recv(); its exit path fails every
    // in-flight slot, so no front worker is left blocked in WaitSlot on
    // a backend that is still connected but no longer answering.
    if (conn->alive && conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void TenantRouter::CheckBackendsNow() {
  int up_count = 0;
  for (auto& backend : backends_) {
    const bool healthy = ProbeBackend(*backend);
    backend->up.store(healthy, std::memory_order_release);
    if (healthy) {
      ++up_count;
    } else {
      // A down backend may still hold forwarded-but-unanswered lines on
      // live connections (e.g. it wedged without closing). Tear them on
      // EVERY failed probe, not just the down transition: a forward can
      // race the probe and re-dial a half-dead backend, and the next
      // pass must fail those slots too.
      TearBackendConns(*backend);
    }
  }
  m_backends_up_->Set(static_cast<double>(up_count));
}

void TenantRouter::ProberLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = prober_wake_[0];
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = ::poll(&pfd, 1, options_.health_interval_ms);
    if (r < 0 && errno == EINTR) continue;
    if (r > 0) return;  // Stop() wrote the wake byte
    CheckBackendsNow();
  }
}

std::string TenantRouter::RouterStatsJson() const {
  int up_count = 0;
  std::int64_t inflight = 0;
  for (const auto& backend : backends_) {
    if (backend->up.load(std::memory_order_acquire)) ++up_count;
    for (const auto& conn : backend->conns) {
      MutexLock lock(conn->mutex);
      inflight += static_cast<std::int64_t>(conn->fifo.size());
    }
  }
  std::string json;
  json += "\"backends\": " + std::to_string(backends_.size());
  json += ", \"backends_up\": " + std::to_string(up_count);
  json += ", \"pool_size\": " +
          std::to_string(backends_.empty()
                             ? options_.pool_size
                             : static_cast<int>(backends_[0]->conns.size()));
  json += ", \"max_inflight\": " + std::to_string(options_.max_inflight);
  json += ", \"inflight\": " + std::to_string(inflight);
  json += ", \"lines_forwarded\": " +
          std::to_string(lines_forwarded_.load(std::memory_order_relaxed));
  json += ", \"lines_rejected\": " +
          std::to_string(lines_rejected_.load(std::memory_order_relaxed));
  json += ", \"backend_failures\": " +
          std::to_string(backend_failures_.load(std::memory_order_relaxed));
  json += ", \"migrations\": " +
          std::to_string(migrations_.load(std::memory_order_relaxed));
  return json;
}

std::string TenantRouter::FanOutAdmin(const std::string& raw_line,
                                      const std::string& query_name,
                                      std::int64_t line_no) {
  // Fan the verb to conn 0 of every up backend first (pipelined), then
  // await in order.
  std::vector<std::shared_ptr<Slot>> slots(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    Backend& backend = *backends_[i];
    if (!backend.up.load(std::memory_order_acquire)) continue;
    slots[i] = ForwardToConn(backend, *backend.conns[0], raw_line, line_no);
  }
  std::string json = "{\"query\": \"" + query_name + "\"";
  if (query_name == "stats") {
    json += ", \"router\": {" + RouterStatsJson() + "}";
    if (server_stats_json_) {
      json += ", \"server\": " + server_stats_json_();
    }
  } else if (query_name == "metrics") {
    // The router's own registry, in the single-process metrics schema.
    if (raw_line == "metrics text") {
      json += ", \"format\": \"text\", \"exposition\": \"" +
              JsonEscape(metrics_->ToPrometheusText()) + "\"";
    } else {
      json += ", " + metrics_->ToJsonBody();
    }
  }
  json += ", \"backends\": [";
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (i > 0) json += ", ";
    json += "{\"backend\": \"" + JsonEscape(backends_[i]->address) + "\"";
    json += ", \"up\": ";
    json += slots[i] != nullptr ? "true" : "false";
    if (slots[i] != nullptr) {
      // The backend's whole response object, verbatim.
      json += ", \"response\": " + WaitSlot(*slots[i]);
    }
    json += "}";
  }
  json += "]}";
  return json;
}

std::string TenantRouter::Migrate(const std::string& tenant,
                                  const std::string& target_address,
                                  const std::vector<std::string>& spec_args,
                                  std::int64_t line_no) {
  int target = -1;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->address == target_address) {
      target = static_cast<int>(i);
      break;
    }
  }
  if (target < 0) {
    return ErrorLine(
        JsonEscape("migrate: unknown backend '" + target_address +
                   "' (expected one of the configured backend addresses)"),
        line_no);
  }
  const int source = BackendIndexFor(tenant);
  if (source == target) {
    return ErrorLine(JsonEscape("migrate: tenant '" + tenant +
                                "' is already routed to " + target_address),
                     line_no);
  }
  Backend& src = *backends_[static_cast<std::size_t>(source)];
  Backend& dst = *backends_[static_cast<std::size_t>(target)];
  if (!dst.up.load(std::memory_order_acquire)) {
    return ErrorLine(JsonEscape("migrate: target backend " + dst.address +
                                " is down"),
                     line_no);
  }

  // Resolve the spec BEFORE detaching, so a bad spec can never strand a
  // detached tenant.
  std::vector<std::string> args = spec_args;
  if (args.empty()) {
    ReaderLock lock(route_mutex_);
    const auto it = specs_.find(tenant);
    if (it != specs_.end()) args = it->second;
  }
  if (args.empty()) {
    return ErrorLine(
        JsonEscape("migrate: no recorded attach spec for tenant '" + tenant +
                   "' — attach it through the router first, or pass the "
                   "spec inline: migrate <tenant> <backend> snapshot=<path> "
                   "[deltas=<p1,p2>] [graph=<path>]"),
        line_no);
  }
  TenantSpec spec;
  spec.name = tenant;
  if (Status s = ParseTenantSpecArgs(args, "", &spec); !s.ok()) {
    return ErrorLine(JsonEscape("migrate: invalid spec: " + s.message()),
                     line_no);
  }

  const int conn_index = ConnIndexFor(tenant);
  // 1. Detach-persist on the source, through the tenant's pinned conn so
  // it lands behind every in-flight line of this tenant. A dirty live
  // tenant writes its pending delta batches and latest graph to disk and
  // names them in the response.
  auto detach_slot =
      ForwardToConn(src, *src.conns[static_cast<std::size_t>(conn_index)],
                    "detach " + tenant, line_no);
  const std::string detach_resp = WaitSlot(*detach_slot);
  if (IsErrorLine(detach_resp)) {
    std::string escaped;
    if (!ExtractEscapedField(detach_resp, "error", &escaped)) {
      escaped = "backend error";
    }
    return ErrorLine(JsonEscape("migrate " + tenant + ": detach on " +
                                src.address + " failed: ") +
                         escaped,
                     line_no);
  }
  const std::vector<std::string> persisted =
      ParsePersistedArray(detach_resp);

  // 2. Extend the spec with the persisted chain: pending deltas continue
  // the delta list, and the persisted graph replaces the original so the
  // target re-resolves to exactly the detached state.
  for (const std::string& path : persisted) {
    if (EndsWith(path, ".nucdelta")) {
      spec.delta_paths.push_back(path);
    } else {
      spec.graph_path = path;
    }
  }
  std::string attach_line = "attach " + tenant + " snapshot=" +
                            spec.snapshot_path;
  if (!spec.delta_paths.empty()) {
    attach_line += " deltas=";
    for (std::size_t i = 0; i < spec.delta_paths.size(); ++i) {
      if (i > 0) attach_line += ",";
      attach_line += spec.delta_paths[i];
    }
  }
  if (!spec.graph_path.empty()) attach_line += " graph=" + spec.graph_path;

  // 3. Attach on the target through the tenant's pinned conn there.
  auto attach_slot =
      ForwardToConn(dst, *dst.conns[static_cast<std::size_t>(conn_index)],
                    attach_line, line_no);
  const std::string attach_resp = WaitSlot(*attach_slot);
  if (IsErrorLine(attach_resp)) {
    // Best-effort rollback: re-attach the persisted state on the source
    // so the tenant is not stranded detached.
    auto rollback_slot =
        ForwardToConn(src, *src.conns[static_cast<std::size_t>(conn_index)],
                      attach_line, line_no);
    const bool rolled_back = !IsErrorLine(WaitSlot(*rollback_slot));
    std::string escaped;
    if (!ExtractEscapedField(attach_resp, "error", &escaped)) {
      escaped = "backend error";
    }
    return ErrorLine(
        JsonEscape("migrate " + tenant + ": attach on " + dst.address +
                   " failed (" +
                   (rolled_back
                        ? "tenant re-attached on " + src.address
                        : "tenant is now detached; re-attach manually") +
                   "): ") +
            escaped,
        line_no);
  }

  // 4. Flip the route and remember the extended spec for the next move.
  {
    WriterLock lock(route_mutex_);
    overrides_[tenant] = target;
    std::vector<std::string> new_args;
    new_args.push_back("snapshot=" + spec.snapshot_path);
    if (!spec.delta_paths.empty()) {
      std::string deltas = "deltas=";
      for (std::size_t i = 0; i < spec.delta_paths.size(); ++i) {
        if (i > 0) deltas += ",";
        deltas += spec.delta_paths[i];
      }
      new_args.push_back(deltas);
    }
    if (!spec.graph_path.empty()) {
      new_args.push_back("graph=" + spec.graph_path);
    }
    specs_[tenant] = std::move(new_args);
  }
  migrations_.fetch_add(1, std::memory_order_relaxed);
  m_migrations_->Increment();
  return "{\"query\": \"migrate\", \"tenant\": \"" + JsonEscape(tenant) +
         "\", \"from\": \"" + JsonEscape(src.address) + "\", \"to\": \"" +
         JsonEscape(dst.address) +
         "\", \"persisted\": " + std::to_string(persisted.size()) +
         ", \"ok\": true}";
}

/// The front-connection protocol driver: parses each line, answers admin
/// verbs (merging backend responses where the verb fans out), forwards
/// routed lines raw to the tenant's pinned backend connection, and emits
/// responses strictly in input order.
class RouterHandler : public ConnectionHandler {
 public:
  RouterHandler(TenantRouter* router, std::ostream& out)
      : router_(router), out_(out) {}

  void ProcessLine(const std::string& line) override {
    ++line_no_;
    if (shutdown_) return;  // acknowledged; session ignores further input
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') return;
    HandleLine(line);
    if (pending_.size() >= kHandlerBatch) DrainPending();
  }

  void RejectLine(const Status& status) override {
    ++line_no_;
    if (shutdown_) return;
    pending_.push_back(TenantRouter::MakeCompletedSlot(
        line_no_, ErrorLine(JsonEscape(status.message()), line_no_)));
    // Same drain discipline as ProcessLine: a burst of back-pressure
    // rejects must not grow pending_ (or delay responses) unboundedly.
    if (pending_.size() >= kHandlerBatch) DrainPending();
  }

  void Flush() override {
    DrainPending();
    out_.flush();
  }

  void Finish() override {
    DrainPending();
    out_.flush();
  }

  bool shutdown_requested() const override { return shutdown_; }

 private:
  void Emit(std::string text) {
    pending_.push_back(TenantRouter::MakeCompletedSlot(line_no_, std::move(text)));
  }

  void DrainPending() {
    for (const std::shared_ptr<TenantRouter::Slot>& slot : pending_) {
      out_ << TenantRouter::WaitSlot(*slot) << "\n";
    }
    pending_.clear();
  }

  void HandleLine(const std::string& line) {
    // `migrate` is a router-only verb: the backends never see it, so it
    // is peeled off before the shared grammar.
    std::istringstream tokens(line);
    std::string head;
    tokens >> head;
    if (head == "migrate") {
      std::string tenant;
      std::string target;
      tokens >> tenant >> target;
      std::vector<std::string> spec_args;
      std::string arg;
      while (tokens >> arg) spec_args.push_back(arg);
      if (tenant.empty() || target.empty()) {
        Emit(ErrorLine(
            JsonEscape("migrate expects: migrate <tenant> <host:port> "
                       "[snapshot=<path> [deltas=<p1,p2>] [graph=<path>]]"),
            line_no_));
        return;
      }
      // A sequencing point like every admin verb: everything already
      // forwarded is answered before the move starts.
      DrainPending();
      Emit(router_->Migrate(tenant, target, spec_args, line_no_));
      return;
    }

    StatusOr<RoutedServeLine> parsed = ParseRoutedServeLine(line);
    if (!parsed.ok()) {
      Emit(ErrorLine(JsonEscape(parsed.status().message()), line_no_));
      return;
    }
    switch (parsed->admin) {
      case RoutedServeLine::Admin::kNone:
        break;
      case RoutedServeLine::Admin::kShutdown:
        // Drains the ROUTER's front; the backends keep serving (they
        // have their own shutdown verbs).
        shutdown_ = true;
        Emit("{\"query\": \"shutdown\", \"ok\": true}");
        return;
      case RoutedServeLine::Admin::kStats:
        DrainPending();
        Emit(router_->FanOutAdmin("stats", "stats", line_no_));
        return;
      case RoutedServeLine::Admin::kTenants:
        DrainPending();
        Emit(router_->FanOutAdmin("tenants", "tenants", line_no_));
        return;
      case RoutedServeLine::Admin::kMetrics: {
        DrainPending();
        const bool text = !parsed->admin_args.empty() &&
                          parsed->admin_args[0] == "text";
        Emit(router_->FanOutAdmin(text ? "metrics text" : "metrics",
                                  "metrics", line_no_));
        return;
      }
      case RoutedServeLine::Admin::kAttach: {
        // The shared parser defers attach validation to the backend,
        // but the tenant name IS the routing key — a bare `attach` has
        // no route, so answer with the backend's own arity error.
        if (parsed->admin_args.empty()) {
          Emit(ErrorLine(
              JsonEscape("'attach' expects: attach <name> snapshot=<path> "
                         "[deltas=<p1,p2>] [graph=<path>]"),
              line_no_));
          return;
        }
        // Synchronous: the spec is recorded only once the home backend
        // confirmed the attach.
        DrainPending();
        const std::string& tenant = parsed->admin_args[0];
        const int index = router_->BackendIndexFor(tenant);
        auto slot = router_->ForwardLine(index, tenant, line, line_no_);
        std::string response = TenantRouter::WaitSlot(*slot);
        if (!IsErrorLine(response)) {
          const std::vector<std::string> spec_args(
              parsed->admin_args.begin() + 1, parsed->admin_args.end());
          WriterLock lock(router_->route_mutex_);
          router_->specs_[tenant] = spec_args;
        }
        Emit(std::move(response));
        return;
      }
      case RoutedServeLine::Admin::kDetach: {
        DrainPending();
        const std::string& tenant = parsed->admin_args[0];
        const int index = router_->BackendIndexFor(tenant);
        auto slot = router_->ForwardLine(index, tenant, line, line_no_);
        std::string response = TenantRouter::WaitSlot(*slot);
        if (!IsErrorLine(response)) {
          // Clean slate: the tenant's next attach goes to its hash home.
          WriterLock lock(router_->route_mutex_);
          router_->specs_.erase(tenant);
          router_->overrides_.erase(tenant);
        }
        Emit(std::move(response));
        return;
      }
    }
    if (parsed->tenant.empty()) {
      Emit(ErrorLine(
          JsonEscape("the router serves routed lines (<tenant>:<verb> ...) "
                     "and admin verbs (attach | detach | tenants | stats | "
                     "metrics | migrate | shutdown); unrouted requests "
                     "need a direct `serve` session"),
          line_no_));
      return;
    }
    // A routed request: forward the RAW line — the backend's response
    // bytes are the client's response bytes.
    pending_.push_back(router_->ForwardLine(
        router_->BackendIndexFor(parsed->tenant), parsed->tenant, line,
        line_no_));
  }

  TenantRouter* const router_;
  std::ostream& out_;
  std::int64_t line_no_ = 0;
  bool shutdown_ = false;
  /// Response slots in input order; DrainPending awaits and emits them.
  std::vector<std::shared_ptr<TenantRouter::Slot>> pending_;
};

ConnectionHandlerFactory TenantRouter::HandlerFactory() {
  return [this](std::ostream& out) -> std::unique_ptr<ConnectionHandler> {
    return std::make_unique<RouterHandler>(this, out);
  };
}

}  // namespace nucleus
