// TenantRouter: the cross-process sharding tier of the serving stack.
//
// One `nucleus_cli route` process speaks the existing one-JSON-object-
// per-line protocol on the front and fans `<tenant>:<verb>` lines out to
// backend `serve --listen` processes over pooled persistent connections.
// The pieces, mirroring the peer-liveness / routing / cross-peer-stats
// layering of distributed stores:
//
//   * deterministic placement: a tenant's home backend is
//     JumpConsistentHash(FNV1a64(name), num_backends) over the backend
//     list IN ITS GIVEN ORDER — a pure function of (name, backend list),
//     so the same tenant set lands identically on every run and every
//     router replica (tests pin the constants). A migration installs a
//     per-tenant override on top of the hash.
//   * ordered forwarding: within its home backend a tenant is pinned to
//     ONE pooled connection (hash over the pool), so all of a tenant's
//     lines flow through a single ordered backend session — which is
//     what keeps per-tenant response slices byte-identical to a
//     dedicated single-backend replay. Successful responses are relayed
//     verbatim; error responses get their "line" field rewritten to the
//     front session's line number (the backend's own numbering is
//     meaningless to the client).
//   * bounded in-flight: each backend connection caps its
//     forwarded-but-unanswered lines; lines past the cap are rejected
//     with the same structured-error admission discipline the TCP tier
//     applies to its queues.
//   * health: a prober pings every backend with the `stats` verb on an
//     interval; a failed probe (or a torn connection) marks the backend
//     down, after which its tenants' lines fail fast with structured
//     errors until a probe succeeds again and the backend is re-admitted.
//   * migration: `migrate <tenant> <backend-addr> [spec args]` runs the
//     dirty-detach protocol — `detach` on the source persists pending
//     deltas and the latest graph, the router extends the recorded
//     attach spec with those artifacts, attaches on the target, then
//     flips the route override. Applied updates survive the move.
//   * merged observability: router-level `stats` / `metrics` / `tenants`
//     embed each backend's own JSON response verbatim under a
//     "backends" array next to the router's counters, and the router's
//     counters live in the ordinary obs registry (nucleus_router_*).
#ifndef NUCLEUS_SERVE_ROUTER_ROUTER_H_
#define NUCLEUS_SERVE_ROUTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nucleus/obs/metrics.h"
#include "nucleus/serve/net/tcp_server.h"
#include "nucleus/util/mutex.h"
#include "nucleus/util/status.h"

namespace nucleus {

/// FNV-1a 64-bit over the tenant name: the stable key the placement
/// hash consumes. Pinned by tests — changing it reshuffles every
/// deployment's tenant placement.
std::uint64_t RouterTenantKey(const std::string& tenant);

/// Lamport & Veach's jump-consistent hash: maps `key` to a bucket in
/// [0, num_buckets) such that growing the bucket count moves only
/// ~1/num_buckets of the keys. Pure function, fixed constants, pinned by
/// tests.
std::int32_t JumpConsistentHash(std::uint64_t key, std::int32_t num_buckets);

struct TenantRouterOptions {
  /// Backend addresses as numeric "host:port". ORDER IS PLACEMENT:
  /// position in this list is the hash bucket, so every router given the
  /// same list routes identically.
  std::vector<std::string> backends;
  /// Persistent connections per backend. A tenant is pinned to one of
  /// them, so the pool parallelizes across tenants, never within one.
  int pool_size = 2;
  /// Forwarded-but-unanswered lines per backend connection before new
  /// lines are rejected with a structured error.
  std::int64_t max_inflight = 1024;
  /// Health-probe cadence; <= 0 disables the prober thread (tests call
  /// CheckBackendsNow() directly).
  int health_interval_ms = 250;
  /// Deadline for one probe's connect + `stats` round trip.
  int health_timeout_ms = 2000;
  /// Metrics registry for the nucleus_router_* families (null = the
  /// process-global registry).
  obs::MetricsRegistry* metrics = nullptr;
};

class TenantRouter {
 public:
  explicit TenantRouter(TenantRouterOptions options);
  ~TenantRouter();

  TenantRouter(const TenantRouter&) = delete;
  TenantRouter& operator=(const TenantRouter&) = delete;

  /// Validates addresses, probes every backend once (unreachable ones
  /// start down rather than failing startup — they re-admit when their
  /// probe first succeeds), and starts the prober thread.
  Status Start();

  /// Stops the prober and closes every backend connection. Called by the
  /// destructor; must not run while front connections are still being
  /// served (stop the front TcpServer first).
  void Stop();

  /// Builds the per-connection protocol handlers for the front
  /// TcpServer: TcpServer(router.HandlerFactory(), options).
  ConnectionHandlerFactory HandlerFactory();

  /// Installs the front server's live stats hook, embedded as the
  /// "server" field of the router-level `stats` response.
  void set_server_stats_json(std::function<std::string()> hook) {
    server_stats_json_ = std::move(hook);
  }

  /// Deterministic routing decision for `tenant`, override table
  /// included.
  int BackendIndexFor(const std::string& tenant) const;

  int num_backends() const { return static_cast<int>(backends_.size()); }
  const std::string& backend_address(int index) const;

  /// Whether the backend currently passes health checks.
  bool backend_up(int index) const;

  /// One synchronous health pass over every backend (the prober's body).
  void CheckBackendsNow();

 private:
  friend class RouterHandler;

  struct Slot;
  struct BackendConn;
  struct Backend;

  /// Completes `slot` with `text` (first completion wins) / blocks until
  /// `slot` completes and returns its text.
  static void CompleteSlot(Slot& slot, std::string text);
  static std::string WaitSlot(Slot& slot);
  static std::shared_ptr<Slot> MakeCompletedSlot(std::int64_t line_no,
                                                 std::string text);

  /// Forwards one raw protocol line to (backend, conn), returning the
  /// slot its response will complete. Returns a pre-completed error slot
  /// when the backend is down, unreachable, or at its in-flight cap.
  std::shared_ptr<Slot> ForwardLine(int backend_index,
                                    const std::string& tenant,
                                    const std::string& raw_line,
                                    std::int64_t line_no);
  std::shared_ptr<Slot> ForwardToConn(Backend& backend, BackendConn& conn,
                                      const std::string& raw_line,
                                      std::int64_t line_no);

  Status EnsureConnected(Backend& backend, BackendConn& conn);
  void ReaderLoop(Backend* backend, BackendConn* conn, int fd);
  void FailConnLocked(Backend& backend, BackendConn& conn,
                      const std::string& reason) REQUIRES(conn.mutex);
  int ConnIndexFor(const std::string& tenant) const;

  bool ProbeBackend(Backend& backend);
  /// Half-kills every live connection of a down backend (shutdown(2) on
  /// the fd) so each reader exits and fails its in-flight slots — the
  /// unblocking path for front workers waiting on a wedged backend.
  void TearBackendConns(Backend& backend);
  void ProberLoop();

  /// `migrate <tenant> <target-addr> [spec args]`, synchronous; returns
  /// the response line (without trailing newline).
  std::string Migrate(const std::string& tenant,
                      const std::string& target_address,
                      const std::vector<std::string>& spec_args,
                      std::int64_t line_no);

  /// Fan one admin verb line out to every up backend and merge the
  /// verbatim responses under a "backends" array.
  std::string FanOutAdmin(const std::string& raw_line,
                          const std::string& query_name,
                          std::int64_t line_no);

  std::string RouterStatsJson() const;

  const TenantRouterOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;

  /// Route overrides (migrations) and remembered attach specs, keyed by
  /// tenant. Reads are per forwarded line, writes only on
  /// attach/detach/migrate.
  mutable SharedMutex route_mutex_;
  std::unordered_map<std::string, int> overrides_ GUARDED_BY(route_mutex_);
  std::unordered_map<std::string, std::vector<std::string>> specs_
      GUARDED_BY(route_mutex_);

  std::function<std::string()> server_stats_json_;

  std::thread prober_;
  int prober_wake_[2] = {-1, -1};  // self-pipe: Stop interrupts the nap
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  std::atomic<std::int64_t> lines_forwarded_{0};
  std::atomic<std::int64_t> lines_rejected_{0};
  std::atomic<std::int64_t> backend_failures_{0};
  std::atomic<std::int64_t> migrations_{0};

  obs::MetricsRegistry* const metrics_;
  obs::Counter* const m_forwarded_;
  obs::Counter* const m_rejected_;
  obs::Counter* const m_failures_;
  obs::Counter* const m_migrations_;
  obs::Gauge* const m_backends_up_;
};

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_ROUTER_ROUTER_H_
