#include "nucleus/serve/snapshot_registry.h"

#include <chrono>
#include <cstddef>
#include <optional>
#include <utility>

#include "nucleus/graph/edge_list_io.h"
#include "nucleus/obs/metrics.h"
#include "nucleus/store/delta.h"
#include "nucleus/store/snapshot_source.h"

namespace nucleus {
namespace {

/// Status with the same code, message prefixed by the tenant name — every
/// per-tenant failure names its tenant so a multi-tenant operator log
/// stays attributable.
Status TenantError(const std::string& name, const Status& status) {
  return Status(status.code(), "tenant '" + name + "': " + status.message());
}

/// Rough live footprint of the incremental maintainer (adjacency sets +
/// lambda array) a live tenant keeps next to its engine.
std::int64_t EstimateLiveBytes(const Graph& g) {
  // Adjacency as hash sets costs well over the CSR's 4 bytes per
  // directed edge; 16 is a defensible average across load factors.
  return 16 * 2 * g.NumEdges() + 8 * static_cast<std::int64_t>(g.NumVertices());
}

}  // namespace

std::int64_t EstimateResidentBytes(const SnapshotData& snapshot) {
  return EstimateSnapshotHeapBytes(snapshot);
}

SnapshotRegistry::SnapshotRegistry(const RegistryOptions& options)
    : options_(options) {}

StatusOr<std::shared_ptr<SnapshotRegistry::Resident>>
SnapshotRegistry::LoadResident(const SnapshotRegistry* self,
                               const TenantSpec& spec,
                               const RegistryOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  StatusOr<std::shared_ptr<Resident>> result =
      LoadResidentImpl(self, spec, options);
  if (obs::MetricsEnabled()) {
    const std::int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    obs::MetricsRegistry& m = obs::MetricsRegistry::Global();
    m.GetHistogram("nucleus_registry_load_us", spec.name)->Observe(us);
    m.GetCounter(result.ok() ? "nucleus_registry_loads_total"
                             : "nucleus_registry_load_failures_total",
                 spec.name)
        ->Increment();
  }
  return result;
}

StatusOr<std::shared_ptr<SnapshotRegistry::Resident>>
SnapshotRegistry::LoadResidentImpl(const SnapshotRegistry* self,
                                   const TenantSpec& spec,
                                   const RegistryOptions& options) {
  if (options.load_hook) options.load_hook(spec.name);
  if (spec.graph_path.empty()) {
    // Read-only tenant: honor the registry's memory mode. kMmap maps a
    // v2 file zero-copy (OpenSnapshotSource falls back to heap for v1);
    // either way the engine reports its own heap/mapped split, which is
    // what the budget charges.
    StatusOr<std::shared_ptr<const SnapshotSource>> source =
        OpenSnapshotSource(spec.snapshot_path, options.memory_mode);
    if (!source.ok()) return source.status();
    std::unique_ptr<QueryEngine> engine =
        QueryEngine::FromSource(std::move(*source), options.engine);
    const std::int64_t heap = engine->HeapBytes();
    const std::int64_t mapped = engine->MappedBytes();
    return std::make_shared<Resident>(self, std::move(engine), heap, mapped);
  }
  // Live tenant: the graph is loaded next to the snapshot (or delta
  // chain), paired through the fingerprint check inside
  // LiveUpdater::Create / ResolveChain, and kept — as the maintainer's
  // adjacency — so the update verb can serve.
  StatusOr<Graph> graph = ReadEdgeList(spec.graph_path);
  if (!graph.ok()) return graph.status();
  std::optional<ChainLink> link;
  StatusOr<SnapshotData> snapshot = Status::Internal("unset");
  if (spec.delta_paths.empty()) {
    snapshot = LoadSnapshot(spec.snapshot_path);
  } else {
    std::vector<std::string> paths{spec.snapshot_path};
    paths.insert(paths.end(), spec.delta_paths.begin(),
                 spec.delta_paths.end());
    ChainLink resolved;
    snapshot = ResolveChain(paths, *graph, &resolved);
    if (snapshot.ok()) link = resolved;
  }
  if (!snapshot.ok()) return snapshot.status();
  StatusOr<std::unique_ptr<LiveUpdater>> updater =
      LiveUpdater::Create(*graph, *snapshot, link);
  if (!updater.ok()) return updater.status();
  const std::int64_t live_bytes = EstimateLiveBytes(*graph);
  std::unique_ptr<QueryEngine> engine =
      QueryEngine::FromSnapshotData(std::move(*snapshot), options.engine);
  const std::int64_t heap = engine->HeapBytes() + live_bytes;
  auto resident =
      std::make_shared<Resident>(self, std::move(engine), heap, /*mapped=*/0);
  resident->updater = std::move(*updater);
  return resident;
}

Status SnapshotRegistry::Attach(const TenantSpec& spec) {
  if (Status s = ValidateTenantSpec(spec); !s.ok()) return s;
  MutexLock lock(mutex_);
  if (tenants_.count(spec.name) != 0) {
    return Status::InvalidArgument("tenant '" + spec.name +
                                   "' is already attached");
  }
  // Eager load: a broken tenant fails HERE, attributable and atomic —
  // nothing is registered on failure and the other tenants never notice.
  StatusOr<std::shared_ptr<Resident>> resident =
      LoadResident(this, spec, options_);
  if (!resident.ok()) return TenantError(spec.name, resident.status());
  Tenant tenant;
  tenant.spec = spec;
  tenant.resident = std::move(*resident);
  tenant.loads = 1;
  tenant.last_used = ++tick_;
  resident_bytes_ += tenant.resident->heap_bytes;
  mapped_bytes_ += tenant.resident->mapped_bytes;
  tenants_.emplace(spec.name, std::move(tenant));
  EvictLocked();
  return Status::Ok();
}

Status SnapshotRegistry::AttachManifest(const RegistryManifest& manifest) {
  // Atomic: a manifest either attaches whole or not at all. On the first
  // failure every tenant this call already attached is rolled back — a
  // fresh attach is clean by construction, so the rollback detaches
  // without persistence concerns. Attach itself prefixes the failing
  // tenant's name.
  std::vector<std::string> attached;
  attached.reserve(manifest.tenants.size());
  for (const TenantSpec& spec : manifest.tenants) {
    if (Status s = Attach(spec); !s.ok()) {
      for (auto it = attached.rbegin(); it != attached.rend(); ++it) {
        // Best-effort rollback: the original attach failure is the error
        // the caller needs; a forced detach of a just-attached (clean)
        // tenant cannot lose data.
        (void)Detach(*it, /*force=*/true);
      }
      return s;
    }
    attached.push_back(spec.name);
  }
  return Status::Ok();
}

Status SnapshotRegistry::PersistDirtyLocked(
    Tenant& tenant, std::vector<std::string>* persisted) {
  Resident& resident = *tenant.resident;
  if (resident.updater == nullptr) {
    return Status::Internal("dirty tenant has no live updater");
  }
  // The apply mutex is held by every in-flight update across Apply +
  // engine swap + MarkUpdated, so holding it here freezes one consistent
  // state for the whole persist: the pending queue cannot grow between
  // the copy below and the clear at the end (a delta landing in that
  // window would be cleared without ever being written), and the graph
  // serialized below matches the drained deltas exactly. Lock order is
  // mutex_ -> apply_mutex -> pending_mutex; MarkUpdated takes only the
  // tail of the chain, so the orders compose without a cycle.
  MutexLock apply_lock(resident.updater->apply_mutex());
  std::vector<DeltaData> pending;
  {
    MutexLock pending_lock(resident.pending_mutex);
    pending = resident.pending_deltas;
  }
  if (pending.empty()) {
    return Status::InvalidArgument(
        "tenant has unpersisted updates but no recorded delta batches; "
        "'detach " + tenant.spec.name + " force' discards them");
  }
  // Non-destructive layout: pending deltas continue the spec's chain next
  // to the snapshot, the current graph lands next to the original graph
  // file. Re-attaching with snapshot=<orig> deltas=<orig,+pending>
  // graph=<graph>.latest resolves to exactly the detached state.
  std::vector<std::string> written;
  std::size_t chain_index = tenant.spec.delta_paths.size();
  for (const DeltaData& delta : pending) {
    const std::string path = tenant.spec.snapshot_path + ".pending" +
                             std::to_string(++chain_index) + ".nucdelta";
    if (Status s = SaveDelta(delta, path); !s.ok()) return s;
    written.push_back(path);
  }
  const std::string graph_path = tenant.spec.graph_path + ".latest";
  const Graph g = resident.updater->maintainer().ToGraph();
  if (Status s = WriteEdgeList(g, graph_path); !s.ok()) return s;
  written.push_back(graph_path);
  {
    // Erase exactly what was copied (not clear()): even if a caller ever
    // ran this without the apply lock excluding new updates, a delta that
    // arrived mid-persist would survive for the next persist instead of
    // being dropped unwritten, and the tenant would stay dirty.
    MutexLock pending_lock(resident.pending_mutex);
    resident.pending_deltas.erase(
        resident.pending_deltas.begin(),
        resident.pending_deltas.begin() +
            static_cast<std::ptrdiff_t>(pending.size()));
    if (resident.pending_deltas.empty()) {
      resident.dirty.store(false, std::memory_order_relaxed);
    }
  }
  if (persisted != nullptr) *persisted = std::move(written);
  return Status::Ok();
}

Status SnapshotRegistry::Detach(const std::string& name, bool force,
                                std::vector<std::string>* persisted) {
  MutexLock lock(mutex_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + name + "'");
  }
  Tenant& tenant = it->second;
  if (tenant.resident != nullptr &&
      tenant.resident->dirty.load(std::memory_order_relaxed) && !force) {
    // Unpersisted updates never vanish silently: write them out, or (on
    // failure) refuse and leave the tenant attached and retryable.
    if (Status s = PersistDirtyLocked(tenant, persisted); !s.ok()) {
      return TenantError(name, s);
    }
  }
  if (tenant.resident != nullptr) {
    // Budget accounting drops now; a live Lease keeps the state itself
    // alive (shared_ptr) until the in-flight batch finishes — including
    // an mmap tenant's mapping, which unmaps when the last lease goes.
    resident_bytes_ -= tenant.resident->heap_bytes;
    mapped_bytes_ -= tenant.resident->mapped_bytes;
    LruCacheStats cache = tenant.resident->engine->CacheStats();
    cache.bytes = 0;  // counters only: the detached engine's bytes free
    cache.entries = 0;
    detached_cache_.Add(cache);
  }
  // The tenant's whole counter lineage (engines it retired via eviction
  // included) folds into the registry aggregate — mirror of the eviction
  // path's retired_cache.Add, one level up.
  detached_cache_.Add(tenant.retired_cache);
  ++detaches_;
  tenants_.erase(it);
  return Status::Ok();
}

StatusOr<SnapshotRegistry::Lease> SnapshotRegistry::Acquire(
    const std::string& name) {
  MutexLock lock(mutex_);
  for (;;) {
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::NotFound("unknown tenant '" + name +
                              "' (attach it first)");
    }
    Tenant& tenant = it->second;
    if (tenant.resident != nullptr) {
      ++tenant.hits;
      tenant.last_used = ++tick_;
      tenant.resident->pins.fetch_add(1, std::memory_order_relaxed);
      std::shared_ptr<Resident> resident = tenant.resident;
      EvictLocked();  // the just-pinned tenant is exempt; others may go
      return Lease(this, name, std::move(resident));
    }

    if (tenant.loading != nullptr) {
      // Another Acquire is already re-loading this tenant: coalesce onto
      // its latch instead of loading twice. Each waiter reports the
      // outcome individually; on success the loop re-finds the installed
      // resident (or whatever detach/attach did meanwhile).
      std::shared_ptr<LoadState> state = tenant.loading;
      while (!state->done) load_cv_.wait(lock.native());
      if (!state->status.ok()) return TenantError(name, state->status);
      continue;
    }

    // Become the loader. The latch keeps this tenant's re-load exclusive
    // while the mutex is DROPPED for the disk work, so resident tenants
    // keep serving and other evicted tenants load concurrently.
    auto state = std::make_shared<LoadState>();
    tenant.loading = state;
    const TenantSpec spec = tenant.spec;
    lock.Unlock();
    StatusOr<std::shared_ptr<Resident>> loaded =
        LoadResident(this, spec, options_);
    lock.Lock();
    state->status = loaded.ok() ? Status::Ok() : loaded.status();
    state->done = true;
    auto it2 = tenants_.find(name);
    if (it2 != tenants_.end() && it2->second.loading == state) {
      it2->second.loading.reset();
    }
    load_cv_.notify_all();
    if (!loaded.ok()) {
      // Reported per-Acquire; the latch is cleared, so the tenant stays
      // attached and the next Acquire retries the load.
      return TenantError(name, loaded.status());
    }
    if (it2 == tenants_.end()) {
      return Status::NotFound("tenant '" + name +
                              "' was detached during re-load");
    }
    Tenant& current = it2->second;
    if (current.resident == nullptr) {
      current.resident = std::move(*loaded);
      ++current.loads;
      resident_bytes_ += current.resident->heap_bytes;
      mapped_bytes_ += current.resident->mapped_bytes;
    } else {
      // Detached and re-attached while we were loading: serve the fresh
      // attach's state and drop ours.
      ++current.hits;
    }
    current.last_used = ++tick_;
    current.resident->pins.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<Resident> resident = current.resident;
    EvictLocked();
    return Lease(this, name, std::move(resident));
  }
}

void SnapshotRegistry::EvictLocked() {
  if (options_.memory_budget_bytes <= 0) return;
  while (resident_bytes_ > options_.memory_budget_bytes) {
    Tenant* victim = nullptr;
    const std::string* victim_name = nullptr;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.resident == nullptr) continue;
      if (tenant.resident->pins.load(std::memory_order_relaxed) > 0) {
        continue;  // a batch is in flight: never pull its state
      }
      if (tenant.resident->dirty.load(std::memory_order_relaxed)) {
        continue;  // unpersisted updates: eviction would roll back
      }
      if (victim == nullptr || tenant.last_used < victim->last_used) {
        victim = &tenant;
        victim_name = &name;
      }
    }
    if (victim == nullptr) return;  // budget is best-effort under pinning
    const auto evict_start = std::chrono::steady_clock::now();
    LruCacheStats cache = victim->resident->engine->CacheStats();
    // The evicted engine's cached bytes are freed with it: fold only the
    // counter lineage, not the (now meaningless) byte gauge.
    cache.bytes = 0;
    cache.entries = 0;
    victim->retired_cache.Add(cache);
    resident_bytes_ -= victim->resident->heap_bytes;
    mapped_bytes_ -= victim->resident->mapped_bytes;
    // For an mmap tenant this reset IS the munmap (absent leases): the
    // mapping goes with the source, and the file pages become ordinary
    // page-cache entries the kernel may keep or drop.
    victim->resident.reset();
    ++victim->evictions;
    if (obs::MetricsEnabled()) {
      const std::int64_t us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - evict_start)
              .count();
      obs::MetricsRegistry& m = obs::MetricsRegistry::Global();
      m.GetCounter("nucleus_registry_evictions_total", *victim_name)
          ->Increment();
      m.GetHistogram("nucleus_registry_evict_us", *victim_name)->Observe(us);
    }
  }
}

void SnapshotRegistry::MarkUpdated(const std::shared_ptr<Resident>& resident,
                                   const DeltaData* delta) {
  // Deliberately touches no registry state (the update counter lives on
  // the resident): callers arrive holding the updater's apply mutex, and
  // taking mutex_ here would deadlock against PersistDirtyLocked, which
  // acquires the two in the opposite order. Queue, flag and counter move
  // under pending_mutex so a persist's drain sees them as one unit.
  MutexLock pending_lock(resident->pending_mutex);
  if (delta != nullptr) resident->pending_deltas.push_back(*delta);
  resident->dirty.store(true, std::memory_order_relaxed);
  resident->updates.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::string> SnapshotRegistry::TenantNames() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;  // std::map iteration order is already sorted
}

StatusOr<TenantStats> SnapshotRegistry::Stats(const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + name + "'");
  }
  const Tenant& tenant = it->second;
  TenantStats stats;
  stats.resident = tenant.resident != nullptr;
  stats.live = !tenant.spec.graph_path.empty();
  stats.loads = tenant.loads;
  stats.evictions = tenant.evictions;
  stats.hits = tenant.hits;
  stats.cache = tenant.retired_cache;
  if (tenant.resident != nullptr) {
    // The counter lives on the resident; an EVICTED tenant's count is
    // always 0 (updates dirty a resident and dirty residents are never
    // evicted), so reading it only while resident loses nothing.
    stats.updates = tenant.resident->updates.load(std::memory_order_relaxed);
    stats.dirty = tenant.resident->dirty.load(std::memory_order_relaxed);
    stats.pins = tenant.resident->pins.load(std::memory_order_relaxed);
    stats.resident_bytes = tenant.resident->heap_bytes;
    stats.heap_bytes = tenant.resident->heap_bytes;
    stats.mapped_bytes = tenant.resident->mapped_bytes;
    const LruCacheStats resident_cache =
        tenant.resident->engine->CacheStats();
    stats.cache.Add(resident_cache);
    stats.cache.entries = resident_cache.entries;  // gauges: resident only
    stats.cache.bytes = resident_cache.bytes;
  }
  return stats;
}

RegistrySummary SnapshotRegistry::Summary() const {
  MutexLock lock(mutex_);
  RegistrySummary summary;
  summary.tenants = static_cast<std::int64_t>(tenants_.size());
  summary.resident_bytes = resident_bytes_;
  summary.mapped_bytes = mapped_bytes_;
  summary.budget_bytes = options_.memory_budget_bytes;
  summary.detaches = detaches_;
  summary.detached_cache = detached_cache_;
  return summary;
}

std::int64_t SnapshotRegistry::ResidentBytes() const {
  MutexLock lock(mutex_);
  return resident_bytes_;
}

SnapshotRegistry::Lease::Lease(Lease&& other) noexcept
    : registry_(other.registry_),
      name_(std::move(other.name_)),
      resident_(std::move(other.resident_)) {
  other.registry_ = nullptr;
}

SnapshotRegistry::Lease& SnapshotRegistry::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    name_ = std::move(other.name_);
    resident_ = std::move(other.resident_);
    other.registry_ = nullptr;
  }
  return *this;
}

SnapshotRegistry::Lease::~Lease() { Release(); }

void SnapshotRegistry::Lease::Release() {
  if (resident_ != nullptr) {
    resident_->pins.fetch_sub(1, std::memory_order_relaxed);
    resident_.reset();
    // The drop may have turned an over-budget overshoot (tolerated while
    // pinned) into evictable idleness; re-enforce now rather than waiting
    // for the next Acquire, which may never come on an idle registry.
    if (registry_ != nullptr) registry_->EnforceBudget();
  }
  registry_ = nullptr;
}

void SnapshotRegistry::EnforceBudget() {
  MutexLock lock(mutex_);
  EvictLocked();
}

void SnapshotRegistry::Lease::MarkUpdated() {
  if (resident_ != nullptr) SnapshotRegistry::MarkUpdated(resident_, nullptr);
}

void SnapshotRegistry::Lease::MarkUpdated(const DeltaData& delta) {
  if (resident_ != nullptr) SnapshotRegistry::MarkUpdated(resident_, &delta);
}

void PublishRegistryMetrics(const SnapshotRegistry& registry,
                            obs::MetricsRegistry& m) {
  const RegistrySummary summary = registry.Summary();
  // Unlabeled children are the registry-wide aggregates; the per-tenant
  // values join the same families under their tenant label.
  m.GetGauge("nucleus_registry_tenants")
      ->Set(static_cast<double>(summary.tenants));
  m.GetGauge("nucleus_registry_resident_bytes")
      ->Set(static_cast<double>(summary.resident_bytes));
  m.GetGauge("nucleus_registry_mapped_bytes")
      ->Set(static_cast<double>(summary.mapped_bytes));
  m.GetGauge("nucleus_registry_budget_bytes")
      ->Set(static_cast<double>(summary.budget_bytes));
  for (const std::string& name : registry.TenantNames()) {
    const StatusOr<TenantStats> stats = registry.Stats(name);
    if (!stats.ok()) continue;  // detached between calls
    m.GetGauge("nucleus_registry_resident_bytes", name)
        ->Set(static_cast<double>(stats->resident_bytes));
    m.GetGauge("nucleus_registry_mapped_bytes", name)
        ->Set(static_cast<double>(stats->mapped_bytes));
    m.GetGauge("nucleus_cache_hit_ratio", name)
        ->Set(stats->cache.HitRatio());
    m.GetGauge("nucleus_cache_bytes", name)
        ->Set(static_cast<double>(stats->cache.bytes));
  }
}

}  // namespace nucleus
