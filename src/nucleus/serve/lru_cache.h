// Sharded LRU cache for query-serving materializations.
//
// The QueryEngine's hot path is pointer-chasing over immutable arrays and
// needs no synchronization; the one mutable structure is this cache, which
// memoizes expensive materializations (full member lists of a nucleus
// subtree). Sharding by key hash keeps concurrent batch workers from
// serializing on a single mutex; values are handed out as
// shared_ptr<const V> so an entry evicted mid-use stays alive for the
// caller that holds it.
#ifndef NUCLEUS_SERVE_LRU_CACHE_H_
#define NUCLEUS_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nucleus/util/common.h"
#include "nucleus/util/mutex.h"

namespace nucleus {

struct LruCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  /// Currently resident entries (a gauge, not a counter) — makes eviction
  /// behaviour observable: entries stays bounded by capacity while
  /// `evictions` counts the overflow.
  std::int64_t entries = 0;
  /// Estimated bytes of the resident entries (a gauge, like `entries`).
  /// For an mmap-served tenant this is the engine's whole heap-resident
  /// hot set, so the stats verb reports it per tenant.
  std::int64_t bytes = 0;

  /// Merges `other` into this: the counters, plus the `bytes` gauge —
  /// summing bytes is what makes per-shard stats compose into one cache
  /// total. Aggregators folding a RETIRED cache (whose bytes are freed)
  /// zero `other.bytes` first; see the snapshot registry's evict/detach
  /// paths. `entries` stays excluded: a merged entry count is meaningful
  /// only for live shards, and Stats() sums those directly.
  void Add(const LruCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    bytes += other.bytes;
  }

  /// Derived hit ratio in [0, 1]; 0 when no lookups were recorded. Every
  /// GetOrCompute contributes exactly one of {hit, miss}, so
  /// hits + misses == lookups and this is hits / lookups.
  double HitRatio() const {
    const std::int64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  }
};

/// Byte cost of a cached value, for the cache's optional byte budget. The
/// generic overload prices the object header only; containers get the
/// overloads below. Callers caching a new value type with meaningful
/// out-of-line storage should add an overload next to these.
template <typename V>
std::int64_t LruEntryBytes(const V&) {
  return static_cast<std::int64_t>(sizeof(V));
}

template <typename T>
std::int64_t LruEntryBytes(const std::vector<T>& value) {
  return static_cast<std::int64_t>(sizeof(std::vector<T>)) +
         static_cast<std::int64_t>(value.capacity()) *
             static_cast<std::int64_t>(sizeof(T));
}

template <typename K, typename V>
class ShardedLruCache {
 public:
  /// `entries_per_shard` >= 1; `num_shards` >= 1 (rounded up to a power of
  /// two so shard selection is a mask). `max_bytes_per_shard` adds an
  /// optional byte budget (0 = entry capacity only): a shard over EITHER
  /// limit evicts from the LRU end, but never below one entry, so a single
  /// oversized materialization is still served and cached.
  ShardedLruCache(std::size_t entries_per_shard, std::size_t num_shards,
                  std::size_t max_bytes_per_shard = 0)
      : capacity_(entries_per_shard >= 1 ? entries_per_shard : 1),
        max_bytes_(static_cast<std::int64_t>(max_bytes_per_shard)) {
    std::size_t shards = 1;
    while (shards < num_shards) shards <<= 1;
    shards_ = std::vector<Shard>(shards);
  }

  /// Returns the cached value for `key`, computing (outside any lock) and
  /// inserting it on a miss. Two threads racing on the same missing key may
  /// both compute; one result wins the slot — acceptable for pure
  /// memoization, and it keeps arbitrary compute out of the critical
  /// section. `compute` is a template parameter (not std::function): the
  /// hit path pays no type-erasure allocation.
  template <typename ComputeFn>
  std::shared_ptr<const V> GetOrCompute(const K& key,
                                        const ComputeFn& compute) {
    Shard& shard = ShardOf(key);
    {
      MutexLock lock(shard.mutex);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        shard.order.splice(shard.order.begin(), shard.order, it->second);
        ++shard.stats.hits;
        return it->second->second;
      }
      ++shard.stats.misses;
    }
    auto value = std::make_shared<const V>(compute());
    MutexLock lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // A racing computation landed first; adopt its value. This lookup
      // was served FROM the cache after all, so reclassify the miss
      // recorded above as a hit — every GetOrCompute contributes exactly
      // one of {hit, miss}, and `misses` counts exactly the calls whose
      // computation filled a slot, which is what hit-rate telemetry
      // means by a miss.
      ++shard.stats.hits;
      --shard.stats.misses;
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return it->second->second;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.order.begin());
    shard.bytes += LruEntryBytes(*shard.order.front().second);
    while (shard.map.size() > 1 &&
           (shard.map.size() > capacity_ ||
            (max_bytes_ > 0 && shard.bytes > max_bytes_))) {
      shard.bytes -= LruEntryBytes(*shard.order.back().second);
      shard.map.erase(shard.order.back().first);
      shard.order.pop_back();
      ++shard.stats.evictions;
    }
    return shard.order.front().second;
  }

  /// Aggregated over all shards via LruCacheStats::Add (counters +
  /// bytes); `entries` is summed directly since every shard here is live.
  LruCacheStats Stats() const {
    LruCacheStats total;
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mutex);
      LruCacheStats slice = shard.stats;
      slice.bytes = shard.bytes;
      total.Add(slice);
      total.entries += static_cast<std::int64_t>(shard.map.size());
    }
    return total;
  }

  std::size_t NumShards() const { return shards_.size(); }

 private:
  using Entry = std::pair<K, std::shared_ptr<const V>>;
  struct Shard {
    mutable Mutex mutex;
    // Most-recently-used first.
    std::list<Entry> order GUARDED_BY(mutex);
    std::unordered_map<K, typename std::list<Entry>::iterator> map
        GUARDED_BY(mutex);
    LruCacheStats stats GUARDED_BY(mutex);
    // Resident entry bytes (LruEntryBytes sum).
    std::int64_t bytes GUARDED_BY(mutex) = 0;
  };

  Shard& ShardOf(const K& key) {
    return shards_[std::hash<K>{}(key) & (shards_.size() - 1)];
  }

  const std::size_t capacity_;
  const std::int64_t max_bytes_;
  std::vector<Shard> shards_;
};

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_LRU_CACHE_H_
