// Sharded LRU cache for query-serving materializations.
//
// The QueryEngine's hot path is pointer-chasing over immutable arrays and
// needs no synchronization; the one mutable structure is this cache, which
// memoizes expensive materializations (full member lists of a nucleus
// subtree). Sharding by key hash keeps concurrent batch workers from
// serializing on a single mutex; values are handed out as
// shared_ptr<const V> so an entry evicted mid-use stays alive for the
// caller that holds it.
#ifndef NUCLEUS_SERVE_LRU_CACHE_H_
#define NUCLEUS_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nucleus/util/common.h"

namespace nucleus {

struct LruCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  /// Currently resident entries (a gauge, not a counter) — makes eviction
  /// behaviour observable: entries stays bounded by capacity while
  /// `evictions` counts the overflow.
  std::int64_t entries = 0;

  /// Merges COUNTERS from `other` into this. Used to keep one logical
  /// stats stream per tenant across cache generations (the snapshot
  /// registry accumulates a retiring engine's counters before dropping
  /// it). `entries` is a gauge of a live cache, not a counter: a retired
  /// cache's entries are gone, so Add deliberately leaves it alone and
  /// aggregators set it from the currently resident cache only.
  void Add(const LruCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
  }
};

template <typename K, typename V>
class ShardedLruCache {
 public:
  /// `entries_per_shard` >= 1; `num_shards` >= 1 (rounded up to a power of
  /// two so shard selection is a mask).
  ShardedLruCache(std::size_t entries_per_shard, std::size_t num_shards)
      : capacity_(entries_per_shard >= 1 ? entries_per_shard : 1) {
    std::size_t shards = 1;
    while (shards < num_shards) shards <<= 1;
    shards_ = std::vector<Shard>(shards);
  }

  /// Returns the cached value for `key`, computing (outside any lock) and
  /// inserting it on a miss. Two threads racing on the same missing key may
  /// both compute; one result wins the slot — acceptable for pure
  /// memoization, and it keeps arbitrary compute out of the critical
  /// section. `compute` is a template parameter (not std::function): the
  /// hit path pays no type-erasure allocation.
  template <typename ComputeFn>
  std::shared_ptr<const V> GetOrCompute(const K& key,
                                        const ComputeFn& compute) {
    Shard& shard = ShardOf(key);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        shard.order.splice(shard.order.begin(), shard.order, it->second);
        ++shard.stats.hits;
        return it->second->second;
      }
      ++shard.stats.misses;
    }
    auto value = std::make_shared<const V>(compute());
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // A racing computation landed first; adopt its value. This lookup
      // was served FROM the cache after all, so reclassify the miss
      // recorded above as a hit — every GetOrCompute contributes exactly
      // one of {hit, miss}, and `misses` counts exactly the calls whose
      // computation filled a slot, which is what hit-rate telemetry
      // means by a miss.
      ++shard.stats.hits;
      --shard.stats.misses;
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return it->second->second;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.order.begin());
    if (shard.map.size() > capacity_) {
      shard.map.erase(shard.order.back().first);
      shard.order.pop_back();
      ++shard.stats.evictions;
    }
    return shard.order.front().second;
  }

  /// Aggregated over all shards.
  LruCacheStats Stats() const {
    LruCacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.evictions += shard.stats.evictions;
      total.entries += static_cast<std::int64_t>(shard.map.size());
    }
    return total;
  }

  std::size_t NumShards() const { return shards_.size(); }

 private:
  using Entry = std::pair<K, std::shared_ptr<const V>>;
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> order;  // most-recently-used first
    std::unordered_map<K, typename std::list<Entry>::iterator> map;
    LruCacheStats stats;
  };

  Shard& ShardOf(const K& key) {
    return shards_[std::hash<K>{}(key) & (shards_.size() - 1)];
  }

  const std::size_t capacity_;
  std::vector<Shard> shards_;
};

}  // namespace nucleus

#endif  // NUCLEUS_SERVE_LRU_CACHE_H_
