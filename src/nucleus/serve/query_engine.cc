#include "nucleus/serve/query_engine.h"

#include <algorithm>
#include <mutex>
#include <string>
#include <utility>

namespace nucleus {
namespace {

Status InvalidClique(const char* what, std::int64_t value,
                     std::int64_t num_cliques) {
  return Status::InvalidArgument(std::string(what) + " id " +
                                 std::to_string(value) +
                                 " out of range [0, " +
                                 std::to_string(num_cliques) + ")");
}

}  // namespace

std::shared_ptr<QueryEngine::State> QueryEngine::BuildState(
    SnapshotData snapshot, std::uint64_t epoch) {
  auto state = std::make_shared<State>();
  state->snapshot = std::move(snapshot);
  state->epoch = epoch;
  if (state->snapshot.has_index) {
    state->index.emplace(state->snapshot.hierarchy,
                         std::move(state->snapshot.index_tables));
  } else {
    state->index.emplace(state->snapshot.hierarchy);
  }
  const NucleusHierarchy& h = state->snapshot.hierarchy;
  state->density_ranking.reserve(static_cast<std::size_t>(h.NumNuclei()));
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (h.node(id).lambda >= 1) state->density_ranking.push_back(id);
  }
  std::sort(state->density_ranking.begin(), state->density_ranking.end(),
            [&h](std::int32_t a, std::int32_t b) {
              if (h.node(a).lambda != h.node(b).lambda) {
                return h.node(a).lambda > h.node(b).lambda;
              }
              return a < b;
            });
  return state;
}

QueryEngine::QueryEngine(SnapshotData snapshot,
                         const QueryEngineOptions& options)
    : state_(BuildState(std::move(snapshot), 0)),
      members_cache_(options.cache_entries_per_shard, options.cache_shards) {}

std::shared_ptr<const QueryEngine::State> QueryEngine::CurrentState() const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return state_;
}

Status QueryEngine::ApplyUpdate(SnapshotData snapshot) {
  const std::shared_ptr<const State> current = CurrentState();
  const SnapshotMeta& now = current->snapshot.meta;
  if (snapshot.meta.family != now.family) {
    return Status::InvalidArgument(
        "update snapshot family does not match the served snapshot");
  }
  if (snapshot.meta.num_vertices != now.num_vertices ||
      snapshot.meta.num_cliques != now.num_cliques) {
    return Status::InvalidArgument(
        "update snapshot describes a different K_r id space "
        "(vertex or clique count changed)");
  }
  // Build outside the lock: readers keep answering on the old state while
  // the index and ranking come up. The epoch advances monotonically even
  // across racing writers (each bases its epoch on the state it read and
  // the swap is last-writer-wins, which is the semantics of concurrent
  // updates anyway).
  std::shared_ptr<State> next =
      BuildState(std::move(snapshot), current->epoch + 1);
  {
    std::unique_lock<std::shared_mutex> lock(state_mutex_);
    if (state_->epoch >= next->epoch) {
      // A concurrent writer already published this or a later generation;
      // bump past it so cache keys stay unique per published state.
      next->epoch = state_->epoch + 1;
    }
    state_ = std::move(next);
  }
  return Status::Ok();
}

std::int64_t QueryEngine::UpdateEpoch() const {
  return static_cast<std::int64_t>(CurrentState()->epoch);
}

QueryEngine::NucleusRef QueryEngine::MakeRef(const State& state,
                                             std::int32_t node) const {
  const auto& n = state.snapshot.hierarchy.node(node);
  return {node, n.lambda, n.subtree_members};
}

QueryEngine::Response QueryEngine::RunOnState(const State& state,
                                              const Query& query) const {
  const std::int64_t num_cliques = state.snapshot.meta.num_cliques;
  Response response;
  switch (query.kind) {
    case QueryKind::kLambda: {
      if (query.a < 0 || query.a >= num_cliques) {
        response.status = InvalidClique("clique", query.a, num_cliques);
        return response;
      }
      response.lambda =
          state.snapshot.peel.lambda[static_cast<std::size_t>(query.a)];
      return response;
    }
    case QueryKind::kNucleus: {
      if (query.a < 0 || query.a >= num_cliques) {
        response.status = InvalidClique("clique", query.a, num_cliques);
        return response;
      }
      if (query.b < 1 || query.b > state.snapshot.meta.max_lambda) {
        response.status = Status::InvalidArgument(
            "k " + std::to_string(query.b) + " out of range [1, " +
            std::to_string(state.snapshot.meta.max_lambda) + "]");
        return response;
      }
      const std::int32_t node = state.index->NucleusAtLevel(
          static_cast<CliqueId>(query.a), static_cast<Lambda>(query.b));
      if (node != kInvalidId) {
        response.found = true;
        response.nucleus = MakeRef(state, node);
      }
      return response;
    }
    case QueryKind::kCommon:
    case QueryKind::kLevel: {
      if (query.a < 0 || query.a >= num_cliques) {
        response.status = InvalidClique("clique", query.a, num_cliques);
        return response;
      }
      if (query.b < 0 || query.b >= num_cliques) {
        response.status = InvalidClique("clique", query.b, num_cliques);
        return response;
      }
      const std::int32_t node = state.index->SmallestCommonNucleus(
          static_cast<CliqueId>(query.a), static_cast<CliqueId>(query.b));
      if (node != kInvalidId) {
        response.found = true;
        response.nucleus = MakeRef(state, node);
        response.lambda = response.nucleus.k;
      }
      return response;
    }
    case QueryKind::kTop: {
      if (query.a < 0) {
        response.status =
            Status::InvalidArgument("top count must be non-negative");
        return response;
      }
      const std::int64_t count = std::min(
          query.a,
          static_cast<std::int64_t>(state.density_ranking.size()));
      response.top.reserve(static_cast<std::size_t>(count));
      for (std::int64_t i = 0; i < count; ++i) {
        response.top.push_back(MakeRef(
            state, state.density_ranking[static_cast<std::size_t>(i)]));
      }
      return response;
    }
    case QueryKind::kMembers: {
      if (query.a < 0 || query.a >= state.snapshot.hierarchy.NumNodes()) {
        response.status = Status::InvalidArgument(
            "node id " + std::to_string(query.a) + " out of range [0, " +
            std::to_string(state.snapshot.hierarchy.NumNodes()) + ")");
        return response;
      }
      response.nucleus = MakeRef(state, static_cast<std::int32_t>(query.a));
      response.members =
          MembersOnState(state, static_cast<std::int32_t>(query.a));
      return response;
    }
  }
  response.status = Status::InvalidArgument("unknown query kind");
  return response;
}

QueryEngine::Response QueryEngine::Run(const Query& query) const {
  const std::shared_ptr<const State> state = CurrentState();
  return RunOnState(*state, query);
}

std::vector<QueryEngine::Response> QueryEngine::RunBatch(
    const std::vector<Query>& queries, ThreadPool& pool) const {
  // One state for the whole batch: answers are mutually consistent and
  // unaffected by updates that land while the batch is in flight.
  const std::shared_ptr<const State> state = CurrentState();
  std::vector<Response> responses(queries.size());
  // Small grain: individual queries are microseconds, but kMembers can be
  // output-sized; 64 balances scheduling overhead against stragglers.
  pool.ParallelFor(static_cast<std::int64_t>(queries.size()), 64,
                   [&](int, std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       responses[static_cast<std::size_t>(i)] = RunOnState(
                           *state, queries[static_cast<std::size_t>(i)]);
                     }
                   });
  return responses;
}

std::vector<QueryEngine::NucleusRef> QueryEngine::TopKDensest(
    std::int64_t k) const {
  const std::shared_ptr<const State> state = CurrentState();
  const std::int64_t count = std::min(
      k, static_cast<std::int64_t>(state->density_ranking.size()));
  std::vector<NucleusRef> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    out.push_back(MakeRef(
        *state, state->density_ranking[static_cast<std::size_t>(i)]));
  }
  return out;
}

std::shared_ptr<const std::vector<CliqueId>> QueryEngine::MembersOnState(
    const State& state, std::int32_t node) const {
  const std::uint64_t key =
      (state.epoch << 32) | static_cast<std::uint32_t>(node);
  return members_cache_.GetOrCompute(key, [&state, node] {
    return state.snapshot.hierarchy.MembersOfSubtree(node);
  });
}

std::shared_ptr<const std::vector<CliqueId>> QueryEngine::Members(
    std::int32_t node) const {
  const std::shared_ptr<const State> state = CurrentState();
  return MembersOnState(*state, node);
}

}  // namespace nucleus
