#include "nucleus/serve/query_engine.h"

#include <algorithm>
#include <mutex>
#include <string>
#include <utility>

namespace nucleus {
namespace {

Status InvalidClique(const char* what, std::int64_t value,
                     std::int64_t num_cliques) {
  return Status::InvalidArgument(std::string(what) + " id " +
                                 std::to_string(value) +
                                 " out of range [0, " +
                                 std::to_string(num_cliques) + ")");
}

}  // namespace

std::shared_ptr<QueryEngine::State> QueryEngine::BuildState(
    std::shared_ptr<const SnapshotSource> source, std::uint64_t epoch) {
  auto state = std::make_shared<State>();
  state->view = MakeSourceView(*source);
  state->source = std::move(source);
  state->epoch = epoch;
  return state;
}

QueryEngine::QueryEngine(std::shared_ptr<const SnapshotSource> source,
                         const QueryEngineOptions& options)
    : state_(BuildState(std::move(source), 0)),
      members_cache_(options.cache_entries_per_shard, options.cache_shards,
                     options.cache_bytes_per_shard) {}

std::unique_ptr<QueryEngine> QueryEngine::FromSource(
    std::shared_ptr<const SnapshotSource> source,
    const QueryEngineOptions& options) {
  NUCLEUS_CHECK_MSG(source != nullptr, "FromSource requires a source");
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(std::move(source), options));
}

std::unique_ptr<QueryEngine> QueryEngine::FromSnapshotData(
    SnapshotData snapshot, const QueryEngineOptions& options) {
  return FromSource(std::make_shared<HeapSource>(std::move(snapshot)),
                    options);
}

std::shared_ptr<const QueryEngine::State> QueryEngine::CurrentState() const {
  ReaderLock lock(state_mutex_);
  return state_;
}

Status QueryEngine::ApplyUpdate(std::shared_ptr<const SnapshotSource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("update source is null");
  }
  const std::shared_ptr<const State> current = CurrentState();
  const SnapshotMeta& now = current->source->meta();
  if (source->meta().family != now.family) {
    return Status::InvalidArgument(
        "update snapshot family does not match the served snapshot");
  }
  if (source->meta().num_vertices != now.num_vertices ||
      source->meta().num_cliques != now.num_cliques) {
    return Status::InvalidArgument(
        "update snapshot describes a different K_r id space "
        "(vertex or clique count changed)");
  }
  // Build outside the lock: readers keep answering on the old state while
  // the next one comes up. The epoch advances monotonically even across
  // racing writers (each bases its epoch on the state it read and the swap
  // is last-writer-wins, which is the semantics of concurrent updates
  // anyway).
  std::shared_ptr<State> next =
      BuildState(std::move(source), current->epoch + 1);
  {
    WriterLock lock(state_mutex_);
    if (state_->epoch >= next->epoch) {
      // A concurrent writer already published this or a later generation;
      // bump past it so cache keys stay unique per published state.
      next->epoch = state_->epoch + 1;
    }
    state_ = std::move(next);
  }
  return Status::Ok();
}

Status QueryEngine::ApplyUpdate(SnapshotData snapshot) {
  // The heap construction (index tables, ranking, flat arrays) happens
  // here, before the writer lock is ever taken.
  return ApplyUpdate(std::shared_ptr<const SnapshotSource>(
      std::make_shared<HeapSource>(std::move(snapshot))));
}

std::int64_t QueryEngine::UpdateEpoch() const {
  return static_cast<std::int64_t>(CurrentState()->epoch);
}

QueryEngine::NucleusRef QueryEngine::MakeRef(const State& state,
                                             std::int32_t node) const {
  return {node, state.view.node_lambda[node],
          state.source->SubtreeSize(node)};
}

QueryEngine::Response QueryEngine::RunOnState(const State& state,
                                              const Query& query) const {
  const std::int64_t num_cliques = state.source->meta().num_cliques;
  // Argument validation first (the error strings are part of the serving
  // contract), then the source's lazy verification for the sections this
  // query kind reads; a corrupt section answers as an error Response.
  const auto ensure = [&state](std::uint32_t needs) {
    return state.source->Ensure(needs);
  };
  Response response;
  switch (query.kind) {
    case QueryKind::kLambda: {
      if (query.a < 0 || query.a >= num_cliques) {
        response.status = InvalidClique("clique", query.a, num_cliques);
        return response;
      }
      if (Status s = ensure(kNeedLookup); !s.ok()) {
        response.status = s;
        return response;
      }
      response.lambda =
          state.view.clique_lambda[static_cast<std::size_t>(query.a)];
      return response;
    }
    case QueryKind::kNucleus: {
      if (query.a < 0 || query.a >= num_cliques) {
        response.status = InvalidClique("clique", query.a, num_cliques);
        return response;
      }
      if (query.b < 1 || query.b > state.source->meta().max_lambda) {
        response.status = Status::InvalidArgument(
            "k " + std::to_string(query.b) + " out of range [1, " +
            std::to_string(state.source->meta().max_lambda) + "]");
        return response;
      }
      if (Status s = ensure(kNeedLookup | kNeedIndex | kNeedSizes);
          !s.ok()) {
        response.status = s;
        return response;
      }
      const std::int32_t node =
          ViewNucleusAtLevel(state.view, static_cast<CliqueId>(query.a),
                             static_cast<Lambda>(query.b));
      if (node != kInvalidId) {
        response.found = true;
        response.nucleus = MakeRef(state, node);
      }
      return response;
    }
    case QueryKind::kCommon:
    case QueryKind::kLevel: {
      if (query.a < 0 || query.a >= num_cliques) {
        response.status = InvalidClique("clique", query.a, num_cliques);
        return response;
      }
      if (query.b < 0 || query.b >= num_cliques) {
        response.status = InvalidClique("clique", query.b, num_cliques);
        return response;
      }
      if (Status s = ensure(kNeedLookup | kNeedIndex | kNeedSizes);
          !s.ok()) {
        response.status = s;
        return response;
      }
      const std::int32_t node = ViewSmallestCommonNucleus(
          state.view, static_cast<CliqueId>(query.a),
          static_cast<CliqueId>(query.b));
      if (node != kInvalidId) {
        response.found = true;
        response.nucleus = MakeRef(state, node);
        response.lambda = response.nucleus.k;
      }
      return response;
    }
    case QueryKind::kTop: {
      if (query.a < 0) {
        response.status =
            Status::InvalidArgument("top count must be non-negative");
        return response;
      }
      if (Status s = ensure(kNeedRanking | kNeedSizes); !s.ok()) {
        response.status = s;
        return response;
      }
      const std::int64_t count = std::min(
          query.a, static_cast<std::int64_t>(state.view.ranking.size()));
      response.top.reserve(static_cast<std::size_t>(count));
      for (std::int64_t i = 0; i < count; ++i) {
        response.top.push_back(MakeRef(
            state, state.view.ranking[static_cast<std::size_t>(i)]));
      }
      return response;
    }
    case QueryKind::kMembers: {
      if (query.a < 0 || query.a >= state.source->NumNodes()) {
        response.status = Status::InvalidArgument(
            "node id " + std::to_string(query.a) + " out of range [0, " +
            std::to_string(state.source->NumNodes()) + ")");
        return response;
      }
      if (Status s = ensure(kNeedSizes | kNeedMembers); !s.ok()) {
        response.status = s;
        return response;
      }
      response.nucleus = MakeRef(state, static_cast<std::int32_t>(query.a));
      response.members =
          MembersOnState(state, static_cast<std::int32_t>(query.a));
      return response;
    }
  }
  response.status = Status::InvalidArgument("unknown query kind");
  return response;
}

QueryEngine::Response QueryEngine::Run(const Query& query) const {
  const std::shared_ptr<const State> state = CurrentState();
  return RunOnState(*state, query);
}

std::vector<QueryEngine::Response> QueryEngine::RunBatch(
    const std::vector<Query>& queries, ThreadPool& pool) const {
  // One state for the whole batch: answers are mutually consistent and
  // unaffected by updates that land while the batch is in flight.
  const std::shared_ptr<const State> state = CurrentState();
  std::vector<Response> responses(queries.size());
  // Small grain: individual queries are microseconds, but kMembers can be
  // output-sized; 64 balances scheduling overhead against stragglers.
  pool.ParallelFor(static_cast<std::int64_t>(queries.size()), 64,
                   [&](int, std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       responses[static_cast<std::size_t>(i)] = RunOnState(
                           *state, queries[static_cast<std::size_t>(i)]);
                     }
                   });
  return responses;
}

std::vector<QueryEngine::NucleusRef> QueryEngine::TopKDensest(
    std::int64_t k) const {
  const std::shared_ptr<const State> state = CurrentState();
  if (!state->source->Ensure(kNeedRanking | kNeedSizes).ok()) return {};
  const std::int64_t count =
      std::min(k, static_cast<std::int64_t>(state->view.ranking.size()));
  std::vector<NucleusRef> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    out.push_back(MakeRef(
        *state, state->view.ranking[static_cast<std::size_t>(i)]));
  }
  return out;
}

std::shared_ptr<const std::vector<CliqueId>> QueryEngine::MembersOnState(
    const State& state, std::int32_t node) const {
  const std::uint64_t key =
      (state.epoch << 32) | static_cast<std::uint32_t>(node);
  return members_cache_.GetOrCompute(key, [&state, node] {
    return state.source->MaterializeMembers(node);
  });
}

std::shared_ptr<const std::vector<CliqueId>> QueryEngine::Members(
    std::int32_t node) const {
  const std::shared_ptr<const State> state = CurrentState();
  if (node < 0 || node >= state->source->NumNodes() ||
      !state->source->Ensure(kNeedSizes | kNeedMembers).ok()) {
    return nullptr;
  }
  return MembersOnState(*state, node);
}

}  // namespace nucleus
