#include "nucleus/serve/query_engine.h"

#include <algorithm>
#include <string>
#include <utility>

namespace nucleus {
namespace {

Status InvalidClique(const char* what, std::int64_t value,
                     std::int64_t num_cliques) {
  return Status::InvalidArgument(std::string(what) + " id " +
                                 std::to_string(value) +
                                 " out of range [0, " +
                                 std::to_string(num_cliques) + ")");
}

}  // namespace

QueryEngine::QueryEngine(SnapshotData snapshot,
                         const QueryEngineOptions& options)
    : snapshot_(std::move(snapshot)),
      members_cache_(options.cache_entries_per_shard, options.cache_shards) {
  if (snapshot_.has_index) {
    index_.emplace(snapshot_.hierarchy, std::move(snapshot_.index_tables));
  } else {
    index_.emplace(snapshot_.hierarchy);
  }
  const NucleusHierarchy& h = snapshot_.hierarchy;
  density_ranking_.reserve(static_cast<std::size_t>(h.NumNuclei()));
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (h.node(id).lambda >= 1) density_ranking_.push_back(id);
  }
  std::sort(density_ranking_.begin(), density_ranking_.end(),
            [&h](std::int32_t a, std::int32_t b) {
              if (h.node(a).lambda != h.node(b).lambda) {
                return h.node(a).lambda > h.node(b).lambda;
              }
              return a < b;
            });
}

QueryEngine::NucleusRef QueryEngine::MakeRef(std::int32_t node) const {
  const auto& n = snapshot_.hierarchy.node(node);
  return {node, n.lambda, n.subtree_members};
}

QueryEngine::Response QueryEngine::Run(const Query& query) const {
  const std::int64_t num_cliques = snapshot_.meta.num_cliques;
  Response response;
  switch (query.kind) {
    case QueryKind::kLambda: {
      if (query.a < 0 || query.a >= num_cliques) {
        response.status = InvalidClique("clique", query.a, num_cliques);
        return response;
      }
      response.lambda =
          snapshot_.peel.lambda[static_cast<std::size_t>(query.a)];
      return response;
    }
    case QueryKind::kNucleus: {
      if (query.a < 0 || query.a >= num_cliques) {
        response.status = InvalidClique("clique", query.a, num_cliques);
        return response;
      }
      if (query.b < 1 || query.b > snapshot_.meta.max_lambda) {
        response.status = Status::InvalidArgument(
            "k " + std::to_string(query.b) + " out of range [1, " +
            std::to_string(snapshot_.meta.max_lambda) + "]");
        return response;
      }
      const std::int32_t node = index_->NucleusAtLevel(
          static_cast<CliqueId>(query.a), static_cast<Lambda>(query.b));
      if (node != kInvalidId) {
        response.found = true;
        response.nucleus = MakeRef(node);
      }
      return response;
    }
    case QueryKind::kCommon:
    case QueryKind::kLevel: {
      if (query.a < 0 || query.a >= num_cliques) {
        response.status = InvalidClique("clique", query.a, num_cliques);
        return response;
      }
      if (query.b < 0 || query.b >= num_cliques) {
        response.status = InvalidClique("clique", query.b, num_cliques);
        return response;
      }
      const std::int32_t node = index_->SmallestCommonNucleus(
          static_cast<CliqueId>(query.a), static_cast<CliqueId>(query.b));
      if (node != kInvalidId) {
        response.found = true;
        response.nucleus = MakeRef(node);
        response.lambda = response.nucleus.k;
      }
      return response;
    }
    case QueryKind::kTop: {
      if (query.a < 0) {
        response.status =
            Status::InvalidArgument("top count must be non-negative");
        return response;
      }
      response.top = TopKDensest(query.a);
      return response;
    }
    case QueryKind::kMembers: {
      if (query.a < 0 || query.a >= snapshot_.hierarchy.NumNodes()) {
        response.status = Status::InvalidArgument(
            "node id " + std::to_string(query.a) + " out of range [0, " +
            std::to_string(snapshot_.hierarchy.NumNodes()) + ")");
        return response;
      }
      response.nucleus = MakeRef(static_cast<std::int32_t>(query.a));
      response.members = Members(static_cast<std::int32_t>(query.a));
      return response;
    }
  }
  response.status = Status::InvalidArgument("unknown query kind");
  return response;
}

std::vector<QueryEngine::Response> QueryEngine::RunBatch(
    const std::vector<Query>& queries, ThreadPool& pool) const {
  std::vector<Response> responses(queries.size());
  // Small grain: individual queries are microseconds, but kMembers can be
  // output-sized; 64 balances scheduling overhead against stragglers.
  pool.ParallelFor(static_cast<std::int64_t>(queries.size()), 64,
                   [&](int, std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       responses[static_cast<std::size_t>(i)] =
                           Run(queries[static_cast<std::size_t>(i)]);
                     }
                   });
  return responses;
}

std::vector<QueryEngine::NucleusRef> QueryEngine::TopKDensest(
    std::int64_t k) const {
  const std::int64_t count = std::min(
      k, static_cast<std::int64_t>(density_ranking_.size()));
  std::vector<NucleusRef> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    out.push_back(MakeRef(density_ranking_[static_cast<std::size_t>(i)]));
  }
  return out;
}

std::shared_ptr<const std::vector<CliqueId>> QueryEngine::Members(
    std::int32_t node) const {
  return members_cache_.GetOrCompute(node, [this, node] {
    return snapshot_.hierarchy.MembersOfSubtree(node);
  });
}

}  // namespace nucleus
