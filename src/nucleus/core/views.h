// Subgraph views over decomposition results: the operations downstream
// users run after peeling — extracting the maximal k-core, materializing a
// nucleus as an induced subgraph, and ranking hierarchy nodes by density.
// (The paper's introduction motivates peeling exactly this way: "many dense
// subgraphs with varying sizes and densities, and hierarchy among them".)
#ifndef NUCLEUS_CORE_VIEWS_H_
#define NUCLEUS_CORE_VIEWS_H_

#include <vector>

#include "nucleus/core/decomposition.h"
#include "nucleus/core/hierarchy.h"
#include "nucleus/graph/graph.h"

namespace nucleus {

/// Vertices of the (possibly disconnected) maximal k-core: every vertex
/// with core number >= k. `core` is the (1,2) peeling result.
std::vector<VertexId> KCoreVertices(const std::vector<Lambda>& core,
                                    Lambda k);

/// The induced subgraph on KCoreVertices. If `old_to_new` is non-null it
/// receives the vertex relabeling (kInvalidId outside the core).
Graph KCoreSubgraph(const Graph& g, const std::vector<Lambda>& core, Lambda k,
                    std::vector<VertexId>* old_to_new = nullptr);

/// Edge density 2|E| / (|V| (|V|-1)); 0 for graphs with < 2 vertices.
double EdgeDensity(const Graph& g);

/// Summary of one hierarchy node's nucleus, materialized against the graph.
struct NucleusReport {
  std::int32_t node = kInvalidId;
  Lambda k = 0;
  std::int64_t num_members = 0;   // K_r's in the nucleus
  std::int64_t num_vertices = 0;  // vertices spanned
  double density = 0.0;           // edge density of the induced subgraph
};

/// Materializes node `id` of a `family` hierarchy into a report.
NucleusReport ReportNucleus(const Graph& g, Family family,
                            const NucleusHierarchy& h, std::int32_t id);

/// The `count` leaf-ward densest nodes: sorted by lambda descending, ties
/// by subtree size descending. Root and lambda < 1 nodes excluded.
std::vector<std::int32_t> TopNucleusNodes(const NucleusHierarchy& h,
                                          std::int64_t count);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_VIEWS_H_
