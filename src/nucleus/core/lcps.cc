#include "nucleus/core/lcps.h"

#include <algorithm>
#include <vector>

#include "nucleus/util/bucket_queue.h"

namespace nucleus {

SkeletonBuild LcpsKCoreHierarchy(const Graph& g, const PeelResult& peel) {
  SkeletonBuild build;
  const VertexId n = g.NumVertices();
  const std::vector<Lambda>& lambda = peel.lambda;
  build.comp.assign(n, kInvalidId);
  HierarchySkeleton& skeleton = build.skeleton;
  build.root_id = skeleton.AddNode(kRootLambda);

  std::vector<char> visited(n, 0);

  // One frontier reused across components: it drains completely before the
  // next start, and reusing it avoids re-allocating max_lambda + 1 buckets
  // per component (graphs with many tiny components would pay dearly).
  MaxBucketFrontier frontier(std::max<Lambda>(peel.max_lambda, 0));
  for (VertexId start = 0; start < n; ++start) {
    if (visited[start]) continue;
    frontier.Push(start, lambda[start]);
    std::int32_t cursor = build.root_id;
    Lambda cursor_level = kRootLambda;

    while (!frontier.Empty()) {
      std::int32_t priority = 0;
      const VertexId v = frontier.PopMax(&priority);
      if (visited[v]) continue;  // a stale lower-priority duplicate
      visited[v] = 1;

      // Climb to the level the search reached v at...
      while (cursor_level > priority) {
        cursor = skeleton.Parent(cursor);
        --cursor_level;
      }
      // ...then descend to v's own lambda, opening one node per level.
      while (cursor_level < lambda[v]) {
        const std::int32_t child = skeleton.AddNode(cursor_level + 1);
        skeleton.SetParent(child, cursor);
        cursor = child;
        ++cursor_level;
      }
      // priority <= lambda[v], so the cursor now sits exactly at lambda[v].
      build.comp[v] = cursor;
      for (VertexId w : g.Neighbors(v)) {
        if (!visited[w]) {
          frontier.Push(w, std::min(lambda[v], lambda[w]));
        }
      }
    }
  }
  build.num_subnuclei = skeleton.NumNodes() - 1;
  return build;
}

}  // namespace nucleus
