// The TCP (Triangle Connectivity Preserving) index of Huang et al.,
// "Querying k-truss community in large and dynamic graphs", SIGMOD 2014 —
// the prior-art baseline the paper compares against for (2,3) (Table 5).
//
// For every vertex x, the index stores a maximum spanning forest of x's
// triangle-weighted ego network: nodes are x's neighbors, an edge (y, z)
// exists per triangle {x, y, z}, weighted by the minimum trussness
// (lambda_3) of the triangle's three edges. Construction cost is what the
// paper times; the query procedure answers "all k-truss communities
// (k-(2,3) nuclei) containing vertex q at level k" without peeling again.
#ifndef NUCLEUS_CORE_TCP_INDEX_H_
#define NUCLEUS_CORE_TCP_INDEX_H_

#include <span>
#include <vector>

#include "nucleus/cliques/edge_index.h"
#include "nucleus/core/types.h"
#include "nucleus/graph/graph.h"

namespace nucleus {

class TcpIndex {
 public:
  /// A maximum-spanning-forest edge of vertex x's ego network: the triangle
  /// {x, y, z} with weight min(lambda3(xy), lambda3(xz), lambda3(yz)).
  struct TreeEdge {
    VertexId y;
    VertexId z;
    Lambda weight;
  };

  /// Builds the index given the trussness (lambda_3 per edge) from peeling.
  static TcpIndex Build(const Graph& g, const EdgeIndex& edges,
                        const std::vector<Lambda>& truss);

  /// The spanning-forest edges of vertex x's ego network.
  std::span<const TreeEdge> TreeEdgesOf(VertexId x) const {
    return {edges_.data() + offsets_[x],
            static_cast<std::size_t>(offsets_[x + 1] - offsets_[x])};
  }

  std::int64_t TotalTreeEdges() const {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// All k-truss communities containing q, each as a sorted list of edge
  /// ids. Empty when q touches no edge of trussness >= k. Requires k >= 1.
  std::vector<std::vector<EdgeId>> QueryCommunities(
      const Graph& g, const EdgeIndex& edges, const std::vector<Lambda>& truss,
      VertexId q, Lambda k) const;

 private:
  std::vector<std::int64_t> offsets_;  // per vertex, into edges_
  std::vector<TreeEdge> edges_;
};

}  // namespace nucleus

#endif  // NUCLEUS_CORE_TCP_INDEX_H_
