#include "nucleus/core/decomposition.h"

#include <algorithm>
#include <type_traits>

#include "nucleus/cliques/edge_index.h"
#include "nucleus/cliques/triangle_index.h"
#include "nucleus/core/df_traversal.h"
#include "nucleus/core/fast_nucleus.h"
#include "nucleus/core/hypo.h"
#include "nucleus/core/lcps.h"
#include "nucleus/core/naive_traversal.h"
#include "nucleus/core/peeling.h"
#include "nucleus/parallel/parallel_fnd.h"
#include "nucleus/parallel/parallel_peel.h"
#include "nucleus/parallel/thread_pool.h"
#include "nucleus/util/timer.h"

namespace nucleus {

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kCore12:
      return "(1,2) k-core";
    case Family::kTruss23:
      return "(2,3) k-truss";
    case Family::kNucleus34:
      return "(3,4) nucleus";
  }
  return "?";
}

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kNaive:
      return "Naive";
    case Algorithm::kDft:
      return "DFT";
    case Algorithm::kFnd:
      return "FND";
    case Algorithm::kLcps:
      return "LCPS";
    case Algorithm::kHypo:
      return "Hypo";
  }
  return "?";
}

namespace {

template <typename Space>
DecompositionResult RunOnSpace(const Space& space,
                               const DecomposeOptions& options,
                               double index_seconds) {
  DecompositionResult result;
  result.num_cliques = space.NumCliques();
  result.timings.index_seconds = index_seconds;
  Timer timer;

  // Serial stays on Alg. 1's bucket queue; any other resolved thread count
  // peels wave-parallel (bit-identical lambda either way).
  const bool threaded = options.parallel.ResolvedThreads() > 1;
  const auto peel = [&] {
    return threaded ? PeelParallel(space, options.parallel) : Peel(space);
  };

  switch (options.algorithm) {
    case Algorithm::kNaive: {
      result.peel = peel();
      result.timings.peel_seconds = timer.Seconds();
      timer.Restart();
      if (options.collect_nuclei) {
        result.nuclei =
            CollectNucleiNaive(space, result.peel.lambda, result.peel.max_lambda);
        result.naive_num_nuclei =
            static_cast<std::int64_t>(result.nuclei.size());
      } else {
        const NaiveStats stats = NaiveTraversal(
            space, result.peel.lambda, result.peel.max_lambda, nullptr);
        result.naive_num_nuclei = stats.num_nuclei;
      }
      result.timings.traverse_seconds = timer.Seconds();
      break;
    }
    case Algorithm::kDft: {
      result.peel = peel();
      result.timings.peel_seconds = timer.Seconds();
      timer.Restart();
      SkeletonBuild build = DfTraversal(space, result.peel);
      result.num_subnuclei = build.num_subnuclei;
      result.timings.traverse_seconds = timer.Seconds();
      if (options.build_tree) {
        result.hierarchy =
            NucleusHierarchy::FromSkeleton(build, result.num_cliques);
      }
      break;
    }
    case Algorithm::kFnd: {
      FndResult fnd = threaded
                          ? FastNucleusDecompositionParallel(space,
                                                             options.parallel)
                          : FastNucleusDecomposition(space);
      result.peel = std::move(fnd.peel);
      result.num_subnuclei = fnd.build.num_subnuclei;
      result.num_adj = fnd.num_adj;
      result.timings.peel_seconds = fnd.peel_seconds;
      result.timings.traverse_seconds = fnd.build_seconds;
      if (options.build_tree) {
        result.hierarchy =
            NucleusHierarchy::FromSkeleton(fnd.build, result.num_cliques);
      }
      break;
    }
    case Algorithm::kLcps: {
      if constexpr (std::is_same_v<Space, VertexSpace>) {
        result.peel = peel();
        result.timings.peel_seconds = timer.Seconds();
        timer.Restart();
        SkeletonBuild build = LcpsKCoreHierarchy(space.graph(), result.peel);
        result.num_subnuclei = build.num_subnuclei;
        result.timings.traverse_seconds = timer.Seconds();
        if (options.build_tree) {
          result.hierarchy =
              NucleusHierarchy::FromSkeleton(build, result.num_cliques);
        }
      } else {
        NUCLEUS_CHECK_MSG(false, "LCPS is only defined for Family::kCore12");
      }
      break;
    }
    case Algorithm::kHypo: {
      result.peel = peel();
      result.timings.peel_seconds = timer.Seconds();
      timer.Restart();
      (void)HypoTraversal(space);
      result.timings.traverse_seconds = timer.Seconds();
      break;
    }
  }
  result.timings.total_seconds = result.timings.index_seconds +
                                 result.timings.peel_seconds +
                                 result.timings.traverse_seconds;
  return result;
}

}  // namespace

DecompositionResult Decompose(const Graph& g,
                              const DecomposeOptions& options) {
  Timer timer;
  switch (options.family) {
    case Family::kCore12: {
      VertexSpace space(g);
      return RunOnSpace(space, options, 0.0);
    }
    case Family::kTruss23: {
      const EdgeIndex edges = EdgeIndex::Build(g, options.parallel);
      const double index_seconds = timer.Seconds();
      EdgeSpace space(g, edges);
      return RunOnSpace(space, options, index_seconds);
    }
    case Family::kNucleus34: {
      // One pool for both index builds: the spawn cost is paid once.
      EdgeIndex edges;
      TriangleIndex triangles;
      if (options.parallel.ResolvedThreads() > 1) {
        ThreadPool pool(options.parallel);
        const std::int64_t grain = options.parallel.ResolvedGrain();
        edges = EdgeIndex::Build(g, pool, grain);
        triangles = TriangleIndex::Build(g, edges, pool, grain);
      } else {
        edges = EdgeIndex::Build(g);
        triangles = TriangleIndex::Build(g, edges);
      }
      const double index_seconds = timer.Seconds();
      TriangleSpace space(g, edges, triangles);
      return RunOnSpace(space, options, index_seconds);
    }
  }
  NUCLEUS_CHECK_MSG(false, "unknown family");
  return {};
}

std::vector<VertexId> MembersToVertices(const Graph& g, Family family,
                                        const std::vector<CliqueId>& members) {
  std::vector<VertexId> vertices;
  switch (family) {
    case Family::kCore12: {
      vertices.assign(members.begin(), members.end());
      break;
    }
    case Family::kTruss23: {
      // Edge ids are canonical (lexicographic by endpoints), so rebuilding
      // the index reproduces the ids the decomposition used.
      const EdgeIndex edges = EdgeIndex::Build(g);
      for (CliqueId e : members) {
        const auto [u, v] = edges.Endpoints(e);
        vertices.push_back(u);
        vertices.push_back(v);
      }
      break;
    }
    case Family::kNucleus34: {
      const EdgeIndex edges = EdgeIndex::Build(g);
      const TriangleIndex triangles = TriangleIndex::Build(g, edges);
      for (CliqueId t : members) {
        const auto& tri = triangles.Vertices(t);
        vertices.insert(vertices.end(), tri.begin(), tri.end());
      }
      break;
    }
  }
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  return vertices;
}

}  // namespace nucleus
