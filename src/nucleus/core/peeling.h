// The generic peeling algorithm (paper Alg. 1, "Set-lambda"): computes the
// maximum k-(r,s) number lambda_s(u) of every K_r by repeatedly processing
// an unprocessed K_r of minimum K_s-degree and decrementing the degrees of
// the unprocessed co-members of its supercliques.
//
// For (1,2) this is exactly the Batagelj-Zaversnik k-core algorithm; for
// (2,3) the standard k-truss support peeling; for (3,4) the four-clique
// peeling of the nucleus decomposition paper.
#ifndef NUCLEUS_CORE_PEELING_H_
#define NUCLEUS_CORE_PEELING_H_

#include <thread>
#include <vector>

#include "nucleus/core/spaces.h"
#include "nucleus/core/types.h"
#include "nucleus/util/bucket_queue.h"

namespace nucleus {

/// Initial K_s-degrees (supports): supports[u] = number of K_s's containing
/// the K_r u.
template <typename Space>
std::vector<std::int32_t> ComputeSupports(const Space& space) {
  std::vector<std::int32_t> supports(space.NumCliques(), 0);
  for (CliqueId u = 0; u < space.NumCliques(); ++u) {
    std::int32_t count = 0;
    space.ForEachSuperclique(u, [&count](const CliqueId*, int) { ++count; });
    supports[u] = count;
  }
  return supports;
}

/// Parallel support computation — the embarrassingly parallel prefix of the
/// peeling phase, implementing the direction the paper's conclusion points
/// to ("adapting the existing parallel peeling algorithms for the hierarchy
/// computation can be helpful"). Output is bit-identical to
/// ComputeSupports; the K_r range is partitioned across threads and each
/// thread only writes its own slice.
template <typename Space>
std::vector<std::int32_t> ComputeSupportsParallel(const Space& space,
                                                  int num_threads = 0) {
  const std::int64_t n = space.NumCliques();
  if (num_threads <= 0) {
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  num_threads = static_cast<int>(
      std::min<std::int64_t>(num_threads, std::max<std::int64_t>(n, 1)));
  std::vector<std::int32_t> supports(n, 0);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const std::int64_t chunk = (n + num_threads - 1) / num_threads;
  for (int t = 0; t < num_threads; ++t) {
    const std::int64_t begin = t * chunk;
    const std::int64_t end = std::min(n, begin + chunk);
    workers.emplace_back([&space, &supports, begin, end] {
      for (CliqueId u = static_cast<CliqueId>(begin); u < end; ++u) {
        std::int32_t count = 0;
        space.ForEachSuperclique(u,
                                 [&count](const CliqueId*, int) { ++count; });
        supports[u] = count;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return supports;
}

/// Alg. 1. Runs in O(R_r + sum_u omega_r(u) d(u)^{s-r}) as analyzed in the
/// paper's Section 3.3.
template <typename Space>
PeelResult Peel(const Space& space) {
  PeelResult result;
  const std::int64_t n = space.NumCliques();
  result.lambda.assign(n, 0);

  PeelingBucketQueue queue;
  queue.Init(ComputeSupports(space));

  while (!queue.Empty()) {
    std::int32_t value = 0;
    const CliqueId u = queue.PopMin(&value);
    result.lambda[u] = value;
    if (value > result.max_lambda) result.max_lambda = value;
    space.ForEachSuperclique(u, [&](const CliqueId* members, int count) {
      // Skip supercliques that contain an already-processed K_r (Alg. 1
      // line 8); they were accounted for when that K_r was processed.
      for (int i = 0; i < count; ++i) {
        if (members[i] != u && queue.Popped(members[i])) return;
      }
      for (int i = 0; i < count; ++i) {
        const CliqueId v = members[i];
        if (v != u && queue.Value(v) > value) queue.Decrement(v);
      }
    });
  }
  return result;
}

extern template std::vector<std::int32_t> ComputeSupports<VertexSpace>(
    const VertexSpace&);
extern template std::vector<std::int32_t> ComputeSupports<EdgeSpace>(
    const EdgeSpace&);
extern template std::vector<std::int32_t> ComputeSupports<TriangleSpace>(
    const TriangleSpace&);
extern template std::vector<std::int32_t> ComputeSupportsParallel<VertexSpace>(
    const VertexSpace&, int);
extern template std::vector<std::int32_t> ComputeSupportsParallel<EdgeSpace>(
    const EdgeSpace&, int);
extern template std::vector<std::int32_t>
ComputeSupportsParallel<TriangleSpace>(const TriangleSpace&, int);
extern template PeelResult Peel<VertexSpace>(const VertexSpace&);
extern template PeelResult Peel<EdgeSpace>(const EdgeSpace&);
extern template PeelResult Peel<TriangleSpace>(const TriangleSpace&);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_PEELING_H_
