// The generic peeling algorithm (paper Alg. 1, "Set-lambda"): computes the
// maximum k-(r,s) number lambda_s(u) of every K_r by repeatedly processing
// an unprocessed K_r of minimum K_s-degree and decrementing the degrees of
// the unprocessed co-members of its supercliques.
//
// For (1,2) this is exactly the Batagelj-Zaversnik k-core algorithm; for
// (2,3) the standard k-truss support peeling; for (3,4) the four-clique
// peeling of the nucleus decomposition paper.
#ifndef NUCLEUS_CORE_PEELING_H_
#define NUCLEUS_CORE_PEELING_H_

#include <vector>

#include "nucleus/core/spaces.h"
#include "nucleus/core/types.h"
#include "nucleus/util/bucket_queue.h"

namespace nucleus {

/// Initial K_s-degrees (supports): supports[u] = number of K_s's containing
/// the K_r u.
template <typename Space>
std::vector<std::int32_t> ComputeSupports(const Space& space) {
  std::vector<std::int32_t> supports(space.NumCliques(), 0);
  for (CliqueId u = 0; u < space.NumCliques(); ++u) {
    std::int32_t count = 0;
    space.ForEachSuperclique(u, [&count](const CliqueId*, int) { ++count; });
    supports[u] = count;
  }
  return supports;
}

// The parallel support computation (ComputeSupportsParallel) lives in
// parallel/parallel_peel.h with the rest of the threaded peeling phase; it
// runs over the shared ThreadPool and stays bit-identical to
// ComputeSupports.

/// Alg. 1. Runs in O(R_r + sum_u omega_r(u) d(u)^{s-r}) as analyzed in the
/// paper's Section 3.3.
template <typename Space>
PeelResult Peel(const Space& space) {
  PeelResult result;
  const std::int64_t n = space.NumCliques();
  result.lambda.assign(n, 0);

  PeelingBucketQueue queue;
  queue.Init(ComputeSupports(space));

  while (!queue.Empty()) {
    std::int32_t value = 0;
    const CliqueId u = queue.PopMin(&value);
    result.lambda[u] = value;
    if (value > result.max_lambda) result.max_lambda = value;
    space.ForEachSuperclique(u, [&](const CliqueId* members, int count) {
      // Skip supercliques that contain an already-processed K_r (Alg. 1
      // line 8); they were accounted for when that K_r was processed.
      for (int i = 0; i < count; ++i) {
        if (members[i] != u && queue.Popped(members[i])) return;
      }
      for (int i = 0; i < count; ++i) {
        const CliqueId v = members[i];
        if (v != u && queue.Value(v) > value) queue.Decrement(v);
      }
    });
  }
  return result;
}

extern template std::vector<std::int32_t> ComputeSupports<VertexSpace>(
    const VertexSpace&);
extern template std::vector<std::int32_t> ComputeSupports<EdgeSpace>(
    const EdgeSpace&);
extern template std::vector<std::int32_t> ComputeSupports<TriangleSpace>(
    const TriangleSpace&);
extern template PeelResult Peel<VertexSpace>(const VertexSpace&);
extern template PeelResult Peel<EdgeSpace>(const EdgeSpace&);
extern template PeelResult Peel<TriangleSpace>(const TriangleSpace&);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_PEELING_H_
