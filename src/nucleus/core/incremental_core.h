// Incremental k-core maintenance under edge insertions AND removals — the
// streaming setting of Sariyuce et al. (PVLDB 6(6), 2013) that the paper's
// Section 3.1 discusses as the one line of prior work that respects
// connectivity.
//
// The insertion algorithm is the classic subcore traversal: inserting
// (u, v) can raise core numbers by at most one, and only for vertices in
// the "subcore" of the lower endpoint — the connected set of vertices with
// lambda equal to k = min(lambda(u), lambda(v)). The maintainer collects
// that subcore, computes each member's candidate degree (neighbors with
// larger lambda or inside the subcore), peels members whose candidate
// degree is <= k, and promotes the survivors to k + 1.
//
// Removal is the mirror image: deleting (u, v) can lower core numbers by
// at most one, again only inside the subcore(s) of the endpoint(s) whose
// lambda equals k = min(lambda(u), lambda(v)). Members whose support
// (neighbors with lambda >= k) drops below k demote to k - 1, and each
// demotion cascades through the subcore.
//
// On top of the single-edge primitives this header carries the batch
// update surface the serving stack (store/delta.h, serve/live_update.h)
// is built on: ApplyEdits applies a whole edit stream and reports the
// resulting lambda patch in structured form, and RebuildCoreHierarchy
// turns the patched lambdas back into the exact (1,2) hierarchy a fresh
// Algorithm::kDft decomposition of the edited graph would build.
#ifndef NUCLEUS_CORE_INCREMENTAL_CORE_H_
#define NUCLEUS_CORE_INCREMENTAL_CORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "nucleus/core/hierarchy.h"
#include "nucleus/core/types.h"
#include "nucleus/graph/graph.h"

namespace nucleus {

/// One streamed edge change. Serialized in store/delta.h records, parsed
/// from `nucleus_cli update --edits` files and the serve protocol's
/// `update u v +|-` verb.
enum class EdgeEditOp : std::int32_t {
  kInsert = 0,
  kRemove = 1,
};

struct EdgeEdit {
  VertexId u = 0;
  VertexId v = 0;
  EdgeEditOp op = EdgeEditOp::kInsert;
};

/// Structured result of one ApplyEdits batch: exactly the information a
/// delta record persists (the sparse lambda patch) plus the bookkeeping a
/// caller needs to reason about the batch (how much graph the subcore
/// searches scanned, what the new maximum lambda is).
struct CoreDeltaReport {
  /// Edits that changed the graph.
  std::int64_t applied = 0;
  /// Self-loop edits, inserts of existing edges, removals of missing
  /// edges. Skipping (instead of failing) keeps replayed streams
  /// idempotent; callers that must reject such edits validate up front
  /// (serve/live_update.h).
  std::int64_t skipped = 0;
  /// Total subcore vertices scanned across the batch — the work bound of
  /// the PVLDB'13 algorithm, reported so benches can relate edit cost to
  /// subcore size.
  std::int64_t subcore_visited = 0;
  /// Maximum lambda after the batch.
  Lambda max_lambda = 0;
  /// Vertices whose lambda changed, ascending, with their lambda before
  /// and after the batch (parallel arrays — the lambda patch).
  std::vector<VertexId> touched;
  std::vector<Lambda> old_lambda;
  std::vector<Lambda> new_lambda;
};

/// Order-independent fingerprint of a graph's edge set (plus its vertex
/// count): XOR of a per-edge 64-bit mix. Unlike GraphFingerprint (which
/// hashes the CSR arrays in order), this form is maintainable in O(1) per
/// edge change, which is what lets a delta record carry the identity of
/// its pre- and post-state without an O(E) pass per batch
/// (IncrementalCoreMaintainer keeps the running value).
std::uint64_t EdgeSetFingerprint(const Graph& g);

class IncrementalCoreMaintainer {
 public:
  /// Seeds the maintainer with g's adjacency and core numbers (computed
  /// with the (1,2) peeling). The vertex count is fixed at construction.
  explicit IncrementalCoreMaintainer(const Graph& g);

  /// Seeds from precomputed core numbers (e.g. a loaded snapshot's lambda
  /// array), skipping the peel — the serving start-up path. `lambda` must
  /// be g's exact (1,2) peeling result (size checked; values trusted, so
  /// callers must have validated provenance, e.g. via the snapshot
  /// fingerprint pairing).
  IncrementalCoreMaintainer(const Graph& g, std::vector<Lambda> lambda);

  /// Inserts undirected edge {u, v} and updates core numbers. Returns false
  /// (and changes nothing) for self-loops and existing edges.
  bool InsertEdge(VertexId u, VertexId v);

  /// Removes undirected edge {u, v} and updates core numbers. Returns false
  /// (and changes nothing) for self-loops and missing edges.
  bool RemoveEdge(VertexId u, VertexId v);

  /// Applies `edits` in order and reports the aggregate lambda patch.
  /// Endpoints must be in [0, NumVertices()) (checked); self-loops and
  /// already-satisfied edits are counted as skipped, exactly like the
  /// single-edge primitives.
  CoreDeltaReport ApplyEdits(std::span<const EdgeEdit> edits);

  VertexId NumVertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  std::int64_t NumEdges() const { return num_edges_; }
  bool HasEdge(VertexId u, VertexId v) const;

  /// Current core numbers (lambda_2).
  const std::vector<Lambda>& lambda() const { return lambda_; }

  /// Running EdgeSetFingerprint of the current graph, maintained in O(1)
  /// per applied edit. Always equals EdgeSetFingerprint(ToGraph()).
  std::uint64_t edge_set_fingerprint() const { return edge_fingerprint_; }

  /// Materializes the current adjacency as an immutable Graph (hand-off to
  /// the decomposition algorithms and the per-batch hierarchy rebuild).
  /// The adjacency lists are already sorted, so this is a straight CSR
  /// assembly, not a GraphBuilder re-normalization.
  Graph ToGraph() const;

 private:
  std::vector<std::vector<VertexId>> adjacency_;  // each sorted ascending
  std::vector<Lambda> lambda_;
  std::int64_t num_edges_ = 0;
  std::uint64_t edge_fingerprint_ = 0;

  // Scratch reused across insertions.
  std::vector<std::int32_t> candidate_mark_;  // epoch stamps
  std::vector<std::int32_t> candidate_degree_;
  std::int32_t epoch_ = 0;
  // Subcore vertices scanned since the start of the current ApplyEdits
  // batch (reset there, accumulated by the single-edge primitives).
  std::int64_t subcore_visited_ = 0;
};

/// The (1,2) hierarchy of `g` given its peeling result: DF-Traversal
/// (Alg. 5/6) over the vertex space plus the FromSkeleton contraction —
/// byte-identical (node numbering included) to the hierarchy
/// Decompose(g, {kCore12, kDft}) builds, but without re-running the peel.
/// This is the rebuild step of the incremental update path: the maintainer
/// supplies the patched lambdas, this supplies the tree.
NucleusHierarchy RebuildCoreHierarchy(const Graph& g, const PeelResult& peel);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_INCREMENTAL_CORE_H_
