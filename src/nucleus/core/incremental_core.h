// Incremental k-core maintenance under edge insertions AND removals — the
// streaming setting of Sariyuce et al. (PVLDB 6(6), 2013) that the paper's
// Section 3.1 discusses as the one line of prior work that respects
// connectivity.
//
// The insertion algorithm is the classic subcore traversal: inserting
// (u, v) can raise core numbers by at most one, and only for vertices in
// the "subcore" of the lower endpoint — the connected set of vertices with
// lambda equal to k = min(lambda(u), lambda(v)). The maintainer collects
// that subcore, computes each member's candidate degree (neighbors with
// larger lambda or inside the subcore), peels members whose candidate
// degree is <= k, and promotes the survivors to k + 1.
//
// Removal is the mirror image: deleting (u, v) can lower core numbers by
// at most one, again only inside the subcore(s) of the endpoint(s) whose
// lambda equals k = min(lambda(u), lambda(v)). Members whose support
// (neighbors with lambda >= k) drops below k demote to k - 1, and each
// demotion cascades through the subcore.
#ifndef NUCLEUS_CORE_INCREMENTAL_CORE_H_
#define NUCLEUS_CORE_INCREMENTAL_CORE_H_

#include <vector>

#include "nucleus/core/types.h"
#include "nucleus/graph/graph.h"

namespace nucleus {

class IncrementalCoreMaintainer {
 public:
  /// Seeds the maintainer with g's adjacency and core numbers (computed
  /// with the (1,2) peeling). The vertex count is fixed at construction.
  explicit IncrementalCoreMaintainer(const Graph& g);

  /// Inserts undirected edge {u, v} and updates core numbers. Returns false
  /// (and changes nothing) for self-loops and existing edges.
  bool InsertEdge(VertexId u, VertexId v);

  /// Removes undirected edge {u, v} and updates core numbers. Returns false
  /// (and changes nothing) for self-loops and missing edges.
  bool RemoveEdge(VertexId u, VertexId v);

  VertexId NumVertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  std::int64_t NumEdges() const { return num_edges_; }
  bool HasEdge(VertexId u, VertexId v) const;

  /// Current core numbers (lambda_2).
  const std::vector<Lambda>& lambda() const { return lambda_; }

  /// Materializes the current adjacency as an immutable Graph (testing and
  /// hand-off to the decomposition algorithms).
  Graph ToGraph() const;

 private:
  std::vector<std::vector<VertexId>> adjacency_;  // each sorted ascending
  std::vector<Lambda> lambda_;
  std::int64_t num_edges_ = 0;

  // Scratch reused across insertions.
  std::vector<std::int32_t> candidate_mark_;  // epoch stamps
  std::vector<std::int32_t> candidate_degree_;
  std::int32_t epoch_ = 0;
};

}  // namespace nucleus

#endif  // NUCLEUS_CORE_INCREMENTAL_CORE_H_
