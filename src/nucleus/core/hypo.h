// "Hypo": the paper's hypothetical best possible traversal-based algorithm
// (Tables 4 and 5). It performs the peeling plus a single flat BFS over the
// whole K_r space through K_s adjacencies — the cheapest conceivable
// traversal — without computing nuclei or hierarchy. Any real traversal-
// based decomposition must do at least this much work, so beating Hypo
// (as FND does) shows the value of avoiding traversal altogether.
#ifndef NUCLEUS_CORE_HYPO_H_
#define NUCLEUS_CORE_HYPO_H_

#include <queue>
#include <vector>

#include "nucleus/core/spaces.h"
#include "nucleus/core/types.h"

namespace nucleus {

struct HypoStats {
  std::int64_t components = 0;  // K_s-connected components of the K_r space
  std::int64_t visits = 0;      // member visits during the BFS
};

/// One BFS over all K_r's via superclique membership, ignoring lambdas.
template <typename Space>
HypoStats HypoTraversal(const Space& space) {
  HypoStats stats;
  const std::int64_t n = space.NumCliques();
  std::vector<char> visited(n, 0);
  std::queue<CliqueId> queue;
  for (CliqueId seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    ++stats.components;
    visited[seed] = 1;
    queue.push(seed);
    while (!queue.empty()) {
      const CliqueId u = queue.front();
      queue.pop();
      space.ForEachSuperclique(u, [&](const CliqueId* members, int count) {
        for (int i = 0; i < count; ++i) {
          const CliqueId v = members[i];
          ++stats.visits;
          if (!visited[v]) {
            visited[v] = 1;
            queue.push(v);
          }
        }
      });
    }
  }
  return stats;
}

extern template HypoStats HypoTraversal<VertexSpace>(const VertexSpace&);
extern template HypoStats HypoTraversal<EdgeSpace>(const EdgeSpace&);
extern template HypoStats HypoTraversal<TriangleSpace>(const TriangleSpace&);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_HYPO_H_
