#include "nucleus/core/naive_traversal.h"

namespace nucleus {

template NaiveStats NaiveTraversalBudgeted<VertexSpace>(
    const VertexSpace&, const std::vector<Lambda>&, Lambda, double);
template NaiveStats NaiveTraversalBudgeted<EdgeSpace>(
    const EdgeSpace&, const std::vector<Lambda>&, Lambda, double);
template NaiveStats NaiveTraversalBudgeted<TriangleSpace>(
    const TriangleSpace&, const std::vector<Lambda>&, Lambda, double);
template NaiveStats NaiveTraversal<VertexSpace>(
    const VertexSpace&, const std::vector<Lambda>&, Lambda,
    const std::function<void(const Nucleus&)>*);
template NaiveStats NaiveTraversal<EdgeSpace>(
    const EdgeSpace&, const std::vector<Lambda>&, Lambda,
    const std::function<void(const Nucleus&)>*);
template NaiveStats NaiveTraversal<TriangleSpace>(
    const TriangleSpace&, const std::vector<Lambda>&, Lambda,
    const std::function<void(const Nucleus&)>*);
template std::vector<Nucleus> CollectNucleiNaive<VertexSpace>(
    const VertexSpace&, const std::vector<Lambda>&, Lambda);
template std::vector<Nucleus> CollectNucleiNaive<EdgeSpace>(
    const EdgeSpace&, const std::vector<Lambda>&, Lambda);
template std::vector<Nucleus> CollectNucleiNaive<TriangleSpace>(
    const TriangleSpace&, const std::vector<Lambda>&, Lambda);

}  // namespace nucleus
