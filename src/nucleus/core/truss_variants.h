// The three competing k-truss semantics the paper's Section 3.2 and
// Figure 3 disentangle, as queryable subgraph extractors over one peeling
// result:
//
//   * k-dense / triangle k-core (Saito et al.; Zhang & Parthasarathy) —
//     the edge set {e : lambda_3(e) >= k}, possibly disconnected;
//   * k-truss / k-community (Cohen; Verma & Butenko) — the connected
//     components of that edge set under shared-VERTEX connectivity;
//   * k-truss community / k-(2,3) nucleus (Huang et al.; Sariyuce et al.) —
//     its components under TRIANGLE connectivity (edges must share a
//     triangle whose edges all have lambda_3 >= k).
//
// Figure 3's example (two triangles sharing one vertex, k=2 in the paper's
// k-2 convention, i.e. support threshold 1): k-dense and k-truss both
// report one subgraph spanning the bow tie; the k-truss community splits it
// into the two triangles. Tests in tests/truss_variants_test.cc reproduce
// exactly this discrimination.
#ifndef NUCLEUS_CORE_TRUSS_VARIANTS_H_
#define NUCLEUS_CORE_TRUSS_VARIANTS_H_

#include <vector>

#include "nucleus/cliques/edge_index.h"
#include "nucleus/core/types.h"
#include "nucleus/graph/graph.h"

namespace nucleus {

/// All edges of trussness >= k ("k-dense" / "triangle k-core"): one —
/// possibly disconnected — edge set. Sorted by edge id. `k` uses this
/// library's support convention (edge in >= k triangles), which is the
/// papers' k minus 2.
std::vector<EdgeId> KDenseEdges(const std::vector<Lambda>& truss, Lambda k);

/// The "k-truss" / "k-community" semantics: vertex-connected components of
/// the k-dense edge set. Each component is a sorted edge-id list; the list
/// of components is sorted by first edge.
std::vector<std::vector<EdgeId>> KTrussComponents(
    const Graph& g, const EdgeIndex& edges, const std::vector<Lambda>& truss,
    Lambda k);

/// The "k-truss community" / k-(2,3) nucleus semantics: triangle-connected
/// components of the k-dense edge set. Same ordering conventions.
std::vector<std::vector<EdgeId>> KTrussCommunities(
    const Graph& g, const EdgeIndex& edges, const std::vector<Lambda>& truss,
    Lambda k);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_TRUSS_VARIANTS_H_
