// FastNucleusDecomposition (paper Alg. 8) and BuildHierarchy (Alg. 9):
// the traversal-avoiding algorithm, the paper's best performer for (2,3)
// and (3,4) — faster even than the hypothetical best traversal (Table 5).
//
// During peeling, instead of ignoring supercliques that contain processed
// K_r's, the algorithm harvests them for connectivity information: the
// processed member w of minimum lambda either has lambda equal to the K_r
// being processed — in which case the two belong to the same (non-maximal)
// sub-nucleus T*_{r,s} and are united in the root-forest — or a smaller
// lambda, in which case the pair of sub-nuclei is appended to the ADJ list.
// A binned pass over ADJ in decreasing lambda order then assembles the
// hierarchy-skeleton exactly as DF-Traversal would, with no traversal.
#ifndef NUCLEUS_CORE_FAST_NUCLEUS_H_
#define NUCLEUS_CORE_FAST_NUCLEUS_H_

#include <utility>
#include <vector>

#include "nucleus/core/peeling.h"
#include "nucleus/core/spaces.h"
#include "nucleus/core/types.h"
#include "nucleus/util/bucket_queue.h"
#include "nucleus/util/timer.h"

namespace nucleus {

struct FndResult {
  PeelResult peel;
  SkeletonBuild build;
  /// |c_down(T*_{r,s})|: number of recorded higher-to-lower-lambda
  /// sub-nucleus connections (the ADJ list size, Table 3's last columns).
  std::int64_t num_adj = 0;
  double peel_seconds = 0.0;   // extended peeling (Alg. 8 lines 1-19)
  double build_seconds = 0.0;  // BuildHierarchy post-processing (Alg. 9)
};

/// Intermediate state after the extended peeling of Alg. 8 (lines 1-19),
/// before BuildHierarchy: the disjoint-set forest of non-maximal sub-nuclei
/// T*_{r,s} plus the recorded higher-to-lower-lambda ADJ connections.
/// Exposed so ablation benchmarks can time alternative post-processing
/// strategies on identical inputs.
struct FndPeelState {
  PeelResult peel;
  HierarchySkeleton skeleton;
  std::vector<std::int32_t> comp;
  std::vector<std::pair<std::int32_t, std::int32_t>> adj;
};

namespace internal {

/// Alg. 9. Bins the ADJ pairs by the smaller-side lambda and processes bins
/// in decreasing order, attaching resolved higher-lambda roots under
/// lower-lambda ones and merging equal-lambda roots after each bin.
void BuildHierarchy(const std::vector<std::pair<std::int32_t, std::int32_t>>& adj,
                    Lambda max_lambda, HierarchySkeleton* skeleton);

/// The shared FND epilogue (serial and parallel pipelines): BuildHierarchy
/// over `adj`, sub-nucleus count, artificial root, and tying parentless
/// nodes to it. `build->skeleton` and `build->comp` must already be set.
void FinishSkeleton(
    const std::vector<std::pair<std::int32_t, std::int32_t>>& adj,
    Lambda max_lambda, SkeletonBuild* build);

}  // namespace internal

/// Alg. 8 lines 1-19: peeling with sub-nucleus detection and ADJ recording.
template <typename Space>
FndPeelState FastNucleusPeel(const Space& space) {
  FndPeelState state;
  const std::int64_t n = space.NumCliques();
  state.peel.lambda.assign(n, 0);
  state.comp.assign(n, kInvalidId);
  std::vector<Lambda>& lambda = state.peel.lambda;
  std::vector<std::int32_t>& comp = state.comp;
  HierarchySkeleton& skeleton = state.skeleton;
  std::vector<std::pair<std::int32_t, std::int32_t>>& adj = state.adj;

  PeelingBucketQueue queue;
  queue.Init(ComputeSupports(space));

  while (!queue.Empty()) {
    std::int32_t value = 0;
    const CliqueId u = queue.PopMin(&value);
    lambda[u] = value;
    if (value > state.peel.max_lambda) state.peel.max_lambda = value;
    const std::size_t adj_begin = adj.size();

    space.ForEachSuperclique(u, [&](const CliqueId* members, int count) {
      // Find the processed member w (other than u) of minimum lambda.
      CliqueId w = kInvalidId;
      Lambda w_lambda = 0;
      for (int i = 0; i < count; ++i) {
        const CliqueId v = members[i];
        if (v == u || !queue.Popped(v)) continue;
        if (w == kInvalidId || lambda[v] < w_lambda) {
          w = v;
          w_lambda = lambda[v];
        }
      }
      if (w == kInvalidId) {
        // All other members unprocessed: the plain peeling step.
        for (int i = 0; i < count; ++i) {
          const CliqueId v = members[i];
          if (v != u && queue.Value(v) > value) queue.Decrement(v);
        }
      } else if (w_lambda == value) {
        // Same sub-nucleus as w (strongly K_s-connected at level value).
        if (comp[u] == kInvalidId) {
          comp[u] = comp[w];
        } else {
          skeleton.UnionR(comp[u], comp[w]);
        }
      } else {
        // w's structure is an ancestor of u's in the hierarchy; defer.
        adj.emplace_back(comp[u], comp[w]);  // comp[u] may still be -1
      }
    });

    if (comp[u] == kInvalidId) comp[u] = skeleton.AddNode(value);
    // Alg. 8 line 19: resolve the pairs recorded before comp[u] was known.
    for (std::size_t i = adj_begin; i < adj.size(); ++i) {
      if (adj[i].first == kInvalidId) adj[i].first = comp[u];
    }
  }
  return state;
}

/// Alg. 8. One pass: peeling + sub-nucleus detection + ADJ recording,
/// followed by the lightweight BuildHierarchy post-processing.
template <typename Space>
FndResult FastNucleusDecomposition(const Space& space) {
  FndResult result;
  Timer timer;
  FndPeelState state = FastNucleusPeel(space);
  result.peel = std::move(state.peel);
  result.peel_seconds = timer.Seconds();

  timer.Restart();
  result.num_adj = static_cast<std::int64_t>(state.adj.size());
  result.build.skeleton = std::move(state.skeleton);
  result.build.comp = std::move(state.comp);
  internal::FinishSkeleton(state.adj, result.peel.max_lambda, &result.build);
  result.build_seconds = timer.Seconds();
  return result;
}

extern template FndPeelState FastNucleusPeel<VertexSpace>(const VertexSpace&);
extern template FndPeelState FastNucleusPeel<EdgeSpace>(const EdgeSpace&);
extern template FndPeelState FastNucleusPeel<TriangleSpace>(
    const TriangleSpace&);
extern template FndResult FastNucleusDecomposition<VertexSpace>(
    const VertexSpace&);
extern template FndResult FastNucleusDecomposition<EdgeSpace>(
    const EdgeSpace&);
extern template FndResult FastNucleusDecomposition<TriangleSpace>(
    const TriangleSpace&);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_FAST_NUCLEUS_H_
