// A materialized clique space for ARBITRARY (r, s), r < s — the full
// generality of the paper's Definition 2. The three evaluated cases
// ((1,2), (2,3), (3,4)) have specialized on-the-fly spaces in spaces.h;
// GenericSpace trades memory (it stores every K_r and every K_s membership
// list) for complete genericity, enabling e.g. (1,3) decompositions
// (vertices by triangle participation) or (2,4) (edges by four-clique
// participation) with the same Peel / DfTraversal / FastNucleusDecomposition
// templates.
#ifndef NUCLEUS_CORE_GENERIC_SPACE_H_
#define NUCLEUS_CORE_GENERIC_SPACE_H_

#include <span>
#include <vector>

#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"

namespace nucleus {

class GenericSpace {
 public:
  /// Enumerates all K_r's and K_s's of g. Requires 1 <= r < s. Intended for
  /// graphs where the K_s population fits comfortably in memory.
  static GenericSpace Build(const Graph& g, int r, int s);

  int r() const { return r_; }
  int s() const { return s_; }

  std::int64_t NumCliques() const { return num_kr_; }
  std::int64_t NumSupercliques() const { return num_ks_; }

  /// The r vertices of K_r `u`, ascending.
  std::span<const VertexId> CliqueVertices(CliqueId u) const {
    return {kr_vertices_.data() + static_cast<std::size_t>(u) * r_,
            static_cast<std::size_t>(r_)};
  }

  /// Id of the K_r on exactly `vertices` (ascending, r of them);
  /// kInvalidId if absent.
  CliqueId FindClique(std::span<const VertexId> vertices) const;

  /// Calls f(members, count) for every K_s containing u, where members are
  /// the C(s, r) member K_r ids (u among them).
  template <typename F>
  void ForEachSuperclique(CliqueId u, F&& f) const {
    const std::int64_t begin = membership_offsets_[u];
    const std::int64_t end = membership_offsets_[u + 1];
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t ks = memberships_[i];
      f(ks_members_.data() + ks * members_per_ks_,
        static_cast<int>(members_per_ks_));
    }
  }

 private:
  int r_ = 0;
  int s_ = 0;
  std::int64_t num_kr_ = 0;
  std::int64_t num_ks_ = 0;
  std::int64_t members_per_ks_ = 0;           // C(s, r)
  std::vector<VertexId> kr_vertices_;         // num_kr_ * r, each ascending
  std::vector<CliqueId> ks_members_;          // num_ks_ * members_per_ks_
  std::vector<std::int64_t> membership_offsets_;  // per K_r, into memberships_
  std::vector<std::int64_t> memberships_;     // K_s ids, grouped by K_r
};

}  // namespace nucleus

#endif  // NUCLEUS_CORE_GENERIC_SPACE_H_
