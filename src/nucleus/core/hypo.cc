#include "nucleus/core/hypo.h"

namespace nucleus {

template HypoStats HypoTraversal<VertexSpace>(const VertexSpace&);
template HypoStats HypoTraversal<EdgeSpace>(const EdgeSpace&);
template HypoStats HypoTraversal<TriangleSpace>(const TriangleSpace&);

}  // namespace nucleus
