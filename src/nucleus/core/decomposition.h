// One-call decomposition facade: picks the (r,s) family and algorithm,
// builds the required clique indices, runs peeling + hierarchy
// construction, and reports per-phase timings and skeleton statistics —
// the interface the examples and the benchmark harness use.
#ifndef NUCLEUS_CORE_DECOMPOSITION_H_
#define NUCLEUS_CORE_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "nucleus/core/hierarchy.h"
#include "nucleus/core/types.h"
#include "nucleus/graph/graph.h"
#include "nucleus/parallel/parallel_config.h"

namespace nucleus {

/// Which (r, s)-nucleus decomposition to run.
enum class Family {
  kCore12,     // (1,2): k-core
  kTruss23,    // (2,3): k-truss community
  kNucleus34,  // (3,4)
};

/// Which hierarchy-construction algorithm to use.
enum class Algorithm {
  kNaive,  // Alg. 3: peel + per-k BFS (no hierarchy; nuclei only)
  kDft,    // Alg. 5/6: disjoint-set forest traversal
  kFnd,    // Alg. 8/9: traversal-avoiding
  kLcps,   // Matula-Beck adaptation (kCore12 only)
  kHypo,   // peel + one flat BFS (lower-bound baseline; no output)
};

const char* FamilyName(Family family);
const char* AlgorithmName(Algorithm algorithm);

struct DecomposeOptions {
  Family family = Family::kCore12;
  Algorithm algorithm = Algorithm::kFnd;
  /// Materialize the naive algorithm's nuclei (kNaive only; tests).
  bool collect_nuclei = false;
  /// Skip NucleusHierarchy construction and validation (benchmarks time the
  /// skeleton algorithms exactly as the paper does).
  bool build_tree = true;
  /// Threading. Defaults to serial (num_threads == 1); num_threads == 0
  /// uses all hardware threads. With more than one resolved thread the
  /// peeling phase runs wave-parallel for every algorithm, and kFnd runs
  /// the fully parallel pipeline (FastNucleusDecompositionParallel). The
  /// peel output is bit-identical to the serial run; the kFnd hierarchy is
  /// canonically identical (see parallel/parallel_fnd.h).
  ParallelConfig parallel;
};

struct PhaseTimings {
  double index_seconds = 0.0;     // edge/triangle index construction
  double peel_seconds = 0.0;      // Alg. 1 (FND: extended peeling)
  double traverse_seconds = 0.0;  // traversal or BuildHierarchy phase
  double total_seconds = 0.0;     // index + peel + traverse
};

struct DecompositionResult {
  std::int64_t num_cliques = 0;  // |K_r|
  PeelResult peel;
  /// Hierarchy tree (kDft / kFnd / kLcps with build_tree).
  NucleusHierarchy hierarchy;
  /// Materialized nuclei (kNaive with collect_nuclei).
  std::vector<Nucleus> nuclei;
  /// kNaive: number of nuclei found and total member visits.
  std::int64_t naive_num_nuclei = 0;
  /// Sub-nucleus counts: |T_{r,s}| for kDft, |T*_{r,s}| for kFnd.
  std::int64_t num_subnuclei = 0;
  /// |c_down(T*_{r,s})| (kFnd only): recorded ADJ connections.
  std::int64_t num_adj = 0;
  PhaseTimings timings;
};

/// Runs the requested decomposition. Aborts on invalid combinations
/// (kLcps with a family other than kCore12).
DecompositionResult Decompose(const Graph& g, const DecomposeOptions& options);

/// The vertex set spanned by a list of K_r member ids of `family`:
/// the members themselves for (1,2), endpoint unions for (2,3), vertex
/// unions for (3,4). Used to turn nuclei into induced subgraphs.
std::vector<VertexId> MembersToVertices(const Graph& g, Family family,
                                        const std::vector<CliqueId>& members);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_DECOMPOSITION_H_
