#include "nucleus/core/df_traversal.h"

namespace nucleus {

template SkeletonBuild DfTraversal<VertexSpace>(const VertexSpace&,
                                                const PeelResult&);
template SkeletonBuild DfTraversal<EdgeSpace>(const EdgeSpace&,
                                              const PeelResult&);
template SkeletonBuild DfTraversal<TriangleSpace>(const TriangleSpace&,
                                                  const PeelResult&);

}  // namespace nucleus
