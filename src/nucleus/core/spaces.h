// Clique spaces: the (r, s) instantiations the generic algorithms run on.
//
// A space presents the K_r's of a graph as ids 0..NumCliques()-1 and
// enumerates, for a given K_r, every K_s containing it together with the ids
// of all of the K_s's member K_r's. This is the only interface Alg. 1
// (peeling), Alg. 2 (traversal), Alg. 5/6 (DF-Traversal) and Alg. 8 (FND)
// need, which is what makes them "generic for any nucleus decomposition".
//
//   VertexSpace   — r=1, s=2: K_r = vertex, K_s = edge        (k-core)
//   EdgeSpace     — r=2, s=3: K_r = edge,   K_s = triangle    (k-truss)
//   TriangleSpace — r=3, s=4: K_r = triangle, K_s = four-clique
//
// ForEachSuperclique(u, f) calls f(members, count) where members is the
// array of the K_s's member K_r ids (count == s for the s-r == 1 cases
// implemented here) and always contains u itself.
#ifndef NUCLEUS_CORE_SPACES_H_
#define NUCLEUS_CORE_SPACES_H_

#include <algorithm>

#include "nucleus/cliques/edge_index.h"
#include "nucleus/cliques/triangle_index.h"
#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"

namespace nucleus {

class VertexSpace {
 public:
  static constexpr int kR = 1;
  static constexpr int kS = 2;
  static constexpr int kMembers = 2;

  explicit VertexSpace(const Graph& g) : g_(&g) {}

  std::int64_t NumCliques() const { return g_->NumVertices(); }

  template <typename F>
  void ForEachSuperclique(CliqueId u, F&& f) const {
    CliqueId members[2];
    members[0] = u;
    for (VertexId v : g_->Neighbors(u)) {
      members[1] = v;
      f(static_cast<const CliqueId*>(members), 2);
    }
  }

  const Graph& graph() const { return *g_; }

 private:
  const Graph* g_;
};

class EdgeSpace {
 public:
  static constexpr int kR = 2;
  static constexpr int kS = 3;
  static constexpr int kMembers = 3;

  EdgeSpace(const Graph& g, const EdgeIndex& edges) : g_(&g), edges_(&edges) {}

  std::int64_t NumCliques() const { return edges_->NumEdges(); }

  /// Enumerates the triangles containing edge e by merging the sorted
  /// adjacency lists of its endpoints; the aligned edge-id arrays provide
  /// the member edge ids with no hashing.
  template <typename F>
  void ForEachSuperclique(CliqueId e, F&& f) const {
    const auto [u, v] = edges_->Endpoints(e);
    const auto nu = g_->Neighbors(u);
    const auto nv = g_->Neighbors(v);
    const auto eu = edges_->AdjEdgeIds(*g_, u);
    const auto ev = edges_->AdjEdgeIds(*g_, v);
    std::size_t i = 0;
    std::size_t j = 0;
    CliqueId members[3];
    members[0] = e;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] < nv[j]) {
        ++i;
      } else if (nu[i] > nv[j]) {
        ++j;
      } else {
        members[1] = eu[i];
        members[2] = ev[j];
        f(static_cast<const CliqueId*>(members), 3);
        ++i;
        ++j;
      }
    }
  }

  const Graph& graph() const { return *g_; }
  const EdgeIndex& edges() const { return *edges_; }

 private:
  const Graph* g_;
  const EdgeIndex* edges_;
};

class TriangleSpace {
 public:
  static constexpr int kR = 3;
  static constexpr int kS = 4;
  static constexpr int kMembers = 4;

  TriangleSpace(const Graph& g, const EdgeIndex& edges,
                const TriangleIndex& triangles)
      : g_(&g), edges_(&edges), triangles_(&triangles) {}

  std::int64_t NumCliques() const { return triangles_->NumTriangles(); }

  /// Enumerates the K4s containing triangle t by three-way merging the
  /// triangle lists of t's edges (see TriangleIndex::ForEachK4).
  template <typename F>
  void ForEachSuperclique(CliqueId t, F&& f) const {
    CliqueId members[4];
    members[0] = t;
    triangles_->ForEachK4(
        t, [&](VertexId /*x*/, TriangleId t1, TriangleId t2, TriangleId t3) {
          members[1] = t1;
          members[2] = t2;
          members[3] = t3;
          f(static_cast<const CliqueId*>(members), 4);
        });
  }

  const Graph& graph() const { return *g_; }
  const EdgeIndex& edges() const { return *edges_; }
  const TriangleIndex& triangles() const { return *triangles_; }

 private:
  const Graph* g_;
  const EdgeIndex* edges_;
  const TriangleIndex* triangles_;
};

}  // namespace nucleus

#endif  // NUCLEUS_CORE_SPACES_H_
