// Adaptation of Matula & Beck's Level Component Priority Search (LCPS) for
// the k-core hierarchy (paper Section 5.1).
//
// The traversal repeatedly pops the discovered vertex of maximum priority,
// where a vertex's priority is the level at which the search reached it:
// min(lambda(v), lambda(u)) for the discovering edge (u, v). Matula & Beck
// note that maintaining an appropriate priority queue is the difficulty of
// implementing LCPS; following the paper, we use a bucket structure, making
// every operation O(1) amortized and the whole algorithm O(|E|).
//
// Instead of emitting bracketed output we maintain the current node of the
// hierarchy tree: equal level stays, higher level descends through a chain
// of new nodes (one per level), lower level climbs. Each vertex is assigned
// to the node at its own lambda level, so the resulting skeleton feeds the
// same NucleusHierarchy contraction as DFT/FND.
#ifndef NUCLEUS_CORE_LCPS_H_
#define NUCLEUS_CORE_LCPS_H_

#include "nucleus/core/types.h"
#include "nucleus/graph/graph.h"

namespace nucleus {

/// Builds the k-core hierarchy-skeleton by LCPS. (1,2) only: LCPS relies on
/// plain vertex adjacency.
SkeletonBuild LcpsKCoreHierarchy(const Graph& g, const PeelResult& peel);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_LCPS_H_
