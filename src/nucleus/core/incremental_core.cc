#include "nucleus/core/incremental_core.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "nucleus/core/df_traversal.h"
#include "nucleus/core/peeling.h"
#include "nucleus/core/spaces.h"

namespace nucleus {
namespace {

/// SplitMix64 finalizer: the per-edge mix of EdgeSetFingerprint. A plain
/// XOR of raw (u, v) keys would cancel structured edit patterns; the
/// finalizer makes every edge contribute an independent-looking word.
std::uint64_t MixEdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u))
                     << 32) |
                    static_cast<std::uint32_t>(v);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t VertexCountSeed(VertexId n) {
  // Distinguishes graphs that differ only in isolated trailing vertices.
  return MixEdgeKey(-1, n);
}

}  // namespace

std::uint64_t EdgeSetFingerprint(const Graph& g) {
  std::uint64_t fp = VertexCountSeed(g.NumVertices());
  g.ForEachEdge([&fp](VertexId u, VertexId v) { fp ^= MixEdgeKey(u, v); });
  return fp;
}

IncrementalCoreMaintainer::IncrementalCoreMaintainer(const Graph& g)
    : IncrementalCoreMaintainer(g, Peel(VertexSpace(g)).lambda) {}

IncrementalCoreMaintainer::IncrementalCoreMaintainer(
    const Graph& g, std::vector<Lambda> lambda) {
  const VertexId n = g.NumVertices();
  NUCLEUS_CHECK_MSG(static_cast<VertexId>(lambda.size()) == n,
                    "lambda size does not match the graph");
  adjacency_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.NumEdges();
  lambda_ = std::move(lambda);
  edge_fingerprint_ = EdgeSetFingerprint(g);
  candidate_mark_.assign(n, 0);
  candidate_degree_.assign(n, 0);
}

bool IncrementalCoreMaintainer::HasEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return false;
  const auto& nbrs = adjacency_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool IncrementalCoreMaintainer::InsertEdge(VertexId u, VertexId v) {
  NUCLEUS_CHECK(u >= 0 && u < NumVertices());
  NUCLEUS_CHECK(v >= 0 && v < NumVertices());
  if (u == v || HasEdge(u, v)) return false;

  auto insert_sorted = [this](VertexId a, VertexId b) {
    auto& nbrs = adjacency_[a];
    nbrs.insert(std::upper_bound(nbrs.begin(), nbrs.end(), b), b);
  };
  insert_sorted(u, v);
  insert_sorted(v, u);
  ++num_edges_;
  edge_fingerprint_ ^= MixEdgeKey(u, v);

  // Only the subcore of the lower endpoint can be promoted.
  const VertexId root = lambda_[u] <= lambda_[v] ? u : v;
  const Lambda k = lambda_[root];
  ++epoch_;

  // Collect the subcore: vertices with lambda == k connected to root through
  // lambda == k vertices, and their candidate degrees — neighbors of larger
  // lambda always count; neighbors of equal lambda count because they are
  // in the same subcore (reached by this BFS).
  std::vector<VertexId> candidates;
  std::queue<VertexId> queue;
  candidate_mark_[root] = epoch_;
  queue.push(root);
  while (!queue.empty()) {
    const VertexId w = queue.front();
    queue.pop();
    candidates.push_back(w);
    std::int32_t cd = 0;
    for (VertexId x : adjacency_[w]) {
      if (lambda_[x] > k) {
        ++cd;
      } else if (lambda_[x] == k) {
        ++cd;
        if (candidate_mark_[x] != epoch_) {
          candidate_mark_[x] = epoch_;
          queue.push(x);
        }
      }
    }
    candidate_degree_[w] = cd;
  }
  subcore_visited_ += static_cast<std::int64_t>(candidates.size());

  // Peel candidates whose candidate degree is <= k; evicted vertices stop
  // supporting their equal-lambda neighbors.
  std::vector<VertexId> evict;
  for (VertexId w : candidates) {
    if (candidate_degree_[w] <= k) evict.push_back(w);
  }
  while (!evict.empty()) {
    const VertexId w = evict.back();
    evict.pop_back();
    if (candidate_mark_[w] != epoch_) continue;  // already evicted
    candidate_mark_[w] = 0;
    for (VertexId x : adjacency_[w]) {
      if (lambda_[x] == k && candidate_mark_[x] == epoch_) {
        if (--candidate_degree_[x] == k) evict.push_back(x);
      }
    }
  }

  // Survivors gain exactly one level (insertions raise lambda by <= 1).
  for (VertexId w : candidates) {
    if (candidate_mark_[w] == epoch_) lambda_[w] = k + 1;
  }
  return true;
}

bool IncrementalCoreMaintainer::RemoveEdge(VertexId u, VertexId v) {
  NUCLEUS_CHECK(u >= 0 && u < NumVertices());
  NUCLEUS_CHECK(v >= 0 && v < NumVertices());
  if (u == v || !HasEdge(u, v)) return false;

  auto erase_sorted = [this](VertexId a, VertexId b) {
    auto& nbrs = adjacency_[a];
    nbrs.erase(std::lower_bound(nbrs.begin(), nbrs.end(), b));
  };
  erase_sorted(u, v);
  erase_sorted(v, u);
  --num_edges_;
  edge_fingerprint_ ^= MixEdgeKey(u, v);

  // Removal can demote only the subcore(s) of the endpoint(s) whose lambda
  // equals k = min(lambda(u), lambda(v)); a demotion is by exactly one.
  const Lambda k = std::min(lambda_[u], lambda_[v]);
  ++epoch_;

  // Collect the affected subcore(s) by BFS over lambda == k vertices from
  // each endpoint at level k, and compute supports: neighbors with
  // lambda >= k (equal-lambda neighbors outside the subcore still count —
  // unlike insertion, membership of the same subcore is not required for a
  // neighbor to certify support, only its lambda).
  std::vector<VertexId> candidates;
  std::queue<VertexId> queue;
  for (VertexId root : {u, v}) {
    if (lambda_[root] == k && candidate_mark_[root] != epoch_) {
      candidate_mark_[root] = epoch_;
      queue.push(root);
    }
  }
  while (!queue.empty()) {
    const VertexId w = queue.front();
    queue.pop();
    candidates.push_back(w);
    std::int32_t support = 0;
    for (VertexId x : adjacency_[w]) {
      if (lambda_[x] >= k) ++support;
      if (lambda_[x] == k && candidate_mark_[x] != epoch_) {
        candidate_mark_[x] = epoch_;
        queue.push(x);
      }
    }
    candidate_degree_[w] = support;
  }
  subcore_visited_ += static_cast<std::int64_t>(candidates.size());

  // Cascade demotions: a candidate whose support fell below k drops to
  // k - 1 and stops supporting its equal-lambda neighbors.
  std::vector<VertexId> evict;
  for (VertexId w : candidates) {
    if (candidate_degree_[w] < k) evict.push_back(w);
  }
  while (!evict.empty()) {
    const VertexId w = evict.back();
    evict.pop_back();
    if (lambda_[w] != k) continue;  // already demoted
    lambda_[w] = k - 1;
    for (VertexId x : adjacency_[w]) {
      if (lambda_[x] == k && candidate_mark_[x] == epoch_) {
        if (--candidate_degree_[x] == k - 1) evict.push_back(x);
      }
    }
  }
  return true;
}

CoreDeltaReport IncrementalCoreMaintainer::ApplyEdits(
    std::span<const EdgeEdit> edits) {
  CoreDeltaReport report;
  // Snapshot the pre-state once; the patch is the post-batch diff, so an
  // edit sequence that promotes and then demotes a vertex reports nothing
  // for it (the patch describes states, not intermediate churn).
  const std::vector<Lambda> before = lambda_;
  subcore_visited_ = 0;
  for (const EdgeEdit& edit : edits) {
    const bool changed = edit.op == EdgeEditOp::kInsert
                             ? InsertEdge(edit.u, edit.v)
                             : RemoveEdge(edit.u, edit.v);
    if (changed) {
      ++report.applied;
    } else {
      ++report.skipped;
    }
  }
  report.subcore_visited = subcore_visited_;
  const VertexId n = NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    if (lambda_[v] != before[v]) {
      report.touched.push_back(v);
      report.old_lambda.push_back(before[v]);
      report.new_lambda.push_back(lambda_[v]);
    }
    if (lambda_[v] > report.max_lambda) report.max_lambda = lambda_[v];
  }
  return report;
}

Graph IncrementalCoreMaintainer::ToGraph() const {
  const VertexId n = NumVertices();
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] =
        offsets[v] + static_cast<std::int64_t>(adjacency_[v].size());
  }
  std::vector<VertexId> adj;
  adj.reserve(static_cast<std::size_t>(offsets[n]));
  for (VertexId v = 0; v < n; ++v) {
    adj.insert(adj.end(), adjacency_[v].begin(), adjacency_[v].end());
  }
  return Graph::FromCsr(std::move(offsets), std::move(adj));
}

NucleusHierarchy RebuildCoreHierarchy(const Graph& g, const PeelResult& peel) {
  const VertexSpace space(g);
  const SkeletonBuild build = DfTraversal(space, peel);
  return NucleusHierarchy::FromSkeleton(build, g.NumVertices());
}

}  // namespace nucleus
