#include "nucleus/core/incremental_core.h"

#include <algorithm>
#include <queue>

#include "nucleus/core/peeling.h"
#include "nucleus/core/spaces.h"
#include "nucleus/graph/graph_builder.h"

namespace nucleus {

IncrementalCoreMaintainer::IncrementalCoreMaintainer(const Graph& g) {
  const VertexId n = g.NumVertices();
  adjacency_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.NumEdges();
  lambda_ = Peel(VertexSpace(g)).lambda;
  candidate_mark_.assign(n, 0);
  candidate_degree_.assign(n, 0);
}

bool IncrementalCoreMaintainer::HasEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return false;
  const auto& nbrs = adjacency_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool IncrementalCoreMaintainer::InsertEdge(VertexId u, VertexId v) {
  NUCLEUS_CHECK(u >= 0 && u < NumVertices());
  NUCLEUS_CHECK(v >= 0 && v < NumVertices());
  if (u == v || HasEdge(u, v)) return false;

  auto insert_sorted = [this](VertexId a, VertexId b) {
    auto& nbrs = adjacency_[a];
    nbrs.insert(std::upper_bound(nbrs.begin(), nbrs.end(), b), b);
  };
  insert_sorted(u, v);
  insert_sorted(v, u);
  ++num_edges_;

  // Only the subcore of the lower endpoint can be promoted.
  const VertexId root = lambda_[u] <= lambda_[v] ? u : v;
  const Lambda k = lambda_[root];
  ++epoch_;

  // Collect the subcore: vertices with lambda == k connected to root through
  // lambda == k vertices, and their candidate degrees — neighbors of larger
  // lambda always count; neighbors of equal lambda count because they are
  // in the same subcore (reached by this BFS).
  std::vector<VertexId> candidates;
  std::queue<VertexId> queue;
  candidate_mark_[root] = epoch_;
  queue.push(root);
  while (!queue.empty()) {
    const VertexId w = queue.front();
    queue.pop();
    candidates.push_back(w);
    std::int32_t cd = 0;
    for (VertexId x : adjacency_[w]) {
      if (lambda_[x] > k) {
        ++cd;
      } else if (lambda_[x] == k) {
        ++cd;
        if (candidate_mark_[x] != epoch_) {
          candidate_mark_[x] = epoch_;
          queue.push(x);
        }
      }
    }
    candidate_degree_[w] = cd;
  }

  // Peel candidates whose candidate degree is <= k; evicted vertices stop
  // supporting their equal-lambda neighbors.
  std::vector<VertexId> evict;
  for (VertexId w : candidates) {
    if (candidate_degree_[w] <= k) evict.push_back(w);
  }
  while (!evict.empty()) {
    const VertexId w = evict.back();
    evict.pop_back();
    if (candidate_mark_[w] != epoch_) continue;  // already evicted
    candidate_mark_[w] = 0;
    for (VertexId x : adjacency_[w]) {
      if (lambda_[x] == k && candidate_mark_[x] == epoch_) {
        if (--candidate_degree_[x] == k) evict.push_back(x);
      }
    }
  }

  // Survivors gain exactly one level (insertions raise lambda by <= 1).
  for (VertexId w : candidates) {
    if (candidate_mark_[w] == epoch_) lambda_[w] = k + 1;
  }
  return true;
}

bool IncrementalCoreMaintainer::RemoveEdge(VertexId u, VertexId v) {
  NUCLEUS_CHECK(u >= 0 && u < NumVertices());
  NUCLEUS_CHECK(v >= 0 && v < NumVertices());
  if (u == v || !HasEdge(u, v)) return false;

  auto erase_sorted = [this](VertexId a, VertexId b) {
    auto& nbrs = adjacency_[a];
    nbrs.erase(std::lower_bound(nbrs.begin(), nbrs.end(), b));
  };
  erase_sorted(u, v);
  erase_sorted(v, u);
  --num_edges_;

  // Removal can demote only the subcore(s) of the endpoint(s) whose lambda
  // equals k = min(lambda(u), lambda(v)); a demotion is by exactly one.
  const Lambda k = std::min(lambda_[u], lambda_[v]);
  ++epoch_;

  // Collect the affected subcore(s) by BFS over lambda == k vertices from
  // each endpoint at level k, and compute supports: neighbors with
  // lambda >= k (equal-lambda neighbors outside the subcore still count —
  // unlike insertion, membership of the same subcore is not required for a
  // neighbor to certify support, only its lambda).
  std::vector<VertexId> candidates;
  std::queue<VertexId> queue;
  for (VertexId root : {u, v}) {
    if (lambda_[root] == k && candidate_mark_[root] != epoch_) {
      candidate_mark_[root] = epoch_;
      queue.push(root);
    }
  }
  while (!queue.empty()) {
    const VertexId w = queue.front();
    queue.pop();
    candidates.push_back(w);
    std::int32_t support = 0;
    for (VertexId x : adjacency_[w]) {
      if (lambda_[x] >= k) ++support;
      if (lambda_[x] == k && candidate_mark_[x] != epoch_) {
        candidate_mark_[x] = epoch_;
        queue.push(x);
      }
    }
    candidate_degree_[w] = support;
  }

  // Cascade demotions: a candidate whose support fell below k drops to
  // k - 1 and stops supporting its equal-lambda neighbors.
  std::vector<VertexId> evict;
  for (VertexId w : candidates) {
    if (candidate_degree_[w] < k) evict.push_back(w);
  }
  while (!evict.empty()) {
    const VertexId w = evict.back();
    evict.pop_back();
    if (lambda_[w] != k) continue;  // already demoted
    lambda_[w] = k - 1;
    for (VertexId x : adjacency_[w]) {
      if (lambda_[x] == k && candidate_mark_[x] == epoch_) {
        if (--candidate_degree_[x] == k - 1) evict.push_back(x);
      }
    }
  }
  return true;
}

Graph IncrementalCoreMaintainer::ToGraph() const {
  GraphBuilder builder(NumVertices());
  for (VertexId ufrom = 0; ufrom < NumVertices(); ++ufrom) {
    for (VertexId to : adjacency_[ufrom]) {
      if (ufrom < to) builder.AddEdge(ufrom, to);
    }
  }
  return builder.Build();
}

}  // namespace nucleus
