// The final product of a decomposition: the tree of k-(r,s) nuclei.
//
// A hierarchy-skeleton (from DF-Traversal, FND or LCPS) contains one node
// per sub-nucleus; equal-lambda nodes connected by disjoint-set links belong
// to the same nucleus. NucleusHierarchy contracts every equal-lambda parent
// chain into one canonical node ("we just take the child-parent links for
// which the lambda values are different", paper Section 4.2), splices away
// LCPS's memberless chain levels, and exposes the containment tree:
//
//   * the root is an artificial all-graph node (lambda == kRootLambda);
//   * every other node is one k-(r,s) nucleus with k = node lambda >= 1
//     (lambda == 0 nodes hold K_r's that belong to no K_s and therefore to
//     no nucleus; they are kept in the tree but not reported as nuclei);
//   * the member K_r's of the nucleus at node d are all K_r's assigned to
//     d's subtree; the K_r's assigned directly to d are those with
//     lambda == d's lambda.
#ifndef NUCLEUS_CORE_HIERARCHY_H_
#define NUCLEUS_CORE_HIERARCHY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "nucleus/core/types.h"
#include "nucleus/util/common.h"

namespace nucleus {

class NucleusHierarchy {
 public:
  struct Node {
    Lambda lambda = 0;
    std::int32_t parent = kInvalidId;     // kInvalidId for the root only
    std::vector<std::int32_t> children;   // ascending node ids
    std::vector<CliqueId> members;        // direct members, sorted
    std::int64_t subtree_members = 0;     // direct + descendants
  };

  NucleusHierarchy() = default;

  /// Contracts a skeleton into the canonical tree. `num_cliques` is the
  /// size of the K_r space (comp must assign every K_r).
  static NucleusHierarchy FromSkeleton(const SkeletonBuild& build,
                                       std::int64_t num_cliques);

  /// Reassembles a hierarchy from its serialized parts (the snapshot load
  /// path, see store/snapshot.h). Node 0 must be the root (parent
  /// kInvalidId, lambda kRootLambda); every other node's parent must have a
  /// smaller id and a strictly smaller lambda — the compact numbering
  /// FromSkeleton produces. Children lists, direct member lists and subtree
  /// aggregates are rebuilt from `parent` / `node_of_clique`. Violated
  /// preconditions abort: callers holding untrusted input (the snapshot
  /// reader) must validate and return Status before calling this.
  static NucleusHierarchy FromParts(std::vector<Lambda> node_lambda,
                                    std::vector<std::int32_t> parent,
                                    std::vector<std::int32_t> node_of_clique);

  std::int32_t root() const { return root_; }
  std::int64_t NumNodes() const {
    return static_cast<std::int64_t>(nodes_.size());
  }

  /// Size of the K_r space the hierarchy was built over.
  std::int64_t NumCliques() const {
    return static_cast<std::int64_t>(node_of_clique_.size());
  }
  const Node& node(std::int32_t id) const { return nodes_[id]; }

  /// Number of real nuclei (nodes with lambda >= 1).
  std::int64_t NumNuclei() const { return num_nuclei_; }

  Lambda MaxLambda() const { return max_lambda_; }

  /// Deepest-node id of the K_r u: the node of u's maximum k-(r,s) nucleus.
  std::int32_t NodeOfClique(CliqueId u) const { return node_of_clique_[u]; }

  /// The whole clique→node assignment as a flat array (serializers and
  /// SnapshotSource views read it without a per-clique copy).
  const std::vector<std::int32_t>& NodeOfCliqueArray() const {
    return node_of_clique_;
  }

  /// Node ids from NodeOfClique(u) up to (and including) the root: the
  /// chain of nuclei containing u, densest first.
  std::vector<std::int32_t> AncestorChain(CliqueId u) const;

  /// Materializes every nucleus (lambda >= 1 node) with its full member
  /// list. Memory is the sum of subtree sizes; intended for tests, queries
  /// and small graphs — the tree itself is the compact representation.
  std::vector<Nucleus> ExtractNuclei() const;

  /// Full member list of one node's nucleus (its subtree), sorted.
  std::vector<CliqueId> MembersOfSubtree(std::int32_t id) const;

  /// Structural invariant check; aborts on violation. `lambda` is the
  /// peeling result the hierarchy was built from.
  void Validate(const std::vector<Lambda>& lambda) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::int32_t> node_of_clique_;
  std::int32_t root_ = kInvalidId;
  std::int64_t num_nuclei_ = 0;
  Lambda max_lambda_ = 0;
};

/// Structural profile of a hierarchy — the analysis the paper's conclusion
/// proposes as an open direction ("looking at the T_{r,s}, which are many
/// more than the k-(r,s) nuclei, might reveal more insight about
/// networks"): how nodes, members and branching distribute over lambda.
struct HierarchyProfile {
  std::int64_t num_nodes = 0;    // excluding the root
  std::int64_t num_leaves = 0;   // nodes with no children
  std::int32_t max_depth = 0;    // root = depth 0
  double avg_branching = 0.0;    // children per internal non-root node
  double avg_members_per_node = 0.0;
  /// (lambda, node count) in increasing lambda, lambda >= 0 only.
  std::vector<std::pair<Lambda, std::int64_t>> nodes_per_lambda;
};

HierarchyProfile ProfileHierarchy(const NucleusHierarchy& h);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_HIERARCHY_H_
