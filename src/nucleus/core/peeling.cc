#include "nucleus/core/peeling.h"

namespace nucleus {

template std::vector<std::int32_t> ComputeSupports<VertexSpace>(
    const VertexSpace&);
template std::vector<std::int32_t> ComputeSupports<EdgeSpace>(
    const EdgeSpace&);
template std::vector<std::int32_t> ComputeSupports<TriangleSpace>(
    const TriangleSpace&);
template PeelResult Peel<VertexSpace>(const VertexSpace&);
template PeelResult Peel<EdgeSpace>(const EdgeSpace&);
template PeelResult Peel<TriangleSpace>(const TriangleSpace&);

}  // namespace nucleus
