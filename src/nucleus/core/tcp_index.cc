#include "nucleus/core/tcp_index.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "nucleus/dsf/disjoint_set.h"

namespace nucleus {
namespace {

// A candidate ego-network edge during construction, in x-local neighbor
// indices so the Kruskal union-find is O(deg(x)).
struct Candidate {
  std::int32_t local_y;
  std::int32_t local_z;
  Lambda weight;
};

}  // namespace

TcpIndex TcpIndex::Build(const Graph& g, const EdgeIndex& edge_index,
                         const std::vector<Lambda>& truss) {
  TcpIndex index;
  const VertexId n = g.NumVertices();
  index.offsets_.assign(n + 1, 0);

  std::vector<Candidate> candidates;
  for (VertexId x = 0; x < n; ++x) {
    const auto nx = g.Neighbors(x);
    const auto ex = edge_index.AdjEdgeIds(g, x);
    candidates.clear();
    // Triangles {x, y, z} with y < z: for each neighbor y, intersect the
    // remainder of x's list with y's list.
    for (std::size_t i = 0; i < nx.size(); ++i) {
      const VertexId y = nx[i];
      const auto ny = g.Neighbors(y);
      const auto ey = edge_index.AdjEdgeIds(g, y);
      std::size_t a = i + 1;  // z must come after y in x's list
      std::size_t b = std::lower_bound(ny.begin(), ny.end(),
                                       a < nx.size() ? nx[a] : 0) -
                      ny.begin();
      while (a < nx.size() && b < ny.size()) {
        if (nx[a] < ny[b]) {
          ++a;
        } else if (nx[a] > ny[b]) {
          ++b;
        } else {
          const Lambda weight = std::min(
              {truss[ex[i]], truss[ex[a]], truss[ey[b]]});
          candidates.push_back({static_cast<std::int32_t>(i),
                                static_cast<std::int32_t>(a), weight});
          ++a;
          ++b;
        }
      }
    }
    // Kruskal in decreasing weight: a maximum spanning forest of the ego
    // network. Stable ordering keeps construction deterministic.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.weight > b.weight;
                     });
    DisjointSet dsf(static_cast<std::int64_t>(nx.size()));
    for (const Candidate& c : candidates) {
      if (dsf.Union(c.local_y, c.local_z)) {
        index.edges_.push_back({nx[c.local_y], nx[c.local_z], c.weight});
      }
    }
    index.offsets_[x + 1] = static_cast<std::int64_t>(index.edges_.size());
  }
  return index;
}

std::vector<std::vector<EdgeId>> TcpIndex::QueryCommunities(
    const Graph& g, const EdgeIndex& edge_index,
    const std::vector<Lambda>& truss, VertexId q, Lambda k) const {
  NUCLEUS_CHECK(k >= 1);
  NUCLEUS_CHECK(q >= 0 && q < g.NumVertices());
  std::vector<std::vector<EdgeId>> communities;
  std::unordered_set<EdgeId> included;      // edges already reported
  std::unordered_set<std::int64_t> expanded;  // processed (x, seed) keys
  const auto pair_key = [&g](VertexId x, VertexId seed) {
    return static_cast<std::int64_t>(x) * g.NumVertices() + seed;
  };

  for (VertexId y0 : g.Neighbors(q)) {
    const EdgeId e0 = edge_index.GetEdgeId(g, q, y0);
    if (truss[e0] < k || included.count(e0) > 0) continue;

    std::vector<EdgeId> community;
    std::queue<std::pair<VertexId, VertexId>> pairs;
    pairs.emplace(q, y0);
    while (!pairs.empty()) {
      const auto [x, seed] = pairs.front();
      pairs.pop();
      if (!expanded.insert(pair_key(x, seed)).second) continue;

      // Vertices tree-connected to `seed` in TCP_x via weights >= k: build
      // the weight-filtered forest adjacency once (O(deg(x))), then BFS.
      const auto forest = TreeEdgesOf(x);
      std::unordered_map<VertexId, std::vector<VertexId>> adj;
      adj.reserve(forest.size() * 2);
      for (const TreeEdge& te : forest) {
        if (te.weight < k) continue;
        adj[te.y].push_back(te.z);
        adj[te.z].push_back(te.y);
      }
      std::vector<VertexId> frontier{seed};
      std::unordered_set<VertexId> reached{seed};
      while (!frontier.empty()) {
        const VertexId cur = frontier.back();
        frontier.pop_back();
        const auto it = adj.find(cur);
        if (it == adj.end()) continue;
        for (VertexId other : it->second) {
          if (reached.insert(other).second) frontier.push_back(other);
        }
      }
      for (VertexId y : reached) {
        const EdgeId e = edge_index.GetEdgeId(g, x, y);
        NUCLEUS_CHECK(e != kInvalidId && truss[e] >= k);
        if (included.insert(e).second) community.push_back(e);
        pairs.emplace(y, x);
      }
    }
    std::sort(community.begin(), community.end());
    communities.push_back(std::move(community));
  }
  return communities;
}

}  // namespace nucleus
