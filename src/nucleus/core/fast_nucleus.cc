#include "nucleus/core/fast_nucleus.h"

namespace nucleus {
namespace internal {

void BuildHierarchy(
    const std::vector<std::pair<std::int32_t, std::int32_t>>& adj,
    Lambda max_lambda, HierarchySkeleton* skeleton) {
  // Bin pairs by the lambda of the lower side (counting sort).
  std::vector<std::int64_t> bin(max_lambda + 2, 0);
  for (const auto& [s, t] : adj) ++bin[skeleton->LambdaOf(t) + 1];
  for (Lambda l = 0; l <= max_lambda; ++l) bin[l + 1] += bin[l];
  std::vector<std::int32_t> binned_s(adj.size());
  std::vector<std::int32_t> binned_t(adj.size());
  {
    std::vector<std::int64_t> fill(bin.begin(), bin.end() - 1);
    for (const auto& [s, t] : adj) {
      const std::int64_t p = fill[skeleton->LambdaOf(t)]++;
      binned_s[p] = s;
      binned_t[p] = t;
    }
  }

  std::vector<std::pair<std::int32_t, std::int32_t>> merge;
  for (Lambda level = max_lambda; level >= 0; --level) {
    merge.clear();
    for (std::int64_t i = bin[level]; i < bin[level + 1]; ++i) {
      const std::int32_t s = skeleton->FindRoot(binned_s[i]);
      const std::int32_t t = skeleton->FindRoot(binned_t[i]);
      if (s == t) continue;
      NUCLEUS_CHECK(skeleton->LambdaOf(t) == level);
      NUCLEUS_CHECK(skeleton->LambdaOf(s) >= level);
      if (skeleton->LambdaOf(s) > skeleton->LambdaOf(t)) {
        skeleton->AttachChild(s, t);
      } else {
        merge.emplace_back(s, t);
      }
    }
    for (const auto& [s, t] : merge) skeleton->UnionR(s, t);
  }
}

void FinishSkeleton(
    const std::vector<std::pair<std::int32_t, std::int32_t>>& adj,
    Lambda max_lambda, SkeletonBuild* build) {
  HierarchySkeleton& skeleton = build->skeleton;
  BuildHierarchy(adj, max_lambda, &skeleton);
  build->num_subnuclei = skeleton.NumNodes();
  build->root_id = skeleton.AddNode(kRootLambda);
  for (std::int32_t s = 0; s < build->root_id; ++s) {
    if (!skeleton.HasParent(s)) skeleton.SetParent(s, build->root_id);
  }
}

}  // namespace internal

template FndPeelState FastNucleusPeel<VertexSpace>(const VertexSpace&);
template FndPeelState FastNucleusPeel<EdgeSpace>(const EdgeSpace&);
template FndPeelState FastNucleusPeel<TriangleSpace>(const TriangleSpace&);
template FndResult FastNucleusDecomposition<VertexSpace>(const VertexSpace&);
template FndResult FastNucleusDecomposition<EdgeSpace>(const EdgeSpace&);
template FndResult FastNucleusDecomposition<TriangleSpace>(const TriangleSpace&);

}  // namespace nucleus
