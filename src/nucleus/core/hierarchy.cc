#include "nucleus/core/hierarchy.h"

#include <algorithm>
#include <map>

namespace nucleus {
namespace {

// Canonical representative of a skeleton node: the highest ancestor
// reachable through equal-lambda parent links. Memoized via `canon`.
std::int32_t Canonical(const HierarchySkeleton& skel,
                       std::vector<std::int32_t>* canon, std::int32_t x) {
  std::vector<std::int32_t> chain;
  std::int32_t cur = x;
  while ((*canon)[cur] == kInvalidId) {
    const std::int32_t p = skel.Parent(cur);
    if (p == kInvalidId || skel.LambdaOf(p) != skel.LambdaOf(cur)) break;
    chain.push_back(cur);
    cur = p;
  }
  const std::int32_t rep = (*canon)[cur] != kInvalidId ? (*canon)[cur] : cur;
  (*canon)[cur] = rep;
  for (std::int32_t v : chain) (*canon)[v] = rep;
  return rep;
}

}  // namespace

NucleusHierarchy NucleusHierarchy::FromSkeleton(const SkeletonBuild& build,
                                                std::int64_t num_cliques) {
  const HierarchySkeleton& skel = build.skeleton;
  const std::int64_t num_skel = skel.NumNodes();
  NUCLEUS_CHECK(build.root_id != kInvalidId);
  NUCLEUS_CHECK(static_cast<std::int64_t>(build.comp.size()) == num_cliques);

  // 1. Contract equal-lambda parent chains.
  std::vector<std::int32_t> canon(num_skel, kInvalidId);
  for (std::int32_t i = 0; i < num_skel; ++i) Canonical(skel, &canon, i);

  // 2. Direct member counts per representative (for the splice step).
  std::vector<std::int64_t> direct_count(num_skel, 0);
  for (std::int64_t u = 0; u < num_cliques; ++u) {
    const std::int32_t c = build.comp[u];
    NUCLEUS_CHECK_MSG(c != kInvalidId, "K_r without a sub-nucleus");
    ++direct_count[canon[c]];
  }

  // 3. Keep the root and every representative with direct members; splice
  //    memberless chain nodes (LCPS levels with no lambda == level K_r) by
  //    climbing to the nearest kept ancestor.
  const std::int32_t root_rep = canon[build.root_id];
  std::vector<char> keep(num_skel, 0);
  for (std::int32_t i = 0; i < num_skel; ++i) {
    if (canon[i] == i && (direct_count[i] > 0 || i == root_rep)) keep[i] = 1;
  }
  // Effective parent representative of a kept node.
  auto kept_parent = [&](std::int32_t rep) {
    std::int32_t p = skel.Parent(rep);
    while (p != kInvalidId) {
      const std::int32_t pr = canon[p];
      if (keep[pr]) return pr;
      p = skel.Parent(pr);
    }
    return kInvalidId;
  };

  // 4. Compact renumbering; parents get smaller ids than children so a
  //    single forward/backward sweep can aggregate subtree data.
  NucleusHierarchy h;
  std::vector<std::int32_t> compact(num_skel, kInvalidId);
  {
    // BFS from the root over "kept children" relations. Build children-of
    // lists lazily from kept_parent.
    std::vector<std::vector<std::int32_t>> kids(num_skel);
    for (std::int32_t i = 0; i < num_skel; ++i) {
      if (!keep[i] || i == root_rep) continue;
      const std::int32_t p = kept_parent(i);
      NUCLEUS_CHECK_MSG(p != kInvalidId, "kept node with no kept ancestor");
      kids[p].push_back(i);
    }
    std::vector<std::int32_t> order{root_rep};
    for (std::size_t head = 0; head < order.size(); ++head) {
      for (std::int32_t c : kids[order[head]]) order.push_back(c);
    }
    h.nodes_.resize(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      compact[order[i]] = static_cast<std::int32_t>(i);
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::int32_t rep = order[i];
      Node& node = h.nodes_[i];
      node.lambda = skel.LambdaOf(rep);
      node.parent =
          rep == root_rep ? kInvalidId : compact[kept_parent(rep)];
      if (node.parent != kInvalidId) {
        h.nodes_[node.parent].children.push_back(static_cast<std::int32_t>(i));
      }
    }
  }
  h.root_ = compact[root_rep];
  NUCLEUS_CHECK(h.root_ == 0);

  // 5. Assign cliques to compact nodes and collect direct member lists.
  h.node_of_clique_.resize(num_cliques);
  for (std::int64_t u = 0; u < num_cliques; ++u) {
    const std::int32_t id = compact[canon[build.comp[u]]];
    h.node_of_clique_[u] = id;
    h.nodes_[id].members.push_back(static_cast<CliqueId>(u));
  }
  // comp buckets were filled in increasing u, so members are sorted already.

  // 6. Subtree aggregates (children have larger compact ids than parents).
  for (std::int64_t i = static_cast<std::int64_t>(h.nodes_.size()) - 1; i >= 0;
       --i) {
    Node& node = h.nodes_[i];
    node.subtree_members += static_cast<std::int64_t>(node.members.size());
    if (node.parent != kInvalidId) {
      h.nodes_[node.parent].subtree_members += node.subtree_members;
    }
    if (node.lambda >= 1) ++h.num_nuclei_;
    if (node.lambda > h.max_lambda_) h.max_lambda_ = node.lambda;
  }
  return h;
}

NucleusHierarchy NucleusHierarchy::FromParts(
    std::vector<Lambda> node_lambda, std::vector<std::int32_t> parent,
    std::vector<std::int32_t> node_of_clique) {
  const std::int32_t num_nodes =
      static_cast<std::int32_t>(node_lambda.size());
  NUCLEUS_CHECK(num_nodes >= 1);
  NUCLEUS_CHECK(parent.size() == node_lambda.size());
  NUCLEUS_CHECK(parent[0] == kInvalidId && node_lambda[0] == kRootLambda);

  NucleusHierarchy h;
  h.root_ = 0;
  h.nodes_.resize(num_nodes);
  for (std::int32_t i = 0; i < num_nodes; ++i) {
    Node& node = h.nodes_[i];
    node.lambda = node_lambda[i];
    node.parent = parent[i];
    if (i == 0) continue;
    NUCLEUS_CHECK(parent[i] >= 0 && parent[i] < i);
    NUCLEUS_CHECK(node_lambda[parent[i]] < node_lambda[i]);
    h.nodes_[parent[i]].children.push_back(i);
  }

  // Direct members: clique ids ascend, so each bucket fills sorted.
  for (std::size_t u = 0; u < node_of_clique.size(); ++u) {
    const std::int32_t id = node_of_clique[u];
    NUCLEUS_CHECK(id >= 0 && id < num_nodes);
    h.nodes_[id].members.push_back(static_cast<CliqueId>(u));
  }
  h.node_of_clique_ = std::move(node_of_clique);

  // Subtree aggregates, exactly as FromSkeleton step 6 (children have
  // larger ids than parents, so one backward sweep suffices).
  for (std::int32_t i = num_nodes - 1; i >= 0; --i) {
    Node& node = h.nodes_[i];
    NUCLEUS_CHECK_MSG(i == 0 || !node.members.empty(),
                      "non-root hierarchy node with no direct members");
    node.subtree_members += static_cast<std::int64_t>(node.members.size());
    if (node.parent != kInvalidId) {
      h.nodes_[node.parent].subtree_members += node.subtree_members;
    }
    if (node.lambda >= 1) ++h.num_nuclei_;
    if (node.lambda > h.max_lambda_) h.max_lambda_ = node.lambda;
  }
  return h;
}

std::vector<std::int32_t> NucleusHierarchy::AncestorChain(CliqueId u) const {
  std::vector<std::int32_t> chain;
  std::int32_t cur = node_of_clique_[u];
  while (cur != kInvalidId) {
    chain.push_back(cur);
    cur = nodes_[cur].parent;
  }
  return chain;
}

std::vector<CliqueId> NucleusHierarchy::MembersOfSubtree(
    std::int32_t id) const {
  std::vector<CliqueId> out;
  std::vector<std::int32_t> stack{id};
  while (!stack.empty()) {
    const std::int32_t cur = stack.back();
    stack.pop_back();
    out.insert(out.end(), nodes_[cur].members.begin(),
               nodes_[cur].members.end());
    for (std::int32_t c : nodes_[cur].children) stack.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Nucleus> NucleusHierarchy::ExtractNuclei() const {
  std::vector<Nucleus> out;
  out.reserve(static_cast<std::size_t>(num_nuclei_));
  for (std::int32_t id = 0; id < static_cast<std::int32_t>(nodes_.size());
       ++id) {
    if (nodes_[id].lambda < 1) continue;
    Nucleus nucleus;
    nucleus.k = nodes_[id].lambda;
    nucleus.members = MembersOfSubtree(id);
    out.push_back(std::move(nucleus));
  }
  return out;
}

HierarchyProfile ProfileHierarchy(const NucleusHierarchy& h) {
  HierarchyProfile profile;
  std::vector<std::int32_t> depth(h.NumNodes(), 0);
  std::map<Lambda, std::int64_t> per_lambda;
  std::int64_t internal_children = 0;
  std::int64_t internal_nodes = 0;
  std::int64_t members = 0;
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    const auto& node = h.node(id);
    if (node.parent != kInvalidId) {
      depth[id] = depth[node.parent] + 1;  // parents precede children
      profile.max_depth = std::max(profile.max_depth, depth[id]);
    }
    if (id == h.root()) continue;
    ++profile.num_nodes;
    members += static_cast<std::int64_t>(node.members.size());
    ++per_lambda[node.lambda];
    if (node.children.empty()) {
      ++profile.num_leaves;
    } else {
      ++internal_nodes;
      internal_children += static_cast<std::int64_t>(node.children.size());
    }
  }
  profile.avg_branching =
      internal_nodes > 0
          ? static_cast<double>(internal_children) / internal_nodes
          : 0.0;
  profile.avg_members_per_node =
      profile.num_nodes > 0
          ? static_cast<double>(members) / profile.num_nodes
          : 0.0;
  profile.nodes_per_lambda.assign(per_lambda.begin(), per_lambda.end());
  return profile;
}

void NucleusHierarchy::Validate(const std::vector<Lambda>& lambda) const {
  NUCLEUS_CHECK(root_ == 0 && !nodes_.empty());
  NUCLEUS_CHECK(nodes_[root_].lambda == kRootLambda);
  NUCLEUS_CHECK(nodes_[root_].parent == kInvalidId);
  NUCLEUS_CHECK(nodes_[root_].subtree_members ==
                static_cast<std::int64_t>(node_of_clique_.size()));
  for (std::int32_t id = 0; id < static_cast<std::int32_t>(nodes_.size());
       ++id) {
    const Node& node = nodes_[id];
    if (id != root_) {
      NUCLEUS_CHECK(node.parent != kInvalidId);
      // Strictly increasing lambda along every root-to-leaf path.
      NUCLEUS_CHECK(nodes_[node.parent].lambda < node.lambda);
      NUCLEUS_CHECK_MSG(!node.members.empty(),
                        "non-root hierarchy node with no direct members");
    }
    std::int64_t subtree = static_cast<std::int64_t>(node.members.size());
    for (std::int32_t c : node.children) {
      NUCLEUS_CHECK(nodes_[c].parent == id);
      subtree += nodes_[c].subtree_members;
    }
    NUCLEUS_CHECK(subtree == node.subtree_members);
    for (CliqueId u : node.members) {
      NUCLEUS_CHECK(node_of_clique_[u] == id);
      NUCLEUS_CHECK(lambda[u] == node.lambda);
    }
  }
}

}  // namespace nucleus
