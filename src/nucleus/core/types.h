// Shared result types of the decomposition layer.
#ifndef NUCLEUS_CORE_TYPES_H_
#define NUCLEUS_CORE_TYPES_H_

#include <cstdint>
#include <vector>

#include "nucleus/dsf/root_forest.h"
#include "nucleus/util/common.h"

namespace nucleus {

/// Output of the peeling phase (paper Alg. 1): the maximum k-(r,s) number
/// lambda_s(u) of every K_r, indexed by clique id.
struct PeelResult {
  std::vector<Lambda> lambda;
  Lambda max_lambda = 0;
};

/// One k-(r,s) nucleus: a maximal, K_s-connected set of K_r's whose
/// K_s-degrees inside the set are all >= k (paper Definition 2).
struct Nucleus {
  Lambda k = 0;
  std::vector<CliqueId> members;  // K_r ids, sorted ascending
};

/// A hierarchy-skeleton plus the K_r -> sub-nucleus assignment, as built by
/// DF-Traversal (Alg. 5/6), FND (Alg. 8/9) or the LCPS adaptation.
struct SkeletonBuild {
  HierarchySkeleton skeleton;
  std::vector<std::int32_t> comp;  // K_r id -> skeleton node id
  std::int32_t root_id = kInvalidId;
  /// Number of sub-nuclei (skeleton nodes excluding the artificial root).
  /// For FND these are the non-maximal T*_{r,s} of Table 3.
  std::int64_t num_subnuclei = 0;
};

}  // namespace nucleus

#endif  // NUCLEUS_CORE_TYPES_H_
