// Constant-ish-time queries over a NucleusHierarchy — the downstream
// payoff of building the hierarchy at all: once the tree exists, the
// community-search questions that Huang et al.'s TCP index answers with
// per-query traversal become ancestor lookups.
//
//   * NucleusAtLevel(u, k): the node of the k-(r,s) nucleus containing the
//     K_r u — Corollary 2's object, located without any traversal as the
//     highest ancestor of u's node whose lambda is still >= k (binary
//     lifting, O(log depth)).
//   * SmallestCommonNucleus(u, v): the densest nucleus containing both
//     K_r's — the lowest common ancestor of their nodes.
//
// The index is immutable and holds a pointer to the hierarchy it was built
// from; the hierarchy must outlive it.
#ifndef NUCLEUS_CORE_HIERARCHY_INDEX_H_
#define NUCLEUS_CORE_HIERARCHY_INDEX_H_

#include <cstdint>
#include <vector>

#include "nucleus/core/hierarchy.h"
#include "nucleus/util/common.h"

namespace nucleus {

/// The index's precomputed state in serializable form (store/snapshot.h
/// persists these so a snapshot load skips the O(nodes * log depth) build).
struct HierarchyIndexTables {
  std::vector<std::int32_t> depth;  // per node, root = 0
  std::vector<std::int32_t> up;     // levels x num_nodes, row-major
  std::int32_t levels = 0;
};

class HierarchyIndex {
 public:
  /// Builds jump tables in O(nodes * log depth).
  explicit HierarchyIndex(const NucleusHierarchy& hierarchy);

  /// Adopts tables previously produced by Tables() for an identical
  /// hierarchy (the snapshot load path). Shape mismatches abort; semantic
  /// validation of untrusted tables happens in the snapshot reader.
  HierarchyIndex(const NucleusHierarchy& hierarchy,
                 HierarchyIndexTables tables);

  /// Copies the precomputed state for serialization. A HierarchyIndex
  /// rebuilt from these tables answers queries identically.
  HierarchyIndexTables Tables() const { return {depth_, up_, levels_}; }

  /// Depth of a node (root = 0).
  std::int32_t Depth(std::int32_t node) const { return depth_[node]; }

  /// Lowest common ancestor of two nodes.
  std::int32_t Lca(std::int32_t a, std::int32_t b) const;

  /// Node of the k-(r,s) nucleus containing the K_r u: the highest
  /// ancestor of u's node with lambda >= k. Returns kInvalidId when
  /// lambda(u) < k (u is in no k-nucleus). Requires k >= 1.
  std::int32_t NucleusAtLevel(CliqueId u, Lambda k) const;

  /// The densest nucleus containing both u and v: their nodes' LCA.
  /// Returns kInvalidId when the only common ancestor is the artificial
  /// root (the K_r's share no nucleus).
  std::int32_t SmallestCommonNucleus(CliqueId u, CliqueId v) const;

  /// Largest k such that u and v are in a common k-(r,s) nucleus, or 0.
  Lambda CommonNucleusLevel(CliqueId u, CliqueId v) const;

 private:
  const NucleusHierarchy* hierarchy_;
  std::vector<std::int32_t> depth_;
  /// up_[j * num_nodes + x] = 2^j-th ancestor of x (kInvalidId past root).
  std::vector<std::int32_t> up_;
  std::int32_t num_nodes_ = 0;
  std::int32_t levels_ = 0;

  std::int32_t Up(std::int32_t j, std::int32_t x) const {
    return up_[static_cast<std::size_t>(j) * num_nodes_ + x];
  }
};

}  // namespace nucleus

#endif  // NUCLEUS_CORE_HIERARCHY_INDEX_H_
