#include "nucleus/core/truss_variants.h"

#include <algorithm>

#include "nucleus/core/spaces.h"
#include "nucleus/dsf/disjoint_set.h"

namespace nucleus {
namespace {

// Groups the surviving edges by their DisjointSet representative and emits
// sorted components in first-edge order.
std::vector<std::vector<EdgeId>> ComponentsFromDsf(
    const std::vector<EdgeId>& survivors, DisjointSet* dsf) {
  std::vector<std::vector<EdgeId>> grouped(dsf->NumElements());
  for (EdgeId e : survivors) grouped[dsf->Find(e)].push_back(e);
  std::vector<std::vector<EdgeId>> out;
  for (auto& group : grouped) {
    if (!group.empty()) out.push_back(std::move(group));
  }
  std::sort(out.begin(), out.end(),
            [](const std::vector<EdgeId>& a, const std::vector<EdgeId>& b) {
              return a.front() < b.front();
            });
  return out;
}

}  // namespace

std::vector<EdgeId> KDenseEdges(const std::vector<Lambda>& truss, Lambda k) {
  NUCLEUS_CHECK(k >= 1);
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < static_cast<EdgeId>(truss.size()); ++e) {
    if (truss[e] >= k) out.push_back(e);
  }
  return out;
}

std::vector<std::vector<EdgeId>> KTrussComponents(
    const Graph& g, const EdgeIndex& edges, const std::vector<Lambda>& truss,
    Lambda k) {
  const std::vector<EdgeId> survivors = KDenseEdges(truss, k);
  std::vector<char> alive(truss.size(), 0);
  for (EdgeId e : survivors) alive[e] = 1;
  DisjointSet dsf(static_cast<std::int64_t>(truss.size()));
  // Two surviving edges sharing a vertex are connected: union each
  // vertex's surviving incident edges into a chain.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EdgeId first = kInvalidId;
    for (EdgeId e : edges.AdjEdgeIds(g, v)) {
      if (!alive[e]) continue;
      if (first == kInvalidId) {
        first = e;
      } else {
        dsf.Union(first, e);
      }
    }
  }
  return ComponentsFromDsf(survivors, &dsf);
}

std::vector<std::vector<EdgeId>> KTrussCommunities(
    const Graph& g, const EdgeIndex& edges, const std::vector<Lambda>& truss,
    Lambda k) {
  const std::vector<EdgeId> survivors = KDenseEdges(truss, k);
  DisjointSet dsf(static_cast<std::int64_t>(truss.size()));
  const EdgeSpace space(g, edges);
  for (EdgeId e : survivors) {
    space.ForEachSuperclique(e, [&](const CliqueId* members, int count) {
      for (int i = 0; i < count; ++i) {
        if (truss[members[i]] < k) return;  // triangle not fully surviving
      }
      for (int i = 1; i < count; ++i) dsf.Union(members[0], members[i]);
    });
  }
  return ComponentsFromDsf(survivors, &dsf);
}

}  // namespace nucleus
