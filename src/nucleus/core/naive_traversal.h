// The naive traversal (paper Alg. 2) and full naive decomposition
// (Alg. 3): for every k in [1, max lambda], BFS from every unvisited K_r
// with lambda == k through supercliques whose minimum member lambda is >= k,
// reporting each connected k-(r,s) nucleus.
//
// This is the paper's "Naive" baseline: it re-traverses the lambda >= k
// region once per k and resets the visited array each round, which is why
// the paper reports it up to three orders of magnitude slower than DFT/FND.
#ifndef NUCLEUS_CORE_NAIVE_TRAVERSAL_H_
#define NUCLEUS_CORE_NAIVE_TRAVERSAL_H_

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

#include "nucleus/core/spaces.h"
#include "nucleus/core/types.h"
#include "nucleus/util/timer.h"

namespace nucleus {

struct NaiveStats {
  std::int64_t num_nuclei = 0;
  std::int64_t total_members = 0;  // sum of nucleus sizes over all k
  /// False when a budgeted run hit its deadline (see
  /// NaiveTraversalBudgeted); partial counts are reported.
  bool completed = true;
};

/// Alg. 2. `visitor` may be null when only the stats are needed (the
/// benchmark harness does this to avoid materializing every nucleus).
template <typename Space>
NaiveStats NaiveTraversal(const Space& space, const std::vector<Lambda>& lambda,
                          Lambda max_lambda,
                          const std::function<void(const Nucleus&)>* visitor) {
  NaiveStats stats;
  const std::int64_t n = space.NumCliques();
  std::vector<char> visited;
  std::queue<CliqueId> queue;
  Nucleus nucleus;
  for (Lambda k = 1; k <= max_lambda; ++k) {
    visited.assign(n, 0);  // deliberate per-k reset, as written in Alg. 2
    for (CliqueId seed = 0; seed < n; ++seed) {
      if (lambda[seed] != k || visited[seed]) continue;
      nucleus.k = k;
      nucleus.members.clear();
      nucleus.members.push_back(seed);
      visited[seed] = 1;
      queue.push(seed);
      while (!queue.empty()) {
        const CliqueId u = queue.front();
        queue.pop();
        space.ForEachSuperclique(u, [&](const CliqueId* members, int count) {
          for (int i = 0; i < count; ++i) {
            if (lambda[members[i]] < k) return;  // lambda_{r,s}(C) < k
          }
          for (int i = 0; i < count; ++i) {
            const CliqueId v = members[i];
            if (!visited[v]) {
              visited[v] = 1;
              queue.push(v);
              nucleus.members.push_back(v);
            }
          }
        });
      }
      ++stats.num_nuclei;
      stats.total_members += static_cast<std::int64_t>(nucleus.members.size());
      if (visitor != nullptr) {
        std::sort(nucleus.members.begin(), nucleus.members.end());
        (*visitor)(nucleus);
      }
    }
  }
  return stats;
}

/// Deadline-bounded Alg. 2 for the benchmark harness: the paper reports
/// starred lower bounds for Naive runs that "did not finish in 2 days"
/// (Tables 1 and 5); at reproduction scale the same phenomenon appears in
/// minutes, so benches cap Naive and mark the result as a lower bound.
/// The deadline is checked between BFS seeds.
template <typename Space>
NaiveStats NaiveTraversalBudgeted(const Space& space,
                                  const std::vector<Lambda>& lambda,
                                  Lambda max_lambda, double budget_seconds) {
  NaiveStats stats;
  Timer timer;
  const std::int64_t n = space.NumCliques();
  std::vector<char> visited;
  std::queue<CliqueId> queue;
  std::vector<CliqueId> members;
  for (Lambda k = 1; k <= max_lambda; ++k) {
    visited.assign(n, 0);
    for (CliqueId seed = 0; seed < n; ++seed) {
      if (lambda[seed] != k || visited[seed]) continue;
      if (timer.Seconds() > budget_seconds) {
        stats.completed = false;
        return stats;
      }
      members.clear();
      members.push_back(seed);
      visited[seed] = 1;
      queue.push(seed);
      while (!queue.empty()) {
        const CliqueId u = queue.front();
        queue.pop();
        space.ForEachSuperclique(u, [&](const CliqueId* mem, int count) {
          for (int i = 0; i < count; ++i) {
            if (lambda[mem[i]] < k) return;
          }
          for (int i = 0; i < count; ++i) {
            const CliqueId v = mem[i];
            if (!visited[v]) {
              visited[v] = 1;
              queue.push(v);
              members.push_back(v);
            }
          }
        });
      }
      ++stats.num_nuclei;
      stats.total_members += static_cast<std::int64_t>(members.size());
    }
  }
  return stats;
}

/// Convenience for tests: materializes all nuclei of all k.
template <typename Space>
std::vector<Nucleus> CollectNucleiNaive(const Space& space,
                                        const std::vector<Lambda>& lambda,
                                        Lambda max_lambda) {
  std::vector<Nucleus> out;
  std::function<void(const Nucleus&)> visitor = [&out](const Nucleus& nuc) {
    out.push_back(nuc);
  };
  NaiveTraversal(space, lambda, max_lambda, &visitor);
  return out;
}

extern template NaiveStats NaiveTraversalBudgeted<VertexSpace>(
    const VertexSpace&, const std::vector<Lambda>&, Lambda, double);
extern template NaiveStats NaiveTraversalBudgeted<EdgeSpace>(
    const EdgeSpace&, const std::vector<Lambda>&, Lambda, double);
extern template NaiveStats NaiveTraversalBudgeted<TriangleSpace>(
    const TriangleSpace&, const std::vector<Lambda>&, Lambda, double);
extern template NaiveStats NaiveTraversal<VertexSpace>(
    const VertexSpace&, const std::vector<Lambda>&, Lambda,
    const std::function<void(const Nucleus&)>*);
extern template NaiveStats NaiveTraversal<EdgeSpace>(
    const EdgeSpace&, const std::vector<Lambda>&, Lambda,
    const std::function<void(const Nucleus&)>*);
extern template NaiveStats NaiveTraversal<TriangleSpace>(
    const TriangleSpace&, const std::vector<Lambda>&, Lambda,
    const std::function<void(const Nucleus&)>*);
extern template std::vector<Nucleus> CollectNucleiNaive<VertexSpace>(
    const VertexSpace&, const std::vector<Lambda>&, Lambda);
extern template std::vector<Nucleus> CollectNucleiNaive<EdgeSpace>(
    const EdgeSpace&, const std::vector<Lambda>&, Lambda);
extern template std::vector<Nucleus> CollectNucleiNaive<TriangleSpace>(
    const TriangleSpace&, const std::vector<Lambda>&, Lambda);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_NAIVE_TRAVERSAL_H_
