// DF-Traversal (paper Alg. 5 + SubNucleus Alg. 6): a single traversal that
// discovers the sub-(r,s) nuclei T_{r,s} in decreasing lambda order and
// stitches them into the hierarchy-skeleton with the root-forest (Alg. 7).
//
// Processing in decreasing lambda order means every structure adjacent to
// the sub-nucleus under construction is already in the skeleton, so its
// representative (greatest ancestor) is found by Find-r: if the
// representative's lambda is larger it becomes a child of the current
// sub-nucleus; if equal, the two are part of the same nucleus and are merged
// with Union-r after the traversal of the sub-nucleus completes.
#ifndef NUCLEUS_CORE_DF_TRAVERSAL_H_
#define NUCLEUS_CORE_DF_TRAVERSAL_H_

#include <queue>
#include <vector>

#include "nucleus/core/spaces.h"
#include "nucleus/core/types.h"

namespace nucleus {

namespace internal {

/// Alg. 6. Traverses the sub-nucleus of `start` (all K_r's of equal lambda
/// strongly K_s-connected to it, Definition 5), creates its skeleton node,
/// and links/merges the adjacent already-built structures.
template <typename Space>
void SubNucleus(const Space& space, CliqueId start,
                const std::vector<Lambda>& lambda, std::vector<char>* visited,
                std::vector<std::int32_t>* comp, HierarchySkeleton* skeleton,
                std::vector<std::int32_t>* marked,
                std::vector<std::int32_t>* merge, std::queue<CliqueId>* queue) {
  const Lambda k = lambda[start];
  const std::int32_t sn = skeleton->AddNode(k);
  marked->push_back(0);  // slot for the new node
  const std::int32_t epoch = sn + 1;  // unique, nonzero per SubNucleus call

  merge->clear();
  merge->push_back(sn);
  (*visited)[start] = 1;
  (*comp)[start] = sn;
  queue->push(start);

  while (!queue->empty()) {
    const CliqueId u = queue->front();
    queue->pop();
    space.ForEachSuperclique(u, [&](const CliqueId* members, int count) {
      // Only K_s's with lambda_{r,s}(C) == k connect the sub-nucleus
      // (Alg. 6 line 9); since lambda[u] == k this means no member below k.
      for (int i = 0; i < count; ++i) {
        if (lambda[members[i]] < k) return;
      }
      for (int i = 0; i < count; ++i) {
        const CliqueId v = members[i];
        if (v == u) continue;
        if (lambda[v] == k) {
          if (!(*visited)[v]) {
            (*visited)[v] = 1;
            (*comp)[v] = sn;
            queue->push(v);
          }
        } else {  // lambda[v] > k: v's sub-nucleus is already built
          // Alg. 6 lines 15-22 with the two marks kept distinct: the first
          // deduplicates Find-r calls per encountered sub-nucleus id, the
          // second deduplicates attach/merge per representative. (If
          // comp(v) is already its own root, its fresh first mark must not
          // suppress the attachment.)
          const std::int32_t s0 = (*comp)[v];
          if ((*marked)[s0] == epoch) continue;
          (*marked)[s0] = epoch;
          const std::int32_t s = skeleton->FindRoot(s0);
          if (s == sn || (s != s0 && (*marked)[s] == epoch)) continue;
          (*marked)[s] = epoch;
          if (skeleton->LambdaOf(s) > k) {
            skeleton->AttachChild(s, sn);
          } else {
            merge->push_back(s);  // equal lambda: same nucleus as sn
          }
        }
      }
    });
  }
  for (std::size_t i = 1; i < merge->size(); ++i) {
    skeleton->UnionR((*merge)[0], (*merge)[i]);
  }
}

}  // namespace internal

/// Alg. 5. Requires the peeling result; produces the hierarchy-skeleton.
template <typename Space>
SkeletonBuild DfTraversal(const Space& space, const PeelResult& peel) {
  SkeletonBuild build;
  const std::int64_t n = space.NumCliques();
  build.comp.assign(n, kInvalidId);
  std::vector<char> visited(n, 0);

  // Bucket ids by lambda so sub-nuclei are started in decreasing lambda
  // order without rescanning all K_r's per level.
  std::vector<std::int64_t> bin(peel.max_lambda + 2, 0);
  for (CliqueId u = 0; u < n; ++u) ++bin[peel.lambda[u] + 1];
  for (Lambda l = 0; l <= peel.max_lambda; ++l) bin[l + 1] += bin[l];
  std::vector<CliqueId> by_lambda(n);
  {
    std::vector<std::int64_t> fill(bin.begin(), bin.end() - 1);
    for (CliqueId u = 0; u < n; ++u) by_lambda[fill[peel.lambda[u]]++] = u;
  }

  std::vector<std::int32_t> marked;  // per-skeleton-node epoch stamps
  std::vector<std::int32_t> merge;
  std::queue<CliqueId> queue;
  for (std::int64_t i = n - 1; i >= 0; --i) {  // decreasing lambda
    const CliqueId u = by_lambda[i];
    if (!visited[u]) {
      internal::SubNucleus(space, u, peel.lambda, &visited, &build.comp,
                           &build.skeleton, &marked, &merge, &queue);
    }
  }

  build.num_subnuclei = build.skeleton.NumNodes();
  build.root_id = build.skeleton.AddNode(kRootLambda);
  for (std::int32_t s = 0; s < build.root_id; ++s) {
    if (!build.skeleton.HasParent(s)) build.skeleton.SetParent(s, build.root_id);
  }
  return build;
}

extern template SkeletonBuild DfTraversal<VertexSpace>(const VertexSpace&,
                                                       const PeelResult&);
extern template SkeletonBuild DfTraversal<EdgeSpace>(const EdgeSpace&,
                                                     const PeelResult&);
extern template SkeletonBuild DfTraversal<TriangleSpace>(const TriangleSpace&,
                                                         const PeelResult&);

}  // namespace nucleus

#endif  // NUCLEUS_CORE_DF_TRAVERSAL_H_
