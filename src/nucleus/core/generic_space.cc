#include "nucleus/core/generic_space.h"

#include <algorithm>

#include "nucleus/cliques/kclique.h"

namespace nucleus {
namespace {

// Lexicographic comparison of two r-tuples stored in a flat array.
struct TupleLess {
  const std::vector<VertexId>* flat;
  int r;
  bool operator()(std::int64_t a, std::int64_t b) const {
    const VertexId* pa = flat->data() + a * r;
    const VertexId* pb = flat->data() + b * r;
    return std::lexicographical_compare(pa, pa + r, pb, pb + r);
  }
};

}  // namespace

GenericSpace GenericSpace::Build(const Graph& g, int r, int s) {
  NUCLEUS_CHECK(1 <= r && r < s);
  GenericSpace space;
  space.r_ = r;
  space.s_ = s;

  // Pass 1: collect all K_r's, sorted by vertex tuple so ids are canonical
  // and FindClique can binary-search.
  std::vector<VertexId> tuples;
  ForEachClique(g, r, [&tuples](std::span<const VertexId> clique) {
    std::vector<VertexId> sorted(clique.begin(), clique.end());
    std::sort(sorted.begin(), sorted.end());
    tuples.insert(tuples.end(), sorted.begin(), sorted.end());
  });
  const std::int64_t num_kr = static_cast<std::int64_t>(tuples.size()) / r;
  std::vector<std::int64_t> order(num_kr);
  for (std::int64_t i = 0; i < num_kr; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), TupleLess{&tuples, r});
  space.kr_vertices_.resize(tuples.size());
  for (std::int64_t i = 0; i < num_kr; ++i) {
    std::copy(tuples.begin() + order[i] * r, tuples.begin() + (order[i] + 1) * r,
              space.kr_vertices_.begin() + i * r);
  }
  space.num_kr_ = num_kr;

  // Pass 2: enumerate K_s's; map each r-subset to its K_r id.
  std::int64_t members_per_ks = 1;
  for (int i = 0; i < r; ++i) {
    members_per_ks = members_per_ks * (s - i) / (i + 1);  // C(s, r)
  }
  space.members_per_ks_ = members_per_ks;

  std::vector<std::int64_t> degree(num_kr, 0);
  std::vector<VertexId> ks_sorted(s);
  std::vector<VertexId> subset(r);
  std::vector<int> choose(r);
  ForEachClique(g, s, [&](std::span<const VertexId> clique) {
    ks_sorted.assign(clique.begin(), clique.end());
    std::sort(ks_sorted.begin(), ks_sorted.end());
    // Enumerate all r-subsets by the standard combination walk.
    for (int i = 0; i < r; ++i) choose[i] = i;
    while (true) {
      for (int i = 0; i < r; ++i) subset[i] = ks_sorted[choose[i]];
      const CliqueId member = space.FindClique(subset);
      NUCLEUS_CHECK_MSG(member != kInvalidId, "K_s subset is not a K_r");
      space.ks_members_.push_back(member);
      ++degree[member];
      // Advance the combination.
      int pos = r - 1;
      while (pos >= 0 && choose[pos] == s - r + pos) --pos;
      if (pos < 0) break;
      ++choose[pos];
      for (int i = pos + 1; i < r; ++i) choose[i] = choose[i - 1] + 1;
    }
  });
  space.num_ks_ =
      static_cast<std::int64_t>(space.ks_members_.size()) / members_per_ks;

  // Pass 3: invert into per-K_r membership lists (CSR).
  space.membership_offsets_.assign(num_kr + 1, 0);
  for (std::int64_t u = 0; u < num_kr; ++u) {
    space.membership_offsets_[u + 1] = space.membership_offsets_[u] + degree[u];
  }
  space.memberships_.resize(space.membership_offsets_[num_kr]);
  std::vector<std::int64_t> fill(space.membership_offsets_.begin(),
                                 space.membership_offsets_.end() - 1);
  for (std::int64_t ks = 0; ks < space.num_ks_; ++ks) {
    for (std::int64_t i = 0; i < members_per_ks; ++i) {
      const CliqueId member = space.ks_members_[ks * members_per_ks + i];
      space.memberships_[fill[member]++] = ks;
    }
  }
  return space;
}

CliqueId GenericSpace::FindClique(std::span<const VertexId> vertices) const {
  NUCLEUS_CHECK(static_cast<int>(vertices.size()) == r_);
  std::int64_t lo = 0;
  std::int64_t hi = num_kr_;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    const VertexId* tuple = kr_vertices_.data() + mid * r_;
    if (std::lexicographical_compare(tuple, tuple + r_, vertices.begin(),
                                     vertices.end())) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == num_kr_) return kInvalidId;
  const VertexId* tuple = kr_vertices_.data() + lo * r_;
  if (!std::equal(tuple, tuple + r_, vertices.begin())) return kInvalidId;
  return static_cast<CliqueId>(lo);
}

}  // namespace nucleus
