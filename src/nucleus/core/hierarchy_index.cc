#include "nucleus/core/hierarchy_index.h"

#include <algorithm>

namespace nucleus {

HierarchyIndex::HierarchyIndex(const NucleusHierarchy& hierarchy)
    : hierarchy_(&hierarchy),
      num_nodes_(static_cast<std::int32_t>(hierarchy.NumNodes())) {
  depth_.assign(num_nodes_, 0);
  // Children always have larger ids than unrelated earlier subtrees is NOT
  // guaranteed; compute depths by an explicit traversal from the root.
  std::vector<std::int32_t> order;
  order.reserve(num_nodes_);
  order.push_back(hierarchy.root());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::int32_t x = order[i];
    for (std::int32_t c : hierarchy.node(x).children) {
      depth_[c] = depth_[x] + 1;
      order.push_back(c);
    }
  }
  NUCLEUS_CHECK(static_cast<std::int32_t>(order.size()) == num_nodes_);

  const std::int32_t max_depth =
      num_nodes_ == 0 ? 0 : *std::max_element(depth_.begin(), depth_.end());
  levels_ = 1;
  while ((1 << levels_) <= std::max(max_depth, 1)) ++levels_;

  up_.assign(static_cast<std::size_t>(levels_) * num_nodes_, kInvalidId);
  for (std::int32_t x = 0; x < num_nodes_; ++x) {
    up_[x] = hierarchy.node(x).parent;  // j = 0
  }
  for (std::int32_t j = 1; j < levels_; ++j) {
    for (std::int32_t x = 0; x < num_nodes_; ++x) {
      const std::int32_t half = Up(j - 1, x);
      up_[static_cast<std::size_t>(j) * num_nodes_ + x] =
          half == kInvalidId ? kInvalidId : Up(j - 1, half);
    }
  }
}

HierarchyIndex::HierarchyIndex(const NucleusHierarchy& hierarchy,
                               HierarchyIndexTables tables)
    : hierarchy_(&hierarchy),
      depth_(std::move(tables.depth)),
      up_(std::move(tables.up)),
      num_nodes_(static_cast<std::int32_t>(hierarchy.NumNodes())),
      levels_(tables.levels) {
  NUCLEUS_CHECK(static_cast<std::int32_t>(depth_.size()) == num_nodes_);
  NUCLEUS_CHECK(levels_ >= 1);
  NUCLEUS_CHECK(up_.size() ==
                static_cast<std::size_t>(levels_) * num_nodes_);
}

std::int32_t HierarchyIndex::Lca(std::int32_t a, std::int32_t b) const {
  NUCLEUS_CHECK(a >= 0 && a < num_nodes_ && b >= 0 && b < num_nodes_);
  if (depth_[a] < depth_[b]) std::swap(a, b);
  // Lift a to b's depth.
  std::int32_t diff = depth_[a] - depth_[b];
  for (std::int32_t j = 0; diff != 0; ++j, diff >>= 1) {
    if (diff & 1) a = Up(j, a);
  }
  if (a == b) return a;
  for (std::int32_t j = levels_ - 1; j >= 0; --j) {
    if (Up(j, a) != Up(j, b)) {
      a = Up(j, a);
      b = Up(j, b);
    }
  }
  return Up(0, a);
}

std::int32_t HierarchyIndex::NucleusAtLevel(CliqueId u, Lambda k) const {
  NUCLEUS_CHECK(k >= 1);
  std::int32_t x = hierarchy_->NodeOfClique(u);
  if (hierarchy_->node(x).lambda < k) return kInvalidId;
  // Lift to the highest ancestor whose lambda is still >= k.
  for (std::int32_t j = levels_ - 1; j >= 0; --j) {
    const std::int32_t anc = Up(j, x);
    if (anc != kInvalidId && hierarchy_->node(anc).lambda >= k) x = anc;
  }
  return x;
}

std::int32_t HierarchyIndex::SmallestCommonNucleus(CliqueId u,
                                                   CliqueId v) const {
  const std::int32_t lca =
      Lca(hierarchy_->NodeOfClique(u), hierarchy_->NodeOfClique(v));
  // The artificial root (and any lambda < 1 node) is not a nucleus.
  if (hierarchy_->node(lca).lambda < 1) return kInvalidId;
  return lca;
}

Lambda HierarchyIndex::CommonNucleusLevel(CliqueId u, CliqueId v) const {
  const std::int32_t node = SmallestCommonNucleus(u, v);
  return node == kInvalidId ? 0 : hierarchy_->node(node).lambda;
}

}  // namespace nucleus
