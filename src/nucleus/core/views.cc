#include "nucleus/core/views.h"

#include <algorithm>

#include "nucleus/graph/graph_builder.h"

namespace nucleus {

std::vector<VertexId> KCoreVertices(const std::vector<Lambda>& core,
                                    Lambda k) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < static_cast<VertexId>(core.size()); ++v) {
    if (core[v] >= k) out.push_back(v);
  }
  return out;
}

Graph KCoreSubgraph(const Graph& g, const std::vector<Lambda>& core, Lambda k,
                    std::vector<VertexId>* old_to_new) {
  return InducedSubgraph(g, KCoreVertices(core, k), old_to_new);
}

double EdgeDensity(const Graph& g) {
  const std::int64_t n = g.NumVertices();
  if (n < 2) return 0.0;
  return 2.0 * static_cast<double>(g.NumEdges()) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

NucleusReport ReportNucleus(const Graph& g, Family family,
                            const NucleusHierarchy& h, std::int32_t id) {
  NucleusReport report;
  report.node = id;
  report.k = h.node(id).lambda;
  const std::vector<CliqueId> members = h.MembersOfSubtree(id);
  report.num_members = static_cast<std::int64_t>(members.size());
  const std::vector<VertexId> vertices = MembersToVertices(g, family, members);
  report.num_vertices = static_cast<std::int64_t>(vertices.size());
  report.density = EdgeDensity(InducedSubgraph(g, vertices));
  return report;
}

std::vector<std::int32_t> TopNucleusNodes(const NucleusHierarchy& h,
                                          std::int64_t count) {
  std::vector<std::int32_t> nodes;
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (id != h.root() && h.node(id).lambda >= 1) nodes.push_back(id);
  }
  std::sort(nodes.begin(), nodes.end(), [&h](std::int32_t a, std::int32_t b) {
    const auto& na = h.node(a);
    const auto& nb = h.node(b);
    if (na.lambda != nb.lambda) return na.lambda > nb.lambda;
    if (na.subtree_members != nb.subtree_members) {
      return na.subtree_members > nb.subtree_members;
    }
    return a < b;
  });
  if (static_cast<std::int64_t>(nodes.size()) > count) {
    nodes.resize(static_cast<std::size_t>(count));
  }
  return nodes;
}

}  // namespace nucleus
