// Mutable edge accumulator that normalizes raw input into a Graph:
// drops self-loops and duplicate/reversed edges, sorts adjacency lists, and
// produces a symmetric CSR. Also provides structural combinators used by the
// generators and tests.
#ifndef NUCLEUS_GRAPH_GRAPH_BUILDER_H_
#define NUCLEUS_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"

namespace nucleus {

class GraphBuilder {
 public:
  /// Creates a builder for at least `num_vertices` vertices; vertex ids seen
  /// in AddEdge grow the vertex count automatically.
  explicit GraphBuilder(VertexId num_vertices = 0)
      : num_vertices_(num_vertices) {
    NUCLEUS_CHECK(num_vertices >= 0);
  }

  /// Records an undirected edge. Self-loops are silently dropped; duplicates
  /// (in either orientation) are deduplicated at Build() time.
  void AddEdge(VertexId u, VertexId v);

  void AddEdges(const std::vector<std::pair<VertexId, VertexId>>& edges);

  /// Ensures the built graph has at least `n` vertices (possibly isolated).
  void EnsureVertex(VertexId v);

  VertexId num_vertices() const { return num_vertices_; }
  std::int64_t num_recorded_edges() const {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// Normalizes and materializes the graph. The builder may be reused
  /// afterwards (its recorded edges are preserved).
  Graph Build() const;

 private:
  VertexId num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;  // canonical u < v
};

/// Builds a graph directly from an edge list (convenience wrapper).
Graph GraphFromEdges(VertexId num_vertices,
                     const std::vector<std::pair<VertexId, VertexId>>& edges);

/// Disjoint union: vertex ids of graphs[i] are offset by the total size of
/// the preceding graphs.
Graph DisjointUnion(const std::vector<Graph>& graphs);

/// Subgraph induced on `vertices` (need not be sorted; duplicates ignored).
/// Vertex i of the result corresponds to the i-th distinct id in `vertices`
/// (in sorted order). If `old_to_new` is non-null it receives the mapping
/// (kInvalidId for vertices outside the subgraph).
Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices,
                      std::vector<VertexId>* old_to_new = nullptr);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_GRAPH_BUILDER_H_
