#include "nucleus/graph/graph.h"

#include <algorithm>

namespace nucleus {

Graph Graph::FromCsr(std::vector<std::int64_t> offsets,
                     std::vector<VertexId> adj) {
  NUCLEUS_CHECK(!offsets.empty());
  NUCLEUS_CHECK(offsets.front() == 0);
  NUCLEUS_CHECK(offsets.back() == static_cast<std::int64_t>(adj.size()));
  const VertexId n = static_cast<VertexId>(offsets.size()) - 1;
  for (VertexId v = 0; v < n; ++v) {
    NUCLEUS_CHECK(offsets[v] <= offsets[v + 1]);
    for (std::int64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      NUCLEUS_CHECK(adj[i] >= 0 && adj[i] < n);
      NUCLEUS_CHECK_MSG(adj[i] != v, "self-loop in CSR input");
      if (i > offsets[v]) {
        NUCLEUS_CHECK_MSG(adj[i - 1] < adj[i],
                          "adjacency list not strictly increasing");
      }
    }
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  // Symmetry check: every (u, v) entry must have a matching (v, u) entry.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.Neighbors(u)) {
      NUCLEUS_CHECK_MSG(g.HasEdge(v, u), "CSR input is not symmetric");
    }
  }
  return g;
}

std::int64_t Graph::MaxDegree() const {
  std::int64_t best = 0;
  const VertexId n = NumVertices();
  for (VertexId v = 0; v < n; ++v) best = std::max(best, Degree(v));
  return best;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return false;
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace nucleus
