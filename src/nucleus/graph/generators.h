// Deterministic synthetic graph generators.
//
// The paper evaluates on nine public SNAP / Network Repository / UF graphs
// that are unavailable in this offline environment; these generators produce
// the structural regimes those graphs represent (see DESIGN.md §3) and the
// small structured families used throughout the test suite.
//
// Every generator is deterministic in its seed.
#ifndef NUCLEUS_GRAPH_GENERATORS_H_
#define NUCLEUS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "nucleus/graph/graph.h"
#include "nucleus/util/common.h"

namespace nucleus {

// --- Deterministic structured families (no randomness) ---------------------

/// Path with n vertices (n - 1 edges).
Graph Path(VertexId n);

/// Cycle with n vertices. Requires n >= 3.
Graph Cycle(VertexId n);

/// Star: one hub (vertex 0) and `leaves` leaves.
Graph Star(VertexId leaves);

/// Complete graph K_n.
Graph Complete(VertexId n);

/// Complete bipartite graph K_{a,b} (sides 0..a-1 and a..a+b-1).
Graph CompleteBipartite(VertexId a, VertexId b);

/// rows x cols grid (4-neighborhood).
Graph Grid2D(VertexId rows, VertexId cols);

/// Wheel: cycle of n - 1 vertices plus a hub adjacent to all. Requires n >= 4.
Graph Wheel(VertexId n);

/// Lollipop: K_{clique_size} with a path of `path_length` vertices attached.
Graph Lollipop(VertexId clique_size, VertexId path_length);

// --- Random families --------------------------------------------------------

/// Erdos-Renyi G(n, m): exactly m distinct edges drawn uniformly.
Graph ErdosRenyiGnm(VertexId n, std::int64_t m, std::uint64_t seed);

/// Erdos-Renyi G(n, p) via geometric skipping (O(n + m)).
Graph ErdosRenyiGnp(VertexId n, double p, std::uint64_t seed);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices proportionally to degree.
Graph BarabasiAlbert(VertexId n, VertexId edges_per_vertex,
                     std::uint64_t seed);

/// R-MAT with 2^scale vertices and `num_edges` sampled edges (self-loops and
/// duplicates dropped, so the result has slightly fewer). Probabilities
/// (a, b, c) with d = 1 - a - b - c select quadrants recursively.
Graph RMat(int scale, std::int64_t num_edges, double a, double b, double c,
           std::uint64_t seed);

/// Watts-Strogatz small world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta. Requires 0 < 2k < n.
Graph WattsStrogatz(VertexId n, VertexId k, double beta, std::uint64_t seed);

/// Planted partition: `communities` blocks of `block_size` vertices; edge
/// probability p_in within a block, p_out across blocks. The regime of the
/// facebook100 graphs (dense social networks) at high p_in.
Graph PlantedPartition(VertexId communities, VertexId block_size, double p_in,
                       double p_out, std::uint64_t seed);

/// Connected caveman-style graph: `caves` cliques of `cave_size` vertices,
/// plus `bridges` random inter-clique edges. With large cave_size this is
/// the uk-2005 regime: enormous |K4| / |triangle| ratio.
Graph Caveman(VertexId caves, VertexId cave_size, std::int64_t bridges,
              std::uint64_t seed);

/// Caveman variant with cave sizes drawn uniformly from
/// [min_cave_size, max_cave_size]: cliques of many different orders yield
/// many distinct lambda levels, the shape of real web-host graphs.
Graph MixedCaveman(VertexId caves, VertexId min_cave_size,
                   VertexId max_cave_size, std::int64_t bridges,
                   std::uint64_t seed);

/// Hierarchical communities: a balanced tree of depth `levels` with
/// `branching` children per node; leaves are cliques of `leaf_size`
/// vertices. Sibling subtrees at height h are connected by
/// `edges_per_pair_base` * (levels - h) random cross edges, so cohesion
/// decays with height. Produces graphs with a deep, known nucleus hierarchy.
Graph HierarchicalCommunities(int levels, int branching, VertexId leaf_size,
                              VertexId edges_per_pair_base,
                              std::uint64_t seed);

/// Adds `closures` triangle-closing edges to `g`: picks a random vertex, two
/// random neighbors, and connects them. Raises clustering the way follower
/// networks (twitter-hb regime) exhibit.
Graph WithTriadicClosure(const Graph& g, std::int64_t closures,
                         std::uint64_t seed);

/// Adds `extra` uniformly random edges to `g` (deduplicated at build).
Graph WithRandomEdges(const Graph& g, std::int64_t extra, std::uint64_t seed);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_GENERATORS_H_
