#include "nucleus/graph/graph_stats.h"

#include <algorithm>
#include <queue>

#include "nucleus/util/bucket_queue.h"

namespace nucleus {

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats stats;
  const VertexId n = g.NumVertices();
  if (n == 0) return stats;
  stats.min = g.Degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const std::int64_t d = g.Degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
  }
  stats.mean = 2.0 * static_cast<double>(g.NumEdges()) / n;
  return stats;
}

std::vector<std::int32_t> ConnectedComponents(const Graph& g,
                                              std::int32_t* num_components) {
  const VertexId n = g.NumVertices();
  std::vector<std::int32_t> comp(n, -1);
  std::int32_t next = 0;
  std::queue<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next;
    queue.push(s);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop();
      for (VertexId v : g.Neighbors(u)) {
        if (comp[v] == -1) {
          comp[v] = next;
          queue.push(v);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

std::vector<VertexId> LargestComponentVertices(const Graph& g) {
  std::int32_t num_components = 0;
  const std::vector<std::int32_t> comp = ConnectedComponents(g, &num_components);
  if (num_components == 0) return {};
  std::vector<std::int64_t> sizes(num_components, 0);
  for (std::int32_t c : comp) ++sizes[c];
  const std::int32_t best = static_cast<std::int32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (comp[v] == best) vertices.push_back(v);
  }
  return vertices;
}

std::int64_t CountTriangles(const Graph& g) {
  // Forward algorithm: orient edges from lower to higher degree (ties by
  // id); count common out-neighbors per oriented edge.
  const VertexId n = g.NumVertices();
  auto rank_less = [&g](VertexId a, VertexId b) {
    const auto da = g.Degree(a);
    const auto db = g.Degree(b);
    return da != db ? da < db : a < b;
  };
  std::vector<std::vector<VertexId>> out(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (rank_less(u, v)) out[u].push_back(v);
    }
  }
  for (VertexId u = 0; u < n; ++u) std::sort(out[u].begin(), out[u].end());
  std::int64_t triangles = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : out[u]) {
      // |out[u] ∩ out[v]| by sorted merge.
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < out[u].size() && j < out[v].size()) {
        if (out[u][i] < out[v][j]) {
          ++i;
        } else if (out[u][i] > out[v][j]) {
          ++j;
        } else {
          ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

namespace {

// Counts wedges (paths of length 2) and triangles-per-vertex in one pass.
std::int64_t CountWedges(const Graph& g) {
  std::int64_t wedges = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const std::int64_t d = g.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

}  // namespace

double GlobalClusteringCoefficient(const Graph& g) {
  const std::int64_t wedges = CountWedges(g);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

double AverageLocalClustering(const Graph& g) {
  const VertexId n = g.NumVertices();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.Neighbors(v);
    const std::int64_t d = static_cast<std::int64_t>(nbrs.size());
    if (d < 2) continue;
    std::int64_t links = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j])) ++links;
      }
    }
    total += 2.0 * static_cast<double>(links) /
             (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return total / n;
}

std::int32_t Degeneracy(const Graph& g, std::vector<VertexId>* ordering) {
  const VertexId n = g.NumVertices();
  if (ordering != nullptr) ordering->clear();
  if (n == 0) return 0;
  std::vector<std::int32_t> degrees(n);
  for (VertexId v = 0; v < n; ++v)
    degrees[v] = static_cast<std::int32_t>(g.Degree(v));
  PeelingBucketQueue queue;
  queue.Init(degrees);
  std::int32_t degeneracy = 0;
  while (!queue.Empty()) {
    std::int32_t value = 0;
    const VertexId u = queue.PopMin(&value);
    degeneracy = std::max(degeneracy, value);
    if (ordering != nullptr) ordering->push_back(u);
    for (VertexId v : g.Neighbors(u)) {
      if (!queue.Popped(v) && queue.Value(v) > value) queue.Decrement(v);
    }
  }
  return degeneracy;
}

}  // namespace nucleus
