// Plain-text graph IO: whitespace-separated edge lists (the SNAP format the
// paper's datasets ship in) and MatrixMarket coordinate files (UF Sparse
// Matrix Collection format, used by uk-2005).
#ifndef NUCLEUS_GRAPH_EDGE_LIST_IO_H_
#define NUCLEUS_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "nucleus/graph/graph.h"
#include "nucleus/util/status.h"

namespace nucleus {

/// Reads a whitespace-separated edge list. Lines starting with '#' or '%'
/// are comments. Directions are ignored, self-loops and duplicates dropped
/// (paper Section 5: "We ignore the directions for directed graphs").
/// Vertex ids must be non-negative integers; the graph gets
/// max_id + 1 vertices.
StatusOr<Graph> ReadEdgeList(const std::string& path);

/// Parses an edge list from an in-memory string (same format as above).
StatusOr<Graph> ParseEdgeList(const std::string& text);

/// Writes one "u v" line per undirected edge (u < v).
Status WriteEdgeList(const Graph& g, const std::string& path);

/// Reads a MatrixMarket coordinate file as an undirected graph. Supports
/// "pattern", "integer" and "real" fields; values are ignored. 1-based
/// indices per the format.
StatusOr<Graph> ReadMatrixMarket(const std::string& path);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_EDGE_LIST_IO_H_
