#include "nucleus/graph/edge_list_io.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "nucleus/graph/graph_builder.h"

namespace nucleus {
namespace {

// Parses a non-negative integer from the front of `sv`, advancing it past
// the number and any following whitespace. Returns false on malformed input.
bool ParseId(std::string_view* sv, std::int64_t* out) {
  std::size_t i = 0;
  while (i < sv->size() && std::isspace(static_cast<unsigned char>((*sv)[i])))
    ++i;
  sv->remove_prefix(i);
  if (sv->empty()) return false;
  const char* begin = sv->data();
  const char* end = sv->data() + sv->size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || *out < 0) return false;
  sv->remove_prefix(static_cast<std::size_t>(ptr - begin));
  return true;
}

bool IsBlankOrComment(std::string_view line) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    return c == '#' || c == '%';
  }
  return true;
}

StatusOr<Graph> ParseEdgeLines(std::istream& in, bool one_based,
                               std::int64_t skip_records) {
  GraphBuilder builder;
  std::string line;
  std::int64_t line_no = 0;
  std::int64_t records = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv(line);
    if (IsBlankOrComment(sv)) continue;
    if (skip_records > 0) {
      --skip_records;
      continue;  // MatrixMarket size line
    }
    std::int64_t u = 0;
    std::int64_t v = 0;
    if (!ParseId(&sv, &u) || !ParseId(&sv, &v)) {
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(line_no) + ": '" + line +
                                     "'");
    }
    if (one_based) {
      if (u == 0 || v == 0) {
        return Status::InvalidArgument(
            "MatrixMarket index 0 at line " + std::to_string(line_no));
      }
      --u;
      --v;
    }
    constexpr std::int64_t kMaxVertex = 2147483646;
    if (u > kMaxVertex || v > kMaxVertex) {
      return Status::OutOfRange("vertex id exceeds 2^31-2 at line " +
                                std::to_string(line_no));
    }
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    ++records;
  }
  return builder.Build();
}

}  // namespace

StatusOr<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return ParseEdgeLines(in, /*one_based=*/false, /*skip_records=*/0);
}

StatusOr<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseEdgeLines(in, /*one_based=*/false, /*skip_records=*/0);
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for writing");
  g.ForEachEdge([&](VertexId u, VertexId v) {
    out << u << ' ' << v << '\n';
  });
  out.flush();
  if (!out) return Status::Internal("write failure on '" + path + "'");
  return Status::Ok();
}

StatusOr<Graph> ReadMatrixMarket(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("%%MatrixMarket", 0) != 0) {
    return Status::InvalidArgument("missing %%MatrixMarket header in '" +
                                   path + "'");
  }
  if (header.find("coordinate") == std::string::npos) {
    return Status::InvalidArgument("only coordinate format supported");
  }
  // The first non-comment line is the size line; skip it, then read edges.
  return ParseEdgeLines(in, /*one_based=*/true, /*skip_records=*/1);
}

}  // namespace nucleus
