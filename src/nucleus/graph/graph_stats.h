// Structural statistics used by Table 3 of the paper, the dataset registry,
// and the test suite's reference implementations.
#ifndef NUCLEUS_GRAPH_GRAPH_STATS_H_
#define NUCLEUS_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "nucleus/graph/graph.h"

namespace nucleus {

struct DegreeStats {
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
};

DegreeStats ComputeDegreeStats(const Graph& g);

/// Connected components by BFS. Returns the component id of every vertex in
/// [0, num_components); ids are assigned in order of the smallest vertex.
std::vector<std::int32_t> ConnectedComponents(const Graph& g,
                                              std::int32_t* num_components);

/// Vertex set of the largest connected component (smallest-vertex tiebreak).
std::vector<VertexId> LargestComponentVertices(const Graph& g);

/// Total number of triangles (each counted once) via the forward algorithm.
std::int64_t CountTriangles(const Graph& g);

/// Global clustering coefficient: 3 * triangles / #wedges. Returns 0 for
/// graphs with no wedge.
double GlobalClusteringCoefficient(const Graph& g);

/// Average of per-vertex local clustering coefficients (vertices of degree
/// < 2 contribute 0, as in Watts-Strogatz).
double AverageLocalClustering(const Graph& g);

/// Degeneracy (max core number) and, optionally, a degeneracy ordering
/// (smallest-last). Standalone so the graph layer has no dependency on the
/// decomposition layer; cross-checked against PeelCore in tests.
std::int32_t Degeneracy(const Graph& g,
                        std::vector<VertexId>* ordering = nullptr);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_GRAPH_STATS_H_
