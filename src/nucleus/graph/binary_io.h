// Binary CSR graph serialization.
//
// The on-disk format is the graph's CSR arrays verbatim behind a small
// header, so a load is two bulk reads with no parsing — the format the
// external-memory module (src/nucleus/em) scans directly from disk:
//
//   bytes 0..7    magic "NUCGRAPH"
//   bytes 8..11   format version (uint32, little-endian, currently 1)
//   bytes 12..15  |V| (int32)
//   bytes 16..23  |adj| = 2|E| (int64)
//   then          offsets array: (|V| + 1) x int64
//   then          adjacency array: |adj| x int32
//
// Integers are stored in the host's native byte order; the format is a
// processing artifact (like a RocksDB SST), not an interchange format.
#ifndef NUCLEUS_GRAPH_BINARY_IO_H_
#define NUCLEUS_GRAPH_BINARY_IO_H_

#include <cstdint>
#include <string>

#include "nucleus/graph/graph.h"
#include "nucleus/util/status.h"

namespace nucleus {

inline constexpr char kBinaryGraphMagic[8] = {'N', 'U', 'C', 'G',
                                              'R', 'A', 'P', 'H'};
inline constexpr std::uint32_t kBinaryGraphVersion = 1;

/// Fixed-size header preceding the CSR arrays.
struct BinaryGraphHeader {
  char magic[8];
  std::uint32_t version = 0;
  std::int32_t num_vertices = 0;
  std::int64_t adj_size = 0;  // 2 * |E|
};

/// Writes `g` to `path` in the binary CSR format, overwriting any existing
/// file. Fails with kInternal if the file cannot be created or written.
Status WriteBinaryGraph(const Graph& g, const std::string& path);

/// Loads a binary CSR file written by WriteBinaryGraph. Validates the
/// header (magic, version, non-negative sizes) and the structural CSR
/// invariants (via Graph::FromCsr's checks are abort-level, so structural
/// problems that a corrupted file could produce — non-monotone offsets,
/// out-of-range vertex ids — are caught here and returned as errors).
StatusOr<Graph> ReadBinaryGraph(const std::string& path);

/// Reads and validates only the header — cheap metadata probe used by the
/// external-memory scanners to size their in-memory arrays.
StatusOr<BinaryGraphHeader> ReadBinaryGraphHeader(const std::string& path);

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_BINARY_IO_H_
