// Immutable undirected simple graph in CSR (compressed sparse row) form.
//
// This is the substrate every decomposition in the library runs on. The
// paper's graphs are "undirected, unattributed" (Section 1.1); directions of
// input edges are dropped, self-loops and duplicate edges removed, by
// GraphBuilder before a Graph is materialized.
#ifndef NUCLEUS_GRAPH_GRAPH_H_
#define NUCLEUS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "nucleus/util/common.h"

namespace nucleus {

class Graph {
 public:
  /// Empty graph.
  Graph() : offsets_(1, 0) {}

  /// Takes ownership of a CSR structure. Requirements (checked):
  /// offsets is monotone with offsets.front() == 0 and offsets.back() ==
  /// adj.size(); every adjacency list is strictly increasing (sorted, no
  /// duplicates, no self-loops); the structure is symmetric.
  static Graph FromCsr(std::vector<std::int64_t> offsets,
                       std::vector<VertexId> adj);

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size()) - 1;
  }

  /// Number of undirected edges (each stored twice internally).
  std::int64_t NumEdges() const {
    return static_cast<std::int64_t>(adj_.size()) / 2;
  }

  std::int64_t Degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::int64_t MaxDegree() const;

  /// Neighbors of v in strictly increasing order.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v],
            static_cast<std::size_t>(Degree(v))};
  }

  /// True iff the undirected edge {u, v} exists. O(log deg(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Offset of v's adjacency slice inside AdjArray(). Lets index structures
  /// (EdgeIndex) keep arrays aligned entry-for-entry with the adjacency.
  std::int64_t AdjOffset(VertexId v) const { return offsets_[v]; }

  /// The full flattened adjacency array (size 2 * NumEdges()).
  const std::vector<VertexId>& AdjArray() const { return adj_; }

  /// Iterates each undirected edge once as (u, v) with u < v.
  template <typename F>
  void ForEachEdge(F&& f) const {
    const VertexId n = NumVertices();
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : Neighbors(u)) {
        if (u < v) f(u, v);
      }
    }
  }

 private:
  std::vector<std::int64_t> offsets_;  // size NumVertices() + 1
  std::vector<VertexId> adj_;          // size 2 * NumEdges()
};

}  // namespace nucleus

#endif  // NUCLEUS_GRAPH_GRAPH_H_
