#include "nucleus/graph/graph_builder.h"

#include <algorithm>

namespace nucleus {

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  NUCLEUS_CHECK(u >= 0 && v >= 0);
  if (u == v) return;  // self-loop
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  if (v >= num_vertices_) num_vertices_ = v + 1;
}

void GraphBuilder::AddEdges(
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  for (const auto& [u, v] : edges) AddEdge(u, v);
}

void GraphBuilder::EnsureVertex(VertexId v) {
  NUCLEUS_CHECK(v >= 0);
  if (v >= num_vertices_) num_vertices_ = v + 1;
}

Graph GraphBuilder::Build() const {
  std::vector<std::pair<VertexId, VertexId>> edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  const VertexId n = num_vertices_;
  std::vector<std::int64_t> offsets(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> adj(offsets[n]);
  std::vector<std::int64_t> fill(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    adj[fill[u]++] = v;
    adj[fill[v]++] = u;
  }
  // Canonical-(u,v)-sorted insertion yields ascending "v" entries per list,
  // but the mixed u/v insertions need a per-list sort.
  for (VertexId v = 0; v < n; ++v) {
    std::sort(adj.begin() + offsets[v], adj.begin() + offsets[v + 1]);
  }
  return Graph::FromCsr(std::move(offsets), std::move(adj));
}

Graph GraphFromEdges(VertexId num_vertices,
                     const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder builder(num_vertices);
  builder.AddEdges(edges);
  return builder.Build();
}

Graph DisjointUnion(const std::vector<Graph>& graphs) {
  GraphBuilder builder;
  VertexId offset = 0;
  for (const Graph& g : graphs) {
    const VertexId n = g.NumVertices();
    builder.EnsureVertex(offset + n - 1 >= 0 ? offset + n - 1 : 0);
    g.ForEachEdge(
        [&](VertexId u, VertexId v) { builder.AddEdge(offset + u, offset + v); });
    offset += n;
  }
  if (offset > 0) builder.EnsureVertex(offset - 1);
  return builder.Build();
}

Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices,
                      std::vector<VertexId>* old_to_new) {
  std::vector<VertexId> sorted = vertices;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<VertexId> map(g.NumVertices(), kInvalidId);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    NUCLEUS_CHECK(sorted[i] >= 0 && sorted[i] < g.NumVertices());
    map[sorted[i]] = static_cast<VertexId>(i);
  }

  GraphBuilder builder(static_cast<VertexId>(sorted.size()));
  for (VertexId u : sorted) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v && map[v] != kInvalidId) builder.AddEdge(map[u], map[v]);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return builder.Build();
}

}  // namespace nucleus
