#include "nucleus/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "nucleus/graph/graph_builder.h"
#include "nucleus/util/rng.h"

namespace nucleus {

Graph Path(VertexId n) {
  NUCLEUS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return b.Build();
}

Graph Cycle(VertexId n) {
  NUCLEUS_CHECK(n >= 3);
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.AddEdge(v, (v + 1) % n);
  return b.Build();
}

Graph Star(VertexId leaves) {
  NUCLEUS_CHECK(leaves >= 0);
  GraphBuilder b(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) b.AddEdge(0, v);
  return b.Build();
}

Graph Complete(VertexId n) {
  NUCLEUS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.AddEdge(u, v);
  return b.Build();
}

Graph CompleteBipartite(VertexId a, VertexId b_size) {
  NUCLEUS_CHECK(a >= 1 && b_size >= 1);
  GraphBuilder b(a + b_size);
  for (VertexId u = 0; u < a; ++u)
    for (VertexId v = 0; v < b_size; ++v) b.AddEdge(u, a + v);
  return b.Build();
}

Graph Grid2D(VertexId rows, VertexId cols) {
  NUCLEUS_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return b.Build();
}

Graph Wheel(VertexId n) {
  NUCLEUS_CHECK(n >= 4);
  GraphBuilder b(n);
  const VertexId rim = n - 1;
  for (VertexId v = 0; v < rim; ++v) {
    b.AddEdge(v, (v + 1) % rim);
    b.AddEdge(v, rim);  // hub is the last vertex
  }
  return b.Build();
}

Graph Lollipop(VertexId clique_size, VertexId path_length) {
  NUCLEUS_CHECK(clique_size >= 1 && path_length >= 0);
  GraphBuilder b(clique_size + path_length);
  for (VertexId u = 0; u < clique_size; ++u)
    for (VertexId v = u + 1; v < clique_size; ++v) b.AddEdge(u, v);
  VertexId prev = clique_size - 1;
  for (VertexId i = 0; i < path_length; ++i) {
    b.AddEdge(prev, clique_size + i);
    prev = clique_size + i;
  }
  return b.Build();
}

Graph ErdosRenyiGnm(VertexId n, std::int64_t m, std::uint64_t seed) {
  NUCLEUS_CHECK(n >= 2);
  const std::int64_t max_edges =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  NUCLEUS_CHECK(m >= 0 && m <= max_edges);
  Rng rng(seed);
  std::set<std::pair<VertexId, VertexId>> chosen;
  while (static_cast<std::int64_t>(chosen.size()) < m) {
    VertexId u = rng.UniformVertex(n);
    VertexId v = rng.UniformVertex(n);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.emplace(u, v);
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : chosen) b.AddEdge(u, v);
  return b.Build();
}

Graph ErdosRenyiGnp(VertexId n, double p, std::uint64_t seed) {
  NUCLEUS_CHECK(n >= 1);
  NUCLEUS_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p > 0.0) {
    Rng rng(seed);
    if (p >= 1.0) return Complete(n);
    // Geometric skipping over the lexicographic enumeration of pairs.
    const double log_q = std::log(1.0 - p);
    std::int64_t v = 1;
    std::int64_t u = -1;
    const std::int64_t nn = n;
    while (v < nn) {
      const double r = std::max(rng.UniformReal(), 1e-300);
      u += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log_q));
      while (u >= v && v < nn) {
        u -= v;
        ++v;
      }
      if (v < nn) {
        b.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      }
    }
  }
  return b.Build();
}

Graph BarabasiAlbert(VertexId n, VertexId edges_per_vertex,
                     std::uint64_t seed) {
  NUCLEUS_CHECK(edges_per_vertex >= 1);
  NUCLEUS_CHECK(n > edges_per_vertex);
  Rng rng(seed);
  GraphBuilder b(n);
  // Repeated-endpoints array: picking a uniform element is degree-
  // proportional sampling.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2) * n * edges_per_vertex);
  // Seed clique over the first edges_per_vertex + 1 vertices.
  for (VertexId u = 0; u <= edges_per_vertex; ++u) {
    for (VertexId v = u + 1; v <= edges_per_vertex; ++v) {
      b.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = edges_per_vertex + 1; v < n; ++v) {
    std::set<VertexId> targets;
    while (static_cast<VertexId>(targets.size()) < edges_per_vertex) {
      const VertexId t = endpoints[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(endpoints.size()) - 1))];
      if (t != v) targets.insert(t);
    }
    for (VertexId t : targets) {
      b.AddEdge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return b.Build();
}

Graph RMat(int scale, std::int64_t num_edges, double a, double b, double c,
           std::uint64_t seed) {
  NUCLEUS_CHECK(scale >= 1 && scale < 31);
  const double d = 1.0 - a - b - c;
  NUCLEUS_CHECK(a >= 0 && b >= 0 && c >= 0 && d >= -1e-9);
  Rng rng(seed);
  const VertexId n = static_cast<VertexId>(1) << scale;
  GraphBuilder builder(n);
  for (std::int64_t e = 0; e < num_edges; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.UniformReal();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.AddEdge(u, v);  // self-loops dropped, duplicates deduped
  }
  return builder.Build();
}

Graph WattsStrogatz(VertexId n, VertexId k, double beta, std::uint64_t seed) {
  NUCLEUS_CHECK(n >= 3 && k >= 1 && 2 * k < n);
  NUCLEUS_CHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  std::set<std::pair<VertexId, VertexId>> edges;
  auto canon = [](VertexId u, VertexId v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  };
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId j = 1; j <= k; ++j) {
      edges.insert(canon(u, (u + j) % n));
    }
  }
  std::vector<std::pair<VertexId, VertexId>> lattice(edges.begin(),
                                                     edges.end());
  for (const auto& [u, v] : lattice) {
    if (!rng.Bernoulli(beta)) continue;
    // Rewire the far endpoint to a uniform non-neighbor.
    for (int attempts = 0; attempts < 64; ++attempts) {
      const VertexId w = rng.UniformVertex(n);
      if (w == u || w == v) continue;
      const auto candidate = canon(u, w);
      if (edges.count(candidate) > 0) continue;
      edges.erase(canon(u, v));
      edges.insert(candidate);
      break;
    }
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.AddEdge(u, v);
  return b.Build();
}

Graph PlantedPartition(VertexId communities, VertexId block_size, double p_in,
                       double p_out, std::uint64_t seed) {
  NUCLEUS_CHECK(communities >= 1 && block_size >= 1);
  const VertexId n = communities * block_size;
  Rng rng(seed);
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const bool same = (u / block_size) == (v / block_size);
      if (rng.Bernoulli(same ? p_in : p_out)) b.AddEdge(u, v);
    }
  }
  return b.Build();
}

Graph Caveman(VertexId caves, VertexId cave_size, std::int64_t bridges,
              std::uint64_t seed) {
  NUCLEUS_CHECK(caves >= 1 && cave_size >= 2);
  const VertexId n = caves * cave_size;
  Rng rng(seed);
  GraphBuilder b(n);
  for (VertexId cave = 0; cave < caves; ++cave) {
    const VertexId base = cave * cave_size;
    for (VertexId u = 0; u < cave_size; ++u)
      for (VertexId v = u + 1; v < cave_size; ++v)
        b.AddEdge(base + u, base + v);
  }
  std::int64_t added = 0;
  while (added < bridges && caves >= 2) {
    const VertexId cu = static_cast<VertexId>(rng.UniformInt(0, caves - 1));
    const VertexId cv = static_cast<VertexId>(rng.UniformInt(0, caves - 1));
    if (cu == cv) continue;
    const VertexId u =
        cu * cave_size + static_cast<VertexId>(rng.UniformInt(0, cave_size - 1));
    const VertexId v =
        cv * cave_size + static_cast<VertexId>(rng.UniformInt(0, cave_size - 1));
    b.AddEdge(u, v);
    ++added;
  }
  return b.Build();
}

Graph MixedCaveman(VertexId caves, VertexId min_cave_size,
                   VertexId max_cave_size, std::int64_t bridges,
                   std::uint64_t seed) {
  NUCLEUS_CHECK(caves >= 1);
  NUCLEUS_CHECK(2 <= min_cave_size && min_cave_size <= max_cave_size);
  Rng rng(seed);
  GraphBuilder b;
  std::vector<VertexId> cave_base;
  std::vector<VertexId> cave_size;
  VertexId next = 0;
  for (VertexId cave = 0; cave < caves; ++cave) {
    const VertexId size =
        static_cast<VertexId>(rng.UniformInt(min_cave_size, max_cave_size));
    cave_base.push_back(next);
    cave_size.push_back(size);
    for (VertexId u = 0; u < size; ++u)
      for (VertexId v = u + 1; v < size; ++v)
        b.AddEdge(next + u, next + v);
    next += size;
  }
  std::int64_t added = 0;
  while (added < bridges && caves >= 2) {
    const VertexId cu = static_cast<VertexId>(rng.UniformInt(0, caves - 1));
    const VertexId cv = static_cast<VertexId>(rng.UniformInt(0, caves - 1));
    if (cu == cv) continue;
    const VertexId u = cave_base[cu] + static_cast<VertexId>(
                                           rng.UniformInt(0, cave_size[cu] - 1));
    const VertexId v = cave_base[cv] + static_cast<VertexId>(
                                           rng.UniformInt(0, cave_size[cv] - 1));
    b.AddEdge(u, v);
    ++added;
  }
  return b.Build();
}

namespace {

// Recursively assigns the vertex ranges of a hierarchical-communities tree
// and emits cross edges between sibling subtrees.
void BuildHierarchicalLevel(GraphBuilder* b, Rng* rng, VertexId lo,
                            VertexId hi, int level, int branching,
                            VertexId leaf_size,
                            VertexId edges_per_pair_base) {
  const VertexId span = hi - lo;
  if (level == 0) {
    NUCLEUS_CHECK(span == leaf_size);
    for (VertexId u = lo; u < hi; ++u)
      for (VertexId v = u + 1; v < hi; ++v) b->AddEdge(u, v);
    return;
  }
  const VertexId child_span = span / branching;
  for (int i = 0; i < branching; ++i) {
    BuildHierarchicalLevel(b, rng, lo + i * child_span,
                           lo + (i + 1) * child_span, level - 1, branching,
                           leaf_size, edges_per_pair_base);
  }
  // Cross edges between each pair of children; fewer near the root.
  const VertexId per_pair = edges_per_pair_base * level;
  for (int i = 0; i < branching; ++i) {
    for (int j = i + 1; j < branching; ++j) {
      for (VertexId e = 0; e < per_pair; ++e) {
        const VertexId u =
            lo + i * child_span +
            static_cast<VertexId>(rng->UniformInt(0, child_span - 1));
        const VertexId v =
            lo + j * child_span +
            static_cast<VertexId>(rng->UniformInt(0, child_span - 1));
        b->AddEdge(u, v);
      }
    }
  }
}

}  // namespace

Graph HierarchicalCommunities(int levels, int branching, VertexId leaf_size,
                              VertexId edges_per_pair_base,
                              std::uint64_t seed) {
  NUCLEUS_CHECK(levels >= 0 && branching >= 2 && leaf_size >= 2);
  NUCLEUS_CHECK(edges_per_pair_base >= 1);
  VertexId n = leaf_size;
  for (int i = 0; i < levels; ++i) n *= branching;
  Rng rng(seed);
  GraphBuilder b(n);
  BuildHierarchicalLevel(&b, &rng, 0, n, levels, branching, leaf_size,
                         edges_per_pair_base);
  return b.Build();
}

Graph WithTriadicClosure(const Graph& g, std::int64_t closures,
                         std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(g.NumVertices());
  g.ForEachEdge([&](VertexId u, VertexId v) { b.AddEdge(u, v); });
  std::int64_t done = 0;
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = closures * 20 + 100;
  while (done < closures && attempts < max_attempts) {
    ++attempts;
    const VertexId w = rng.UniformVertex(g.NumVertices());
    const auto nbrs = g.Neighbors(w);
    if (nbrs.size() < 2) continue;
    const auto i = rng.UniformInt(0, static_cast<std::int64_t>(nbrs.size()) - 1);
    const auto j = rng.UniformInt(0, static_cast<std::int64_t>(nbrs.size()) - 1);
    if (i == j) continue;
    b.AddEdge(nbrs[i], nbrs[j]);
    ++done;
  }
  return b.Build();
}

Graph WithRandomEdges(const Graph& g, std::int64_t extra, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(g.NumVertices());
  g.ForEachEdge([&](VertexId u, VertexId v) { b.AddEdge(u, v); });
  for (std::int64_t e = 0; e < extra; ++e) {
    const VertexId u = rng.UniformVertex(g.NumVertices());
    const VertexId v = rng.UniformVertex(g.NumVertices());
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

}  // namespace nucleus
