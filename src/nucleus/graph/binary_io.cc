#include "nucleus/graph/binary_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "nucleus/util/file_util.h"

namespace nucleus {
namespace {

Status WriteBytes(std::FILE* f, const void* data, std::size_t size,
                  const std::string& path) {
  if (std::fwrite(data, 1, size, f) != size) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

Status ReadBytes(std::FILE* f, void* data, std::size_t size,
                 const std::string& path) {
  if (std::fread(data, 1, size, f) != size) {
    return Status::OutOfRange("truncated file " + path);
  }
  return Status::Ok();
}

Status ParseHeader(std::FILE* f, const std::string& path,
                   BinaryGraphHeader* header) {
  if (Status s = ReadBytes(f, header->magic, sizeof(header->magic), path);
      !s.ok()) {
    return s;
  }
  if (std::memcmp(header->magic, kBinaryGraphMagic,
                  sizeof(kBinaryGraphMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path +
                                   " (not a binary graph file)");
  }
  if (Status s = ReadBytes(f, &header->version, sizeof(header->version), path);
      !s.ok()) {
    return s;
  }
  if (header->version != kBinaryGraphVersion) {
    return Status::InvalidArgument("unsupported binary graph version " +
                                   std::to_string(header->version) + " in " +
                                   path);
  }
  if (Status s = ReadBytes(f, &header->num_vertices,
                           sizeof(header->num_vertices), path);
      !s.ok()) {
    return s;
  }
  if (Status s = ReadBytes(f, &header->adj_size, sizeof(header->adj_size),
                           path);
      !s.ok()) {
    return s;
  }
  if (header->num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count in " + path);
  }
  if (header->adj_size < 0 || header->adj_size % 2 != 0) {
    return Status::InvalidArgument("invalid adjacency size in " + path);
  }
  return Status::Ok();
}

// Header bytes preceding the arrays: magic + version + |V| + |adj|.
constexpr std::int64_t kBinaryGraphHeaderBytes = 8 + 4 + 4 + 8;

}  // namespace

Status WriteBinaryGraph(const Graph& g, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::Internal("cannot create " + path);
  }
  std::FILE* f = file.get();

  const std::int32_t n = g.NumVertices();
  const std::vector<VertexId>& adj = g.AdjArray();
  const std::int64_t adj_size = static_cast<std::int64_t>(adj.size());
  if (Status s = WriteBytes(f, kBinaryGraphMagic, sizeof(kBinaryGraphMagic),
                            path);
      !s.ok()) {
    return s;
  }
  if (Status s =
          WriteBytes(f, &kBinaryGraphVersion, sizeof(kBinaryGraphVersion),
                     path);
      !s.ok()) {
    return s;
  }
  if (Status s = WriteBytes(f, &n, sizeof(n), path); !s.ok()) return s;
  if (Status s = WriteBytes(f, &adj_size, sizeof(adj_size), path); !s.ok()) {
    return s;
  }

  // Offsets are regenerated from the graph (AdjOffset is the CSR offset
  // array; the final entry is adj.size()).
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1);
  for (VertexId v = 0; v < n; ++v) offsets[v] = g.AdjOffset(v);
  offsets[n] = adj_size;
  if (Status s = WriteBytes(f, offsets.data(),
                            offsets.size() * sizeof(std::int64_t), path);
      !s.ok()) {
    return s;
  }
  if (!adj.empty()) {
    if (Status s =
            WriteBytes(f, adj.data(), adj.size() * sizeof(VertexId), path);
        !s.ok()) {
      return s;
    }
  }
  if (std::fflush(f) != 0) {
    return Status::Internal("flush failed for " + path);
  }
  return Status::Ok();
}

StatusOr<Graph> ReadBinaryGraph(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::FILE* f = file.get();

  BinaryGraphHeader header;
  if (Status s = ParseHeader(f, path, &header); !s.ok()) return s;

  // Size the whole file from the header BEFORE allocating: a corrupt
  // vertex/adjacency count can neither trigger a giant allocation nor
  // hide a truncated tail or trailing garbage behind short reads. The
  // adj_size bound comes first so the expected-size arithmetic below
  // cannot wrap for adj_size near INT64_MAX (num_vertices is int32, so
  // its term is bounded already).
  StatusOr<std::int64_t> actual = FileSize(f, path);
  if (!actual.ok()) return actual.status();
  if (header.adj_size > *actual / 4) {
    return Status::InvalidArgument(
        "size mismatch in " + path +
        " (adjacency count exceeds the file size; truncated or corrupt)");
  }
  const std::int64_t expected =
      kBinaryGraphHeaderBytes +
      (static_cast<std::int64_t>(header.num_vertices) + 1) * 8 +
      header.adj_size * 4;
  if (*actual != expected) {
    return Status::InvalidArgument(
        "size mismatch in " + path + " (header implies " +
        std::to_string(expected) + " bytes, file has " +
        std::to_string(*actual) + "; truncated or trailing data)");
  }

  std::vector<std::int64_t> offsets(
      static_cast<std::size_t>(header.num_vertices) + 1);
  if (Status s = ReadBytes(f, offsets.data(),
                           offsets.size() * sizeof(std::int64_t), path);
      !s.ok()) {
    return s;
  }
  std::vector<VertexId> adj(static_cast<std::size_t>(header.adj_size));
  if (!adj.empty()) {
    if (Status s =
            ReadBytes(f, adj.data(), adj.size() * sizeof(VertexId), path);
        !s.ok()) {
      return s;
    }
  }

  // Validate the structural invariants Graph::FromCsr would abort on, so a
  // corrupted file surfaces as a Status instead of a process abort.
  if (offsets.front() != 0 || offsets.back() != header.adj_size) {
    return Status::InvalidArgument("corrupt offsets in " + path);
  }
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument("non-monotone offsets in " + path);
    }
    for (std::int64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const VertexId w = adj[static_cast<std::size_t>(i)];
      if (w < 0 || w >= header.num_vertices) {
        return Status::InvalidArgument("out-of-range vertex id in " + path);
      }
      if (w == static_cast<VertexId>(v)) {
        return Status::InvalidArgument("self-loop in " + path);
      }
      if (i > offsets[v] && adj[static_cast<std::size_t>(i - 1)] >= w) {
        return Status::InvalidArgument("unsorted adjacency in " + path);
      }
    }
  }
  // Symmetry: every (v, w) entry must have a matching (w, v) entry. The
  // lists are sorted, so binary search each reverse edge.
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    for (std::int64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const VertexId w = adj[static_cast<std::size_t>(i)];
      const auto begin = adj.begin() + offsets[w];
      const auto end = adj.begin() + offsets[w + 1];
      if (!std::binary_search(begin, end, static_cast<VertexId>(v))) {
        return Status::InvalidArgument("asymmetric adjacency in " + path);
      }
    }
  }
  return Graph::FromCsr(std::move(offsets), std::move(adj));
}

StatusOr<BinaryGraphHeader> ReadBinaryGraphHeader(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  BinaryGraphHeader header;
  if (Status s = ParseHeader(file.get(), path, &header); !s.ok()) return s;
  return header;
}

}  // namespace nucleus
