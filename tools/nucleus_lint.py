#!/usr/bin/env python3
"""nucleus_lint: repo-specific static checks that clang-tidy cannot express.

Rules
-----
tsan-filter-sync
    The TSan test regex in .github/workflows/ci.yml (gcc-tsan ctest_args)
    must be byte-identical to the `tsan` testPreset filter in
    CMakePresets.json. The two drifted twice historically (PR 5, PR 7),
    silently shrinking CI's TSan coverage.

wall-clock
    Deterministic decompose/serve code must not read wall-clock time or
    libc randomness: byte-identical transcripts at t in {1,2,4,8} are an
    acceptance gate. Bans std::rand/srand/time()/system_clock/
    gettimeofday/localtime/gmtime in src/nucleus, except the
    observability layer (obs/) and util/timer*, which legitimately
    timestamp output. steady_clock is allowed everywhere.

naked-mutex
    All locking in src/nucleus goes through the annotated wrappers in
    util/mutex.h so Clang thread-safety analysis sees every acquisition.
    Bans std::mutex / std::shared_mutex / std::lock_guard /
    std::unique_lock / std::scoped_lock / std::shared_lock tokens
    outside util/mutex.h.

A finding on a specific line can be suppressed with a trailing
`// nucleus-lint: allow(<rule>)` comment.

Usage:
    nucleus_lint.py [--repo DIR]     lint the repository (default: cwd walk-up)
    nucleus_lint.py --self-test      run the linter against built-in fixtures
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile

RULES = ("tsan-filter-sync", "wall-clock", "naked-mutex")

SUPPRESS_RE = re.compile(r"//\s*nucleus-lint:\s*allow\(([a-z-]+)\)")

# Matched against comment-stripped code text.
WALL_CLOCK_RE = re.compile(
    r"std::rand\b|\bsrand\s*\(|\btime\s*\(|system_clock"
    r"|gettimeofday|\blocaltime\b|\bgmtime\b"
)
NAKED_MUTEX_RE = re.compile(
    r"std::(?:shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

WALL_CLOCK_WHITELIST = ("obs/", "util/timer")
NAKED_MUTEX_WHITELIST = ("util/mutex.h",)

CI_TSAN_RE = re.compile(r'ctest_args:\s*-R\s*"([^"]+)"')


class Finding:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_line_comment(line: str) -> str:
    """Remove a trailing // comment (good enough: repo bans multiline
    comment blocks holding code, and string literals never contain //)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def iter_source_files(root: str):
    src = os.path.join(root, "src", "nucleus")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                yield os.path.join(dirpath, name)


def rel(root: str, path: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def check_file_rule(root, path, rule, pattern, whitelist, findings):
    relpath = rel(root, path)
    if any(token in relpath for token in whitelist):
        return
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            suppressed = {m.group(1) for m in SUPPRESS_RE.finditer(line)}
            if rule in suppressed:
                continue
            code = strip_line_comment(line)
            m = pattern.search(code)
            if m:
                findings.append(
                    Finding(rule, relpath, lineno, f"banned token '{m.group(0)}'")
                )


def check_tsan_filter_sync(root: str, findings: list) -> None:
    ci_path = os.path.join(root, ".github", "workflows", "ci.yml")
    presets_path = os.path.join(root, "CMakePresets.json")
    if not os.path.exists(ci_path) or not os.path.exists(presets_path):
        findings.append(
            Finding(
                "tsan-filter-sync",
                rel(root, ci_path if not os.path.exists(ci_path) else presets_path),
                0,
                "file missing; cannot cross-check the TSan test filter",
            )
        )
        return

    ci_regex = None
    ci_line = 0
    with open(ci_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = CI_TSAN_RE.search(line)
            if m and m.group(1).strip():
                ci_regex = m.group(1)
                ci_line = lineno
                break

    preset_regex = None
    with open(presets_path, encoding="utf-8") as f:
        presets = json.load(f)
    for preset in presets.get("testPresets", []):
        if preset.get("name") == "tsan":
            preset_regex = (
                preset.get("filter", {}).get("include", {}).get("name")
            )

    if ci_regex is None:
        findings.append(
            Finding(
                "tsan-filter-sync",
                rel(root, ci_path),
                0,
                'no non-empty ctest_args: -R "..." found (gcc-tsan job)',
            )
        )
    if preset_regex is None:
        findings.append(
            Finding(
                "tsan-filter-sync",
                rel(root, presets_path),
                0,
                "no tsan testPreset with filter.include.name found",
            )
        )
    if ci_regex is not None and preset_regex is not None and ci_regex != preset_regex:
        findings.append(
            Finding(
                "tsan-filter-sync",
                rel(root, ci_path),
                ci_line,
                "TSan test regex differs from CMakePresets.json tsan "
                f"preset:\n  ci.yml:           {ci_regex}\n"
                f"  CMakePresets.json: {preset_regex}",
            )
        )


def lint(root: str) -> list:
    findings: list = []
    check_tsan_filter_sync(root, findings)
    for path in iter_source_files(root):
        check_file_rule(
            root, path, "wall-clock", WALL_CLOCK_RE, WALL_CLOCK_WHITELIST, findings
        )
        check_file_rule(
            root, path, "naked-mutex", NAKED_MUTEX_RE, NAKED_MUTEX_WHITELIST, findings
        )
    return findings


# ---------------------------------------------------------------------------
# Self-test fixtures: a miniature repo tree per scenario.
# ---------------------------------------------------------------------------


def _write(root: str, relpath: str, content: str) -> None:
    path = os.path.join(root, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def _fixture_base(root: str, tsan_regex_ci: str, tsan_regex_preset: str) -> None:
    _write(
        root,
        ".github/workflows/ci.yml",
        "jobs:\n  build:\n    matrix:\n      include:\n"
        '        - name: gcc-release\n          ctest_args: ""\n'
        f'        - name: gcc-tsan\n          ctest_args: -R "{tsan_regex_ci}"\n',
    )
    _write(
        root,
        "CMakePresets.json",
        json.dumps(
            {
                "version": 5,
                "testPresets": [
                    {
                        "name": "tsan",
                        "filter": {"include": {"name": tsan_regex_preset}},
                    }
                ],
            }
        ),
    )
    _write(
        root,
        "src/nucleus/util/mutex.h",
        "#pragma once\n#include <mutex>\nclass Mutex { std::mutex mu_; };\n",
    )


def self_test() -> int:
    failures = []

    def expect(name: str, findings: list, rule: str, count: int) -> None:
        got = sum(1 for f in findings if f.rule == rule)
        if got != count:
            failures.append(
                f"{name}: expected {count} x {rule}, got {got}: "
                + "; ".join(str(f) for f in findings)
            )

    # 1. Clean tree -> no findings.
    with tempfile.TemporaryDirectory() as root:
        _fixture_base(root, "Parallel|TcpServer", "Parallel|TcpServer")
        _write(
            root,
            "src/nucleus/core/clean.cc",
            "#include \"nucleus/util/mutex.h\"\n"
            "// std::mutex in a comment is fine\n"
            "int F() { return 1; }\n",
        )
        findings = lint(root)
        if findings:
            failures.append(
                "clean: expected no findings, got: "
                + "; ".join(str(f) for f in findings)
            )

    # 2. Drifted TSan regex -> exactly one tsan-filter-sync finding.
    with tempfile.TemporaryDirectory() as root:
        _fixture_base(root, "Parallel|TcpServer|Metrics", "Parallel|TcpServer")
        findings = lint(root)
        expect("drift", findings, "tsan-filter-sync", 1)

    # 3. Wall-clock tokens flagged in core, tolerated in obs/ and util/timer.
    with tempfile.TemporaryDirectory() as root:
        _fixture_base(root, "X", "X")
        _write(
            root,
            "src/nucleus/core/decompose.cc",
            "#include <ctime>\nlong Now() { return time(nullptr); }\n"
            "int R() { return std::rand(); }\n",
        )
        _write(
            root,
            "src/nucleus/obs/metrics.cc",
            "#include <chrono>\nauto T() { return "
            "std::chrono::system_clock::now(); }\n",
        )
        _write(
            root,
            "src/nucleus/util/timer.h",
            "#include <chrono>\nusing Clock = std::chrono::system_clock;\n",
        )
        findings = lint(root)
        expect("wall-clock", findings, "wall-clock", 2)

    # 4. Naked mutex member flagged; suppression comment honored.
    with tempfile.TemporaryDirectory() as root:
        _fixture_base(root, "X", "X")
        _write(
            root,
            "src/nucleus/serve/bad.h",
            "#include <mutex>\nstruct S {\n  std::mutex mu;\n"
            "  std::mutex ok_mu;  // nucleus-lint: allow(naked-mutex)\n};\n",
        )
        findings = lint(root)
        expect("naked-mutex", findings, "naked-mutex", 1)

    # 5. steady_clock is never flagged.
    with tempfile.TemporaryDirectory() as root:
        _fixture_base(root, "X", "X")
        _write(
            root,
            "src/nucleus/serve/ok.cc",
            "#include <chrono>\nauto T() { return "
            "std::chrono::steady_clock::now(); }\n",
        )
        findings = lint(root)
        if findings:
            failures.append(
                "steady_clock: expected no findings, got: "
                + "; ".join(str(f) for f in findings)
            )

    if failures:
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
        return 1
    print("nucleus_lint self-test: all fixtures passed")
    return 0


def find_repo_root(start: str) -> str | None:
    cur = os.path.abspath(start)
    while True:
        if os.path.isdir(os.path.join(cur, "src", "nucleus")):
            return cur
        parent = os.path.dirname(cur)
        if parent == cur:
            return None
        cur = parent


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", help="repository root (default: walk up from cwd)")
    parser.add_argument(
        "--self-test", action="store_true", help="run fixture self-tests and exit"
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.repo or find_repo_root(os.getcwd())
    if root is None or not os.path.isdir(os.path.join(root, "src", "nucleus")):
        print("nucleus_lint: cannot locate repo root (need src/nucleus)",
              file=sys.stderr)
        return 2

    findings = lint(root)
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"nucleus_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("nucleus_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
