#!/usr/bin/env python3
"""Perf-regression gate for the bench-smoke CI job.

Compares a fresh ``table1_speedups --json`` run against the last recorded
run in BENCH_baseline.json and fails (exit 1) if any speedup column
regresses by more than the tolerance. Speedups are ratios of two timings
taken on the same machine in the same process, so they transfer across CI
runners far better than raw seconds do.

Usage:
    check_bench_regression.py BENCH_baseline.json candidate.json \
        [--tolerance 0.25] [--min-baseline 0.25]

Columns whose baseline speedup is below --min-baseline are reported but
not gated: with both sides of the ratio under a few hundred milliseconds
they are dominated by noise.

When --tolerance / --min-baseline are not given, per-bench defaults from
BENCH_DEFAULTS apply (keyed by the candidate's "bench" field), so each
gate's calibration lives here instead of being re-typed in CI.
"""

import argparse
import json
import sys

# Per-bench gate calibration. Rationale per entry:
#   table1_speedups       same-resource CPU ratios; transfer tightly.
#   query_serving         CPU (decompose) vs IO (load): wider tolerance,
#                         min-baseline 2.0 x 0.5 keeps the >=10x bar.
#   incremental_update    patch-vs-rebuild, same CPU/IO mix as serving.
#   multi_tenant_serving  routed_efficiency sits near 1.0 where relative
#                         noise is largest: wide tolerance, low floor.
#   network_serving       net_efficiency is a ~10ms stdio/TCP wall ratio
#                         (best-of-3 both sides, but loopback scheduling
#                         still jitters): widest tolerance, low floor.
#   router_serving        router_efficiency divides two ~5-10ms loopback
#                         wall times (direct TCP / routed TCP) and sits
#                         well below 1.0 by design (the forwarding hop):
#                         network_serving's tolerance, lower floor.
BENCH_DEFAULTS = {
    "table1_speedups": {"tolerance": 0.25, "min_baseline": 0.5},
    "query_serving": {"tolerance": 0.5, "min_baseline": 2.0},
    "incremental_update": {"tolerance": 0.5, "min_baseline": 2.0},
    "multi_tenant_serving": {"tolerance": 0.5, "min_baseline": 0.2},
    "network_serving": {"tolerance": 0.6, "min_baseline": 0.15},
    "router_serving": {"tolerance": 0.6, "min_baseline": 0.1},
}


def load_baseline_run(path, bench_name):
    with open(path) as f:
        data = json.load(f)
    runs = data.get("runs")
    if runs is None:  # a bare run file (e.g. a previous candidate)
        return data
    for run in reversed(runs):
        if run.get("bench") == bench_name:
            return run
    sys.exit(f"error: no '{bench_name}' run recorded in {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="maximum allowed relative drop (default: the "
                             "bench's BENCH_DEFAULTS entry, else 0.25)")
    parser.add_argument("--min-baseline", type=float, default=None,
                        help="skip gating columns with a baseline speedup "
                             "below this (noise floor; default: the "
                             "bench's BENCH_DEFAULTS entry, else 0.25)")
    args = parser.parse_args()

    with open(args.candidate) as f:
        candidate = json.load(f)
    bench_name = candidate.get("bench", "table1_speedups")
    defaults = BENCH_DEFAULTS.get(bench_name, {})
    if args.tolerance is None:
        args.tolerance = defaults.get("tolerance", 0.25)
    if args.min_baseline is None:
        args.min_baseline = defaults.get("min_baseline", 0.25)
    baseline = load_baseline_run(args.baseline, bench_name)

    failures = []
    skipped = 0
    print(f"{'dataset':<12} {'column':<12} {'baseline':>9} {'current':>9} "
          f"{'ratio':>7}  status")
    for dataset, base_row in sorted(baseline["results"].items()):
        cand_row = candidate.get("results", {}).get(dataset)
        if cand_row is None:
            failures.append(f"{dataset}: missing from candidate run")
            continue
        for column, base_value in sorted(base_row.items()):
            if column not in cand_row:
                failures.append(f"{dataset}/{column}: missing from candidate")
                continue
            cand_value = cand_row[column]
            ratio = cand_value / base_value if base_value > 0 else float("inf")
            if base_value < args.min_baseline:
                status = "skipped (baseline below noise floor)"
                skipped += 1
            elif ratio < 1.0 - args.tolerance:
                status = "FAIL"
                failures.append(
                    f"{dataset}/{column}: {base_value:.2f} -> "
                    f"{cand_value:.2f} ({(1.0 - ratio) * 100:.0f}% drop)")
            else:
                status = "ok"
            print(f"{dataset:<12} {column:<12} {base_value:>8.2f}x "
                  f"{cand_value:>8.2f}x {ratio:>6.2f}  {status}")

    print(f"\ntolerance: {args.tolerance:.0%} drop; "
          f"{skipped} column(s) under the noise floor")
    if failures:
        print("\nPERF REGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    print("perf regression gate passed")


if __name__ == "__main__":
    main()
