// Command-line interface to the nucleus-hierarchy library. All logic lives
// in src/nucleus/cli/cli.cc so the test suite exercises it directly.
#include <iostream>
#include <string>
#include <vector>

#include "nucleus/cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return nucleus::RunCli(args, std::cout, std::cerr);
}
