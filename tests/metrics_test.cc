// Tests for the obs metrics registry: deterministic bucket boundaries,
// serialization (JSON body + Prometheus text), label-cardinality capping,
// the kill switch, and concurrent Observe/Increment (the TSan leg: suite
// names contain "Metrics" so the sanitizer preset picks them up).
#include "nucleus/obs/metrics.h"

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace nucleus {
namespace obs {
namespace {

/// Restores the process-wide kill switch so a test that flips it can
/// never leak a disabled registry into the rest of the suite.
class MetricsEnabledGuard {
 public:
  MetricsEnabledGuard() : saved_(MetricsEnabled()) {}
  ~MetricsEnabledGuard() { SetMetricsEnabled(saved_); }

 private:
  bool saved_;
};

TEST(MetricsHistogram, BucketBoundariesAreDeterministicPowersOfTwo) {
  EXPECT_EQ(Histogram::BucketBoundUs(0), 1);
  EXPECT_EQ(Histogram::BucketBoundUs(1), 2);
  EXPECT_EQ(Histogram::BucketBoundUs(10), 1024);
  EXPECT_EQ(Histogram::BucketBoundUs(Histogram::kFiniteBuckets - 1),
            std::int64_t{1} << (Histogram::kFiniteBuckets - 1));
  EXPECT_EQ(Histogram::BucketBoundUs(Histogram::kFiniteBuckets),
            std::numeric_limits<std::int64_t>::max());
}

TEST(MetricsHistogram, BucketForMatchesBounds) {
  // Bucket i holds us <= 2^i: each bound lands in its own bucket, the
  // next microsecond in the following one.
  for (int i = 0; i < Histogram::kFiniteBuckets; ++i) {
    const std::int64_t bound = Histogram::BucketBoundUs(i);
    EXPECT_EQ(Histogram::BucketFor(bound), i) << "bound " << bound;
    if (i + 1 < Histogram::kFiniteBuckets) {
      EXPECT_EQ(Histogram::BucketFor(bound + 1), i + 1);
    }
  }
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(-5), 0);  // clamped, never out of range
  EXPECT_EQ(Histogram::BucketFor(std::numeric_limits<std::int64_t>::max()),
            Histogram::kFiniteBuckets);
}

TEST(MetricsHistogram, ObserveAccumulatesCountSumAndQuantiles) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  Histogram h;
  h.Observe(1);
  h.Observe(3);    // bucket 2 (<= 4)
  h.Observe(100);  // bucket 7 (<= 128)
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 3);
  EXPECT_EQ(snap.sum_us, 104);
  EXPECT_EQ(snap.buckets[0], 1);
  EXPECT_EQ(snap.buckets[2], 1);
  EXPECT_EQ(snap.buckets[7], 1);
  EXPECT_EQ(snap.ApproxQuantileUs(0.0), 1);
  EXPECT_EQ(snap.ApproxQuantileUs(0.5), 4);
  EXPECT_EQ(snap.ApproxQuantileUs(0.99), 128);
}

TEST(MetricsRegistry, KillSwitchFreezesEveryMetricType) {
  MetricsEnabledGuard guard;
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c_total");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h_us");
  SetMetricsEnabled(false);
  c->Increment();
  g->Set(7.0);
  g->Add(3.0);
  h->Observe(42);
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Snap().count, 0);
  SetMetricsEnabled(true);
  c->Increment(2);
  g->Set(7.0);
  h->Observe(42);
  EXPECT_EQ(c->Value(), 2);
  EXPECT_EQ(g->Value(), 7.0);
  EXPECT_EQ(h->Snap().count, 1);
}

TEST(MetricsRegistry, PointersAreStableAndSharedPerLabelSet) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reqs_total", "alpha", "lambda");
  Counter* b = registry.GetCounter("reqs_total", "alpha", "lambda");
  Counter* other = registry.GetCounter("reqs_total", "beta", "lambda");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(MetricsRegistry, JsonBodyIsDeterministicAndSorted) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  registry.GetCounter("b_total", "t2", "lambda")->Increment(2);
  registry.GetCounter("b_total", "t1", "lambda")->Increment(1);
  registry.GetGauge("a_gauge")->Set(1.5);
  const std::string body = registry.ToJsonBody();
  EXPECT_EQ(body, registry.ToJsonBody());  // stable across calls
  // Sorted label sets: t1 before t2.
  const std::size_t t1 = body.find("tenant=t1");
  const std::size_t t2 = body.find("tenant=t2");
  ASSERT_NE(t1, std::string::npos);
  ASSERT_NE(t2, std::string::npos);
  EXPECT_LT(t1, t2);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("\"gauges\""), std::string::npos);
  EXPECT_NE(body.find("\"histograms\""), std::string::npos);
  // Every family is a map of label-key -> value; the unlabeled child
  // renders under the empty key.
  EXPECT_NE(body.find("\"a_gauge\": {\"\": 1.5}"), std::string::npos);
  EXPECT_NE(body.find("\"tenant=t1,verb=lambda\": 1"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusTextHasCumulativeBucketsAndInf) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_us", "t", "lambda");
  h->Observe(1);
  h->Observe(3);
  h->Observe(100);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  // Cumulative: le="4" has both the <=1 and <=4 observations.
  EXPECT_NE(text.find("lat_us_bucket{tenant=\"t\",verb=\"lambda\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{tenant=\"t\",verb=\"lambda\",le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("lat_us_bucket{tenant=\"t\",verb=\"lambda\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("lat_us_sum{tenant=\"t\",verb=\"lambda\"} 104"),
            std::string::npos);
  EXPECT_NE(text.find("lat_us_count{tenant=\"t\",verb=\"lambda\"} 3"),
            std::string::npos);
}

TEST(MetricsRegistry, LabelCardinalityCollapsesIntoOverflowChild) {
  MetricsRegistry registry;
  std::vector<Counter*> counters;
  for (int i = 0; i < MetricsRegistry::kMaxLabelSets + 50; ++i) {
    counters.push_back(
        registry.GetCounter("c_total", "tenant" + std::to_string(i), "v"));
  }
  Counter* overflow = registry.GetCounter("c_total", "_other", "_other");
  // Everything past the cap resolved to the same overflow child.
  for (int i = MetricsRegistry::kMaxLabelSets;
       i < MetricsRegistry::kMaxLabelSets + 50; ++i) {
    EXPECT_EQ(counters[static_cast<std::size_t>(i)], overflow) << i;
  }
  // Early label sets kept their own children.
  EXPECT_NE(counters[0], overflow);
  EXPECT_NE(counters[0], counters[1]);
}

TEST(MetricsConcurrent, ObserveAndIncrementMergeAcrossThreads) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits_total");
  Histogram* hist = registry.GetHistogram("lat_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe((t * kPerThread + i) % 2000);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  const Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::int64_t bucket_total = 0;
  for (const std::int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(MetricsConcurrent, RegistryLookupsRaceSafelyWithSerialization) {
  MetricsEnabledGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry registry;
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("c_total", "tenant" + std::to_string(i % 16), "v")
            ->Increment();
        registry.GetHistogram("h_us", "tenant" + std::to_string(i % 16), "v")
            ->Observe(i + t);
        if (i % 50 == 0) {
          const std::string body = registry.ToJsonBody();
          EXPECT_FALSE(body.empty());
          const std::string text = registry.ToPrometheusText();
          EXPECT_FALSE(text.empty());
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::int64_t total = 0;
  for (int i = 0; i < 16; ++i) {
    total += registry.GetCounter("c_total", "tenant" + std::to_string(i), "v")
                 ->Value();
  }
  EXPECT_EQ(total, kThreads * 200);
}

}  // namespace
}  // namespace obs
}  // namespace nucleus
