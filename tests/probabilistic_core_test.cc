#include "nucleus/variants/probabilistic_core.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nucleus/core/peeling.h"
#include "nucleus/core/spaces.h"
#include "nucleus/graph/generators.h"
#include "nucleus/util/rng.h"
#include "test_util.h"

namespace nucleus {
namespace {

UncertainGraph RandomUncertain(VertexId n, double density, std::uint64_t seed,
                               double p_lo, double p_hi) {
  const Graph g = ErdosRenyiGnp(n, density, seed);
  Rng rng(seed + 500);
  std::vector<ProbabilisticEdge> edges;
  g.ForEachEdge([&](VertexId u, VertexId v) {
    edges.push_back({u, v, p_lo + (p_hi - p_lo) * rng.UniformReal()});
  });
  return UncertainGraph::FromEdges(n, std::move(edges));
}

// Reference eta-degree by exhaustive subset enumeration (up to 20 edges).
std::int32_t EnumeratedEtaDegree(const std::vector<double>& probs,
                                 double eta) {
  const std::size_t m = probs.size();
  NUCLEUS_CHECK(m <= 20);
  std::vector<double> pr_deg(m + 1, 0.0);
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    double p = 1.0;
    int deg = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1u << i)) {
        p *= probs[i];
        ++deg;
      } else {
        p *= 1.0 - probs[i];
      }
    }
    pr_deg[deg] += p;
  }
  double tail = 0.0;
  for (std::int32_t k = static_cast<std::int32_t>(m); k >= 1; --k) {
    tail += pr_deg[k];
    if (tail >= eta - 1e-9) return k;
  }
  return 0;
}

// Reference (k, eta)-core numbers: iterated definition-level pruning with
// from-scratch DP at every step.
std::vector<std::int32_t> ReferenceProbCores(const UncertainGraph& ug,
                                             double eta) {
  const VertexId n = ug.NumVertices();
  std::vector<std::int32_t> lambda(n, 0);
  std::vector<char> alive(n, 1);
  std::int64_t alive_count = n;
  std::int32_t k = 1;
  while (alive_count > 0) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        std::vector<double> probs;
        const auto neighbors = ug.graph().Neighbors(v);
        const auto ps = ug.ProbsOf(v);
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          if (alive[neighbors[i]]) probs.push_back(ps[i]);
        }
        if (EtaDegree({probs.data(), probs.size()}, eta) < k) {
          alive[v] = 0;
          --alive_count;
          lambda[v] = k - 1;
          changed = true;
        }
      }
    }
    ++k;
  }
  return lambda;
}

TEST(UncertainGraph, DuplicateEdgesCombineAsAlternatives) {
  UncertainGraph ug =
      UncertainGraph::FromEdges(2, {{0, 1, 0.5}, {0, 1, 0.5}});
  ASSERT_EQ(ug.NumEdges(), 1);
  EXPECT_NEAR(ug.ProbsOf(0)[0], 0.75, 1e-12);
}

TEST(UncertainGraph, ZeroProbabilityEdgesAreDropped) {
  UncertainGraph ug = UncertainGraph::FromEdges(3, {{0, 1, 0.0}, {1, 2, 1.0}});
  EXPECT_EQ(ug.NumEdges(), 1);
  EXPECT_TRUE(ug.graph().HasEdge(1, 2));
  EXPECT_FALSE(ug.graph().HasEdge(0, 1));
}

TEST(DegreeDistribution, MatchesEnumerationOnRandomProbs) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> probs;
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 9));
    for (int i = 0; i < m; ++i) probs.push_back(rng.UniformReal());
    const std::vector<double> tail =
        DegreeTailDistribution({probs.data(), probs.size()});
    for (double eta : {0.1, 0.3, 0.5, 0.9}) {
      EXPECT_EQ(EtaDegree({probs.data(), probs.size()}, eta),
                EnumeratedEtaDegree(probs, eta))
          << "trial " << trial << " eta " << eta;
    }
    // Tail is monotone non-increasing and starts at 1.
    EXPECT_NEAR(tail[0], 1.0, 1e-12);
    for (std::size_t j = 1; j < tail.size(); ++j) {
      EXPECT_LE(tail[j], tail[j - 1] + 1e-12);
    }
  }
}

TEST(EtaDegree, CertainEdgesCountExactly) {
  std::vector<double> probs = {1.0, 1.0, 1.0};
  EXPECT_EQ(EtaDegree({probs.data(), probs.size()}, 0.999), 3);
  EXPECT_EQ(EtaDegree({probs.data(), probs.size()}, 0.001), 3);
}

TEST(EtaDegree, MonotoneInEta) {
  std::vector<double> probs = {0.9, 0.8, 0.5, 0.3};
  std::int32_t prev = 100;
  for (double eta : {0.05, 0.2, 0.5, 0.8, 0.99}) {
    const std::int32_t d = EtaDegree({probs.data(), probs.size()}, eta);
    EXPECT_LE(d, prev);
    prev = d;
  }
}

TEST(ProbabilisticCore, CertainGraphEqualsPlainKCore) {
  for (const auto& c : testing_util::GraphZoo()) {
    SCOPED_TRACE(c.name);
    const Graph g = c.make();
    const UncertainGraph ug = UncertainGraph::UniformProbability(g, 1.0);
    for (double eta : {0.1, 0.9}) {
      const ProbabilisticCoreResult got = ProbabilisticCoreNumbers(ug, eta);
      const PeelResult want = Peel(VertexSpace(g));
      for (std::size_t v = 0; v < want.lambda.size(); ++v) {
        EXPECT_EQ(got.lambda[v], want.lambda[v])
            << "vertex " << v << " eta " << eta;
      }
    }
  }
}

TEST(ProbabilisticCore, MatchesReferenceOnRandomUncertainGraphs) {
  for (std::uint64_t seed : {1u, 6u, 11u}) {
    const UncertainGraph ug = RandomUncertain(18, 0.3, seed, 0.2, 0.95);
    for (double eta : {0.2, 0.5, 0.8}) {
      SCOPED_TRACE(testing::Message() << "seed=" << seed << " eta=" << eta);
      EXPECT_EQ(ProbabilisticCoreNumbers(ug, eta).lambda,
                ReferenceProbCores(ug, eta));
    }
  }
}

TEST(ProbabilisticCore, MixedCertainAndUncertainEdges) {
  // Triangle of certain edges + pendant uncertain edge.
  UncertainGraph ug = UncertainGraph::FromEdges(
      4, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {2, 3, 0.4}});
  const ProbabilisticCoreResult strict = ProbabilisticCoreNumbers(ug, 0.9);
  EXPECT_EQ(strict.lambda[0], 2);
  EXPECT_EQ(strict.lambda[3], 0);  // Pr[deg(3) >= 1] = 0.4 < 0.9
  const ProbabilisticCoreResult loose = ProbabilisticCoreNumbers(ug, 0.3);
  EXPECT_EQ(loose.lambda[3], 1);  // 0.4 >= 0.3
}

TEST(ProbabilisticCore, LambdaMonotoneInEta) {
  const UncertainGraph ug = RandomUncertain(25, 0.25, 19, 0.1, 0.9);
  std::vector<std::int32_t> prev(25, 1000);
  for (double eta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const ProbabilisticCoreResult r = ProbabilisticCoreNumbers(ug, eta);
    for (VertexId v = 0; v < 25; ++v) {
      EXPECT_LE(r.lambda[v], prev[v]) << "vertex " << v << " eta " << eta;
      prev[v] = r.lambda[v];
    }
  }
}

TEST(ProbabilisticCore, DowndateDriftIsControlled) {
  // A hub of degree 120 forces > kRebuildPeriod downdates between rebuilds;
  // results must still match the reference for a smaller recomputed case
  // and stay internally consistent (lambda <= initial eta-degree).
  Rng rng(77);
  std::vector<ProbabilisticEdge> edges;
  for (VertexId leaf = 1; leaf <= 120; ++leaf) {
    edges.push_back({0, leaf, 0.3 + 0.6 * rng.UniformReal()});
  }
  const UncertainGraph ug = UncertainGraph::FromEdges(121, std::move(edges));
  const ProbabilisticCoreResult r = ProbabilisticCoreNumbers(ug, 0.5);
  // Leaves: Pr[deg >= 1] = p >= 0.5 or not; hub's lambda is bounded by the
  // star structure (removal of leaves leaves hub alone -> lambda 1 at most
  // when any leaf survives the first level).
  for (VertexId leaf = 1; leaf <= 120; ++leaf) {
    EXPECT_LE(r.lambda[leaf], 1);
  }
  EXPECT_LE(r.lambda[0], 1);
}

TEST(ProbabilisticCore, HierarchyMatchesThresholdComponents) {
  const UncertainGraph ug = RandomUncertain(24, 0.25, 33, 0.3, 0.95);
  const ProbabilisticCoreDecomposition d =
      DecomposeProbabilisticCore(ug, 0.5);
  const NucleusHierarchy tree = LabeledHierarchyTree(ug.graph(), d.skeleton);
  tree.Validate(d.skeleton.vertex_rank);
  // Spot check: every lambda >= 1 vertex is in a nucleus whose members all
  // have lambda at least the node's threshold label.
  for (VertexId v = 0; v < ug.NumVertices(); ++v) {
    if (d.core.lambda[v] < 1) continue;
    const std::int32_t node = tree.NodeOfClique(v);
    const Lambda rank = tree.node(node).lambda;
    ASSERT_GE(rank, 1);
    const std::int64_t label = d.skeleton.distinct_labels[rank - 1];
    for (VertexId u : tree.MembersOfSubtree(node)) {
      EXPECT_GE(d.core.lambda[u], label);
    }
  }
}

TEST(ProbabilisticCore, MonteCarloAgreesWithDegreeTail) {
  // Empirical check of the DP against sampling on one vertex's edges.
  std::vector<double> probs = {0.7, 0.5, 0.3, 0.9, 0.2};
  const std::vector<double> tail =
      DegreeTailDistribution({probs.data(), probs.size()});
  Rng rng(123);
  const int trials = 20000;
  std::vector<int> at_least(probs.size() + 1, 0);
  for (int t = 0; t < trials; ++t) {
    int deg = 0;
    for (double p : probs) deg += rng.Bernoulli(p) ? 1 : 0;
    for (int k = 0; k <= deg; ++k) ++at_least[k];
  }
  for (std::size_t k = 0; k < tail.size(); ++k) {
    EXPECT_NEAR(static_cast<double>(at_least[k]) / trials, tail[k], 0.02)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace nucleus
