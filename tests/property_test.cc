// Property-based tests of the definitional invariants of nucleus
// decompositions, run over randomized graph sweeps:
//   P1 every member of a k-(r,s) nucleus has K_s-degree >= k inside it;
//   P2 nuclei of the same k are disjoint (maximality);
//   P3 nuclei nest: a child node's members are a subset of its parent's;
//   P4 lambda is monotone under edge insertion (k-core);
//   P5 lambda never exceeds the initial support;
//   P6 lambda_2 of the (1,2) decomposition upper-bounds lambda_3-based
//      trussness relations (lambda3(e) <= min(lambda2(u),lambda2(v)) - 1
//      is NOT generally true, but lambda3(e)+1 <= lambda2 bound holds).
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "nucleus/core/fast_nucleus.h"
#include "nucleus/core/hierarchy.h"
#include "nucleus/core/naive_traversal.h"
#include "nucleus/core/peeling.h"
#include "test_util.h"

namespace nucleus {
namespace {

class PropertyTest : public ::testing::TestWithParam<int> {};

Graph RandomGraph(int seed) {
  switch (seed % 4) {
    case 0:
      return ErdosRenyiGnp(60, 0.12, seed);
    case 1:
      return BarabasiAlbert(60, 3, seed);
    case 2:
      return PlantedPartition(3, 15, 0.5, 0.05, seed);
    default:
      return WithTriadicClosure(BarabasiAlbert(50, 2, seed), 80, seed + 1);
  }
}

TEST_P(PropertyTest, P1MinimumDegreeInsideEveryNucleus) {
  const Graph g = RandomGraph(GetParam());
  const EdgeIndex edges = EdgeIndex::Build(g);
  const EdgeSpace space(g, edges);
  const PeelResult peel = Peel(space);
  for (const Nucleus& nucleus :
       CollectNucleiNaive(space, peel.lambda, peel.max_lambda)) {
    std::set<CliqueId> in(nucleus.members.begin(), nucleus.members.end());
    for (CliqueId e : nucleus.members) {
      // Support of e counting only triangles fully inside the nucleus.
      std::int64_t inside = 0;
      space.ForEachSuperclique(e, [&](const CliqueId* members, int count) {
        for (int i = 0; i < count; ++i) {
          if (in.count(members[i]) == 0) return;
        }
        ++inside;
      });
      EXPECT_GE(inside, nucleus.k);
    }
  }
}

TEST_P(PropertyTest, P2SameKNucleiAreDisjoint) {
  const Graph g = RandomGraph(GetParam());
  const VertexSpace space(g);
  const PeelResult peel = Peel(space);
  std::map<Lambda, std::set<CliqueId>> seen;
  for (const Nucleus& nucleus :
       CollectNucleiNaive(space, peel.lambda, peel.max_lambda)) {
    auto& at_k = seen[nucleus.k];
    for (CliqueId v : nucleus.members) {
      EXPECT_TRUE(at_k.insert(v).second)
          << "vertex " << v << " in two " << nucleus.k << "-nuclei";
    }
  }
}

TEST_P(PropertyTest, P3HierarchyNodesNestInsideParents) {
  const Graph g = RandomGraph(GetParam());
  const VertexSpace space(g);
  const FndResult fnd = FastNucleusDecomposition(space);
  const NucleusHierarchy h =
      NucleusHierarchy::FromSkeleton(fnd.build, space.NumCliques());
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (id == h.root()) continue;
    const auto members = h.MembersOfSubtree(id);
    const auto parent_members = h.MembersOfSubtree(h.node(id).parent);
    EXPECT_TRUE(std::includes(parent_members.begin(), parent_members.end(),
                              members.begin(), members.end()));
  }
}

TEST_P(PropertyTest, P4CoreLambdaMonotoneUnderEdgeInsertion) {
  const Graph g = RandomGraph(GetParam());
  const PeelResult before = Peel(VertexSpace(g));
  const Graph grown = WithRandomEdges(g, 30, GetParam() + 1000);
  const PeelResult after = Peel(VertexSpace(grown));
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_GE(after.lambda[v], before.lambda[v]) << "v=" << v;
  }
}

TEST_P(PropertyTest, P5LambdaBoundedByInitialSupport) {
  const Graph g = RandomGraph(GetParam());
  const EdgeIndex edges = EdgeIndex::Build(g);
  const EdgeSpace space(g, edges);
  const auto supports = ComputeSupports(space);
  const PeelResult peel = Peel(space);
  for (EdgeId e = 0; e < edges.NumEdges(); ++e) {
    EXPECT_LE(peel.lambda[e], supports[e]);
  }
}

TEST_P(PropertyTest, P6TrussnessBoundedByEndpointCoreness) {
  // An edge in a (k+2)-clique-like dense region: lambda3(e) + 1 <= lambda2
  // of both endpoints. (A k-truss-community edge lives in a subgraph of
  // minimum degree >= k+1.)
  const Graph g = RandomGraph(GetParam());
  const EdgeIndex edges = EdgeIndex::Build(g);
  const PeelResult core = Peel(VertexSpace(g));
  const PeelResult truss = Peel(EdgeSpace(g, edges));
  for (EdgeId e = 0; e < edges.NumEdges(); ++e) {
    const auto [u, v] = edges.Endpoints(e);
    const Lambda bound = std::min(core.lambda[u], core.lambda[v]);
    EXPECT_LE(truss.lambda[e] + 1, bound) << "edge " << u << "-" << v;
  }
}

TEST_P(PropertyTest, P7SubnucleiPartitionTheCliqueSpace) {
  const Graph g = RandomGraph(GetParam());
  const EdgeIndex edges = EdgeIndex::Build(g);
  const EdgeSpace space(g, edges);
  const FndResult fnd = FastNucleusDecomposition(space);
  const NucleusHierarchy h =
      NucleusHierarchy::FromSkeleton(fnd.build, space.NumCliques());
  std::int64_t total = 0;
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    total += static_cast<std::int64_t>(h.node(id).members.size());
  }
  EXPECT_EQ(total, space.NumCliques());
}

TEST_P(PropertyTest, P8MaxLambdaNucleusIsAClique) {
  // The innermost (3,4) nucleus with lambda = max contains triangles whose
  // union has min K4-degree = max lambda: check it is non-trivial whenever
  // K4s exist.
  const Graph g = RandomGraph(GetParam());
  const EdgeIndex edges = EdgeIndex::Build(g);
  const TriangleIndex triangles = TriangleIndex::Build(g, edges);
  const TriangleSpace space(g, edges, triangles);
  const PeelResult peel = Peel(space);
  if (triangles.CountK4s() > 0) {
    EXPECT_GE(peel.max_lambda, 1);
  } else {
    EXPECT_EQ(peel.max_lambda, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(200, 216));

// Structural invariant checked across the full GraphZoo() rather than the
// random sweep, for the higher-order (2,3) and (3,4) spaces, against an
// independent connectivity oracle (Validate alone cannot catch a wrong
// comp assignment): for every level k, union K_r's through supercliques
// whose members all have lambda >= k; then every hierarchy node at lambda k
// must have its direct members inside one component, and two distinct
// lambda-k nodes must occupy different components (maximality).
class ZooPropertyTest : public ::testing::TestWithParam<testing_util::GraphCase> {};

template <typename Space>
void CheckNodesMatchLevelConnectivity(const Space& space,
                                      std::int64_t num_cliques) {
  const FndResult fnd = FastNucleusDecomposition(space);
  const NucleusHierarchy h =
      NucleusHierarchy::FromSkeleton(fnd.build, num_cliques);
  h.Validate(fnd.peel.lambda);
  const std::vector<Lambda>& lambda = fnd.peel.lambda;
  for (Lambda k = 0; k <= fnd.peel.max_lambda; ++k) {
    DisjointSet dsf(num_cliques);
    for (CliqueId u = 0; u < num_cliques; ++u) {
      if (lambda[u] < k) continue;
      space.ForEachSuperclique(u, [&](const CliqueId* members, int count) {
        for (int i = 0; i < count; ++i) {
          if (lambda[members[i]] < k) return;
        }
        for (int i = 1; i < count; ++i) dsf.Union(members[0], members[i]);
      });
    }
    std::map<std::int32_t, std::int32_t> node_of_component;
    for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
      if (id == h.root() || h.node(id).lambda != k) continue;
      const auto& members = h.node(id).members;
      ASSERT_FALSE(members.empty());
      const std::int32_t rep = dsf.Find(members[0]);
      for (CliqueId u : members) {
        EXPECT_EQ(dsf.Find(u), rep)
            << "node " << id << " at k=" << k << " spans two components";
      }
      const auto [it, inserted] = node_of_component.emplace(rep, id);
      EXPECT_TRUE(inserted) << "nodes " << it->second << " and " << id
                            << " at k=" << k << " share a component";
    }
  }
}

TEST_P(ZooPropertyTest, Truss23NodesMatchLevelConnectivity) {
  const Graph g = GetParam().make();
  const EdgeIndex edges = EdgeIndex::Build(g);
  const EdgeSpace space(g, edges);
  CheckNodesMatchLevelConnectivity(space, edges.NumEdges());
}

TEST_P(ZooPropertyTest, Nucleus34NodesMatchLevelConnectivity) {
  const Graph g = GetParam().make();
  const EdgeIndex edges = EdgeIndex::Build(g);
  const TriangleIndex triangles = TriangleIndex::Build(g, edges);
  const TriangleSpace space(g, edges, triangles);
  CheckNodesMatchLevelConnectivity(space, triangles.NumTriangles());
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooPropertyTest, ::testing::ValuesIn(testing_util::GraphZoo()),
    [](const ::testing::TestParamInfo<testing_util::GraphCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace nucleus
