#include "nucleus/graph/edge_list_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "nucleus/graph/generators.h"
#include "test_util.h"

namespace nucleus {
namespace {

using testing_util::TempPath;

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(ParseEdgeList, BasicEdges) {
  const auto g = ParseEdgeList("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3);
  EXPECT_EQ(g->NumEdges(), 3);
}

TEST(ParseEdgeList, CommentsAndBlankLines) {
  const auto g = ParseEdgeList(
      "# SNAP-style comment\n"
      "% matrix-market-style comment\n"
      "\n"
      "0 1\n"
      "   \n"
      "1 2\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 2);
}

TEST(ParseEdgeList, DirectionsAndDuplicatesCollapse) {
  const auto g = ParseEdgeList("0 1\n1 0\n0 1\n1 1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1);  // self-loop dropped too
}

TEST(ParseEdgeList, TabsAndExtraWhitespace) {
  const auto g = ParseEdgeList("0\t1\n  2   3  \n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 2);
  EXPECT_EQ(g->NumVertices(), 4);
}

TEST(ParseEdgeList, MalformedLineIsError) {
  const auto g = ParseEdgeList("0 1\nnot an edge\n");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(ParseEdgeList, MissingSecondEndpointIsError) {
  const auto g = ParseEdgeList("5\n");
  ASSERT_FALSE(g.ok());
}

TEST(ParseEdgeList, NegativeIdIsError) {
  const auto g = ParseEdgeList("0 -2\n");
  ASSERT_FALSE(g.ok());
}

TEST(ParseEdgeList, EmptyInputIsEmptyGraph) {
  const auto g = ParseEdgeList("");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 0);
}

TEST(ReadEdgeList, MissingFileIsNotFound) {
  const auto g = ReadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
}

TEST(EdgeListRoundTrip, WriteThenReadPreservesGraph) {
  const Graph original = ErdosRenyiGnm(40, 120, 3);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteEdgeList(original, path).ok());
  const auto reread = ReadEdgeList(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->NumEdges(), original.NumEdges());
  bool same = true;
  original.ForEachEdge([&](VertexId u, VertexId v) {
    if (!reread->HasEdge(u, v)) same = false;
  });
  EXPECT_TRUE(same);
  std::remove(path.c_str());
}

TEST(ReadMatrixMarket, PatternCoordinateFile) {
  const std::string path = TempPath("graph.mtx");
  WriteFile(path,
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "% a comment\n"
            "4 4 3\n"
            "1 2\n"
            "2 3\n"
            "3 4\n");
  const auto g = ReadMatrixMarket(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 4);  // 1-based ids 1..4 -> 0..3
  EXPECT_EQ(g->NumEdges(), 3);
  EXPECT_TRUE(g->HasEdge(0, 1));
  std::remove(path.c_str());
}

TEST(ReadMatrixMarket, RejectsMissingHeader) {
  const std::string path = TempPath("noheader.mtx");
  WriteFile(path, "4 4 1\n1 2\n");
  const auto g = ReadMatrixMarket(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ReadMatrixMarket, RejectsZeroIndex) {
  const std::string path = TempPath("zeroidx.mtx");
  WriteFile(path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n"
            "0 1\n");
  const auto g = ReadMatrixMarket(path);
  ASSERT_FALSE(g.ok());
  std::remove(path.c_str());
}

TEST(ReadMatrixMarket, RejectsNonCoordinate) {
  const std::string path = TempPath("dense.mtx");
  WriteFile(path, "%%MatrixMarket matrix array real general\n1 1\n0.5\n");
  const auto g = ReadMatrixMarket(path);
  ASSERT_FALSE(g.ok());
  std::remove(path.c_str());
}

TEST(WriteEdgeList, UnwritablePathIsError) {
  const Graph g = Path(3);
  EXPECT_FALSE(WriteEdgeList(g, "/nonexistent/dir/out.txt").ok());
}

}  // namespace
}  // namespace nucleus
