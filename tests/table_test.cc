#include "nucleus/bench/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace nucleus {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "12345"});
  std::ostringstream out;
  table.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // All lines equally wide (right-aligned last column).
  std::istringstream lines(s);
  std::string line;
  std::size_t width = 0;
  int n = 0;
  while (std::getline(lines, line)) {
    if (n == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "line " << n;
    ++n;
  }
  EXPECT_EQ(n, 4);  // header + separator + 2 rows
}

TEST(TablePrinterDeathTest, WrongCellCountAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "cells.size");
}

TEST(Format, Speedup) {
  EXPECT_EQ(FormatSpeedup(12.578), "12.58x");
  EXPECT_EQ(FormatSpeedup(1.0), "1.00x");
  EXPECT_EQ(FormatSpeedup(1321.89), "1321.89x");
}

TEST(Format, Seconds) {
  EXPECT_EQ(FormatSeconds(1.9444), "1.944");
  EXPECT_EQ(FormatSeconds(0.0512), "0.0512");
}

TEST(Format, CountsUsePaperSuffixes) {
  EXPECT_EQ(FormatCount(837), "837");
  EXPECT_EQ(FormatCount(11100000), "11.1M");
  EXPECT_EQ(FormatCount(852400), "852.4K");
  EXPECT_EQ(FormatCount(52200000000), "52.2B");
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(9999), "9999");
}

TEST(Format, DoublePrecision) {
  EXPECT_EQ(FormatDouble(6.543, 2), "6.54");
  EXPECT_EQ(FormatDouble(90.6, 1), "90.6");
}

}  // namespace
}  // namespace nucleus
