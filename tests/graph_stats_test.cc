#include "nucleus/graph/graph_stats.h"

#include <gtest/gtest.h>

#include "nucleus/graph/generators.h"
#include "nucleus/graph/graph_builder.h"

namespace nucleus {
namespace {

TEST(DegreeStats, PathDegrees) {
  const DegreeStats s = ComputeDegreeStats(Path(5));
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 2);
  EXPECT_DOUBLE_EQ(s.mean, 2.0 * 4 / 5);
}

TEST(DegreeStats, EmptyGraph) {
  const DegreeStats s = ComputeDegreeStats(Graph());
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
}

TEST(ConnectedComponents, CountsAndLabels) {
  const Graph g = DisjointUnion({Path(3), Cycle(4), Path(1)});
  std::int32_t count = 0;
  const auto comp = ConnectedComponents(g, &count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[6]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(comp[7], 2);
}

TEST(ConnectedComponents, SingleComponent) {
  std::int32_t count = 0;
  ConnectedComponents(Complete(5), &count);
  EXPECT_EQ(count, 1);
}

TEST(LargestComponentVertices, PicksBiggest) {
  const Graph g = DisjointUnion({Path(2), Complete(5), Path(3)});
  const auto vs = LargestComponentVertices(g);
  EXPECT_EQ(vs.size(), 5u);
  EXPECT_EQ(vs[0], 2);  // K5 occupies vertices 2..6
  EXPECT_EQ(vs[4], 6);
}

TEST(CountTriangles, KnownCounts) {
  EXPECT_EQ(CountTriangles(Complete(4)), 4);
  EXPECT_EQ(CountTriangles(Complete(6)), 20);
  EXPECT_EQ(CountTriangles(Cycle(5)), 0);
  EXPECT_EQ(CountTriangles(CompleteBipartite(3, 3)), 0);
  EXPECT_EQ(CountTriangles(Wheel(7)), 6);
}

TEST(CountTriangles, BowTie) {
  const Graph g =
      GraphFromEdges(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
  EXPECT_EQ(CountTriangles(g), 2);
}

TEST(GlobalClusteringCoefficient, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Complete(6)), 1.0);
}

TEST(GlobalClusteringCoefficient, TriangleFreeIsZero) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CompleteBipartite(4, 4)), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Path(10)), 0.0);
}

TEST(AverageLocalClustering, CompleteIsOneStarIsZero) {
  EXPECT_DOUBLE_EQ(AverageLocalClustering(Complete(5)), 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(Star(8)), 0.0);
}

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(Degeneracy(Complete(7)), 6);
  EXPECT_EQ(Degeneracy(Path(10)), 1);
  EXPECT_EQ(Degeneracy(Cycle(10)), 2);
  EXPECT_EQ(Degeneracy(Star(20)), 1);
  EXPECT_EQ(Degeneracy(Grid2D(4, 4)), 2);
  EXPECT_EQ(Degeneracy(Graph()), 0);
}

TEST(Degeneracy, OrderingIsPermutationWithSmallBackDegree) {
  const Graph g = ErdosRenyiGnp(60, 0.2, 5);
  std::vector<VertexId> ordering;
  const std::int32_t d = Degeneracy(g, &ordering);
  ASSERT_EQ(ordering.size(), static_cast<std::size_t>(g.NumVertices()));
  std::vector<std::int32_t> pos(g.NumVertices());
  std::vector<char> seen(g.NumVertices(), 0);
  for (std::size_t i = 0; i < ordering.size(); ++i) {
    EXPECT_FALSE(seen[ordering[i]]);
    seen[ordering[i]] = 1;
    pos[ordering[i]] = static_cast<std::int32_t>(i);
  }
  // Every vertex has at most `d` neighbors later in the ordering.
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    std::int32_t later = 0;
    for (VertexId v : g.Neighbors(u)) {
      if (pos[v] > pos[u]) ++later;
    }
    EXPECT_LE(later, d);
  }
}

TEST(Degeneracy, CavemanEqualsCliqueSizeMinusOne) {
  EXPECT_EQ(Degeneracy(Caveman(4, 10, 5, 3)), 9);
}

}  // namespace
}  // namespace nucleus
