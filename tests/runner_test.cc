#include "nucleus/bench/runner.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nucleus {
namespace {

TEST(RunBench, ReportsPhaseSplit) {
  const Graph g = PlantedPartition(3, 12, 0.5, 0.05, 61);
  const BenchRun run = RunBench(g, Family::kTruss23, Algorithm::kFnd);
  EXPECT_EQ(run.algorithm, Algorithm::kFnd);
  EXPECT_GT(run.num_cliques, 0);
  EXPECT_GT(run.num_subnuclei, 0);
  EXPECT_GE(run.peel_seconds, 0.0);
  EXPECT_GE(run.post_seconds, 0.0);
  EXPECT_NEAR(run.total_seconds, run.peel_seconds + run.post_seconds, 1e-9);
  EXPECT_GT(run.max_lambda, 0);
}

TEST(RunBench, IndexTimeFoldedIntoPeel) {
  // For (2,3)/(3,4) the clique-index construction is part of the reported
  // peeling phase, as the paper's peeling numbers include support counting.
  const Graph g = Complete(12);
  const BenchRun run = RunBench(g, Family::kNucleus34, Algorithm::kDft);
  EXPECT_GT(run.peel_seconds, 0.0);
}

TEST(RunBench, AlgorithmsAgreeOnMaxLambda) {
  const Graph g = testing_util::PaperFigure2Graph();
  const Lambda expected =
      RunBench(g, Family::kCore12, Algorithm::kFnd).max_lambda;
  for (Algorithm algorithm : {Algorithm::kDft, Algorithm::kLcps,
                              Algorithm::kNaive, Algorithm::kHypo}) {
    EXPECT_EQ(RunBench(g, Family::kCore12, algorithm).max_lambda, expected);
  }
}

TEST(RunNaiveBudgeted, CompletesSmallGraphs) {
  const Graph g = Complete(8);
  const NaiveBenchRun run = RunNaiveBudgeted(g, Family::kTruss23, 30.0);
  EXPECT_TRUE(run.completed);
  EXPECT_GT(run.total_seconds, 0.0);
}

TEST(RunNaiveBudgeted, ZeroBudgetStopsEarlyOnNonTrivialGraph) {
  const Graph g = PlantedPartition(4, 20, 0.5, 0.05, 63);
  const NaiveBenchRun run = RunNaiveBudgeted(g, Family::kTruss23, 0.0);
  EXPECT_FALSE(run.completed);
}

TEST(RunNaiveBudgeted, AllFamiliesRun) {
  const Graph g = Caveman(3, 6, 3, 7);
  for (Family family :
       {Family::kCore12, Family::kTruss23, Family::kNucleus34}) {
    const NaiveBenchRun run = RunNaiveBudgeted(g, family, 30.0);
    EXPECT_TRUE(run.completed) << FamilyName(family);
  }
}

}  // namespace
}  // namespace nucleus
