#include "nucleus/io/hierarchy_export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "nucleus/core/decomposition.h"
#include "nucleus/store/snapshot.h"
#include "test_util.h"

namespace nucleus {
namespace {

NucleusHierarchy Figure2Hierarchy() {
  DecomposeOptions options;
  options.family = Family::kCore12;
  options.algorithm = Algorithm::kFnd;
  return Decompose(testing_util::PaperFigure2Graph(), options).hierarchy;
}

TEST(HierarchyToDot, ContainsAllNodesAndEdges) {
  const NucleusHierarchy h = Figure2Hierarchy();
  const std::string dot = HierarchyToDot(h);
  EXPECT_NE(dot.find("digraph nucleus_hierarchy"), std::string::npos);
  // 4 nodes: root, 2-core, two 3-cores; 3 edges.
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 3u);
  EXPECT_NE(dot.find("k=2"), std::string::npos);
  EXPECT_NE(dot.find("k=3"), std::string::npos);
  EXPECT_NE(dot.find("root"), std::string::npos);
}

TEST(HierarchyToDot, MinSubtreeFilterSplicesEdges) {
  const NucleusHierarchy h = Figure2Hierarchy();
  ExportOptions options;
  options.min_subtree_members = 5;  // hides the two 3-cores (4 members each)
  const std::string dot = HierarchyToDot(h, options);
  EXPECT_EQ(dot.find("k=3"), std::string::npos);
  EXPECT_NE(dot.find("k=2"), std::string::npos);
}

TEST(HierarchyToDot, MembersIncludedOnRequest) {
  const NucleusHierarchy h = Figure2Hierarchy();
  ExportOptions options;
  options.include_members = true;
  const std::string dot = HierarchyToDot(h, options);
  EXPECT_NE(dot.find("members="), std::string::npos);
}

TEST(HierarchyToJson, ParsesStructurally) {
  const NucleusHierarchy h = Figure2Hierarchy();
  const std::string json = HierarchyToJson(h);
  EXPECT_NE(json.find("\"root\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"max_lambda\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"num_nuclei\": 3"), std::string::npos);
  // Balanced braces and brackets (cheap well-formedness check).
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(HierarchyToJson, MembersIncludedOnRequest) {
  const NucleusHierarchy h = Figure2Hierarchy();
  ExportOptions options;
  options.include_members = true;
  const std::string json = HierarchyToJson(h, options);
  EXPECT_NE(json.find("\"members\": ["), std::string::npos);
}

TEST(JsonEscapeFn, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(JsonEscape("\b\f"), "\\b\\f");
}

TEST(HierarchyToJson, NameFieldIsEscaped) {
  const NucleusHierarchy h = Figure2Hierarchy();
  ExportOptions options;
  options.name = "data\"set\\v1\n(truss)";
  const std::string json = HierarchyToJson(h, options);
  EXPECT_NE(json.find("\"name\": \"data\\\"set\\\\v1\\n(truss)\""),
            std::string::npos);
  // No raw newline may survive inside the name string.
  EXPECT_EQ(json.find("v1\n(truss)"), std::string::npos);
}

TEST(HierarchyToDot, NameLabelIsEscaped) {
  const NucleusHierarchy h = Figure2Hierarchy();
  ExportOptions options;
  options.name = "two \"cores\"";
  const std::string dot = HierarchyToDot(h, options);
  EXPECT_NE(dot.find("label=\"two \\\"cores\\\"\""), std::string::npos);
}

TEST(HierarchyToJson, MinSubtreeFilterDropsAndSplices) {
  const NucleusHierarchy h = Figure2Hierarchy();
  ExportOptions options;
  options.min_subtree_members = 5;  // hides the two 3-cores (4 members each)
  const std::string json = HierarchyToJson(h, options);
  EXPECT_EQ(json.find("\"lambda\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"lambda\": 2"), std::string::npos);
  // The surviving 2-core node keeps no children (both were hidden).
  EXPECT_NE(json.find("\"lambda\": 2, \"parent\": 0"), std::string::npos);
  EXPECT_EQ(json.find("\"children\": [2"), std::string::npos);
}

TEST(HierarchyToJson, DefaultOptionsEmitEveryNode) {
  const NucleusHierarchy h = Figure2Hierarchy();
  const std::string json = HierarchyToJson(h);
  // 4 nodes: root + 2-core + two 3-cores.
  std::size_t ids = 0;
  for (std::size_t pos = json.find("{\"id\": "); pos != std::string::npos;
       pos = json.find("{\"id\": ", pos + 1)) {
    ++ids;
  }
  EXPECT_EQ(ids, 4u);
}

TEST(HierarchyToJson, SnapshotLoadedHierarchyExportsIdentically) {
  // The JSON export is a full structural serialization (ids, parents,
  // children, members): byte equality across a snapshot round trip is a
  // second, independent witness that .nucsnap loads are lossless.
  const Graph g = Caveman(3, 6, 3, 5);
  DecomposeOptions options;
  options.family = Family::kTruss23;
  options.algorithm = Algorithm::kFnd;
  const DecompositionResult result = Decompose(g, options);
  const SnapshotData original = MakeSnapshot(g, options, result, false);
  const std::string path = testing_util::TempPath("export_check.nucsnap");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  StatusOr<SnapshotData> loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ExportOptions export_options;
  export_options.include_members = true;
  export_options.name = "caveman(3,6)";
  EXPECT_EQ(HierarchyToJson(result.hierarchy, export_options),
            HierarchyToJson(loaded->hierarchy, export_options));
  EXPECT_EQ(HierarchyToDot(result.hierarchy, export_options),
            HierarchyToDot(loaded->hierarchy, export_options));
  std::remove(path.c_str());
}

TEST(WriteStringToFile, RoundTrips) {
  const std::string path = testing_util::TempPath("export_test.txt");
  ASSERT_TRUE(WriteStringToFile("hello\nworld\n", path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(WriteStringToFile, BadPathFails) {
  EXPECT_FALSE(WriteStringToFile("x", "/nonexistent/dir/file.txt").ok());
}

}  // namespace
}  // namespace nucleus
