// Determinism sweep for the parallel clique-index builds: EdgeIndex and
// TriangleIndex must be BIT-IDENTICAL to their serial builds for every
// thread count and grain, because downstream ids (edge ids = (2,3) clique
// ids, triangle ids = (3,4) clique ids) are part of the public result of a
// decomposition — lambdas, hierarchies and snapshots are all keyed on them.
#include <vector>

#include <gtest/gtest.h>

#include "nucleus/cliques/edge_index.h"
#include "nucleus/cliques/triangle_index.h"
#include "nucleus/core/decomposition.h"
#include "test_util.h"

namespace nucleus {
namespace {

using testing_util::GraphZoo;

void ExpectEdgeIndexEqual(const Graph& g, const EdgeIndex& a,
                          const EdgeIndex& b) {
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.Endpoints(e), b.Endpoints(e)) << "edge " << e;
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto ea = a.AdjEdgeIds(g, v);
    const auto eb = b.AdjEdgeIds(g, v);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i], eb[i]) << "vertex " << v << " slot " << i;
    }
  }
}

void ExpectTriangleIndexEqual(const TriangleIndex& a,
                              const TriangleIndex& b, EdgeId num_edges) {
  ASSERT_EQ(a.NumTriangles(), b.NumTriangles());
  for (TriangleId t = 0; t < a.NumTriangles(); ++t) {
    EXPECT_EQ(a.Vertices(t), b.Vertices(t)) << "triangle " << t;
    EXPECT_EQ(a.Edges(t), b.Edges(t)) << "triangle " << t;
  }
  for (EdgeId e = 0; e < num_edges; ++e) {
    const auto la = a.EdgeTriangles(e);
    const auto lb = b.EdgeTriangles(e);
    ASSERT_EQ(la.size(), lb.size()) << "edge " << e;
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].third, lb[i].third) << "edge " << e << " slot " << i;
      EXPECT_EQ(la[i].tid, lb[i].tid) << "edge " << e << " slot " << i;
    }
  }
}

class ParallelCliqueIndexTest
    : public ::testing::TestWithParam<testing_util::GraphCase> {};

TEST_P(ParallelCliqueIndexTest, DeterminismAcrossThreadsAndGrains) {
  const Graph g = GetParam().make();
  const EdgeIndex serial_edges = EdgeIndex::Build(g);
  const TriangleIndex serial_triangles = TriangleIndex::Build(g, serial_edges);

  for (int threads : {1, 2, 4, 8}) {
    for (std::int64_t grain : {std::int64_t{1}, std::int64_t{7},
                               ParallelConfig::kDefaultGrain}) {
      ParallelConfig config;
      config.num_threads = threads;
      config.grain_size = grain;
      const EdgeIndex parallel_edges = EdgeIndex::Build(g, config);
      ExpectEdgeIndexEqual(g, serial_edges, parallel_edges);
      const TriangleIndex parallel_triangles =
          TriangleIndex::Build(g, parallel_edges, config);
      ExpectTriangleIndexEqual(serial_triangles, parallel_triangles,
                               serial_edges.NumEdges());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, ParallelCliqueIndexTest,
                         ::testing::ValuesIn(GraphZoo()),
                         [](const auto& info) { return info.param.name; });

// The facade wires options.parallel through to the index builds: a
// threaded (3,4) decomposition (whose clique space IS the triangle index)
// must reproduce the serial result exactly.
TEST(ParallelCliqueIndexDecompose, ThreadedNucleus34MatchesSerial) {
  const Graph g = ErdosRenyiGnp(40, 0.15, 7);
  DecomposeOptions serial_options;
  serial_options.family = Family::kNucleus34;
  serial_options.algorithm = Algorithm::kFnd;
  const DecompositionResult serial = Decompose(g, serial_options);

  DecomposeOptions threaded_options = serial_options;
  threaded_options.parallel.num_threads = 4;
  const DecompositionResult threaded = Decompose(g, threaded_options);

  EXPECT_EQ(serial.num_cliques, threaded.num_cliques);
  EXPECT_EQ(serial.peel.lambda, threaded.peel.lambda);
  EXPECT_EQ(serial.peel.max_lambda, threaded.peel.max_lambda);
}

}  // namespace
}  // namespace nucleus
