#include "nucleus/cliques/kclique.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "nucleus/graph/generators.h"
#include "nucleus/graph/graph_builder.h"
#include "nucleus/graph/graph_stats.h"

namespace nucleus {
namespace {

std::int64_t Binomial(int n, int k) {
  if (k < 0 || k > n) return 0;
  std::int64_t r = 1;
  for (int i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

TEST(CountCliques, CompleteGraphBinomials) {
  const Graph g = Complete(8);
  for (int k = 1; k <= 8; ++k) {
    EXPECT_EQ(CountCliques(g, k), Binomial(8, k)) << "k=" << k;
  }
  EXPECT_EQ(CountCliques(g, 9), 0);
}

TEST(CountCliques, EdgesAndTrianglesMatchOtherCounters) {
  for (std::uint64_t seed : {2u, 4u, 6u}) {
    const Graph g = ErdosRenyiGnp(50, 0.2, seed);
    EXPECT_EQ(CountCliques(g, 1), g.NumVertices());
    EXPECT_EQ(CountCliques(g, 2), g.NumEdges());
    EXPECT_EQ(CountCliques(g, 3), CountTriangles(g));
  }
}

TEST(CountCliques, TriangleFreeGraphs) {
  EXPECT_EQ(CountCliques(CompleteBipartite(6, 6), 3), 0);
  EXPECT_EQ(CountCliques(Cycle(9), 3), 0);
  EXPECT_EQ(CountCliques(Path(9), 3), 0);
}

TEST(CountCliques, CavemanK4s) {
  // Each cave of size c contributes C(c,4) four-cliques; bridges add none
  // (a single bridge edge cannot form a K4 across caves).
  const Graph g = Caveman(3, 6, 2, 5);
  EXPECT_EQ(CountCliques(g, 4), 3 * Binomial(6, 4));
}

TEST(ForEachClique, EnumeratesDistinctSortedCliques) {
  const Graph g = Complete(6);
  std::set<std::vector<VertexId>> seen;
  ForEachClique(g, 3, [&](std::span<const VertexId> clique) {
    std::vector<VertexId> v(clique.begin(), clique.end());
    // Must be a clique in the graph.
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (std::size_t j = i + 1; j < v.size(); ++j) {
        EXPECT_TRUE(g.HasEdge(v[i], v[j]));
      }
    }
    std::sort(v.begin(), v.end());
    EXPECT_TRUE(seen.insert(v).second) << "duplicate clique";
  });
  EXPECT_EQ(seen.size(), 20u);
}

TEST(ForEachClique, SingletonsForKOne) {
  const Graph g = Path(4);
  std::int64_t count = 0;
  ForEachClique(g, 1, [&](std::span<const VertexId> clique) {
    EXPECT_EQ(clique.size(), 1u);
    ++count;
  });
  EXPECT_EQ(count, 4);
}

TEST(CliqueDegrees, CompleteGraphUniform) {
  const auto deg = CliqueDegrees(Complete(6), 3);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(deg[v], Binomial(5, 2));  // triangles through v
  }
}

TEST(CliqueDegrees, SumEqualsKTimesCount) {
  const Graph g = ErdosRenyiGnp(40, 0.25, 9);
  for (int k = 2; k <= 4; ++k) {
    const auto deg = CliqueDegrees(g, k);
    std::int64_t sum = 0;
    for (auto d : deg) sum += d;
    EXPECT_EQ(sum, k * CountCliques(g, k)) << "k=" << k;
  }
}

TEST(CountCliques, EmptyAndTinyGraphs) {
  EXPECT_EQ(CountCliques(Graph(), 2), 0);
  EXPECT_EQ(CountCliques(Path(1), 1), 1);
  EXPECT_EQ(CountCliques(Path(1), 2), 0);
}

}  // namespace
}  // namespace nucleus
