#include "nucleus/cliques/edge_index.h"

#include <gtest/gtest.h>

#include "nucleus/graph/generators.h"
#include "nucleus/graph/graph_builder.h"

namespace nucleus {
namespace {

TEST(EdgeIndex, TriangleIdsAreLexicographic) {
  const Graph g = GraphFromEdges(3, {{0, 1}, {0, 2}, {1, 2}});
  const EdgeIndex index = EdgeIndex::Build(g);
  EXPECT_EQ(index.NumEdges(), 3);
  EXPECT_EQ(index.GetEdgeId(g, 0, 1), 0);
  EXPECT_EQ(index.GetEdgeId(g, 0, 2), 1);
  EXPECT_EQ(index.GetEdgeId(g, 1, 2), 2);
}

TEST(EdgeIndex, LookupIsSymmetric) {
  const Graph g = GraphFromEdges(4, {{0, 3}, {1, 2}});
  const EdgeIndex index = EdgeIndex::Build(g);
  EXPECT_EQ(index.GetEdgeId(g, 0, 3), index.GetEdgeId(g, 3, 0));
  EXPECT_EQ(index.GetEdgeId(g, 2, 1), index.GetEdgeId(g, 1, 2));
}

TEST(EdgeIndex, MissingEdgeIsInvalid) {
  const Graph g = GraphFromEdges(4, {{0, 1}});
  const EdgeIndex index = EdgeIndex::Build(g);
  EXPECT_EQ(index.GetEdgeId(g, 0, 2), kInvalidId);
  EXPECT_EQ(index.GetEdgeId(g, 2, 3), kInvalidId);
  EXPECT_EQ(index.GetEdgeId(g, -1, 0), kInvalidId);
  EXPECT_EQ(index.GetEdgeId(g, 0, 99), kInvalidId);
}

TEST(EdgeIndex, EndpointsRoundTrip) {
  const Graph g = ErdosRenyiGnm(30, 80, 9);
  const EdgeIndex index = EdgeIndex::Build(g);
  for (EdgeId e = 0; e < index.NumEdges(); ++e) {
    const auto [u, v] = index.Endpoints(e);
    EXPECT_LT(u, v);
    EXPECT_TRUE(g.HasEdge(u, v));
    EXPECT_EQ(index.GetEdgeId(g, u, v), e);
  }
}

TEST(EdgeIndex, AdjEdgeIdsAlignedWithNeighbors) {
  const Graph g = ErdosRenyiGnm(25, 60, 10);
  const EdgeIndex index = EdgeIndex::Build(g);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    const auto nbrs = g.Neighbors(u);
    const auto eids = index.AdjEdgeIds(g, u);
    ASSERT_EQ(nbrs.size(), eids.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto [a, b] = index.Endpoints(eids[i]);
      EXPECT_TRUE((a == u && b == nbrs[i]) || (a == nbrs[i] && b == u));
    }
  }
}

TEST(EdgeIndex, EveryEdgeCoveredExactlyTwiceInAdjArrays) {
  const Graph g = BarabasiAlbert(40, 3, 11);
  const EdgeIndex index = EdgeIndex::Build(g);
  std::vector<int> seen(index.NumEdges(), 0);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (EdgeId e : index.AdjEdgeIds(g, u)) ++seen[e];
  }
  for (EdgeId e = 0; e < index.NumEdges(); ++e) EXPECT_EQ(seen[e], 2);
}

TEST(EdgeIndex, EmptyGraph) {
  const EdgeIndex index = EdgeIndex::Build(Graph());
  EXPECT_EQ(index.NumEdges(), 0);
}

TEST(EdgeIndex, IsolatedVerticesHaveNoEntries) {
  GraphBuilder b;
  b.AddEdge(1, 3);
  b.EnsureVertex(6);
  const Graph g = b.Build();
  const EdgeIndex index = EdgeIndex::Build(g);
  EXPECT_EQ(index.NumEdges(), 1);
  EXPECT_TRUE(index.AdjEdgeIds(g, 0).empty());
  EXPECT_TRUE(index.AdjEdgeIds(g, 6).empty());
}

}  // namespace
}  // namespace nucleus
