#include "nucleus/core/hierarchy.h"

#include <gtest/gtest.h>

#include "nucleus/core/df_traversal.h"
#include "nucleus/core/peeling.h"
#include "test_util.h"

namespace nucleus {
namespace {

NucleusHierarchy CoreHierarchy(const Graph& g) {
  const VertexSpace space(g);
  const PeelResult peel = Peel(space);
  const SkeletonBuild build = DfTraversal(space, peel);
  NucleusHierarchy h = NucleusHierarchy::FromSkeleton(build, g.NumVertices());
  h.Validate(peel.lambda);
  return h;
}

TEST(NucleusHierarchy, SingleCliqueIsRootPlusOneNode) {
  const NucleusHierarchy h = CoreHierarchy(Complete(5));
  EXPECT_EQ(h.NumNodes(), 2);
  EXPECT_EQ(h.NumNuclei(), 1);
  EXPECT_EQ(h.MaxLambda(), 4);
  const auto& root = h.node(h.root());
  EXPECT_EQ(root.lambda, kRootLambda);
  ASSERT_EQ(root.children.size(), 1u);
  const auto& core = h.node(root.children[0]);
  EXPECT_EQ(core.lambda, 4);
  EXPECT_EQ(core.members.size(), 5u);
  EXPECT_EQ(core.subtree_members, 5);
}

TEST(NucleusHierarchy, Figure2ShapeTwoThreeCoresUnderTwoCore) {
  // Paper Figure 2: hierarchy must be root -> 2-core -> {3-core, 3-core}.
  const NucleusHierarchy h = CoreHierarchy(testing_util::PaperFigure2Graph());
  EXPECT_EQ(h.NumNuclei(), 3);
  const auto& root = h.node(h.root());
  ASSERT_EQ(root.children.size(), 1u);
  const auto& two_core = h.node(root.children[0]);
  EXPECT_EQ(two_core.lambda, 2);
  EXPECT_EQ(two_core.subtree_members, 10);
  EXPECT_EQ(two_core.members.size(), 2u);  // bridge vertices 8, 9
  ASSERT_EQ(two_core.children.size(), 2u);
  for (std::int32_t c : two_core.children) {
    EXPECT_EQ(h.node(c).lambda, 3);
    EXPECT_EQ(h.node(c).subtree_members, 4);
    EXPECT_TRUE(h.node(c).children.empty());
  }
}

TEST(NucleusHierarchy, DisjointComponentsBecomeSiblings) {
  const NucleusHierarchy h =
      CoreHierarchy(DisjointUnion({Complete(4), Complete(5), Cycle(6)}));
  const auto& root = h.node(h.root());
  EXPECT_EQ(root.children.size(), 3u);
  EXPECT_EQ(h.NumNuclei(), 3);
}

TEST(NucleusHierarchy, IsolatedVerticesKeptInTreeButNotNuclei) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.EnsureVertex(4);  // vertices 3, 4 isolated
  const NucleusHierarchy h = CoreHierarchy(b.Build());
  // Nodes: root, the 1-core, and two lambda=0 singletons.
  EXPECT_EQ(h.NumNodes(), 4);
  EXPECT_EQ(h.NumNuclei(), 1);
  std::int64_t zero_nodes = 0;
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    if (h.node(id).lambda == 0) {
      ++zero_nodes;
      EXPECT_EQ(h.node(id).members.size(), 1u);
    }
  }
  EXPECT_EQ(zero_nodes, 2);
}

TEST(NucleusHierarchy, AncestorChainEndsAtRoot) {
  const Graph g = testing_util::PaperFigure2Graph();
  const NucleusHierarchy h = CoreHierarchy(g);
  const auto chain = h.AncestorChain(0);  // a K4 vertex
  ASSERT_EQ(chain.size(), 3u);            // 3-core, 2-core, root
  EXPECT_EQ(h.node(chain[0]).lambda, 3);
  EXPECT_EQ(h.node(chain[1]).lambda, 2);
  EXPECT_EQ(chain[2], h.root());
  const auto bridge_chain = h.AncestorChain(8);
  ASSERT_EQ(bridge_chain.size(), 2u);  // 2-core, root
  EXPECT_EQ(h.node(bridge_chain[0]).lambda, 2);
}

TEST(NucleusHierarchy, NodeOfCliqueMatchesLambda) {
  const Graph g = PlantedPartition(3, 8, 0.8, 0.1, 51);
  const VertexSpace space(g);
  const PeelResult peel = Peel(space);
  const SkeletonBuild build = DfTraversal(space, peel);
  const NucleusHierarchy h =
      NucleusHierarchy::FromSkeleton(build, g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(h.node(h.NodeOfClique(v)).lambda, peel.lambda[v]);
  }
}

TEST(NucleusHierarchy, MembersOfSubtreeIsSortedUnion) {
  const NucleusHierarchy h = CoreHierarchy(testing_util::PaperFigure2Graph());
  const auto& root = h.node(h.root());
  const auto two_core_id = root.children[0];
  const auto members = h.MembersOfSubtree(two_core_id);
  EXPECT_EQ(members.size(), 10u);
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_LT(members[i - 1], members[i]);
  }
}

TEST(NucleusHierarchy, ExtractNucleiMatchesSubtrees) {
  const NucleusHierarchy h = CoreHierarchy(Caveman(3, 6, 3, 7));
  const auto nuclei = h.ExtractNuclei();
  EXPECT_EQ(static_cast<std::int64_t>(nuclei.size()), h.NumNuclei());
  for (const auto& nucleus : nuclei) {
    EXPECT_GE(nucleus.k, 1);
    EXPECT_FALSE(nucleus.members.empty());
  }
}

TEST(NucleusHierarchy, LambdasStrictlyIncreaseDownEveryPath) {
  const NucleusHierarchy h =
      CoreHierarchy(HierarchicalCommunities(2, 3, 6, 1, 77));
  for (std::int32_t id = 0; id < h.NumNodes(); ++id) {
    for (std::int32_t c : h.node(id).children) {
      EXPECT_LT(h.node(id).lambda, h.node(c).lambda);
    }
  }
}

TEST(NucleusHierarchy, EmptyGraphRootOnly) {
  const NucleusHierarchy h = CoreHierarchy(Graph());
  EXPECT_EQ(h.NumNodes(), 1);
  EXPECT_EQ(h.NumNuclei(), 0);
  EXPECT_EQ(h.node(h.root()).subtree_members, 0);
}

TEST(ProfileHierarchy, Figure2Profile) {
  const HierarchyProfile p =
      ProfileHierarchy(CoreHierarchy(testing_util::PaperFigure2Graph()));
  EXPECT_EQ(p.num_nodes, 3);   // 2-core + two 3-cores
  EXPECT_EQ(p.num_leaves, 2);  // the 3-cores
  EXPECT_EQ(p.max_depth, 2);
  EXPECT_DOUBLE_EQ(p.avg_branching, 2.0);  // the 2-core has two children
  ASSERT_EQ(p.nodes_per_lambda.size(), 2u);
  EXPECT_EQ(p.nodes_per_lambda[0], (std::pair<Lambda, std::int64_t>{2, 1}));
  EXPECT_EQ(p.nodes_per_lambda[1], (std::pair<Lambda, std::int64_t>{3, 2}));
}

TEST(ProfileHierarchy, EmptyGraphProfile) {
  const HierarchyProfile p = ProfileHierarchy(CoreHierarchy(Graph()));
  EXPECT_EQ(p.num_nodes, 0);
  EXPECT_EQ(p.num_leaves, 0);
  EXPECT_EQ(p.max_depth, 0);
  EXPECT_DOUBLE_EQ(p.avg_branching, 0.0);
}

TEST(ProfileHierarchy, DeepChainProfile) {
  // Three disjoint chains of bridged cliques K8-K6-K4. Per chain the k-core
  // hierarchy is the path root -> 3-core(K4..) -> 5-core(K6..) -> 7-core(K8):
  // 9 nodes, 3 leaves, depth 3.
  auto clique_chain = [] {
    GraphBuilder b;
    VertexId base = 0;
    VertexId prev_tail = -1;
    for (VertexId size : {8, 6, 4}) {
      for (VertexId u = 0; u < size; ++u)
        for (VertexId v = u + 1; v < size; ++v)
          b.AddEdge(base + u, base + v);
      if (prev_tail >= 0) b.AddEdge(prev_tail, base);
      prev_tail = base;
      base += size;
    }
    return b.Build();
  };
  const Graph g =
      DisjointUnion({clique_chain(), clique_chain(), clique_chain()});
  const HierarchyProfile p = ProfileHierarchy(CoreHierarchy(g));
  EXPECT_EQ(p.num_nodes, 9);
  EXPECT_EQ(p.num_leaves, 3);
  EXPECT_EQ(p.max_depth, 3);
  EXPECT_DOUBLE_EQ(p.avg_branching, 1.0);
  EXPECT_GT(p.avg_members_per_node, 0.0);
}

}  // namespace
}  // namespace nucleus
